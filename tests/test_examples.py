"""Smoke-run every README example in quick mode.

Examples are the first code a new user runs, and nothing else imports
them -- without this lane they only break in public.  Each script runs in
its own interpreter (as a user would run it) with ``REPRO_QUICK=1`` so the
whole matrix stays in CI budget.
"""

import os
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(ROOT, "examples")


def _example_scripts():
    return sorted(
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    )


def test_every_example_is_covered():
    """A new example file automatically joins the parametrized run below."""
    assert _example_scripts(), "examples/ directory is empty?"


@pytest.mark.parametrize("script", _example_scripts())
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["REPRO_QUICK"] = "1"
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        cwd=ROOT, env=env, capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script} exited with {proc.returncode}:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"
