"""Tests for named deterministic RNG streams."""

from repro.sim import RngHub


def test_same_name_returns_same_generator_object():
    hub = RngHub(seed=7)
    assert hub.stream("arrivals") is hub.stream("arrivals")


def test_streams_reproducible_across_hubs_with_same_seed():
    a = RngHub(seed=42).stream("noise").random(5)
    b = RngHub(seed=42).stream("noise").random(5)
    assert list(a) == list(b)


def test_different_names_give_different_sequences():
    hub = RngHub(seed=42)
    a = hub.stream("alpha").random(5)
    b = hub.stream("beta").random(5)
    assert list(a) != list(b)


def test_different_seeds_give_different_sequences():
    a = RngHub(seed=1).stream("x").random(5)
    b = RngHub(seed=2).stream("x").random(5)
    assert list(a) != list(b)


def test_stream_isolation_from_other_draws():
    """Drawing from one stream must not perturb another stream."""
    hub1 = RngHub(seed=9)
    hub1.stream("a").random(100)  # consume a lot from 'a'
    after = hub1.stream("b").random(3)

    hub2 = RngHub(seed=9)
    fresh = hub2.stream("b").random(3)
    assert list(after) == list(fresh)


def test_fork_produces_independent_hub():
    hub = RngHub(seed=3)
    child = hub.fork("worker-1")
    assert child.seed != hub.seed
    a = hub.stream("x").random(3)
    b = child.stream("x").random(3)
    assert list(a) != list(b)


def test_fork_is_deterministic():
    a = RngHub(seed=3).fork("w").stream("x").random(3)
    b = RngHub(seed=3).fork("w").stream("x").random(3)
    assert list(a) == list(b)
