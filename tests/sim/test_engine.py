"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Simulator, SimulationError


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run_until_executes_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.run_until(2.5)
    assert fired == ["a", "b"]
    assert sim.now == 2.5


def test_equal_time_events_fire_in_fifo_order():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(1.0, fired.append, name)
    sim.run_until(1.0)
    assert fired == list("abcde")


def test_run_until_advances_clock_even_with_empty_queue():
    sim = Simulator()
    sim.run_until(5.0)
    assert sim.now == 5.0


def test_callback_args_are_passed():
    sim = Simulator()
    got = []
    sim.schedule(0.5, lambda a, b: got.append((a, b)), 1, "x")
    sim.run_until(1.0)
    assert got == [(1, "x")]


def test_events_scheduled_during_run_execute_same_run():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(0.5, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run_until(2.0)
    assert fired == ["first", "second"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    sim.run_until(2.0)
    assert fired == []


def test_cancel_one_of_several_equal_time_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    handle = sim.schedule(1.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "c")
    handle.cancel()
    sim.run_until(1.0)
    assert fired == ["a", "c"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until(2.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(1.5, lambda: None)


def test_run_backwards_rejected():
    sim = Simulator()
    sim.run_until(3.0)
    with pytest.raises(SimulationError):
        sim.run_until(1.0)


def test_non_finite_time_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_at(float("inf"), lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(float("nan"), lambda: None)


def test_peek_time_skips_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.peek_time() == 2.0


def test_step_returns_false_when_drained():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_run_executes_all_events():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_run_livelock_guard():
    sim = Simulator()

    def rearm():
        sim.schedule(0.001, rearm)

    sim.schedule(0.0, rearm)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run_until(10.0)
    assert sim.events_processed == 5


def test_reentrant_run_rejected():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run_until(10.0)
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run_until(5.0)
    assert len(errors) == 1


# ---------------------------------------------------------------------------
# Recurring events
# ---------------------------------------------------------------------------
def test_recurring_event_fires_every_period():
    sim = Simulator()
    times = []
    sim.schedule_recurring(1.0, lambda: times.append(sim.now))
    sim.run_until(4.5)
    assert times == [1.0, 2.0, 3.0, 4.0]


def test_recurring_first_delay_overrides_first_firing():
    sim = Simulator()
    times = []
    sim.schedule_recurring(1.0, lambda: times.append(sim.now), first_delay=0.25)
    sim.run_until(3.0)
    assert times == [0.25, 1.25, 2.25]


def test_recurring_event_cancel_stops_rearming():
    sim = Simulator()
    times = []
    event = sim.schedule_recurring(1.0, lambda: times.append(sim.now))
    sim.run_until(2.5)
    event.cancel()
    sim.run_until(10.0)
    assert times == [1.0, 2.0]


def test_recurring_callback_self_cancels_via_current_event():
    sim = Simulator()
    times = []

    def tick():
        times.append(sim.now)
        if len(times) == 3:
            sim.current_event.cancel()

    sim.schedule_recurring(1.0, tick)
    sim.run_until(10.0)
    assert times == [1.0, 2.0, 3.0]


def test_current_event_is_none_outside_callbacks():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: seen.append(sim.current_event is not None))
    assert sim.current_event is None
    sim.run_until(2.0)
    assert seen == [True]
    assert sim.current_event is None


def test_recurring_rejects_bad_period():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_recurring(0.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_recurring(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_recurring(float("inf"), lambda: None)


# ---------------------------------------------------------------------------
# pending / raw_pending and the cancelled-entry sweep
# ---------------------------------------------------------------------------
def test_pending_counts_only_live_events():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
    assert sim.pending == 4
    handles[0].cancel()
    handles[2].cancel()
    assert sim.pending == 2
    assert sim.raw_pending == 4


def test_sweep_bounds_queue_under_cancel_churn():
    from repro.sim.engine import _SWEEP_MIN_SIZE

    sim = Simulator()
    live = 0
    for i in range(8 * _SWEEP_MIN_SIZE):
        handle = sim.schedule(float(i + 1), lambda: None)
        if i % 97 == 0:
            live += 1
        else:
            handle.cancel()
    # Crossing the sweep threshold compacts cancelled entries, so the raw
    # queue stays bounded even though ~8x threshold entries were pushed.
    assert sim.pending == live
    assert sim.raw_pending <= 2 * _SWEEP_MIN_SIZE


def test_sweep_preserves_firing_order():
    from repro.sim.engine import _SWEEP_MIN_SIZE

    sim = Simulator()
    fired = []
    keep = []
    for i in range(2 * _SWEEP_MIN_SIZE):
        handle = sim.schedule(float(i + 1), fired.append, i)
        if i % 97 == 0:
            keep.append(i)
        else:
            handle.cancel()
    sim.schedule(50000.0, fired.append, -1)
    sim.run()
    assert fired == keep + [-1]


def test_run_epoch_fires_drain_hooks_at_barrier():
    sim = Simulator()
    fired = []
    sim.schedule_at(0.1, fired.append, "event")
    sim.add_drain_hook(lambda: fired.append(("hook-a", sim.now)))
    sim.add_drain_hook(lambda: fired.append(("hook-b", sim.now)))
    sim.run_epoch(0.25)
    # Hooks run after the events, outside the loop, in registration order,
    # with the clock already landed exactly on the barrier.
    assert fired == ["event", ("hook-a", 0.25), ("hook-b", 0.25)]
    assert sim.now == 0.25


def test_drain_hook_schedules_land_in_next_epoch():
    sim = Simulator()
    fired = []

    def hook():
        # time == now is legal; the event must wait for the next epoch.
        sim.schedule_at(sim.now, fired.append, sim.now)

    sim.add_drain_hook(hook)
    sim.run_epoch(0.25)
    assert fired == []  # nothing a hook emits affects the closed epoch
    sim.run_epoch(0.5)
    assert fired == [0.25]


def test_run_epoch_rejects_running_backwards():
    sim = Simulator()
    sim.run_epoch(0.5)
    with pytest.raises(SimulationError):
        sim.run_epoch(0.25)
