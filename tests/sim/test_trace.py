"""Tests for the trace recorder."""

from repro.sim import TraceRecorder


def test_record_and_iterate():
    trace = TraceRecorder()
    trace.record(1.0, "switch", core=0)
    trace.record(2.0, "send", nbytes=128)
    events = list(trace)
    assert len(events) == 2
    assert events[0].kind == "switch"
    assert events[1].detail["nbytes"] == 128


def test_of_kind_filters():
    trace = TraceRecorder()
    trace.record(1.0, "a")
    trace.record(2.0, "b")
    trace.record(3.0, "a")
    assert [e.time for e in trace.of_kind("a")] == [1.0, 3.0]
    assert [e.time for e in trace.of_kind("a", "b")] == [1.0, 2.0, 3.0]


def test_matching_filters_on_detail():
    trace = TraceRecorder()
    trace.record(1.0, "switch", core=0, pid=10)
    trace.record(2.0, "switch", core=1, pid=10)
    assert len(trace.matching(pid=10)) == 2
    assert len(trace.matching(core=1)) == 1
    assert trace.matching(core=2) == []


def test_disabled_recorder_drops_events():
    trace = TraceRecorder(enabled=False)
    trace.record(1.0, "x")
    assert len(trace) == 0


def test_capacity_bound():
    trace = TraceRecorder(capacity=3)
    for i in range(10):
        trace.record(float(i), "e")
    assert len(trace) == 3


def test_clear():
    trace = TraceRecorder()
    trace.record(1.0, "x")
    trace.clear()
    assert len(trace) == 0


def test_str_rendering():
    trace = TraceRecorder()
    trace.record(1.5, "fork", parent=1, child=2)
    text = str(list(trace)[0])
    assert "fork" in text
    assert "child=2" in text
