"""Targeted tests for smaller API surfaces across packages."""

import pytest

from repro.core.container import PowerContainer
from repro.hardware import (
    EventVector,
    RateProfile,
    SANDYBRIDGE,
    WESTMERE,
    build_machine,
    spec_by_name,
)
from repro.kernel import Compute, Kernel, NetIO
from repro.sim import Simulator


def test_spec_with_overrides_is_a_copy():
    modified = SANDYBRIDGE.with_overrides(overflow_threshold_cycles=1e6)
    assert modified.overflow_threshold_cycles == 1e6
    assert SANDYBRIDGE.overflow_threshold_cycles == 3.1e6
    assert modified.n_cores == SANDYBRIDGE.n_cores


def test_spec_release_years_ordered():
    assert spec_by_name("woodcrest").release_year < \
        spec_by_name("westmere").release_year < \
        spec_by_name("sandybridge").release_year


def test_netio_action_blocks_and_charges_nic():
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    done_at = []

    def program():
        yield NetIO(nbytes=1_250_000)  # 10 ms at 125 MB/s
        done_at.append(sim.now)

    kernel.spawn(program(), "uploader")
    sim.run_until(1.0)
    expected = machine.net.base_latency_sec + 1_250_000 / 125e6
    assert done_at == [pytest.approx(expected, rel=1e-6)]
    machine.checkpoint()
    assert machine.integrator.peripheral_joules == pytest.approx(
        5.8 * expected, rel=1e-6
    )


def test_negative_io_rejected():
    from repro.kernel import DiskIO
    with pytest.raises(ValueError):
        DiskIO(nbytes=-1)
    with pytest.raises(ValueError):
        NetIO(nbytes=-1)
    with pytest.raises(ValueError):
        Compute(cycles=-1, profile=RateProfile())


def test_sleep_rejects_negative():
    from repro.kernel import Sleep
    with pytest.raises(ValueError):
        Sleep(-0.1)


def test_stage_breakdown_unit():
    c = PowerContainer(1)
    c.stats.record_interval(
        1.0, 0.01, EventVector(), {"recal": 0.2}, 1.0,
        stage="apache", primary_approach="recal",
    )
    c.stats.record_interval(
        1.1, 0.02, EventVector(), {"recal": 0.3}, 1.0,
        stage="mysql", primary_approach="recal",
    )
    c.stats.record_interval(
        1.2, 0.01, EventVector(), {"recal": 0.1}, 1.0,
        stage="apache", primary_approach="recal",
    )
    assert c.stats.stage_energy_joules == {
        "apache": pytest.approx(0.3), "mysql": pytest.approx(0.3)
    }
    assert c.stats.stage_cpu_seconds["apache"] == pytest.approx(0.02)
    assert c.stats.stage_mean_power("apache") == pytest.approx(15.0)
    assert c.stats.stage_mean_power("ghost") == 0.0


def test_stage_breakdown_without_stage_is_skipped():
    c = PowerContainer(1)
    c.stats.record_interval(1.0, 0.01, EventVector(), {"recal": 0.2}, 1.0)
    assert c.stats.stage_energy_joules == {}


def test_learn_type_profiles_unit(tmp_path):
    from repro.analysis.prediction import learn_type_profiles

    class _FakeDriver:
        def __init__(self, results):
            self.results = results

    class _FakeRun:
        def __init__(self, results):
            self.driver = _FakeDriver(results)

    from repro.requests import RequestResult

    def _result(rtype, energy, cpu):
        c = PowerContainer(1)
        c.stats.record_interval(1.0, cpu, EventVector(), {"recal": energy}, 1.0)
        return RequestResult(0, rtype, 0.0, 1.0, c)

    run = _FakeRun([
        _result("read", 1.0, 0.01),
        _result("read", 3.0, 0.03),
        _result("write", 10.0, 0.05),
    ])
    profiles = learn_type_profiles(run, "recal")
    assert profiles["read"].mean_energy_joules == pytest.approx(2.0)
    assert profiles["read"].mean_cpu_seconds == pytest.approx(0.02)
    assert profiles["read"].sample_count == 2
    assert profiles["write"].sample_count == 1


def test_westmere_overflow_threshold_about_one_millisecond():
    machine = build_machine(WESTMERE, Simulator())
    threshold = machine.cores[0].counters.overflow_threshold_cycles
    assert threshold / WESTMERE.freq_hz == pytest.approx(1e-3, rel=1e-6)
