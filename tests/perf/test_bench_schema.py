"""BENCH_perf.json schema 2: ratio fields, migration, regression gates.

Schema 1 stored the ratio benchmarks' machine-independent ratios *in* the
``seconds`` field, which made them look like multi-second wall times to
anything consuming the file.  Schema 2 keeps ``seconds`` as a wall time
everywhere and adds an explicit ``ratio`` field; these tests pin the
writer, the schema-1 migration, and the ``check_regressions`` contract on
both fields.
"""

import json

from repro.perf import (
    BenchResult,
    check_regressions,
    load_bench_json,
    write_bench_json,
)
from repro.perf.suite import (
    MAX_TELEMETRY_DISABLED_RATIO,
    MIN_ACCOUNTING_RATIO,
    MIN_CORRELATION_RATIO,
    _TELEMETRY_ITERATIONS,
)


def _results(**overrides):
    """A minimal healthy suite result set (ratios well inside bounds)."""
    results = {
        "micro-event-vector": BenchResult(
            "micro-event-vector", "micro", 0.010,
        ),
        "micro-correlation-vs-oracle-ratio": BenchResult(
            "micro-correlation-vs-oracle-ratio", "micro", 0.0002,
            ratio=MIN_CORRELATION_RATIO * 4,
        ),
        "micro-accounting-vs-oracle-ratio": BenchResult(
            "micro-accounting-vs-oracle-ratio", "micro", 0.0005,
            ratio=MIN_ACCOUNTING_RATIO * 4,
        ),
        "micro-telemetry-disabled-ratio": BenchResult(
            "micro-telemetry-disabled-ratio", "micro", 0.05, ratio=1.0,
        ),
        "macro-solr-workload": BenchResult(
            "macro-solr-workload", "macro", 0.13,
        ),
    }
    results.update(overrides)
    return results


def test_write_emits_schema_2_with_ratio_fields(tmp_path):
    path = str(tmp_path / "bench.json")
    payload = write_bench_json(_results(), path)
    assert payload["schema"] == 2
    benchmarks = payload["benchmarks"]
    entry = benchmarks["micro-correlation-vs-oracle-ratio"]
    assert entry["seconds"] == 0.0002  # a wall time, not the ratio
    assert entry["ratio"] == MIN_CORRELATION_RATIO * 4
    assert "ratio" not in benchmarks["macro-solr-workload"]
    # Round trip through the loader: schema 2 passes through unchanged.
    assert load_bench_json(path) == json.load(open(path))


def test_load_migrates_schema_1_ratios(tmp_path):
    legacy = {
        "schema": 1,
        "benchmarks": {
            "micro-correlation-vs-oracle-ratio": {
                "kind": "micro",
                "seconds": 18.52,  # the smuggled ratio
                "vectorized_seconds": 0.0002,
                "reference_seconds": 0.0037,
            },
            "micro-telemetry-disabled-ratio": {
                "kind": "micro",
                "seconds": 1.01,
                "bare_samples_per_sec": 200_000.0,
            },
            "macro-solr-workload": {"kind": "macro", "seconds": 0.29},
        },
    }
    path = tmp_path / "legacy.json"
    path.write_text(json.dumps(legacy))
    migrated = load_bench_json(str(path))
    assert migrated["schema"] == 2
    correlation = migrated["benchmarks"]["micro-correlation-vs-oracle-ratio"]
    assert correlation["ratio"] == 18.52
    assert correlation["seconds"] == 0.0002
    telemetry = migrated["benchmarks"]["micro-telemetry-disabled-ratio"]
    assert telemetry["ratio"] == 1.01
    assert telemetry["seconds"] == _TELEMETRY_ITERATIONS / 200_000.0
    # Non-ratio entries are untouched.
    assert migrated["benchmarks"]["macro-solr-workload"]["seconds"] == 0.29


def test_load_migration_without_throughput_disables_wall_check(tmp_path):
    legacy = {
        "schema": 1,
        "benchmarks": {
            "micro-correlation-vs-oracle-ratio": {
                "kind": "micro", "seconds": 18.52,
            },
        },
    }
    path = tmp_path / "legacy.json"
    path.write_text(json.dumps(legacy))
    migrated = load_bench_json(str(path))
    entry = migrated["benchmarks"]["micro-correlation-vs-oracle-ratio"]
    assert entry["ratio"] == 18.52
    assert entry["seconds"] == 0.0

    results = {
        "micro-correlation-vs-oracle-ratio": BenchResult(
            "micro-correlation-vs-oracle-ratio", "micro", 999.0,
            ratio=MIN_CORRELATION_RATIO * 2,
        ),
    }
    # A huge wall time passes because the migrated baseline has none.
    assert check_regressions(results, str(path)) == []


def _committed(tmp_path):
    path = str(tmp_path / "committed.json")
    write_bench_json(_results(), path)
    return path


def test_check_regressions_passes_healthy_run(tmp_path):
    assert check_regressions(_results(), _committed(tmp_path)) == []


def test_check_regressions_flags_wall_time(tmp_path):
    slow = _results(**{
        "macro-solr-workload": BenchResult(
            "macro-solr-workload", "macro", 10.0,
        ),
    })
    problems = check_regressions(slow, _committed(tmp_path))
    assert len(problems) == 1
    assert "macro-solr-workload" in problems[0]


def test_check_regressions_flags_ratio_floor(tmp_path):
    bad = _results(**{
        "micro-accounting-vs-oracle-ratio": BenchResult(
            "micro-accounting-vs-oracle-ratio", "micro", 0.0005,
            ratio=MIN_ACCOUNTING_RATIO / 2,
        ),
    })
    problems = check_regressions(bad, _committed(tmp_path))
    assert len(problems) == 1
    assert "below required" in problems[0]


def test_check_regressions_flags_ratio_budget(tmp_path):
    bad = _results(**{
        "micro-telemetry-disabled-ratio": BenchResult(
            "micro-telemetry-disabled-ratio", "micro", 0.05,
            ratio=MAX_TELEMETRY_DISABLED_RATIO * 2,
        ),
    })
    problems = check_regressions(bad, _committed(tmp_path))
    assert len(problems) == 1
    assert "exceeds budget" in problems[0]


def test_check_regressions_flags_missing_ratio(tmp_path):
    bad = _results(**{
        "micro-accounting-vs-oracle-ratio": BenchResult(
            "micro-accounting-vs-oracle-ratio", "micro", 0.0005,
        ),
    })
    problems = check_regressions(bad, _committed(tmp_path))
    assert problems == [
        "micro-accounting-vs-oracle-ratio: no ratio was measured"
    ]


def test_committed_bench_json_is_schema_2_with_real_wall_times():
    """The repo-root BENCH_perf.json must carry explicit ratios and keep
    every ``seconds`` field a plausible wall time (< 60 s)."""
    import os

    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    )))
    payload = load_bench_json(os.path.join(root, "BENCH_perf.json"))
    assert payload["schema"] == 2
    for name, entry in payload["benchmarks"].items():
        assert entry["seconds"] < 60.0, name
        if "ratio" in entry:
            assert entry["ratio"] > 0.0, name
