"""Tests for the Fig. 8 validation and Fig. 10 prediction drivers."""

import pytest

from repro.analysis import (
    gae_background_split,
    incremental_power_curve,
    measure_workload_power,
    predict_at_new_composition,
    request_energy_samples,
    request_power_samples,
    validate_workload,
)
from repro.hardware import SANDYBRIDGE, WOODCREST
from repro.workloads import (
    GaeHybridWorkload,
    GaeVosaoWorkload,
    RsaCryptoWorkload,
    SolrWorkload,
    StressWorkload,
)

pytestmark = pytest.mark.slow


def test_validation_outcome_structure(sb_cal):
    outcome = validate_workload(
        SolrWorkload(), SANDYBRIDGE, sb_cal, load_fraction=0.5, duration=3.0,
    )
    assert set(outcome.errors) == {"eq1", "eq2", "recal"}
    assert outcome.measured_active_watts > 5
    for approach, watts in outcome.estimated_watts.items():
        assert watts > 0
        assert outcome.error(approach) == pytest.approx(
            abs(watts - outcome.measured_active_watts)
            / outcome.measured_active_watts
        )


def test_validation_recal_beats_eq1_on_stress(sb_cal):
    """The Fig. 8 headline: recalibration fixes hidden-power workloads."""
    outcome = validate_workload(
        StressWorkload(), SANDYBRIDGE, sb_cal, load_fraction=1.0, duration=4.0,
    )
    assert outcome.error("recal") < outcome.error("eq2")
    assert outcome.error("recal") < 0.10
    assert outcome.error("eq2") > 0.10  # hidden power invisible offline


def test_validation_accurate_on_calibration_like_workload(sb_cal):
    outcome = validate_workload(
        SolrWorkload(), SANDYBRIDGE, sb_cal, load_fraction=0.5, duration=3.0,
    )
    assert outcome.error("recal") < 0.08
    assert outcome.error("eq2") < 0.12


def test_incremental_power_first_step_largest_sandybridge():
    """Fig. 1 left: idle->1 core includes the chip maintenance power."""
    increments = incremental_power_curve(SANDYBRIDGE, duration=0.2)
    assert len(increments) == 4
    assert increments[0] > increments[1] * 1.3
    assert increments[1] == pytest.approx(increments[2], rel=0.05)
    assert increments[1] == pytest.approx(increments[3], rel=0.05)


def test_incremental_power_two_large_steps_woodcrest():
    """Fig. 1 right: the spread policy activates both chips by two cores."""
    increments = incremental_power_curve(WOODCREST, duration=0.2)
    assert len(increments) == 4
    assert increments[0] > increments[2] * 1.2
    assert increments[1] > increments[2] * 1.2
    assert increments[2] == pytest.approx(increments[3], rel=0.05)


def test_measure_workload_power_scales_with_load(sb_cal):
    half, _ = measure_workload_power(
        SolrWorkload(), SANDYBRIDGE, sb_cal, 0.5, duration=2.5,
    )
    peak, _ = measure_workload_power(
        SolrWorkload(), SANDYBRIDGE, sb_cal, 1.0, duration=2.5,
    )
    assert peak > half


def test_request_power_and_energy_samples(sb_cal):
    _, run = measure_workload_power(
        GaeHybridWorkload(), SANDYBRIDGE, sb_cal, 0.5, duration=4.0,
    )
    powers = request_power_samples(run)
    energies = request_energy_samples(run)
    assert len(powers) == len(energies) > 30
    virus_powers = request_power_samples(run, rtype_prefix="virus")
    assert virus_powers
    # Fig. 6: viruses form the high-power mass.
    import numpy as np
    assert np.mean(virus_powers) > np.mean(powers)


def test_gae_background_split_about_one_third(sb_cal):
    _, run = measure_workload_power(
        GaeVosaoWorkload(), SANDYBRIDGE, sb_cal, 1.0, duration=3.0,
    )
    split = gae_background_split(run)
    assert 0.2 < split.background_fraction < 0.45
    assert split.modeled_total_watts == pytest.approx(
        split.measured_active_watts, rel=0.15
    )


def test_prediction_ordering_matches_paper(sb_cal):
    outcomes = predict_at_new_composition(
        RsaCryptoWorkload(),
        RsaCryptoWorkload(mix={"key-large": 1.0}),
        SANDYBRIDGE, sb_cal,
        profiling_load=0.5, new_loads=(0.65,), duration=4.0,
    )
    errors = outcomes[0].errors
    assert errors["power-containers"] < errors["request-rate-proportional"]
    assert errors["power-containers"] < 0.11  # the paper's bound
    assert errors["request-rate-proportional"] > 0.25


def test_prediction_rejects_unprofiled_types(sb_cal):
    with pytest.raises(ValueError):
        predict_at_new_composition(
            RsaCryptoWorkload(mix={"key-small": 1.0}),  # only small profiled
            RsaCryptoWorkload(mix={"key-large": 1.0}),
            SANDYBRIDGE, sb_cal,
            profiling_load=0.4, new_loads=(0.5,), duration=2.0,
        )
