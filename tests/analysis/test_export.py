"""Tests for CSV/JSON export of experiment data."""

import csv
import json

import pytest

from repro.analysis.export import (
    export_power_traces_csv,
    export_requests_csv,
    export_requests_json,
    request_records,
    write_csv,
)
from repro.hardware import SANDYBRIDGE
from repro.workloads import SolrWorkload, run_workload


@pytest.fixture(scope="module")
def small_run(sb_cal):
    return run_workload(
        SolrWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.4, duration=1.5, warmup=0.0,
    )


def test_write_csv_round_trip(tmp_path):
    path = write_csv(tmp_path / "t.csv", ["a", "b"], [[1, "x"], [2, "y"]])
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows == [["a", "b"], ["1", "x"], ["2", "y"]]


def test_write_csv_creates_directories(tmp_path):
    path = write_csv(tmp_path / "deep" / "dir" / "t.csv", ["a"], [[1]])
    assert path.exists()


def test_request_records_fields(small_run):
    records = request_records(small_run.driver.results)
    assert records
    record = records[0]
    for key in ("rtype", "response_time", "energy_joules",
                "mean_power_watts", "mean_duty_ratio"):
        assert key in record
    assert record["completion"] >= record["arrival"]


def test_export_requests_csv(tmp_path, small_run):
    path = export_requests_csv(tmp_path / "req.csv", small_run.driver.results)
    with path.open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == len(small_run.driver.results)
    assert float(rows[0]["energy_joules"]) >= 0


def test_export_requests_csv_empty_raises(tmp_path):
    with pytest.raises(ValueError):
        export_requests_csv(tmp_path / "x.csv", [])


def test_export_requests_json(tmp_path, small_run):
    path = export_requests_json(tmp_path / "req.json", small_run.driver.results)
    data = json.loads(path.read_text())
    assert len(data) == len(small_run.driver.results)
    assert {"rtype", "energy_joules"} <= set(data[0])


def test_export_power_traces_with_meter(tmp_path, small_run):
    facility = small_run.facility
    path = export_power_traces_csv(
        tmp_path / "trace.csv", facility, meter=facility.meter
    )
    with path.open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == len(facility.trace)
    measured = [r["measured_watts"] for r in rows if r["measured_watts"]]
    assert measured, "meter samples must align with some trace rows"
