"""Tests for load and machine sweeps, timeout rates, power history."""

import pytest

from repro.analysis.sweeps import load_sweep, machine_sweep
from repro.hardware import SANDYBRIDGE, WOODCREST
from repro.workloads import SolrWorkload

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def sweep(sb_cal):
    return load_sweep(
        SolrWorkload(), SANDYBRIDGE, sb_cal,
        loads=(0.25, 0.5, 1.0), duration=2.5,
    )


def test_load_sweep_shapes(sweep):
    assert [p.load_fraction for p in sweep] == [0.25, 0.5, 1.0]
    # Power and throughput grow with load.
    watts = [p.measured_active_watts for p in sweep]
    assert watts == sorted(watts)
    completed = [p.completed for p in sweep]
    assert completed == sorted(completed)
    # Latency grows with load (queueing).
    assert sweep[-1].mean_response_time > sweep[0].mean_response_time


def test_load_sweep_validation_errors_stay_small(sweep):
    for point in sweep:
        assert point.validation_error < 0.08


def test_load_sweep_rejects_empty_loads(sb_cal):
    with pytest.raises(ValueError):
        load_sweep(SolrWorkload(), SANDYBRIDGE, sb_cal, loads=())


def test_machine_sweep(sb_cal, wc_cal):
    points = machine_sweep(
        SolrWorkload(),
        [(SANDYBRIDGE, sb_cal), (WOODCREST, wc_cal)],
        load=0.8, duration=2.0,
    )
    by_machine = {p.machine: p for p in points}
    assert set(by_machine) == {"sandybridge", "woodcrest"}
    # Woodcrest burns more energy per request (Fig. 13's premise).
    assert by_machine["woodcrest"].energy_per_request > \
        by_machine["sandybridge"].energy_per_request
    with pytest.raises(ValueError):
        machine_sweep(SolrWorkload(), [])


def test_timeout_rate(sb_cal):
    from repro.workloads import run_workload
    run = run_workload(
        SolrWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.5, duration=2.0, warmup=0.0, with_meter=False,
    )
    driver = run.driver
    # Nothing at half load takes a full second.
    assert driver.timeout_rate(1.0) == 0.0
    # Everything takes longer than a microsecond.
    assert driver.timeout_rate(1e-6) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        driver.timeout_rate(0.0)


def test_power_history_recording(sb_cal):
    from repro.workloads import StressWorkload, run_workload
    run = run_workload(
        StressWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.4, duration=1.5, warmup=0.0, with_meter=False,
        facility_kwargs={"record_power_history": True},
    )
    done = [r for r in run.driver.results
            if r.container.stats.cpu_seconds > 0.05]
    assert done
    history = done[0].container.power_history
    # ~100 ms request at ~1 ms sampling: a rich series.
    assert len(history) > 50
    times = [t for t, _w in history]
    assert times == sorted(times)
    watts = [w for _t, w in history]
    assert all(w > 5.0 for w in watts)


def test_power_history_off_by_default(sb_cal):
    from repro.workloads import SolrWorkload, run_workload
    run = run_workload(
        SolrWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.3, duration=1.0, warmup=0.0, with_meter=False,
    )
    for result in run.driver.results:
        assert result.container.power_history == []
