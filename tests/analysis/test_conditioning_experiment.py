"""Tests for the Fig. 11/12 conditioning experiment driver."""

import pytest

from repro.analysis import run_conditioning_experiment
from repro.analysis.conditioning_experiment import (
    ConditioningOutcome,
    RequestThrottleSample,
)
from repro.hardware import SANDYBRIDGE

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def short_runs(sb_cal):
    return {
        conditioned: run_conditioning_experiment(
            SANDYBRIDGE, sb_cal, conditioned=conditioned,
            duration=6.0, virus_start=3.0,
        )
        for conditioned in (False, True)
    }


def test_outcome_structure(short_runs):
    outcome = short_runs[True]
    assert isinstance(outcome, ConditioningOutcome)
    assert outcome.conditioned
    assert outcome.power_trace
    assert all(isinstance(s, RequestThrottleSample) for s in outcome.scatter)


def test_viruses_appear_only_after_start(short_runs):
    outcome = short_runs[False]
    virus_arrivals = [
        r.arrival for r in outcome.run.driver.results if r.rtype == "virus"
    ]
    assert virus_arrivals
    assert min(virus_arrivals) >= outcome.virus_start


def test_original_system_spikes(short_runs):
    outcome = short_runs[False]
    before = outcome.mean_power(1.0, outcome.virus_start)
    spike = outcome.peak_power(outcome.virus_start + 0.3, 6.0)
    assert spike > before + 4.0


def test_conditioned_system_caps(short_runs):
    outcome = short_runs[True]
    assert outcome.peak_power(outcome.virus_start + 0.3, 6.0) \
        < outcome.target_active_watts * 1.07


def test_selective_throttling(short_runs):
    outcome = short_runs[True]
    assert outcome.mean_duty(lambda r: r == "virus") < 0.8
    assert outcome.mean_duty(lambda r: r != "virus") > 0.95


def test_power_helpers_on_empty_window(short_runs):
    outcome = short_runs[True]
    assert outcome.mean_power(100.0, 200.0) == 0.0
    assert outcome.peak_power(100.0, 200.0) == 0.0
    assert outcome.mean_duty(lambda r: r == "no-such-type") == 1.0


def test_deterministic(sb_cal):
    a = run_conditioning_experiment(SANDYBRIDGE, sb_cal, conditioned=True,
                                    duration=3.0, virus_start=1.5, seed=4)
    b = run_conditioning_experiment(SANDYBRIDGE, sb_cal, conditioned=True,
                                    duration=3.0, virus_start=1.5, seed=4)
    assert [w for _t, w in a.power_trace] == [w for _t, w in b.power_trace]
