"""Tests for statistics helpers and table rendering."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    distribution_histogram,
    relative_error,
    render_table,
    summarize,
)


def test_relative_error_basic():
    assert relative_error(110, 100) == pytest.approx(0.1)
    assert relative_error(90, 100) == pytest.approx(0.1)
    with pytest.raises(ValueError):
        relative_error(1.0, 0.0)


def test_summarize():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == pytest.approx(2.5)
    assert s.median == pytest.approx(2.5)
    assert s.minimum == 1.0
    assert s.maximum == 4.0
    with pytest.raises(ValueError):
        summarize([])


def test_histogram_is_density():
    density, edges = distribution_histogram(np.random.default_rng(0).normal(10, 2, 500))
    widths = np.diff(edges)
    assert float((density * widths).sum()) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        distribution_histogram([])


def test_histogram_with_range():
    density, edges = distribution_histogram([1, 2, 3], bins=4, value_range=(0, 4))
    assert edges[0] == 0 and edges[-1] == 4


def test_render_table_alignment():
    text = render_table(
        ["workload", "watts"], [["solr", 31.5], ["stress", 43.221]],
        title="Fig 5",
    )
    lines = text.splitlines()
    assert lines[0] == "Fig 5"
    assert "workload" in lines[1]
    assert "31.50" in text
    assert "43.22" in text


def test_render_table_empty_rows():
    text = render_table(["a", "b"], [])
    assert "a" in text


@given(st.floats(min_value=0.1, max_value=1e6),
       st.floats(min_value=-0.99, max_value=10))
def test_property_relative_error_definition(measured, bias):
    estimated = measured * (1 + bias)
    assert relative_error(estimated, measured) == pytest.approx(abs(bias), rel=1e-9)
