"""Tests for the deterministic process-pool map and its consumers."""

import os
import pickle
import time

import pytest

from repro.analysis.parallel import (
    available_cores,
    derived_seeds,
    parallel_map,
    parallel_starmap,
    resolve_jobs,
)


def _square(x):
    return x * x


def _pid_of(_x):
    return os.getpid()


def _boom(x):
    raise RuntimeError(f"task {x} failed")


def _add(a, b):
    return a + b


# ---------------------------------------------------------------------------
# parallel_map mechanics
# ---------------------------------------------------------------------------
def test_results_in_input_order():
    items = list(range(20))
    assert parallel_map(_square, items, jobs=4) == [x * x for x in items]


def test_serial_when_jobs_is_one():
    pids = set(parallel_map(_pid_of, range(5), jobs=1))
    assert pids == {os.getpid()}


def test_empty_items():
    assert parallel_map(_square, [], jobs=4) == []


def test_single_item_runs_serially():
    assert parallel_map(_pid_of, [0], jobs=8) == [os.getpid()]


def test_unpicklable_fn_falls_back_to_serial():
    results = parallel_map(lambda x: x + 1, range(5), jobs=4)
    assert results == [1, 2, 3, 4, 5]


def test_unpicklable_items_fall_back_to_serial():
    items = [lambda: 1, lambda: 2]
    results = parallel_map(lambda f: f(), items, jobs=4)
    assert results == [1, 2]


def test_task_exceptions_propagate():
    with pytest.raises(RuntimeError):
        parallel_map(_boom, range(4), jobs=2)
    with pytest.raises(RuntimeError):
        parallel_map(_boom, range(4), jobs=1)


def _die_in_worker(x):
    """SIGKILL-grade death inside a pool worker; a no-op in the parent."""
    if os.getpid() != int(os.environ["REPRO_TEST_PARENT_PID"]):
        os._exit(1)
    return x * 10


def test_crashed_worker_shard_retried_once(monkeypatch):
    from repro.analysis import parallel as parallel_module
    from repro.telemetry.metrics import MetricsRegistry

    monkeypatch.setenv("REPRO_TEST_PARENT_PID", str(os.getpid()))
    before = parallel_module.worker_retries_total()
    results = parallel_map(_die_in_worker, range(6), jobs=2)
    # Every shard's worker died, every shard was retried in the parent,
    # and the results are exactly what a serial run produces.
    assert results == [x * 10 for x in range(6)]
    retried = parallel_module.worker_retries_total() - before
    assert retried >= 1

    registry = MetricsRegistry()
    parallel_module.publish_metrics(registry)
    metric = registry.get("parallel_worker_retries_total")
    assert metric.value == float(parallel_module.worker_retries_total())


def test_parallel_starmap_unpacks_tuples():
    assert parallel_starmap(_add, [(1, 2), (3, 4)], jobs=2) == [3, 7]


def test_repro_jobs_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(None) == 3
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    assert resolve_jobs(None) == available_cores()
    monkeypatch.delenv("REPRO_JOBS")
    assert resolve_jobs(7) == 7
    assert resolve_jobs(0) == 1


def test_available_cores_positive():
    assert available_cores() >= 1


# ---------------------------------------------------------------------------
# derived_seeds
# ---------------------------------------------------------------------------
def test_derived_seeds_deterministic_and_distinct():
    a = derived_seeds(7, 16)
    b = derived_seeds(7, 16)
    assert a == b
    assert len(set(a)) == 16
    assert derived_seeds(8, 16) != a
    assert derived_seeds(7, 16, label="other") != a


def test_derived_seeds_rejects_negative_count():
    with pytest.raises(ValueError):
        derived_seeds(0, -1)


def test_derived_seeds_empty():
    assert derived_seeds(0, 0) == []


def test_derived_seeds_shard_domain_separation():
    # Two shards deriving under the same label must never collide, and
    # shard=None must keep the historical single-namespace bytes.
    base = derived_seeds(7, 16)
    shard0 = derived_seeds(7, 16, shard=0)
    shard1 = derived_seeds(7, 16, shard=1)
    assert base == derived_seeds(7, 16, shard=None)
    assert shard0 != base
    assert shard0 != shard1
    assert not set(shard0) & set(shard1)
    # Pinned bytes: the sha256("7/point/0") derivation must never drift,
    # or every historical sweep fingerprint silently changes.
    assert base[0] == 593393411
    assert derived_seeds(7, 16, shard=0) == shard0


# ---------------------------------------------------------------------------
# Parallel sweep == serial sweep (the determinism contract)
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_parallel_sweep_byte_identical_to_serial(sb_cal):
    from repro.analysis.sweeps import load_sweep
    from repro.hardware import SANDYBRIDGE
    from repro.workloads import SolrWorkload

    loads = tuple((i + 1) / 8 for i in range(8))  # 8 points
    serial = load_sweep(
        SolrWorkload(), SANDYBRIDGE, sb_cal,
        loads=loads, duration=0.8, seed=3, jobs=1,
    )
    t0 = time.perf_counter()
    parallel = load_sweep(
        SolrWorkload(), SANDYBRIDGE, sb_cal,
        loads=loads, duration=0.8, seed=3, jobs=min(8, available_cores()),
    )
    parallel_seconds = time.perf_counter() - t0
    assert pickle.dumps(serial) == pickle.dumps(parallel)

    if available_cores() >= 4:
        t0 = time.perf_counter()
        load_sweep(
            SolrWorkload(), SANDYBRIDGE, sb_cal,
            loads=loads, duration=0.8, seed=3, jobs=1,
        )
        serial_seconds = time.perf_counter() - t0
        assert serial_seconds / parallel_seconds >= 2.0


@pytest.mark.slow
def test_parallel_distribution_matches_serial(sb_cal, wc_cal):
    from repro.analysis.distribution_experiment import (
        run_all_distribution_policies,
    )

    cals = {"sandybridge": sb_cal, "woodcrest": wc_cal}
    serial = run_all_distribution_policies(
        cals, jobs=1, duration=1.5, warmup=0.3
    )
    parallel = run_all_distribution_policies(
        cals, jobs=3, duration=1.5, warmup=0.3
    )
    assert list(serial) == list(parallel)
    # Exact (bitwise float) equality per policy; comparing pickled bytes of
    # the whole mapping would trip over pickle's identity memo, not values.
    assert serial == parallel


@pytest.mark.slow
def test_parallel_calibration_matches_serial():
    from repro.core import calibrate_machine, calibrate_machines
    from repro.hardware import SANDYBRIDGE, WOODCREST

    serial = {
        spec.name: calibrate_machine(spec, duration=0.1)
        for spec in (SANDYBRIDGE, WOODCREST)
    }
    parallel = calibrate_machines((SANDYBRIDGE, WOODCREST), duration=0.1, jobs=2)
    assert list(parallel) == ["sandybridge", "woodcrest"]
    for name, result in serial.items():
        assert pickle.dumps(result.samples) == pickle.dumps(
            parallel[name].samples
        )
        assert result.idle_watts == parallel[name].idle_watts
        assert result.metric_max == parallel[name].metric_max
