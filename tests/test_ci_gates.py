"""CI toolkit gates added with the batch accounting engine.

Covers the ``H101`` hot-path comprehension lint rule and the perf lane's
``--trend`` history writer -- both live under ``ci/`` and have no other
automated coverage.
"""

import json
import os

import ci.runner as runner
from ci.lint import lint_file
from repro.perf import BenchResult


def _lint_codes(tmp_path, source):
    path = tmp_path / "sample.py"
    path.write_text(source)
    return [f.code for f in lint_file(str(path), str(tmp_path))]


def test_h101_flags_comprehension_in_marked_function(tmp_path):
    codes = _lint_codes(
        tmp_path,
        "def gather(xs):  # hot-path\n"
        "    return [x + 1 for x in xs]\n",
    )
    assert codes == ["H101"]


def test_h101_flags_dict_comprehension_and_multiline_def(tmp_path):
    codes = _lint_codes(
        tmp_path,
        "def gather(  # hot-path\n"
        "    xs,\n"
        "):\n"
        "    return {x: x + 1 for x in xs}\n",
    )
    assert codes == ["H101"]


def test_h101_ignores_unmarked_functions(tmp_path):
    codes = _lint_codes(
        tmp_path,
        "def cold(xs):\n"
        "    return [x + 1 for x in xs]\n",
    )
    assert codes == []


def test_every_hot_path_marked_function_lints_clean():
    """The shipped tree must satisfy its own H101 rule."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    from ci.lint import iter_python_files

    findings = []
    for path in iter_python_files(os.path.join(root, "src")):
        findings += [
            f for f in lint_file(path, root) if f.code == "H101"
        ]
    assert findings == []


def test_trend_history_appends_one_json_line_per_run(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "ROOT", str(tmp_path))
    results = {
        "macro-solr-workload": BenchResult(
            "macro-solr-workload", "macro", 0.13,
        ),
        "micro-accounting-vs-oracle-ratio": BenchResult(
            "micro-accounting-vs-oracle-ratio", "micro", 0.0005, ratio=9.0,
        ),
    }
    path = runner._append_trend_history(results, [])
    runner._append_trend_history(results, ["macro-solr-workload: too slow"])
    lines = [
        json.loads(line)
        for line in open(path).read().splitlines()
    ]
    assert len(lines) == 2
    first, second = lines
    assert first["threshold"] == runner.TREND_THRESHOLD
    assert first["problems"] == []
    assert first["benchmarks"]["macro-solr-workload"]["seconds"] == 0.13
    assert (
        first["benchmarks"]["micro-accounting-vs-oracle-ratio"]["ratio"]
        == 9.0
    )
    assert "ratio" not in first["benchmarks"]["macro-solr-workload"]
    assert second["problems"] == ["macro-solr-workload: too slow"]
