"""Tests for core selection, spreading, pinning, and preemption."""

import pytest

from repro.hardware import WOODCREST, build_machine
from repro.kernel import Compute, Kernel
from repro.sim import Simulator
from tests.kernel.conftest import SPIN


def _spin_program(machine, seconds):
    def program():
        yield Compute(cycles=machine.freq_hz * seconds, profile=SPIN)
    return program()


def test_tasks_spread_across_chips_first():
    """On Woodcrest (2 chips x 2 cores), two tasks land on distinct chips."""
    sim = Simulator()
    machine = build_machine(WOODCREST, sim)
    kernel = Kernel(machine, sim)
    kernel.spawn(_spin_program(machine, 0.1), "a")
    kernel.spawn(_spin_program(machine, 0.1), "b")
    sim.run_until(0.01)
    busy_chips = {c.chip.index for c in machine.cores if c.busy}
    assert busy_chips == {0, 1}


def test_four_tasks_fill_all_woodcrest_cores():
    sim = Simulator()
    machine = build_machine(WOODCREST, sim)
    kernel = Kernel(machine, sim)
    for i in range(4):
        kernel.spawn(_spin_program(machine, 0.1), f"t{i}")
    sim.run_until(0.01)
    assert machine.busy_core_count == 4


def test_pinned_process_only_runs_on_its_core(world):
    sim, machine, kernel = world

    def program():
        yield Compute(cycles=machine.freq_hz * 0.05, profile=SPIN)

    proc = kernel.spawn(program(), "pinned", pinned_core=2)
    sim.run_until(0.01)
    assert proc.core_index == 2
    assert machine.cores[2].busy
    assert not machine.cores[0].busy


def test_two_pinned_processes_share_one_core(world):
    sim, machine, kernel = world
    done = []

    def program(tag):
        yield Compute(cycles=machine.freq_hz * 0.05, profile=SPIN)
        done.append((tag, sim.now))

    kernel.spawn(program("a"), "a", pinned_core=1)
    kernel.spawn(program("b"), "b", pinned_core=1)
    sim.run_until(1.0)
    # Total work is 0.1 s of cycles on one core: last finishes at ~0.1 s.
    assert max(t for _, t in done) == pytest.approx(0.1, rel=1e-3)
    assert len(done) == 2


def test_oversubscription_round_robins_with_quantum(world):
    sim, machine, kernel = world
    # 5 CPU-bound tasks on 4 cores: someone must be preempted.
    for i in range(5):
        kernel.spawn(
            (x for x in [Compute(cycles=machine.freq_hz * 0.05, profile=SPIN)]),
            f"t{i}",
        )
    sim.run_until(1.0)
    preempts = kernel.trace.of_kind("undispatch")
    assert any(e.detail["reason"] == "preempt" for e in preempts)


def test_oversubscribed_tasks_all_finish_with_fair_total_time(world):
    sim, machine, kernel = world
    done = []

    def program(tag):
        yield Compute(cycles=machine.freq_hz * 0.1, profile=SPIN)
        done.append(tag)

    for i in range(8):
        kernel.spawn(program(i), f"t{i}")
    # 8 tasks x 0.1 s on 4 cores = 0.2 s total runtime.
    sim.run_until(0.25)
    assert sorted(done) == list(range(8))


def test_no_preemption_when_no_waiters(world):
    sim, machine, kernel = world

    def program():
        yield Compute(cycles=machine.freq_hz * 0.05, profile=SPIN)

    kernel.spawn(program(), "solo")
    sim.run_until(0.1)
    reasons = {e.detail["reason"] for e in kernel.trace.of_kind("undispatch")}
    assert "preempt" not in reasons


def test_quantum_validation():
    sim = Simulator()
    machine = build_machine(WOODCREST, sim)
    with pytest.raises(ValueError):
        Kernel(machine, sim, quantum=0.0)


def test_idle_core_selected_for_waking_process(world):
    sim, machine, kernel = world

    def short():
        yield Compute(cycles=machine.freq_hz * 0.01, profile=SPIN)

    # Occupy cores 0..2 (spread policy fills a single chip sequentially).
    for i in range(3):
        kernel.spawn(_spin_program(machine, 0.5), f"long{i}")
    kernel.spawn(short(), "short")
    sim.run_until(0.001)
    assert machine.busy_core_count == 4
