"""Shared kernel-test fixtures."""

import pytest

from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import Kernel
from repro.sim import Simulator, TraceRecorder

SPIN = RateProfile(name="spin", ipc=1.0)
MEMHEAVY = RateProfile(name="memheavy", ipc=0.6, cache_per_cycle=0.015,
                       mem_per_cycle=0.008)


@pytest.fixture
def world():
    """A SandyBridge machine with a kernel, tracing enabled."""
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim, trace=TraceRecorder())
    return sim, machine, kernel
