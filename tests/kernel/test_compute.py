"""Tests for Compute slices, timing, counters, and duty-cycle effects."""

import pytest

from repro.kernel import Compute, ProcessState, Sleep
from tests.kernel.conftest import SPIN, MEMHEAVY


def test_compute_takes_cycles_over_frequency_seconds(world):
    sim, machine, kernel = world
    freq = machine.freq_hz
    done = []

    def program():
        yield Compute(cycles=freq * 0.5, profile=SPIN)  # 0.5 s of work
        done.append(sim.now)

    kernel.spawn(program(), "worker")
    sim.run_until(1.0)
    assert done == [pytest.approx(0.5)]


def test_counters_accumulate_profile_events(world):
    sim, machine, kernel = world

    def program():
        yield Compute(cycles=1e6, profile=MEMHEAVY)

    kernel.spawn(program(), "worker")
    sim.run_until(1.0)
    totals = machine.cores[0].counters.read()
    assert totals.nonhalt_cycles == pytest.approx(1e6, rel=1e-6)
    assert totals.instructions == pytest.approx(0.6e6, rel=1e-6)
    assert totals.cache_refs == pytest.approx(15_000, rel=1e-6)
    assert totals.mem_trans == pytest.approx(8_000, rel=1e-6)


def test_process_exits_and_becomes_dead_without_parent(world):
    sim, machine, kernel = world

    def program():
        yield Compute(cycles=1000, profile=SPIN)

    proc = kernel.spawn(program(), "w")
    sim.run_until(0.1)
    assert proc.state is ProcessState.DEAD


def test_zero_cycle_compute_completes_instantly(world):
    sim, machine, kernel = world
    steps = []

    def program():
        yield Compute(cycles=0, profile=SPIN)
        steps.append(sim.now)
        yield Compute(cycles=0, profile=SPIN)
        steps.append(sim.now)

    kernel.spawn(program(), "w")
    sim.run_until(0.01)
    assert steps == [0.0, 0.0]


def test_duty_cycle_halves_progress_rate(world):
    sim, machine, kernel = world
    machine.cores[0].set_duty_level(4)  # half speed
    done = []

    def program():
        yield Compute(cycles=machine.freq_hz * 0.1, profile=SPIN)
        done.append(sim.now)

    kernel.spawn(program(), "w")
    sim.run_until(1.0)
    assert done == [pytest.approx(0.2)]  # twice as long


def test_mid_slice_duty_change_preserves_total_cycles(world):
    sim, machine, kernel = world
    core = machine.cores[0]
    done = []
    total_cycles = machine.freq_hz * 0.2  # 0.2 s at full speed

    def program():
        yield Compute(cycles=total_cycles, profile=SPIN)
        done.append(sim.now)

    kernel.spawn(program(), "w")
    # After 0.1 s (half done), drop to half speed: remaining half takes 0.2 s.
    sim.run_until(0.1)
    kernel.set_core_duty(core, 4)
    sim.run_until(1.0)
    assert done == [pytest.approx(0.3, rel=1e-6)]
    assert core.counters.read().nonhalt_cycles == pytest.approx(
        total_cycles, rel=1e-6
    )


def test_sleep_blocks_without_consuming_cpu(world):
    sim, machine, kernel = world
    times = []

    def program():
        yield Sleep(0.25)
        times.append(sim.now)

    proc = kernel.spawn(program(), "sleeper")
    sim.run_until(1.0)
    assert times == [pytest.approx(0.25)]
    assert proc.cpu_seconds == pytest.approx(0.0)


def test_cpu_seconds_tracks_occupancy(world):
    sim, machine, kernel = world

    def program():
        yield Compute(cycles=machine.freq_hz * 0.3, profile=SPIN)

    proc = kernel.spawn(program(), "w")
    sim.run_until(1.0)
    assert proc.cpu_seconds == pytest.approx(0.3, rel=1e-6)


def test_energy_integrated_during_compute(world):
    sim, machine, kernel = world

    def program():
        yield Compute(cycles=machine.freq_hz * 1.0, profile=SPIN)

    kernel.spawn(program(), "w")
    sim.run_until(2.0)
    machine.checkpoint()
    model = machine.true_model
    expected_active = (model.w_core + model.w_ins + model.maintenance_watts) * 1.0
    assert machine.integrator.active_joules == pytest.approx(
        expected_active, rel=1e-6
    )


def test_overflow_interrupts_fire_about_once_per_busy_millisecond(world):
    sim, machine, kernel = world

    def program():
        yield Compute(cycles=machine.freq_hz * 0.01, profile=SPIN)  # 10 ms

    kernel.spawn(program(), "w")
    sim.run_until(1.0)
    overflows = kernel.trace.of_kind("overflow")
    assert 8 <= len(overflows) <= 11


def test_no_overflow_interrupts_when_idle(world):
    sim, machine, kernel = world
    sim.run_until(1.0)
    assert kernel.trace.of_kind("overflow") == []
