"""Property-based tests on kernel scheduling and energy invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import RateProfile, SANDYBRIDGE, WOODCREST, build_machine
from repro.kernel import Compute, Kernel, ProcessState, Sleep
from repro.sim import Simulator, TraceRecorder


def _build(spec=SANDYBRIDGE):
    sim = Simulator()
    machine = build_machine(spec, sim)
    kernel = Kernel(machine, sim, trace=TraceRecorder())
    return sim, machine, kernel


@settings(max_examples=20, deadline=None)
@given(
    workloads=st.lists(
        st.tuples(
            st.floats(min_value=1e5, max_value=5e7),  # cycles
            st.floats(min_value=0.1, max_value=3.0),  # ipc
        ),
        min_size=1,
        max_size=8,
    )
)
def test_property_all_requested_cycles_get_executed(workloads):
    """Whatever the task mix, total counted non-halt cycles equals the
    total requested work (no cycles lost to scheduling)."""
    sim, machine, kernel = _build()

    def program(cycles, ipc):
        yield Compute(cycles=cycles, profile=RateProfile(ipc=ipc))

    for i, (cycles, ipc) in enumerate(workloads):
        kernel.spawn(program(cycles, ipc), f"w{i}")
    sim.run_until(1.0)

    total_counted = sum(
        core.counters.read().nonhalt_cycles for core in machine.cores
    )
    total_requested = sum(cycles for cycles, _ in workloads)
    assert total_counted == pytest.approx(total_requested, rel=1e-6)


@settings(max_examples=20, deadline=None)
@given(
    n_tasks=st.integers(min_value=1, max_value=10),
    duty=st.integers(min_value=1, max_value=8),
)
def test_property_energy_equals_power_integral(n_tasks, duty):
    """Measured energy exactly equals sum over cores of (power x time),
    regardless of concurrency or duty level."""
    sim, machine, kernel = _build()
    for core in machine.cores:
        core.set_duty_level(duty)
    profile = RateProfile(ipc=1.5, cache_per_cycle=0.01)
    work_seconds = 0.02

    def program():
        yield Compute(
            cycles=machine.freq_hz * work_seconds * duty / 8, profile=profile
        )

    for i in range(n_tasks):
        kernel.spawn(program(), f"w{i}")
    sim.run_until(1.0)
    machine.checkpoint()

    # Total active energy = per-core energy + maintenance energy.
    per_core = sum(
        machine.integrator.per_core_joules(c.index) for c in machine.cores
    )
    maintenance = sum(
        machine.integrator.maintenance_joules(chip.index)
        for chip in machine.chips
    )
    assert machine.integrator.active_joules == pytest.approx(
        per_core + maintenance, rel=1e-9
    )
    # Per-core energy scales with the true per-core power and busy time.
    watts = machine.true_model.core_active_watts(
        duty / 8, 1.5, 0.0, 0.01, 0.0, 0.0
    )
    busy_seconds = sum(p.cpu_seconds for p in kernel.processes.values())
    assert per_core == pytest.approx(watts * busy_seconds, rel=1e-6)


@settings(max_examples=15, deadline=None)
@given(n_tasks=st.integers(min_value=2, max_value=12))
def test_property_no_core_ever_runs_two_processes(n_tasks):
    sim, machine, kernel = _build(WOODCREST)

    def program():
        for _ in range(3):
            yield Compute(cycles=3e6, profile=RateProfile(ipc=1.0))
            yield Sleep(1e-3)

    for i in range(n_tasks):
        kernel.spawn(program(), f"w{i}")

    occupancy: dict[int, int] = {}
    violations = []

    for event in _run_and_collect(sim, kernel, until=0.5):
        if event.kind == "dispatch":
            core = event.detail["core"]
            if core in occupancy:
                violations.append((event.time, core))
            occupancy[core] = event.detail["pid"]
        elif event.kind == "undispatch":
            occupancy.pop(event.detail["core"], None)
    assert violations == []


def _run_and_collect(sim, kernel, until):
    sim.run_until(until)
    return list(kernel.trace)


@settings(max_examples=15, deadline=None)
@given(
    switch_times=st.lists(
        st.floats(min_value=0.001, max_value=0.05), min_size=1, max_size=5
    ),
    levels=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=5),
)
def test_property_duty_changes_conserve_work(switch_times, levels):
    """Arbitrary mid-run duty-level changes never lose or duplicate cycles."""
    sim, machine, kernel = _build()
    total_cycles = machine.freq_hz * 0.08
    done = []

    def program():
        yield Compute(cycles=total_cycles, profile=RateProfile(ipc=1.0))
        done.append(sim.now)

    kernel.spawn(program(), "w")
    t = 0.0
    for delay, level in zip(switch_times, levels):
        t += delay
        sim.schedule_at(
            t, kernel.set_core_duty, machine.cores[0], level
        )
    sim.run_until(2.0)
    assert done, "the task must complete within the horizon"
    counted = machine.cores[0].counters.read().nonhalt_cycles
    assert counted == pytest.approx(total_cycles, rel=1e-6)


def test_zombie_children_do_not_leak_runqueue():
    sim, machine, kernel = _build()
    from repro.kernel import Exit, Fork, WaitChild

    def child():
        yield Compute(cycles=1e5, profile=RateProfile(ipc=1.0))
        yield Exit("ok")

    def parent():
        kids = []
        for _ in range(5):
            kid = yield Fork(child(), name="kid")
            kids.append(kid)
        for kid in kids:
            yield WaitChild(kid)

    kernel.spawn(parent(), "parent")
    sim.run_until(0.5)
    assert kernel.scheduler.ready_count == 0
    assert all(
        p.state in (ProcessState.DEAD, ProcessState.ZOMBIE)
        for p in kernel.processes.values()
    )


def test_clock_monotonicity_in_trace():
    sim, machine, kernel = _build()

    def program():
        for _ in range(10):
            yield Compute(cycles=1e6, profile=RateProfile(ipc=1.0))
            yield Sleep(5e-4)

    for i in range(6):
        kernel.spawn(program(), f"w{i}")
    sim.run_until(0.1)
    times = [e.time for e in kernel.trace]
    assert times == sorted(times)
