"""Property-based tests on socket segment ordering and tagging."""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import Compute, ContextTag, Kernel, Message, Recv, SocketPair
from repro.sim import Simulator

WORK = RateProfile(name="w", ipc=1.0)


def _world():
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    return sim, machine, kernel


@settings(max_examples=25, deadline=None)
@given(tags=st.lists(st.integers(min_value=1, max_value=50),
                     min_size=1, max_size=20))
def test_property_per_segment_tags_delivered_fifo_and_intact(tags):
    """Whatever tag sequence is buffered, reads return segments FIFO with
    their original tags (the safe design of Section 3.3)."""
    sim, machine, kernel = _world()
    sock = SocketPair.local(machine)
    received = []

    def receiver():
        for _ in range(len(tags)):
            msg = yield Recv(sock.b)
            received.append(msg.tag.container_id)

    for tag in tags:
        kernel.inject(sock.b, Message(nbytes=1, tag=ContextTag(container_id=tag)))
    kernel.spawn(receiver(), "rx")
    sim.run_until(0.1)
    assert received == tags


@settings(max_examples=25, deadline=None)
@given(tags=st.lists(st.integers(min_value=1, max_value=50),
                     min_size=2, max_size=20))
def test_property_naive_mode_reads_only_newest_buffered_tag(tags):
    """With whole-socket tagging, every segment buffered before the first
    read is misread with the newest tag."""
    sim, machine, kernel = _world()
    sock = SocketPair.local(machine, per_segment_tagging=False)
    received = []

    def receiver():
        for _ in range(len(tags)):
            msg = yield Recv(sock.b)
            received.append(msg.tag.container_id)

    for tag in tags:
        kernel.inject(sock.b, Message(nbytes=1, tag=ContextTag(container_id=tag)))
    kernel.spawn(receiver(), "rx")
    sim.run_until(0.1)
    assert received == [tags[-1]] * len(tags)


_CAL = None


def _cached_calibration():
    global _CAL
    if _CAL is None:
        from repro.core import calibrate_machine
        _CAL = calibrate_machine(SANDYBRIDGE, duration=0.1)
    return _CAL


@settings(max_examples=15, deadline=None)
@given(
    n_interleaved=st.integers(min_value=2, max_value=6),
    work_scale=st.floats(min_value=0.5, max_value=3.0),
)
# Once leaked one observer op's cycles: a compute end coinciding with an
# overflow interrupt double-subtracted the pending correction.
@example(n_interleaved=4, work_scale=0.515625)
def test_property_interleaved_contexts_attribution_conserves_cycles(
    n_interleaved, work_scale
):
    """N requests' segments interleave on one connection; the per-container
    cycle attribution partitions the total work exactly."""
    from repro.core import PowerContainerFacility
    cal = _cached_calibration()

    sim, machine, kernel = _world()
    facility = PowerContainerFacility(kernel, cal)
    sock = SocketPair.local(machine)
    cycles_per_request = [
        (i + 1) * 1e6 * work_scale for i in range(n_interleaved)
    ]
    containers = [
        facility.create_request_container(f"r{i}")
        for i in range(n_interleaved)
    ]

    def worker():
        for _ in range(n_interleaved):
            msg = yield Recv(sock.b)
            yield Compute(cycles=msg.payload, profile=WORK)

    kernel.spawn(worker(), "worker")
    for container, cycles in zip(containers, cycles_per_request):
        kernel.inject(sock.b, Message(
            nbytes=1, payload=cycles,
            tag=ContextTag(container_id=container.id),
        ))
    sim.run_until(1.0)
    facility.flush()
    for container, cycles in zip(containers, cycles_per_request):
        assert container.stats.events.nonhalt_cycles == pytest.approx(
            cycles, rel=1e-3
        )
