"""Kernel edge cases: interleavings, chained flows, and guards."""

import pytest

from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import (
    Compute,
    Exit,
    Fork,
    Kernel,
    Message,
    ProcessState,
    Recv,
    Send,
    Sleep,
    SocketPair,
    WaitChild,
)
from repro.sim import Simulator, TraceRecorder

WORK = RateProfile(name="work", ipc=1.0)


@pytest.fixture
def world():
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim, trace=TraceRecorder())
    return sim, machine, kernel


def test_fig4_style_process_tree(world):
    """The full Fig. 4 flow: worker -> fork latex -> wait -> fork dvipng ->
    wait, with the context inherited throughout."""
    sim, machine, kernel = world
    order = []

    def helper(tag, cycles):
        def program():
            yield Compute(cycles=cycles, profile=WORK)
            order.append(tag)
            yield Exit(tag)
        return program()

    def worker():
        latex = yield Fork(helper("latex", 3e6), name="latex")
        result = yield WaitChild(latex)
        assert result == "latex"
        dvipng = yield Fork(helper("dvipng", 2e6), name="dvipng")
        result = yield WaitChild(dvipng)
        assert result == "dvipng"
        order.append("worker-done")

    proc = kernel.spawn(worker(), "worker", container_id=5)
    sim.run_until(0.1)
    assert order == ["latex", "dvipng", "worker-done"]
    # Both children inherited the context.
    forks = kernel.trace.of_kind("fork")
    assert len(forks) == 2
    children = [kernel.processes[e.detail["child"]] for e in forks]
    assert all(c.container_id == 5 for c in children)


def test_nested_forks(world):
    sim, machine, kernel = world
    depths = []

    def nested(depth):
        def program():
            yield Compute(cycles=1e5, profile=WORK)
            if depth < 3:
                child = yield Fork(nested(depth + 1), name=f"d{depth + 1}")
                yield WaitChild(child)
            depths.append(depth)
        return program()

    kernel.spawn(nested(0), "root")
    sim.run_until(0.1)
    assert depths == [3, 2, 1, 0]


def test_message_wakes_preempted_process_exactly_once(world):
    sim, machine, kernel = world
    sock = SocketPair.local(machine)
    got = []

    def receiver():
        msg = yield Recv(sock.b)
        got.append(msg.payload)
        yield Compute(cycles=1e6, profile=WORK)

    # Saturate all cores so the receiver queues when woken.
    for i in range(5):
        kernel.spawn(
            (x for x in [Compute(cycles=machine.freq_hz * 0.02, profile=WORK)]),
            f"busy{i}",
        )
    kernel.spawn(receiver(), "rx")
    sim.run_until(0.001)
    kernel.inject(sock.b, Message(nbytes=1, payload="hello"))
    sim.run_until(0.1)
    assert got == ["hello"]


def test_two_receivers_two_messages_no_lost_wakeups(world):
    sim, machine, kernel = world
    sock = SocketPair.local(machine)
    got = []

    def rx(tag):
        msg = yield Recv(sock.b)
        got.append((tag, msg.payload))

    kernel.spawn(rx("a"), "a")
    kernel.spawn(rx("b"), "b")
    sim.run_until(0.001)
    # Deliver two messages back-to-back at the same instant.
    kernel.inject(sock.b, Message(nbytes=1, payload=1))
    kernel.inject(sock.b, Message(nbytes=1, payload=2))
    sim.run_until(0.01)
    assert sorted(got) == [("a", 1), ("b", 2)]


def test_send_then_exit_message_survives_sender(world):
    sim, machine, kernel = world
    sock = SocketPair.local(machine)
    got = []

    def sender():
        yield Send(sock.a, nbytes=10, payload="parting")
        yield Exit()

    def late_receiver():
        yield Sleep(0.01)
        msg = yield Recv(sock.b)
        got.append(msg.payload)

    kernel.spawn(sender(), "tx", container_id=3)
    kernel.spawn(late_receiver(), "rx")
    sim.run_until(0.1)
    assert got == ["parting"]


def test_exit_value_from_plain_return(world):
    sim, machine, kernel = world

    def child():
        yield Compute(cycles=1e5, profile=WORK)
        return 42  # plain return instead of Exit action

    collected = []

    def parent():
        kid = yield Fork(child(), name="kid")
        value = yield WaitChild(kid)
        collected.append(value)

    kernel.spawn(parent(), "p")
    sim.run_until(0.1)
    assert collected == [42]


def test_many_short_actions_terminate(world):
    """A process alternating hundreds of tiny actions never wedges."""
    sim, machine, kernel = world
    done = []

    def busybody():
        for _ in range(300):
            yield Compute(cycles=1e4, profile=WORK)
            yield Sleep(1e-5)
        done.append(True)

    kernel.spawn(busybody(), "w")
    sim.run_until(1.0)
    assert done == [True]


def test_process_state_transitions_recorded(world):
    sim, machine, kernel = world

    def program():
        yield Compute(cycles=1e6, profile=WORK)
        yield Sleep(0.01)
        yield Compute(cycles=1e6, profile=WORK)

    proc = kernel.spawn(program(), "w")
    assert proc.state is ProcessState.RUNNING
    sim.run_until(0.005)
    assert proc.state is ProcessState.BLOCKED  # sleeping
    sim.run_until(0.1)
    assert proc.state is ProcessState.DEAD


def test_running_on_reports_current_process(world):
    sim, machine, kernel = world

    def program():
        yield Compute(cycles=machine.freq_hz * 0.01, profile=WORK)

    proc = kernel.spawn(program(), "w")
    assert kernel.running_on(machine.cores[0]) is proc
    sim.run_until(0.1)
    assert kernel.running_on(machine.cores[0]) is None
