"""Tests for socket messaging, per-segment tagging, fork/wait, and I/O."""

import pytest

from repro.hardware import SANDYBRIDGE, build_machine
from repro.kernel import (
    Compute,
    ContextTag,
    DiskIO,
    Exit,
    Fork,
    Kernel,
    Message,
    ProcessState,
    Recv,
    Send,
    SocketPair,
    WaitChild,
)
from repro.sim import Simulator
from tests.kernel.conftest import SPIN


def test_send_recv_same_machine(world):
    sim, machine, kernel = world
    sock = SocketPair.local(machine)
    got = []

    def receiver():
        msg = yield Recv(sock.b)
        got.append(msg)

    def sender():
        yield Send(sock.a, nbytes=100, payload="hello")

    kernel.spawn(receiver(), "rx")
    kernel.spawn(sender(), "tx")
    sim.run_until(0.01)
    assert len(got) == 1
    assert got[0].payload == "hello"
    assert got[0].nbytes == 100


def test_recv_blocks_until_message_arrives(world):
    sim, machine, kernel = world
    sock = SocketPair.local(machine)
    got_at = []

    def receiver():
        yield Recv(sock.b)
        got_at.append(sim.now)

    def sender():
        yield Compute(cycles=machine.freq_hz * 0.1, profile=SPIN)
        yield Send(sock.a, nbytes=10)

    kernel.spawn(receiver(), "rx")
    kernel.spawn(sender(), "tx")
    sim.run_until(1.0)
    assert got_at == [pytest.approx(0.1, rel=1e-6)]


def test_buffered_message_consumed_without_blocking(world):
    sim, machine, kernel = world
    sock = SocketPair.local(machine)
    kernel.inject(sock.b, Message(nbytes=5, payload="queued"))
    got = []

    def receiver():
        msg = yield Recv(sock.b)
        got.append(msg.payload)

    kernel.spawn(receiver(), "rx")
    sim.run_until(0.01)
    assert got == ["queued"]


def test_message_tag_carries_sender_context(world):
    sim, machine, kernel = world
    sock = SocketPair.local(machine)
    got = []

    def receiver():
        msg = yield Recv(sock.b)
        got.append(msg.tag.container_id)

    def sender():
        yield Send(sock.a, nbytes=10)

    kernel.spawn(receiver(), "rx")
    kernel.spawn(sender(), "tx", container_id=42)
    sim.run_until(0.01)
    assert got == [42]


def test_receiver_inherits_sender_context(world):
    sim, machine, kernel = world
    sock = SocketPair.local(machine)

    def receiver():
        yield Recv(sock.b)
        yield Compute(cycles=1000, profile=SPIN)

    def sender():
        yield Send(sock.a, nbytes=10)

    rx = kernel.spawn(receiver(), "rx")
    kernel.spawn(sender(), "tx", container_id=7)
    sim.run_until(0.01)
    assert rx.container_id == 7


def test_per_segment_tagging_keeps_contexts_separate(world):
    """The paper's persistent-connection hazard: two requests' segments are
    buffered before the receiver reads; each read must bind the matching
    context, not the newest one."""
    sim, machine, kernel = world
    sock = SocketPair.local(machine)
    bindings = []

    def receiver():
        msg1 = yield Recv(sock.b)
        bindings.append(msg1.tag.container_id)
        msg2 = yield Recv(sock.b)
        bindings.append(msg2.tag.container_id)

    kernel.inject(sock.b, Message(nbytes=1, tag=ContextTag(container_id=1)))
    kernel.inject(sock.b, Message(nbytes=1, tag=ContextTag(container_id=2)))
    kernel.spawn(receiver(), "rx")
    sim.run_until(0.01)
    assert bindings == [1, 2]


def test_naive_whole_socket_tagging_misbinds(world):
    """Ablation: with whole-socket tagging the older segment is read with
    the newer request's context -- the bug Section 3.3 warns about."""
    sim, machine, kernel = world
    sock = SocketPair.local(machine, per_segment_tagging=False)
    bindings = []

    def receiver():
        msg1 = yield Recv(sock.b)
        bindings.append(msg1.tag.container_id)
        msg2 = yield Recv(sock.b)
        bindings.append(msg2.tag.container_id)

    kernel.inject(sock.b, Message(nbytes=1, tag=ContextTag(container_id=1)))
    kernel.inject(sock.b, Message(nbytes=1, tag=ContextTag(container_id=2)))
    kernel.spawn(receiver(), "rx")
    sim.run_until(0.01)
    assert bindings == [2, 2]  # both reads see the newest tag: wrong


def test_multiple_waiters_woken_fifo(world):
    sim, machine, kernel = world
    sock = SocketPair.local(machine)
    served = []

    def worker(tag):
        msg = yield Recv(sock.b)
        served.append((tag, msg.payload))

    kernel.spawn(worker("w1"), "w1")
    kernel.spawn(worker("w2"), "w2")
    sim.run_until(0.001)
    kernel.inject(sock.b, Message(nbytes=1, payload="first"))
    kernel.inject(sock.b, Message(nbytes=1, payload="second"))
    sim.run_until(0.01)
    assert served == [("w1", "first"), ("w2", "second")]


def test_cross_machine_send_has_latency_and_uses_nics():
    sim = Simulator()
    m1 = build_machine(SANDYBRIDGE, sim, name="m1")
    m2 = build_machine(SANDYBRIDGE, sim, name="m2")
    k1 = Kernel(m1, sim)
    k2 = Kernel(m2, sim)
    conn = SocketPair.remote(m1, m2, latency=1e-3)
    got_at = []

    def receiver():
        yield Recv(conn.b)
        got_at.append(sim.now)

    def sender():
        yield Send(conn.a, nbytes=12500)  # 100 us at 125 MB/s

    k2.spawn(receiver(), "rx")
    k1.spawn(sender(), "tx")
    sim.run_until(0.1)
    expected = m1.net.base_latency_sec + 12500 / 125e6 + 1e-3
    assert got_at == [pytest.approx(expected, rel=1e-6)]
    # NIC energy was charged on both machines.
    m1.checkpoint()
    m2.checkpoint()
    assert m1.integrator.peripheral_joules > 0
    assert m2.integrator.peripheral_joules > 0


def test_send_on_unconnected_endpoint_raises(world):
    sim, machine, kernel = world
    from repro.kernel import Endpoint
    lone = Endpoint(machine, "lone")

    def sender():
        yield Send(lone, nbytes=1)

    # Dispatch is synchronous: the failure surfaces at spawn time.
    with pytest.raises(RuntimeError):
        kernel.spawn(sender(), "tx")


def test_fork_child_inherits_context_and_wait_reaps(world):
    sim, machine, kernel = world
    child_ctx = []
    wait_result = []

    def child_prog():
        yield Compute(cycles=1000, profile=SPIN)
        yield Exit("child-done")

    def parent_prog():
        child = yield Fork(child_prog(), name="latex")
        child_ctx.append(child.container_id)
        result = yield WaitChild(child)
        wait_result.append(result)

    kernel.spawn(parent_prog(), "apache", container_id=99)
    sim.run_until(0.1)
    assert child_ctx == [99]
    assert wait_result == ["child-done"]


def test_wait_on_already_exited_child(world):
    sim, machine, kernel = world
    order = []

    def child_prog():
        yield Compute(cycles=100, profile=SPIN)

    def parent_prog():
        child = yield Fork(child_prog(), name="c")
        # Let the child finish first.
        yield Compute(cycles=machine.freq_hz * 0.01, profile=SPIN)
        yield WaitChild(child)
        order.append("reaped")

    kernel.spawn(parent_prog(), "p")
    sim.run_until(0.1)
    assert order == ["reaped"]


def test_disk_io_blocks_and_charges_device(world):
    sim, machine, kernel = world
    done_at = []

    def program():
        yield DiskIO(nbytes=1_000_000)
        done_at.append(sim.now)

    kernel.spawn(program(), "io")
    sim.run_until(1.0)
    expected = 4e-3 + 1_000_000 / 100e6
    assert done_at == [pytest.approx(expected, rel=1e-6)]
    machine.checkpoint()
    assert machine.integrator.peripheral_joules == pytest.approx(
        1.7 * expected, rel=1e-6
    )


def test_exit_action_terminates_early(world):
    sim, machine, kernel = world
    after_exit = []

    def program():
        yield Exit("bye")
        after_exit.append("unreachable")  # pragma: no cover

    proc = kernel.spawn(program(), "p")
    sim.run_until(0.01)
    assert proc.exit_value == "bye"
    assert after_exit == []
    assert proc.state in (ProcessState.ZOMBIE, ProcessState.DEAD)


def test_unknown_action_raises(world):
    sim, machine, kernel = world

    def program():
        yield "not-an-action"

    with pytest.raises(TypeError):
        kernel.spawn(program(), "bad")
