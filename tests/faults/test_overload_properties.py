"""Property tests: shedding never leaks energy or loses arrivals.

Each example drives a real overload world (two metered machines, admission
control, power-cap enforcer) through an arrival storm drawn by hypothesis,
then audits the energy-accounting contract of load shedding:

* a request turned away before injection (``injections == 0``) never minted
  a container anywhere, so it contributed exactly zero attributed energy --
  checked *exactly*: the cluster-wide count of request containers equals the
  protector's injection count;
* cluster energy still conserves: attributed matches ground-truth measured
  within the chaos tolerance, storm or no storm;
* every arrival reaches exactly one terminal-or-pending state (the
  accounting identity) and no arrival appears twice in the shed log.

Worlds are expensive, so examples are few and the run is short; the fixed
chaos scenarios cover the long-duration cases.
"""

from hypothesis import given, settings, strategies as st

from repro.faults import FaultPlan, build_overload_world

DURATION = 0.45
TOLERANCE = 0.35


def _run_storm(seed, multiplier):
    world = build_overload_world(seed, DURATION)
    plan = FaultPlan().arrival_storm(
        at=0.2 * DURATION, duration=0.5 * DURATION, multiplier=multiplier
    )
    plan.apply(world.simulator, world.targets)
    world.start()
    world.simulator.run_until(DURATION)
    for member in world.cluster.machines:
        member.facility.flush()
    return world


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    multiplier=st.floats(min_value=2.0, max_value=8.0),
)
def test_property_shed_requests_contribute_no_energy(seed, multiplier):
    world = _run_storm(seed, multiplier)
    protector = world.protector

    # The storm actually overloaded something (otherwise the example is
    # vacuous) and at least one turned-away request never ran at all.
    turned_away = [r for r in protector.shed_log
                   if r.injections == 0 and r.reason != "deadline"]
    assert protector.shed + protector.rejected > 0
    assert turned_away

    # Exactly one container exists per injection, cluster-wide: a request
    # with zero injections therefore has zero containers and zero
    # attributed energy -- not "small", zero.
    containers = sum(
        len(member.facility.registry.request_containers())
        for member in world.cluster.machines
    )
    assert containers == protector.injections

    # Shedding must not break the energy-sum validation: everything that
    # *was* measured is still attributed within the chaos tolerance.
    measured = world.measured_joules()
    attributed = world.attributed_joules()
    assert measured > 0.0
    assert abs(attributed - measured) / measured < TOLERANCE


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    multiplier=st.floats(min_value=2.0, max_value=8.0),
)
def test_property_every_arrival_has_exactly_one_outcome(seed, multiplier):
    world = _run_storm(seed, multiplier)
    protector = world.protector

    assert protector.accounting_gap() == 0
    # No arrival is shed or rejected twice...
    shed_ids = [r.arrival_id for r in protector.shed_log]
    assert len(shed_ids) == len(set(shed_ids))
    assert len(shed_ids) == protector.shed + protector.rejected
    # ...and every logged id really arrived.
    assert all(0 <= i < protector.arrivals for i in shed_ids)
    # Completions and terminal sheds never overlap: together with the gap
    # identity this pins "exactly one outcome per arrival".
    assert (protector.completed + len(shed_ids)
            + protector.pending()) == protector.arrivals


def test_storm_free_run_sheds_nothing():
    """Sanity anchor for the properties: at base load with cap headroom the
    protector is invisible -- no shed, no rejection, no brownout."""
    world = build_overload_world(seed=3, duration=DURATION)
    world.start()
    world.simulator.run_until(DURATION)
    assert world.protector.shed == 0
    assert world.protector.rejected == 0
    assert world.enforcer.level == 0
    assert world.protector.accounting_gap() == 0
