"""Unit tests for the fault-plan layer: composition, random generation,
resolution errors, and the seeded injector filters in isolation."""

import numpy as np
import pytest

from repro.faults import (
    FaultEvent,
    FaultPlan,
    FaultTargets,
    MeterFaultInjector,
    MeterFaultProfile,
)
from repro.hardware import PackageMeter, SANDYBRIDGE, build_machine
from repro.sim import Simulator


# ----------------------------------------------------------------------
# Plan composition
# ----------------------------------------------------------------------
def test_window_constructors_emit_paired_events():
    plan = FaultPlan().meter_outage(0.5, 0.2).mailbox_freeze(2, 0.1, 0.3)
    assert len(plan) == 4
    ordered = plan.sorted_events()
    assert [(e.at, e.site, e.action) for e in ordered] == [
        (0.1, "mailbox", "freeze"),
        (0.4, "mailbox", "thaw"),
        (0.5, "meter", "kill"),
        (0.7, "meter", "restore"),
    ]
    assert ordered[0].param("core") == 2
    assert ordered[0].param("missing", "fallback") == "fallback"


def test_merge_is_non_destructive():
    a = FaultPlan().meter_outage(0.1, 0.1)
    b = FaultPlan().machine_crash("sb1", 0.3, 0.1)
    merged = a.merge(b)
    assert len(merged) == 4
    assert len(a) == 2 and len(b) == 2  # originals untouched


def test_random_plans_are_seed_reproducible_and_windowed():
    def build(seed):
        rng = np.random.default_rng(seed)
        return FaultPlan.random(
            rng, duration=2.0, endpoints=("listener",),
            machines=("sb0", "sb1"), n_cores=4,
        )

    first, second = build(7), build(7)
    assert [
        (e.at, e.site, e.action, e.params) for e in first.sorted_events()
    ] == [
        (e.at, e.site, e.action, e.params) for e in second.sorted_events()
    ]
    assert first.sorted_events() != build(8).sorted_events()
    # Every window starts in the first 70% and ends before the horizon
    # (start <= 0.7*d, span <= 0.25*d), leaving recovery headroom.
    for event in first.sorted_events():
        assert 0.0 < event.at <= 2.0 * 0.95 + 1e-9


# ----------------------------------------------------------------------
# Resolution errors: a mis-bound plan fails loudly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("event,fragment", [
    (FaultEvent(0.1, "meter", "kill"), "no meter injector"),
    (FaultEvent(0.1, "tags:listener", "activate"), "no tag injector"),
    (FaultEvent(0.1, "mailbox", "freeze", (("core", 0),)), "no injector"),
    (FaultEvent(0.1, "cluster", "crash", (("machine", "x"),)),
     "no cluster injector"),
    (FaultEvent(0.1, "nonsense", "kaboom"), "unknown fault event"),
])
def test_apply_rejects_unbound_sites(event, fragment):
    plan = FaultPlan([event])
    with pytest.raises(ValueError, match=fragment):
        plan.apply(Simulator(), FaultTargets())


def test_meter_fault_profile_validates():
    with pytest.raises(ValueError):
        MeterFaultProfile(drop_prob=1.5)
    with pytest.raises(ValueError):
        MeterFaultProfile(nan_prob=0.6, negative_prob=0.6)


# ----------------------------------------------------------------------
# Meter injector filter in isolation
# ----------------------------------------------------------------------
def _metered_injector(rng_seed=0):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    meter = PackageMeter(machine, sim, period=1e-3, delay=1e-3)
    return sim, meter, MeterFaultInjector(meter, np.random.default_rng(rng_seed))


def test_meter_injector_passthrough_without_profile():
    sim, meter, injector = _metered_injector()
    meter.start()
    sim.run_until(0.05)
    assert len(meter.all_samples) == 49  # one per period, none touched
    assert injector.export_stats() == {
        "meter_dropped": 0.0, "meter_corrupted": 0.0,
        "meter_duplicated": 0.0, "meter_delayed": 0.0, "meter_outages": 0.0,
    }


def test_meter_injector_drop_all_yields_no_samples():
    sim, meter, injector = _metered_injector()
    injector.set_profile(MeterFaultProfile(drop_prob=1.0))
    meter.start()
    sim.run_until(0.05)
    assert meter.all_samples == []
    assert injector.dropped == 49


def test_meter_injector_duplicate_all_doubles_samples():
    sim, meter, injector = _metered_injector()
    injector.set_profile(MeterFaultProfile(duplicate_prob=1.0))
    meter.start()
    sim.run_until(0.05)
    assert len(meter.all_samples) == 2 * injector.duplicated
    assert injector.duplicated == 49


def test_meter_injector_outage_window_via_plan():
    sim, meter, injector = _metered_injector()
    meter.start()
    FaultPlan().meter_outage(0.02, 0.02).apply(
        sim, FaultTargets(meter=injector)
    )
    sim.run_until(0.06)
    assert injector.outages == 1
    assert meter.start_count == 2
    # No sample interval ends inside the dead window.
    assert not any(0.021 < s.interval_end < 0.04 for s in meter.all_samples)
