"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import main, COMMANDS


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_no_command_defaults_to_list(capsys):
    assert main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_calibration_command_prints_table(capsys):
    assert main(["calibration"]) == 0
    out = capsys.readouterr().out
    assert "Ccore" in out
    assert "Cchipshare" in out


def test_validate_rejects_bad_machine():
    with pytest.raises(SystemExit):
        main(["validate", "--machine", "epyc"])
