"""Tests for the workload models' sampling, demands, and construction."""

import numpy as np
import pytest

from repro.workloads import (
    GaeHybridWorkload,
    GaeVosaoWorkload,
    RsaCryptoWorkload,
    SolrWorkload,
    StressWorkload,
    WeBWorKWorkload,
    WORKLOADS,
    workload_by_name,
)


def test_catalog_contains_paper_workloads():
    assert set(WORKLOADS) == {
        "rsa-crypto", "solr", "webwork", "stress", "gae-vosao", "gae-hybrid"
    }


def test_workload_by_name_unknown():
    with pytest.raises(KeyError):
        workload_by_name("minecraft")


def test_catalog_returns_fresh_instances():
    assert workload_by_name("solr") is not workload_by_name("solr")


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_demands_positive_on_all_arches(name):
    workload = workload_by_name(name)
    for arch in ("sandybridge", "westmere", "woodcrest"):
        assert workload.mean_demand_seconds(arch) > 0


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_sampled_requests_have_known_types(name):
    workload = workload_by_name(name)
    rng = np.random.default_rng(0)
    types = set(workload.request_types())
    for _ in range(50):
        spec = workload.sample_request(rng)
        assert spec.rtype in types


def test_rsa_mix_normalized_and_validated():
    w = RsaCryptoWorkload(mix={"key-large": 2.0, "key-small": 2.0})
    assert w.mix["key-large"] == pytest.approx(0.5)
    with pytest.raises(ValueError):
        RsaCryptoWorkload(mix={"key-colossal": 1.0})
    with pytest.raises(ValueError):
        RsaCryptoWorkload(mix={"key-large": 0.0})


def test_rsa_large_key_costs_more_cycles():
    w = RsaCryptoWorkload()
    assert (
        w.demand_cycles("key-large", "sandybridge")
        > w.demand_cycles("key-medium", "sandybridge")
        > w.demand_cycles("key-small", "sandybridge")
    )


def test_rsa_woodcrest_needs_many_more_cycles():
    """RSA anchors the strong-affinity end of Fig. 13."""
    w = RsaCryptoWorkload()
    ratio = (
        w.demand_cycles("key-large", "woodcrest")
        / w.demand_cycles("key-large", "sandybridge")
    )
    assert ratio > 2.5


def test_stress_woodcrest_cycles_shrink():
    """Memory-bound work uses fewer cycles at a lower clock."""
    w = StressWorkload()
    assert (
        w.demand_cycles(1.0, "woodcrest") < w.demand_cycles(1.0, "sandybridge")
    )


def test_stress_profile_has_hidden_power_everywhere():
    from repro.workloads.stress import stress_profile
    for arch in ("sandybridge", "westmere", "woodcrest"):
        assert stress_profile(arch).hidden_watts > 0
    # Strongest on Westmere, per the paper.
    assert (
        stress_profile("westmere").hidden_watts
        > stress_profile("sandybridge").hidden_watts
    )


def test_solr_work_is_variable():
    w = SolrWorkload()
    rng = np.random.default_rng(1)
    factors = [w.sample_request(rng).params["work_factor"] for _ in range(200)]
    assert np.std(factors) > 0.5  # long-tailed work distribution


def test_webwork_popular_requests_are_simpler():
    w = WeBWorKWorkload()
    rng = np.random.default_rng(2)
    pops = [s for s in (w.sample_request(rng) for _ in range(300))
            if s.rtype == "popular"]
    stds = [s for s in (w.sample_request(rng) for _ in range(300))
            if s.rtype == "standard"]
    assert pops and stds
    assert np.mean([s.params["difficulty"] for s in pops]) < np.mean(
        [s.params["difficulty"] for s in stds]
    )
    # Popular problems mostly hit the image cache.
    assert np.mean([s.params["image_cached"] for s in pops]) > 0.6


def test_webwork_popular_only_mode():
    w = WeBWorKWorkload(popular_only=True)
    rng = np.random.default_rng(3)
    for _ in range(50):
        spec = w.sample_request(rng)
        assert spec.rtype == "popular"
        assert spec.params["problem_set"] < 10


def test_webwork_popular_only_demand_is_lower():
    assert (
        WeBWorKWorkload(popular_only=True).mean_demand_seconds("sandybridge")
        < WeBWorKWorkload().mean_demand_seconds("sandybridge")
    )


def test_gae_vosao_read_write_ratio():
    w = GaeVosaoWorkload()
    rng = np.random.default_rng(4)
    types = [w.sample_request(rng).rtype for _ in range(2000)]
    read_share = types.count("read") / len(types)
    assert 0.85 < read_share < 0.95


def test_gae_vosao_validates_parameters():
    with pytest.raises(ValueError):
        GaeVosaoWorkload(read_fraction=1.5)


def test_gae_hybrid_virus_share_carries_half_the_load():
    w = GaeHybridWorkload()
    f = w._virus_request_fraction("sandybridge")
    vosao = GaeVosaoWorkload().mean_demand_seconds("sandybridge")
    virus_demand = w.demand_cycles("virus", 1.0, "sandybridge") / 3.10e9
    virus_load = f * virus_demand
    total_load = f * virus_demand + (1 - f) * vosao
    assert virus_load / total_load == pytest.approx(0.5, abs=0.02)


def test_gae_hybrid_validates_share():
    with pytest.raises(ValueError):
        GaeHybridWorkload(virus_load_share=1.0)


def test_gae_hybrid_mean_demand_exceeds_vosao():
    hybrid = GaeHybridWorkload()
    vosao = GaeVosaoWorkload()
    assert (
        hybrid.mean_demand_seconds("sandybridge")
        > vosao.mean_demand_seconds("sandybridge")
    )
