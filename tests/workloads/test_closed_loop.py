"""Tests for the closed-loop client driver."""

import numpy as np
import pytest

from repro.core import PowerContainerFacility
from repro.hardware import SANDYBRIDGE, build_machine
from repro.kernel import Kernel
from repro.sim import Simulator
from repro.workloads import ClosedLoopDriver, SolrWorkload

pytestmark = pytest.mark.slow


def _world(sb_cal, n_clients, think=0.01):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal)
    workload = SolrWorkload()
    server = workload.build_server(kernel, facility)
    driver = ClosedLoopDriver(
        kernel, facility, workload, server,
        n_clients=n_clients, think_time=think,
        rng=np.random.default_rng(3),
    )
    return sim, machine, facility, driver


def test_parameter_validation(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal)
    workload = SolrWorkload()
    server = workload.build_server(kernel, facility)
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        ClosedLoopDriver(kernel, facility, workload, server, 0, 0.01, rng)
    with pytest.raises(ValueError):
        ClosedLoopDriver(kernel, facility, workload, server, 4, -1.0, rng)


def test_clients_sustain_bounded_inflight(sb_cal):
    sim, machine, facility, driver = _world(sb_cal, n_clients=6)
    driver.start(2.0)
    sim.run_until(2.0)
    assert driver.completed > 50
    # Closed loop: never more requests in flight than clients.
    assert len(driver.inflight) <= 6


def test_more_clients_more_throughput_until_saturation(sb_cal):
    completed = {}
    for n in (2, 8, 32):
        sim, machine, facility, driver = _world(sb_cal, n_clients=n, think=0.0)
        driver.start(1.5)
        sim.run_until(1.5)
        completed[n] = driver.completed
    assert completed[8] > completed[2]
    # Beyond saturation (4 cores), extra clients add little throughput.
    assert completed[32] < completed[8] * 1.5


def test_no_unbounded_queueing_at_saturation(sb_cal):
    """Unlike an open loop at over-capacity, response times stay bounded."""
    sim, machine, facility, driver = _world(sb_cal, n_clients=16, think=0.0)
    driver.start(2.0)
    sim.run_until(2.0)
    # With 16 clients on 4 cores, latency ~ 4x service time, not unbounded.
    assert driver.mean_response_time() < 0.2


def test_stops_issuing_after_deadline(sb_cal):
    sim, machine, facility, driver = _world(sb_cal, n_clients=4)
    driver.start(0.5)
    sim.run_until(2.0)
    done_at = max(r.completion for r in driver.results)
    assert done_at < 0.7  # tail requests finish shortly after the deadline


def test_energy_accounting_works_with_closed_loop(sb_cal):
    sim, machine, facility, driver = _world(sb_cal, n_clients=4)
    driver.start(1.0)
    sim.run_until(1.0)
    facility.flush()
    machine.checkpoint()
    measured = machine.integrator.active_joules
    estimated = facility.registry.total_energy("recal")
    assert estimated == pytest.approx(measured, rel=0.1)
