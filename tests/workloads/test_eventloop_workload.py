"""Tests for the event-driven Solr workload integration."""

import pytest

from repro.hardware import SANDYBRIDGE
from repro.workloads import run_workload
from repro.workloads.eventloop import EventDrivenSolrWorkload

pytestmark = pytest.mark.slow


def test_event_driven_workload_end_to_end(sb_cal):
    run = run_workload(
        EventDrivenSolrWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.5, duration=2.0, warmup=0.0, with_meter=False,
    )
    assert run.driver.completed > 30
    for result in run.driver.results[:10]:
        assert result.response_time > 0


def test_event_driven_validation_invariant(sb_cal):
    """Summed request energy matches measured power even though the whole
    workload runs inside a handful of multiplexing processes."""
    run = run_workload(
        EventDrivenSolrWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.6, duration=2.5, warmup=0.0, with_meter=False,
    )
    run.machine.checkpoint()
    measured = run.machine.integrator.active_joules
    estimated = run.facility.registry.total_energy("recal")
    assert estimated == pytest.approx(measured, rel=0.08)


def test_event_driven_per_request_attribution(sb_cal):
    run = run_workload(
        EventDrivenSolrWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.4, duration=2.0, warmup=0.0, with_meter=False,
    )
    workload = run.workload
    done = [r for r in run.driver.results
            if r.container.stats.cpu_seconds > 0]
    assert done
    for result in done[:15]:
        expected = workload.demand_cycles(
            result.container.meta["params"]["work_factor"], "sandybridge"
        )
        assert result.container.stats.events.nonhalt_cycles == pytest.approx(
            expected, rel=0.03
        )


def test_loops_spread_over_cores(sb_cal):
    run = run_workload(
        EventDrivenSolrWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=1.0, duration=1.5, warmup=0.0, with_meter=False,
    )
    # At peak, all four per-core loops served traffic.
    for loop in run.driver.server.loops:
        assert loop.requests_served > 0
