"""Tests for the configurable synthetic workload builder."""

import numpy as np
import pytest

from repro.hardware import RateProfile, SANDYBRIDGE
from repro.workloads import run_workload
from repro.workloads.synthetic import StageSpec, SyntheticWorkload

LIGHT = RateProfile(name="light", ipc=1.0)
DBISH = RateProfile(name="dbish", ipc=0.8, cache_per_cycle=0.01,
                    mem_per_cycle=0.004)
FPU = RateProfile(name="fpu", ipc=1.4, flops_per_cycle=0.5)


def _three_stage():
    return SyntheticWorkload(
        name="my-api",
        stages=[
            StageSpec("parse", cycles=2e6, profile=LIGHT),
            StageSpec("db", cycles=8e6, profile=DBISH, kind="service",
                      io_bytes=8192),
            StageSpec("render", cycles=5e6, profile=FPU, kind="fork"),
        ],
        n_workers=6,
    )


def test_stage_validation():
    with pytest.raises(ValueError):
        StageSpec("x", cycles=-1, profile=LIGHT)
    with pytest.raises(ValueError):
        StageSpec("x", cycles=1e6, profile=LIGHT, kind="teleport")
    with pytest.raises(ValueError):
        SyntheticWorkload("w", stages=[])
    with pytest.raises(ValueError):
        SyntheticWorkload("w", stages=[
            StageSpec("a", 1e6, LIGHT), StageSpec("a", 1e6, LIGHT),
        ])


def test_demand_sums_stages():
    workload = _three_stage()
    assert workload.total_cycles("sandybridge") == pytest.approx(15e6)
    assert workload.mean_demand_seconds("sandybridge") == pytest.approx(
        15e6 / 3.1e9
    )
    # Arch scaling applies.
    assert workload.total_cycles("woodcrest") == pytest.approx(15e6 * 1.5)


def test_end_to_end_run_with_accounting(sb_cal):
    workload = _three_stage()
    run = run_workload(
        workload, SANDYBRIDGE, sb_cal,
        load_fraction=0.5, duration=2.0, warmup=0.0, with_meter=False,
    )
    assert run.driver.completed > 30
    done = [r for r in run.driver.results
            if r.container.stats.cpu_seconds > 0]
    # Every request's container accumulated all three stages' cycles.
    for result in done[:10]:
        jitter = result.container.meta["params"]["jitter"]
        expected = workload.total_cycles("sandybridge", jitter)
        assert result.container.stats.events.nonhalt_cycles == pytest.approx(
            expected, rel=0.02
        )
        # DB stage's disk write was attributed.
        assert result.container.stats.events.disk_bytes == pytest.approx(8192)


def test_stage_breakdown_covers_all_kinds(sb_cal):
    workload = _three_stage()
    run = run_workload(
        workload, SANDYBRIDGE, sb_cal,
        load_fraction=0.3, duration=1.5, warmup=0.0, with_meter=False,
    )
    done = [r for r in run.driver.results
            if r.container.stats.cpu_seconds > 0]
    stages = set()
    for result in done:
        stages |= set(result.container.stats.stage_energy_joules)
    assert any(s.startswith("my-api-worker") for s in stages)  # inline
    assert any(s.startswith("my-api-db-thread") for s in stages)  # service
    assert "render" in stages  # fork


def test_validation_invariant_holds_for_synthetic(sb_cal):
    workload = _three_stage()
    run = run_workload(
        workload, SANDYBRIDGE, sb_cal,
        load_fraction=0.5, duration=2.0, warmup=0.0, with_meter=False,
    )
    run.machine.checkpoint()
    measured = run.machine.integrator.active_joules
    estimated = run.facility.registry.total_energy("recal")
    assert estimated == pytest.approx(measured, rel=0.08)


def test_single_inline_stage_minimal():
    workload = SyntheticWorkload(
        "tiny", stages=[StageSpec("only", cycles=1e6, profile=LIGHT)]
    )
    rng = np.random.default_rng(0)
    spec = workload.sample_request(rng)
    assert spec.rtype == "request"
    assert spec.params["jitter"] > 0
