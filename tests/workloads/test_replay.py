"""Tests for trace-driven request replay."""

import pytest

from repro.core import PowerContainerFacility
from repro.hardware import SANDYBRIDGE, build_machine
from repro.kernel import Kernel
from repro.requests import RequestSpec
from repro.sim import Simulator
from repro.workloads import SolrWorkload
from repro.workloads.replay import (
    TraceEntry,
    TraceReplayDriver,
    load_trace_csv,
    save_trace_csv,
)


def _trace(n=20, gap=0.01):
    return [
        TraceEntry(i * gap, RequestSpec("search", {"work_factor": 0.5 + i % 3}))
        for i in range(n)
    ]


def _world(sb_cal, trace):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal)
    workload = SolrWorkload()
    server = workload.build_server(kernel, facility)
    driver = TraceReplayDriver(kernel, facility, workload, server, trace)
    return sim, facility, driver


def test_entry_validation():
    with pytest.raises(ValueError):
        TraceEntry(-1.0, RequestSpec("search"))


def test_empty_trace_rejected(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal)
    workload = SolrWorkload()
    server = workload.build_server(kernel, facility)
    with pytest.raises(ValueError):
        TraceReplayDriver(kernel, facility, workload, server, [])


def test_replay_completes_every_trace_entry(sb_cal):
    trace = _trace(25)
    sim, facility, driver = _world(sb_cal, trace)
    driver.start()
    sim.run_until(driver.horizon + 1.0)
    assert driver.completed == 25
    assert driver.mean_response_time() > 0


def test_replay_arrivals_are_faithful(sb_cal):
    trace = _trace(10, gap=0.05)
    sim, facility, driver = _world(sb_cal, trace)
    driver.start()
    sim.run_until(driver.horizon + 1.0)
    arrivals = sorted(r.arrival for r in driver.results)
    for got, entry in zip(arrivals, trace):
        assert got == pytest.approx(entry.arrival, abs=1e-9)


def test_replay_is_deterministic(sb_cal):
    energies = []
    for _ in range(2):
        sim, facility, driver = _world(sb_cal, _trace(15))
        driver.start()
        sim.run_until(driver.horizon + 1.0)
        facility.flush()
        energies.append([r.energy("recal") for r in driver.results])
    assert energies[0] == energies[1]


def test_csv_round_trip(tmp_path):
    trace = [
        TraceEntry(0.5, RequestSpec("search", {"work_factor": 1.5})),
        TraceEntry(0.1, RequestSpec("write", {"jitter": 2, "cached": True})),
    ]
    path = save_trace_csv(tmp_path / "trace.csv", trace)
    loaded = load_trace_csv(path)
    assert len(loaded) == 2
    assert loaded[0].arrival == 0.1  # sorted on load
    assert loaded[0].spec.rtype == "write"
    assert loaded[0].spec.params == {"jitter": 2, "cached": True}
    assert loaded[1].spec.params["work_factor"] == pytest.approx(1.5)


def test_csv_skips_comments_and_blank_lines(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("# header\n\n0.2,search,work_factor=1.0\n")
    loaded = load_trace_csv(path)
    assert len(loaded) == 1
    assert loaded[0].spec.params["work_factor"] == 1.0
