"""Integration tests: drivers, servers, and end-to-end workload runs."""

import numpy as np
import pytest

from repro.hardware import SANDYBRIDGE, WOODCREST
from repro.workloads import (
    GaeHybridWorkload,
    GaeVosaoWorkload,
    RsaCryptoWorkload,
    SolrWorkload,
    WeBWorKWorkload,
    run_workload,
)

pytestmark = pytest.mark.slow


def test_driver_completes_requests_and_records_latency(sb_cal):
    run = run_workload(
        RsaCryptoWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.4, duration=2.0, warmup=0.0, with_meter=False,
    )
    assert run.driver.completed > 20
    for result in run.driver.results:
        assert result.response_time > 0
        assert result.completion <= 2.0 + 1.0  # bounded queueing


def test_half_load_utilization_is_about_half(sb_cal):
    run = run_workload(
        SolrWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.5, duration=3.0, warmup=0.0, with_meter=False,
    )
    total_cpu = sum(
        c.stats.cpu_seconds for c in run.facility.registry.all_containers()
    )
    utilization = total_cpu / (4 * 3.0)
    assert 0.35 < utilization < 0.65


def test_peak_load_draws_more_power_than_half(sb_cal):
    powers = {}
    for load in (0.5, 1.0):
        run = run_workload(
            SolrWorkload(), SANDYBRIDGE, sb_cal,
            load_fraction=load, duration=2.5, warmup=0.5, with_meter=False,
        )
        powers[load] = run.measured_active_watts
    assert powers[1.0] > powers[0.5] * 1.3


def test_request_energy_attributed_per_request(sb_cal):
    run = run_workload(
        RsaCryptoWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.4, duration=2.5, warmup=0.0, with_meter=False,
    )
    large = [r for r in run.driver.results if r.rtype == "key-large"]
    small = [r for r in run.driver.results if r.rtype == "key-small"]
    assert large and small
    mean_large = np.mean([r.energy("eq2") for r in large])
    mean_small = np.mean([r.energy("eq2") for r in small])
    # Large keys do ~4x the cycles at higher per-cycle power.
    assert mean_large > mean_small * 2.5


def test_webwork_context_follows_all_stages(sb_cal):
    """A WeBWorK request's container collects PHP + MySQL + latex + dvipng
    work: its CPU time exceeds the front-end share alone."""
    workload = WeBWorKWorkload()
    run = run_workload(
        workload, SANDYBRIDGE, sb_cal,
        load_fraction=0.4, duration=2.5, warmup=0.0, with_meter=False,
    )
    uncached = [
        r for r in run.driver.results
        if not r.container.meta["params"]["image_cached"]
        and r.container.stats.cpu_seconds > 0
    ]
    assert uncached
    for result in uncached[:20]:
        difficulty = result.container.meta["params"]["difficulty"]
        expected = sum(
            workload.stage_cycles(stage, difficulty, "sandybridge")
            for stage in ("php", "mysql", "latex", "dvipng")
        ) / SANDYBRIDGE.freq_hz
        assert result.container.stats.cpu_seconds == pytest.approx(
            expected, rel=0.05
        )


def test_webwork_requests_do_disk_io(sb_cal):
    run = run_workload(
        WeBWorKWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.4, duration=2.0, warmup=0.0, with_meter=False,
    )
    done = [r for r in run.driver.results if r.container.stats.cpu_seconds > 0]
    assert done
    assert all(r.container.stats.events.disk_bytes > 0 for r in done)
    assert all(r.container.stats.io_energy_joules > 0 for r in done)


def test_gae_vosao_background_is_substantial(sb_cal):
    """Fig. 9: GAE background processing is a large share of active power."""
    run = run_workload(
        GaeVosaoWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=1.0, duration=3.0, warmup=0.0, with_meter=False,
    )
    bg = run.facility.registry.background.total_energy("eq2")
    requests = sum(
        c.total_energy("eq2")
        for c in run.facility.registry.request_containers()
    )
    fraction = bg / (bg + requests)
    assert 0.15 < fraction < 0.5


def test_gae_hybrid_viruses_draw_more_power(sb_cal):
    """Fig. 6 right: virus requests sit in a higher power band."""
    run = run_workload(
        GaeHybridWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.5, duration=4.0, warmup=0.0, with_meter=False,
    )
    viruses = [r.mean_power("eq2") for r in run.driver.results
               if r.rtype == "virus" and r.container.stats.cpu_seconds > 0.05]
    vosao = [r.mean_power("eq2") for r in run.driver.results
             if r.rtype in ("read", "write")
             and r.container.stats.cpu_seconds > 0.001]
    assert viruses and vosao
    assert np.mean(viruses) > np.mean(vosao) + 3.0


def test_driver_load_fraction_validation(sb_cal):
    from repro.core import PowerContainerFacility
    from repro.kernel import Kernel
    from repro.hardware import build_machine
    from repro.sim import Simulator
    from repro.workloads import OpenLoopDriver

    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal)
    workload = SolrWorkload()
    server = workload.build_server(kernel, facility)
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        OpenLoopDriver(kernel, facility, workload, server, 0.0, rng)
    with pytest.raises(ValueError):
        OpenLoopDriver(kernel, facility, workload, server, 1.5, rng)


def test_run_on_woodcrest_uses_both_chips(wc_cal):
    run = run_workload(
        SolrWorkload(), WOODCREST, wc_cal,
        load_fraction=1.0, duration=1.5, warmup=0.0, with_meter=False,
    )
    # At peak load both chips must have been active: maintenance energy
    # accrued on each.
    assert run.machine.integrator.maintenance_joules(0) > 0
    assert run.machine.integrator.maintenance_joules(1) > 0


def test_containers_closed_after_completion(sb_cal):
    """Completed requests' containers close (refcount drops to zero) --
    except each worker's most recent request, whose binding reference is
    only released when the worker reads its next tagged segment (the
    paper's containers are released when all linked tasks unlink)."""
    workload = SolrWorkload()
    run = run_workload(
        workload, SANDYBRIDGE, sb_cal,
        load_fraction=0.3, duration=2.0, warmup=0.0, with_meter=False,
    )
    open_containers = [
        r.container for r in run.driver.results if not r.container.closed
    ]
    assert len(open_containers) <= workload.n_workers
    for container in open_containers:
        assert container.refcount == 1  # exactly the worker's binding
    closed = [r.container for r in run.driver.results if r.container.closed]
    assert len(closed) > len(open_containers)
    assert all(c.refcount == 0 for c in closed)


def test_deterministic_given_seed(sb_cal):
    runs = [
        run_workload(
            SolrWorkload(), SANDYBRIDGE, sb_cal,
            load_fraction=0.5, duration=1.5, warmup=0.0, seed=3,
            with_meter=False,
        )
        for _ in range(2)
    ]
    assert runs[0].driver.completed == runs[1].driver.completed
    assert runs[0].measured_active_joules == pytest.approx(
        runs[1].measured_active_joules, rel=1e-12
    )
