"""Shared fixtures for workload tests."""

import pytest

from repro.core import calibrate_machine
from repro.hardware import SANDYBRIDGE, WOODCREST


@pytest.fixture(scope="session")
def sb_cal():
    return calibrate_machine(SANDYBRIDGE, duration=0.2)


@pytest.fixture(scope="session")
def wc_cal():
    return calibrate_machine(WOODCREST, duration=0.2)
