"""Tests for automatic meter wiring in run_workload."""

import pytest

from repro.hardware import PackageMeter, SANDYBRIDGE, WallMeter, WOODCREST, build_machine
from repro.sim import Simulator
from repro.workloads.base import meter_setup_for


def test_sandybridge_gets_package_meter(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kwargs = meter_setup_for(SANDYBRIDGE, sb_cal, machine, sim)
    assert isinstance(kwargs["meter"], PackageMeter)
    assert kwargs["meter"].period == pytest.approx(1e-3)
    assert kwargs["meter"].delay == pytest.approx(1e-3)
    assert kwargs["meter_idle_watts"] == pytest.approx(
        sb_cal.package_idle_watts
    )
    assert not kwargs["meter_covers_peripherals"]


def test_woodcrest_gets_wall_meter(wc_cal):
    sim = Simulator()
    machine = build_machine(WOODCREST, sim)
    kwargs = meter_setup_for(WOODCREST, wc_cal, machine, sim)
    assert isinstance(kwargs["meter"], WallMeter)
    assert kwargs["meter"].delay == pytest.approx(1.2)
    assert kwargs["meter_idle_watts"] == pytest.approx(wc_cal.idle_watts)
    assert kwargs["meter_covers_peripherals"]
    assert kwargs["trace_period"] == kwargs["meter"].period


def test_run_workload_with_meter_recalibrates_on_sandybridge(sb_cal):
    from repro.workloads import StressWorkload, run_workload
    run = run_workload(
        StressWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.6, duration=2.0, warmup=0.0, with_meter=True,
    )
    assert run.facility.recalibrators["recal"].recalibration_count > 0


def test_run_workload_without_meter_has_no_meter(sb_cal):
    from repro.workloads import SolrWorkload, run_workload
    run = run_workload(
        SolrWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.3, duration=0.5, warmup=0.0, with_meter=False,
    )
    assert run.facility.meter is None
