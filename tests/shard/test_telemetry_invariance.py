"""Cluster-scale telemetry invariance: the observability tentpole.

Three guarantees over the sharded stack:

* **neutrality** -- report/shed/batch/energy fingerprints are
  bit-identical with telemetry on, off, "store", or "disabled";
* **merge invariance** -- the merged ``trace_fingerprint()``, every
  store query, and ``alert_fingerprint()`` are identical across shard
  counts {1, 2, 4}, hypothesis-drawn seeds included;
* **crash transparency** -- a seeded mid-run worker SIGKILL (replay
  recovery) leaves all of the above bit-identical.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard import ShardRunConfig, run_sharded

SHARD_COUNTS = (1, 2, 4)

#: Every digest the observability layer must reproduce bit-for-bit.
TELEMETRY_KEYS = (
    "trace_fingerprint", "alert_fingerprint", "store_fingerprint",
)


def _config(seed, n_shards, telemetry="on", **overrides):
    values = dict(
        workload="solr",
        n_machines=6,
        n_shards=n_shards,
        duration=0.5,
        epoch=0.25,
        seed=seed,
        load_fraction=0.4,
        rack_size=3,
        oversub_fraction=0.8,
        telemetry=telemetry,
    )
    values.update(overrides)
    return ShardRunConfig(**values)


def _query_surface(result):
    """Every deterministic query output the store must reproduce."""
    store = result.observability.store
    return (
        store.store_fingerprint(),
        tuple(tuple(row.items()) for row in store.top_energy()),
        tuple(sorted(
            (rtype, tuple(sorted(values.items())))
            for rtype, values in store.joules_percentiles().items()
        )),
        tuple(
            (rack, tuple(map(tuple, points)))
            for rack, points in sorted(store.rack_power_series().items())
        ),
        tuple(map(tuple, store.window_table())),
    )


def test_telemetry_modes_never_change_run_fingerprints():
    baseline = run_sharded(_config(42, 2, telemetry="off"))
    for mode in ("disabled", "store", "on"):
        result = run_sharded(_config(42, 2, telemetry=mode))
        assert result.fingerprints == baseline.fingerprints, mode
    assert baseline.observability is None
    assert baseline.telemetry_summary == {}


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_merged_telemetry_invariant_across_shard_counts(seed):
    results = {
        n: run_sharded(_config(seed, n)) for n in SHARD_COUNTS
    }
    baseline = results[1]
    for n in SHARD_COUNTS[1:]:
        for key in TELEMETRY_KEYS:
            assert (results[n].telemetry_summary[key]
                    == baseline.telemetry_summary[key]), (key, n)
        assert (results[n].telemetry_summary["events_merged"]
                == baseline.telemetry_summary["events_merged"])
        assert _query_surface(results[n]) == _query_surface(baseline)


def test_store_mode_matches_frames_mode_on_store_outputs():
    """Mode "store" (no frames) must roll up the completion stream to
    the same store/alert digests as mode "on" -- only the merged trace
    is extra."""
    frames = run_sharded(_config(11, 2, telemetry="on"))
    store_only = run_sharded(_config(11, 2, telemetry="store"))
    assert (store_only.telemetry_summary["store_fingerprint"]
            == frames.telemetry_summary["store_fingerprint"])
    assert (store_only.telemetry_summary["alert_fingerprint"]
            == frames.telemetry_summary["alert_fingerprint"])
    assert store_only.telemetry_summary["trace_fingerprint"] is None
    assert store_only.observability.aggregator is None


def test_merged_telemetry_survives_worker_sigkill():
    """SIGKILL one fork worker mid-run: replay recovery must regenerate
    the dead worker's frames bit-for-bit (the drain is a pure function
    of directives), leaving every merged digest identical."""
    chaos = dict(workload="chaos", n_machines=6, faults=2,
                 fault_outage=0.3, duration=1.0)
    clean = run_sharded(_config(7, 4, workers=1, **chaos))
    killed = {"done": False}

    def hook(pool, epoch_index):
        if epoch_index == 2 and pool.parallel and not killed["done"]:
            pool.kill_worker(0)
            killed["done"] = True

    result = run_sharded(_config(7, 4, workers=2, **chaos),
                         pool_hook=hook)
    if not killed["done"]:
        pytest.skip("fork start method unavailable")
    assert result.worker_restarts >= 1
    assert result.fingerprints == clean.fingerprints
    assert result.telemetry_summary == clean.telemetry_summary
    assert _query_surface(result) == _query_surface(clean)


def test_frame_chain_digest_gates_replay():
    """The worker's frame-chain digest lives inside ``state_summary()``,
    so replay verification rejects divergent telemetry the same way it
    rejects divergent physics."""
    from repro.shard.worker import ShardConfig, ShardWorld

    config = ShardConfig(
        0, (("m0", "sandybridge"),), "solr", telemetry="on",
    )
    world = ShardWorld.build(config, _calibrations())
    world.run_epoch(0.25)
    frame = world.drain_frame()
    assert frame is not None
    summary = world.state_summary()
    assert summary["telemetry"]["frames"] == 1
    # An identically-driven world ships the identical chain; draining
    # is part of the epoch protocol, so the summaries match exactly.
    twin = ShardWorld.build(config, _calibrations())
    twin.run_epoch(0.25)
    assert twin.drain_frame() == frame
    assert twin.state_summary() == summary


def _calibrations():
    from repro.faults.harness import chaos_calibration
    from repro.hardware.specs import spec_by_name

    return {"sandybridge": chaos_calibration(spec_by_name("sandybridge"))}
