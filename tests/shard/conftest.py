"""Shared fixtures for sharded-simulation tests.

Calibration is the expensive step, and :func:`chaos_calibration` caches
per spec for the process, so warming all three specs once keeps every
test in this package fast.
"""

import pytest

from repro.faults.harness import chaos_calibration
from repro.hardware.specs import spec_by_name
from repro.shard.coordinator import SPEC_CYCLE


@pytest.fixture(scope="session")
def calibrations():
    return {
        name: chaos_calibration(spec_by_name(name)) for name in SPEC_CYCLE
    }
