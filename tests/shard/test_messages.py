"""Wire records: round trips, canonical ordering, and the k-way merge."""

import pytest

from repro.server.dispatch import DispatchTicket
from repro.shard.messages import (
    DIRECTIVE_CRASH,
    DIRECTIVE_INJECT,
    DIRECTIVE_RECOVER,
    CompletionRecord,
    FailoverRecord,
    crash_directive,
    inject_directive,
    merge_records,
    recover_directive,
)


def _ticket(request_id=5, machine="m0001", attempt=0):
    return DispatchTicket(
        request_id=request_id,
        workload="solr",
        rtype="search",
        params={"work_factor": 1.25},
        arrival=0.375,
        machine=machine,
        attempt=attempt,
    )


def test_dispatch_ticket_wire_round_trip():
    ticket = _ticket(attempt=2)
    assert DispatchTicket.from_wire(ticket.to_wire()) == ticket
    assert DispatchTicket.from_wire(ticket.to_wire()).spec().params == {
        "work_factor": 1.25
    }


def test_completion_record_round_trip_and_key():
    record = CompletionRecord(
        completion=1.5, machine="m0002", request_id=9, rtype="search",
        arrival=1.25, energy_joules=0.125, response_time=0.25,
    )
    assert CompletionRecord.from_wire(record.to_wire()) == record
    assert record.sort_key() == (1.5, "m0002", 9)


def test_failover_record_round_trip_carries_ticket():
    ticket = _ticket()
    record = FailoverRecord(
        time=0.5, machine="m0001", request_id=5, ticket_wire=ticket.to_wire()
    )
    restored = FailoverRecord.from_wire(record.to_wire())
    assert restored == record
    assert restored.ticket() == ticket


def test_directive_constructors():
    assert inject_directive(_ticket())[0] == DIRECTIVE_INJECT
    assert crash_directive("m0003", 0.7) == (DIRECTIVE_CRASH, ("m0003", 0.7))
    assert recover_directive("m0003", 0.9) == (
        DIRECTIVE_RECOVER, ("m0003", 0.9)
    )


def test_merge_preserves_canonical_total_order():
    def completion(time, machine, request_id):
        return CompletionRecord(
            completion=time, machine=machine, request_id=request_id,
            rtype="search", arrival=0.0, energy_joules=0.0,
            response_time=time,
        )

    shard_a = [completion(0.1, "m0", 0), completion(0.3, "m0", 2)]
    shard_b = [completion(0.2, "m1", 1), completion(0.3, "m1", 3)]
    merged = merge_records(
        [[r.to_wire() for r in shard_a], [r.to_wire() for r in shard_b]],
        CompletionRecord,
    )
    assert [r.request_id for r in merged] == [0, 1, 2, 3]
    # Equal timestamps break ties on machine name -- a genuine total
    # order, not merge-argument order.
    swapped = merge_records(
        [[r.to_wire() for r in shard_b], [r.to_wire() for r in shard_a]],
        CompletionRecord,
    )
    assert [r.sort_key() for r in swapped] == [r.sort_key() for r in merged]


def test_merge_handles_empty_outboxes():
    assert merge_records([[], []], CompletionRecord) == []


def test_cluster_shard_partition_round_robin(calibrations):
    from repro.hardware.specs import spec_by_name
    from repro.server.cluster import HeterogeneousCluster

    cluster = HeterogeneousCluster()
    for index in range(5):
        cluster.add_machine(
            spec_by_name("sandybridge"), calibrations["sandybridge"],
            name=f"m{index}",
        )
    assert cluster.shard_partition(2) == [["m0", "m2", "m4"], ["m1", "m3"]]
    assert cluster.shard_partition(1) == [["m0", "m1", "m2", "m3", "m4"]]
    with pytest.raises(ValueError):
        cluster.shard_partition(0)


def test_cluster_by_name_index(calibrations):
    from repro.hardware.specs import spec_by_name
    from repro.server.cluster import HeterogeneousCluster

    cluster = HeterogeneousCluster()
    member = cluster.add_machine(
        spec_by_name("sandybridge"), calibrations["sandybridge"], name="a"
    )
    assert cluster.by_name("a") is member
    with pytest.raises(KeyError):
        cluster.by_name("missing")
    # Duplicate names keep the first member, matching the linear scan the
    # index replaced.
    duplicate = cluster.add_machine(
        spec_by_name("sandybridge"), calibrations["sandybridge"], name="a"
    )
    assert cluster.by_name("a") is member
    assert duplicate is not member
