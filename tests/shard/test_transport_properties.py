"""The transport tentpole property, pinned by hypothesis.

Under *any* seeded :class:`TransportFaultPlan` whose probabilities stay
below 1 (so retransmits converge), a sharded run either produces
fingerprints bit-identical to the fault-free run or dies with a *typed*
transport/restore error -- it must never complete with divergent
fingerprints.  Both invariance worlds are exercised: the happy-path Solr
macro world and the chaos world (machine crashes + failover in the loop),
because a transport bug that only bites during failover replay is exactly
the kind this property exists to catch.
"""

import functools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint.state import RestoreMismatchError
from repro.shard import (
    ShardRunConfig,
    TransportError,
    TransportFaultPlan,
    run_sharded,
)

KEYS = ("report", "shed", "batch", "energy")

#: Epoch horizon random plans cover (run epochs + drain headroom).
_PLAN_EPOCHS = 10


def _config(world: str) -> ShardRunConfig:
    values = dict(
        workload="solr",
        n_machines=4,
        n_shards=2,
        duration=0.5,
        epoch=0.25,
        seed=13,
        load_fraction=0.4,
        rack_size=3,
        oversub_fraction=0.8,
    )
    if world == "chaos":
        values.update(workload="chaos", faults=2, fault_outage=0.3)
    return ShardRunConfig(**values)


@functools.lru_cache(maxsize=None)
def _baseline(world: str):
    return run_sharded(_config(world)).fingerprints


@settings(max_examples=6, deadline=None)
@given(
    plan_seed=st.integers(min_value=0, max_value=2**32 - 1),
    transport_seed=st.integers(min_value=0, max_value=2**16),
    world=st.sampled_from(("solr", "chaos")),
)
def test_random_weather_never_diverges(plan_seed, transport_seed, world):
    plan = TransportFaultPlan.random(
        np.random.default_rng(plan_seed), _PLAN_EPOCHS,
        max_windows=3, max_prob=0.5,
    )
    try:
        result = run_sharded(
            _config(world), transport_plan=plan,
            transport_seed=transport_seed,
        )
    except (TransportError, RestoreMismatchError):
        # A typed failure is an acceptable outcome; silent divergence
        # below is not.
        return
    for key in KEYS:
        assert result.fingerprints[key] == _baseline(world)[key], key


@settings(max_examples=3, deadline=None)
@given(plan_seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_same_plan_same_seed_replays_identical_stats(plan_seed):
    """The fault schedule itself is a pure function of its seeds."""
    plan_a = TransportFaultPlan.random(
        np.random.default_rng(plan_seed), _PLAN_EPOCHS
    )
    plan_b = TransportFaultPlan.random(
        np.random.default_rng(plan_seed), _PLAN_EPOCHS
    )
    first = run_sharded(
        _config("solr"), transport_plan=plan_a, transport_seed=3
    )
    second = run_sharded(
        _config("solr"), transport_plan=plan_b, transport_seed=3
    )
    assert first.transport_stats == second.transport_stats
    assert first.fingerprints == second.fingerprints
