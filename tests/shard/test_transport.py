"""Transport-layer units: frames, fault plans, channels, and the
stop-and-wait exactly-once protocol -- all without a real worker process
(the endpoint and a fake pipe stand in for one)."""

import numpy as np
import pytest

from repro.shard.transport import (
    DIRECTION_C2W,
    DIRECTION_W2C,
    FRAME_DATA,
    FRAME_PROBE,
    LossyChannel,
    ReliableLink,
    TransportFaultPlan,
    TransportLimits,
    TransportTimeoutError,
    TransportWindow,
    WorkerEndpoint,
    WorkerUnresponsiveError,
    channel_seed,
    corrupt_frame,
    frame_valid,
    make_frame,
)


# -- frames ------------------------------------------------------------
def test_frame_round_trip_validates():
    frame = make_frame(FRAME_DATA, 3, 2, ("epoch", 0.25, [("inject", ())]))
    assert frame_valid(frame)


def test_corrupt_frame_always_rejected():
    frame = make_frame(FRAME_DATA, 1, 0, "payload")
    mangled = corrupt_frame(frame)
    assert not frame_valid(mangled)
    # Original is untouched (corruption happens on a copy on the wire).
    assert frame_valid(frame)


@pytest.mark.parametrize("junk", [
    None, "data", (), ("data", 1, 0, "x"), ("data", 1, 0, "x", 0, 0),
])
def test_malformed_frames_rejected(junk):
    assert not frame_valid(junk)


# -- fault plans -------------------------------------------------------
def test_window_validation():
    with pytest.raises(ValueError):
        TransportWindow(5, 5)
    with pytest.raises(ValueError):
        TransportWindow(-1, 3)
    with pytest.raises(ValueError):
        TransportWindow(0, 3, drop=1.5)
    with pytest.raises(ValueError):
        TransportWindow(0, 3, max_delay=0)
    with pytest.raises(ValueError):
        TransportWindow(0, 3, direction="sideways")


def test_limits_validation():
    with pytest.raises(ValueError):
        TransportLimits(initial_rto=0)
    with pytest.raises(ValueError):
        TransportLimits(max_rto=0)
    with pytest.raises(ValueError):
        TransportLimits(probe_after=4, dead_after=4)
    with pytest.raises(ValueError):
        TransportLimits(dead_after=24, max_rounds=23)


def test_rates_merge_as_independent_events():
    plan = (
        TransportFaultPlan()
        .drop_window(0, 10, 0.5)
        .drop_window(5, 10, 0.5)
    )
    assert plan.rates_for(2, 0, DIRECTION_C2W).drop == 0.5
    assert plan.rates_for(7, 0, DIRECTION_C2W).drop == pytest.approx(0.75)
    assert plan.rates_for(12, 0, DIRECTION_C2W) is None


def test_window_scoping_by_worker_and_direction():
    plan = TransportFaultPlan().drop_window(
        0, 10, 0.4, worker=1, direction=DIRECTION_W2C
    )
    assert plan.rates_for(3, 1, DIRECTION_W2C) is not None
    assert plan.rates_for(3, 0, DIRECTION_W2C) is None
    assert plan.rates_for(3, 1, DIRECTION_C2W) is None


def test_random_plans_are_seed_deterministic():
    first = TransportFaultPlan.random(np.random.default_rng(9), 8)
    second = TransportFaultPlan.random(np.random.default_rng(9), 8)
    assert [w for w in first.windows] == [w for w in second.windows]
    assert 1 <= len(first) <= 3


def test_plan_state_round_trip():
    plan = (
        TransportFaultPlan()
        .chaos_window(0, 6, drop=0.2, corrupt=0.1, worker=2)
        .delay_window(2, 4, 0.3, max_delay=5)
    )
    restored = TransportFaultPlan()
    restored.setstate(plan.getstate())
    assert restored.windows == plan.windows
    with pytest.raises(ValueError):
        restored.setstate({"v": 99})


# -- lossy channels ----------------------------------------------------
def _channel(plan, seed=7, worker=0, direction=DIRECTION_C2W):
    return LossyChannel(
        plan, np.random.default_rng(seed), worker, direction
    )


def test_clean_channel_delivers_in_order():
    channel = _channel(None)
    frames = [make_frame(FRAME_DATA, i, 0, i) for i in (1, 2, 3)]
    for frame in frames:
        channel.send(frame, epoch=0)
    assert channel.take_due() == frames
    assert channel.in_transit() == 0


def test_total_drop_delivers_nothing():
    channel = _channel(TransportFaultPlan().drop_window(0, 100, 1.0))
    for i in range(5):
        channel.send(make_frame(FRAME_DATA, i + 1, 0, None), epoch=0)
    assert channel.take_due() == []
    assert channel.stats["dropped"] == 5


def test_delayed_frames_surface_in_later_rounds():
    channel = _channel(
        TransportFaultPlan().delay_window(0, 100, 1.0, max_delay=2)
    )
    frame = make_frame(FRAME_DATA, 1, 0, None)
    channel.send(frame, epoch=0)
    assert channel.stats["delayed"] == 1
    rounds = 0
    while channel.in_transit():
        delivered = channel.take_due()
        rounds += 1
        assert rounds <= 3, "delay exceeded 1 + max_delay rounds"
    assert delivered == [frame]


def test_channel_faults_replay_from_seed():
    def run():
        channel = _channel(
            TransportFaultPlan().chaos_window(
                0, 100, drop=0.3, duplicate=0.3, reorder=0.3, delay=0.3
            ),
            seed=channel_seed(5, 1, 0, DIRECTION_W2C),
        )
        log = []
        for i in range(40):
            channel.send(make_frame(FRAME_DATA, i + 1, 0, i), epoch=0)
            log.extend(frame[1] for frame in channel.take_due())
        while channel.in_transit():
            log.extend(frame[1] for frame in channel.take_due())
        return log, dict(channel.stats)

    assert run() == run()


# -- endpoint ----------------------------------------------------------
def _endpoint(log):
    def execute(payload):
        log.append(payload)
        return f"done:{payload}"

    return WorkerEndpoint(execute)


def test_endpoint_applies_exactly_once():
    log = []
    endpoint = _endpoint(log)
    frame = make_frame(FRAME_DATA, 1, 0, "a")
    first = endpoint.handle_frames([frame, frame])
    assert log == ["a"]
    assert [f[3] for f in first] == ["done:a", "done:a"]  # cached re-send
    assert endpoint.stats["applied"] == 1
    assert endpoint.stats["duplicates_ignored"] == 1


def test_endpoint_rejects_corruption_and_gaps():
    log = []
    endpoint = _endpoint(log)
    out = endpoint.handle_frames([
        corrupt_frame(make_frame(FRAME_DATA, 1, 0, "a")),
        make_frame(FRAME_DATA, 3, 0, "c"),
    ])
    assert out == []
    assert log == []
    assert endpoint.stats["corrupt_rejected"] == 1
    assert endpoint.stats["out_of_order_ignored"] == 1


def test_endpoint_prunes_cache_by_cumulative_ack():
    endpoint = _endpoint([])
    endpoint.handle_frames([make_frame(FRAME_DATA, 1, 0, "a")])
    endpoint.handle_frames([make_frame(FRAME_DATA, 2, 1, "b")])
    assert list(endpoint._replies) == [2]
    replies = endpoint.handle_frames([make_frame(FRAME_DATA, 1, 0, "a")])
    assert replies == []  # acked reply is gone; duplicate is just ignored
    assert endpoint.stats["duplicates_ignored"] == 1


def test_endpoint_answers_probes_with_progress():
    endpoint = _endpoint([])
    endpoint.handle_frames([make_frame(FRAME_DATA, 1, 0, "a")])
    (pong,) = endpoint.handle_frames([make_frame(FRAME_PROBE, 0, 1, None)])
    assert frame_valid(pong)
    assert pong[1] == 1  # pong carries last_applied
    assert endpoint.stats["probes_answered"] == 1


# -- the link end to end -----------------------------------------------
def _linked(plan, seed=3, limits=None, log=None):
    endpoint = _endpoint(log if log is not None else [])
    link = ReliableLink(
        endpoint.handle_frames, plan, seed, worker_index=0, limits=limits,
    )
    return link, endpoint


def test_link_survives_heavy_weather_exactly_once():
    log = []
    link, endpoint = _linked(
        TransportFaultPlan().chaos_window(
            0, 1000, drop=0.4, duplicate=0.3, reorder=0.3, delay=0.3,
            corrupt=0.3,
        ),
        log=log,
    )
    for i in range(20):
        assert link.request(f"p{i}", epoch=i) == f"done:p{i}"
    assert log == [f"p{i}" for i in range(20)]  # exactly once, in order
    assert endpoint.stats["applied"] == 20
    stats = link.combined_stats()
    assert stats["retransmits"] > 0
    assert stats["c2w_dropped"] + stats["w2c_dropped"] > 0


def test_link_lossless_bypasses_fault_channels():
    link, _ = _linked(TransportFaultPlan().drop_window(0, 1000, 1.0))
    assert link.request("replay", epoch=0, lossless=True) == "done:replay"
    assert link.c2w.stats["sent"] == 0


def test_silent_worker_declared_dead():
    link, _ = _linked(
        TransportFaultPlan().drop_window(0, 1000, 1.0),
        limits=TransportLimits(probe_after=2, dead_after=6, max_rounds=64),
    )
    with pytest.raises(WorkerUnresponsiveError):
        link.request("x", epoch=0)
    assert link.stats["probes_sent"] > 0


def test_round_budget_is_terminal():
    # A worker that stays audible (every round yields a pong) but never
    # completes the command starves the detector of silence -- only the
    # hard round budget can end the exchange.
    from repro.shard.transport import FRAME_PONG

    def zombie_exchange(frames):
        return [make_frame(FRAME_PONG, 0, 0, None)]

    link = ReliableLink(
        zombie_exchange, None, 3, worker_index=0,
        limits=TransportLimits(probe_after=2, dead_after=6, max_rounds=10),
    )
    with pytest.raises(TransportTimeoutError):
        link.request("x", epoch=0)
