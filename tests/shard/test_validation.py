"""Constructor validation and the bounded revive/quarantine ladder.

Every impossible parameter must die at construction with a clear
``ValueError`` (not mid-run), and a worker whose transport never heals
must end in a terminal :class:`WorkerQuarantinedError` carrying its
diagnostic replay verdict -- never an unbounded revive loop.
"""

import pytest

from repro.shard import (
    ShardCheckpointPolicy,
    ShardConfig,
    ShardPool,
    ShardRunConfig,
    TransportFaultPlan,
    TransportLimits,
    WorkerQuarantinedError,
    run_sharded,
)


@pytest.mark.parametrize("kwargs", [
    {"n_machines": 0},
    {"n_shards": 0},
    {"workers": 0},
    {"rack_size": 0},
    {"epoch": 0.0},
    {"epoch": -0.25},
    {"duration": -1.0},
    {"load_fraction": -0.1},
    {"oversub_fraction": 0.0},
    {"max_defers": -1},
    {"faults": -1},
    {"fault_outage": -0.5},
    {"max_drain_epochs": -1},
])
def test_run_config_rejects_impossible_values(kwargs):
    with pytest.raises(ValueError, match=next(iter(kwargs))):
        ShardRunConfig(**kwargs)


@pytest.mark.parametrize("kwargs", [
    {"every": 0},
    {"keep": 0},
    {"kill_after": 0},
])
def test_checkpoint_policy_rejects_impossible_values(kwargs):
    with pytest.raises(ValueError, match=next(iter(kwargs))):
        ShardCheckpointPolicy(directory="/tmp/x", **kwargs)


@pytest.mark.parametrize("kwargs,match", [
    ({"shard_id": -1}, "shard_id"),
    ({"workload": ""}, "workload"),
])
def test_shard_config_rejects_impossible_values(kwargs, match):
    values = dict(
        shard_id=0, machines=(("m0", "sandybridge"),), workload="solr"
    )
    values.update(kwargs)
    with pytest.raises(ValueError, match=match):
        ShardConfig(**values)


def _one_shard():
    return [ShardConfig(0, (("m0", "sandybridge"),), "solr")]


def test_pool_rejects_empty_configs(calibrations):
    with pytest.raises(ValueError, match="at least one shard"):
        ShardPool([], calibrations)


def test_pool_rejects_zero_workers(calibrations):
    with pytest.raises(ValueError, match="workers"):
        ShardPool(_one_shard(), calibrations, workers=0)


def test_pool_rejects_negative_revive_budget(calibrations):
    with pytest.raises(ValueError, match="revive_budget"):
        ShardPool(_one_shard(), calibrations, revive_budget=-1)


def test_transport_limits_reject_inverted_deadlines():
    with pytest.raises(ValueError, match="dead_after"):
        TransportLimits(probe_after=8, dead_after=8)


# -- quarantine ladder -------------------------------------------------
_BLACKOUT = TransportFaultPlan().drop_window(0, 10_000, 1.0)
_FAST_DETECT = TransportLimits(probe_after=2, dead_after=6, max_rounds=64)


def test_unhealable_transport_quarantines_with_diagnosis(calibrations):
    config = ShardRunConfig(
        workload="solr", n_machines=2, n_shards=1, duration=0.5,
        epoch=0.25, seed=5, load_fraction=0.3, rack_size=2,
        oversub_fraction=0.8,
    )
    with pytest.raises(WorkerQuarantinedError) as excinfo:
        run_sharded(
            config, calibrations=calibrations, transport_plan=_BLACKOUT,
            transport_limits=_FAST_DETECT, revive_budget=2,
        )
    err = excinfo.value
    assert err.worker_index == 0
    assert err.shard_ids == [0]
    assert err.revives == 2
    # The transport was at fault, not the state: the diagnostic replay
    # (which bypasses the fault channels) found nothing diverged.
    assert err.digest_diff == []
    assert "replay state intact" in str(err)


def test_zero_revive_budget_quarantines_immediately(calibrations):
    pool = ShardPool(
        _one_shard(), calibrations, transport_plan=_BLACKOUT,
        transport_limits=_FAST_DETECT, revive_budget=0,
    )
    with pytest.raises(WorkerQuarantinedError) as excinfo:
        pool.run_epoch(0.25, {0: []})
    assert excinfo.value.revives == 0
    pool.close()
