"""Coordinator crash recovery: barrier checkpoints, resume identity,
and the scheduler's snapshot/restore discipline."""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.checkpoint import CheckpointManager
from repro.checkpoint.state import CorruptCheckpointError
from repro.server.dispatch import DispatchTicket
from repro.shard import (
    ShardCheckpointPolicy,
    ShardRunConfig,
    resume_sharded,
    run_sharded,
)
from repro.shard.scheduler import MachineSlot, PowerAwareScheduler
from repro.shard.transport import lossy_preset

KEYS = ("report", "shed", "batch", "energy")


def _config(**overrides) -> ShardRunConfig:
    values = dict(
        workload="chaos",
        n_machines=4,
        n_shards=2,
        duration=0.75,
        epoch=0.25,
        seed=17,
        load_fraction=0.4,
        rack_size=3,
        oversub_fraction=0.8,
        faults=2,
        fault_outage=0.3,
    )
    values.update(overrides)
    return ShardRunConfig(**values)


# -- scheduler snapshot/restore ----------------------------------------
def _scheduler() -> PowerAwareScheduler:
    slots = [
        MachineSlot(f"m{i}", "archA", i // 2, 4, 5.0, 40.0)
        for i in range(4)
    ]
    return PowerAwareScheduler(
        slots, rack_caps={0: 60.0, 1: 60.0},
        bootstrap_joules={"archA": 2.0}, epoch_seconds=0.25,
    )


def _ticket(request_id: int, arrival: float = 0.1) -> DispatchTicket:
    return DispatchTicket(
        request_id=request_id, workload="solr", rtype="query",
        params={}, arrival=arrival, machine="",
    )


def test_scheduler_snapshot_round_trip():
    original = _scheduler()
    placed, _ = original.place([_ticket(i) for i in range(6)], 0)
    assert placed
    original.note_crashed("m1")
    state = original.snapshot_state()

    restored = _scheduler()
    restored.restore_state(state)
    assert restored.snapshot_state() == original.snapshot_state()
    # The rebuilt heaps must pick the same winner as the live ones.
    next_original, _ = original.place([_ticket(100, 0.5)], 1)
    next_restored, _ = restored.place([_ticket(100, 0.5)], 1)
    assert [t.machine for t in next_restored] == \
        [t.machine for t in next_original]


def test_scheduler_rejects_unknown_snapshot_version():
    with pytest.raises(ValueError):
        _scheduler().restore_state({"v": 99})


# -- in-process checkpoint/resume identity -----------------------------
def test_checkpoint_and_resume_land_on_clean_fingerprints(
    calibrations, tmp_path
):
    clean = run_sharded(_config(), calibrations=calibrations)
    checkpointed = run_sharded(
        _config(), calibrations=calibrations,
        checkpoint=ShardCheckpointPolicy(directory=str(tmp_path), every=1),
    )
    assert checkpointed.fingerprints == clean.fingerprints
    assert not checkpointed.resumed
    for index in CheckpointManager(str(tmp_path)).indices():
        resumed = resume_sharded(
            str(tmp_path), calibrations=calibrations, index=index,
        )
        assert resumed.resumed
        for key in KEYS:
            assert resumed.fingerprints[key] == clean.fingerprints[key], \
                (index, key)


def test_resume_under_transport_weather(calibrations, tmp_path):
    clean = run_sharded(_config(), calibrations=calibrations)
    run_sharded(
        _config(), calibrations=calibrations,
        checkpoint=ShardCheckpointPolicy(directory=str(tmp_path), every=1),
    )
    earliest = min(CheckpointManager(str(tmp_path)).indices())
    resumed = resume_sharded(
        str(tmp_path), calibrations=calibrations, index=earliest,
        transport_plan=lossy_preset(), transport_seed=5,
    )
    assert resumed.resumed
    for key in KEYS:
        assert resumed.fingerprints[key] == clean.fingerprints[key], key


def test_corrupt_checkpoint_is_rejected(calibrations, tmp_path):
    run_sharded(
        _config(), calibrations=calibrations,
        checkpoint=ShardCheckpointPolicy(directory=str(tmp_path), every=1),
    )
    newest = sorted(tmp_path.iterdir())[-1]
    raw = bytearray(newest.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    newest.write_bytes(bytes(raw))
    with pytest.raises(CorruptCheckpointError):
        resume_sharded(str(tmp_path), calibrations=calibrations)


# -- the cross-process SIGKILL path ------------------------------------
@pytest.mark.slow
def test_cli_coordinator_sigkill_then_resume(tmp_path):
    root = os.path.join(os.path.dirname(__file__), "..", "..")
    env = dict(
        os.environ,
        PYTHONPATH=os.path.join(root, "src"),
    )
    case = [
        sys.executable, "-m", "repro", "shard",
        "--scenario", "chaos", "--shards", "4", "--workers", "2",
        "--duration", "1.0", "--transport", "lossy",
    ]

    def last_json(argv):
        proc = subprocess.run(
            argv, cwd=root, env=env, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        return proc, (
            json.loads(proc.stdout.strip().splitlines()[-1])
            if proc.returncode == 0 else None
        )

    _, clean = last_json(case)
    assert clean is not None
    crashed, _ = last_json(
        case + ["--ckpt-dir", str(tmp_path), "--ckpt-every", "1",
                "--kill-after-checkpoint", "1", "--kill-worker-at", "1"],
    )
    assert crashed.returncode == -signal.SIGKILL
    _, resumed = last_json(
        [sys.executable, "-m", "repro", "shard", "--resume",
         "--ckpt-dir", str(tmp_path), "--transport", "lossy"],
    )
    assert resumed is not None
    assert resumed["resumed"] is True
    for key in KEYS:
        assert resumed[key] == clean[key], key
