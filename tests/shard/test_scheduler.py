"""PowerAwareScheduler unit tests: headroom, learning, defer/shed."""

import pytest

from repro.server.dispatch import DispatchTicket
from repro.shard.messages import CompletionRecord, FailoverRecord
from repro.shard.scheduler import (
    MIN_PROFILE_SAMPLES,
    MachineSlot,
    PowerAwareScheduler,
)


def _slot(name, rack=0, idle=10.0, peak=100.0, arch="sandybridge"):
    return MachineSlot(
        name=name, arch=arch, rack=rack, n_cores=4,
        idle_watts=idle, peak_watts=peak,
    )


def _scheduler(slots, cap=1000.0, bootstrap=10.0, epoch=1.0, **kwargs):
    racks = {slot.rack for slot in slots}
    return PowerAwareScheduler(
        slots,
        {rack: cap for rack in racks},
        {"sandybridge": bootstrap},
        epoch_seconds=epoch,
        **kwargs,
    )


def _ticket(request_id, rtype="search"):
    return DispatchTicket(
        request_id=request_id, workload="solr", rtype=rtype, params={},
        arrival=0.0, machine="",
    )


def _completion(request_id, machine, energy, response=1.0):
    return CompletionRecord(
        completion=1.0, machine=machine, request_id=request_id,
        rtype="search", arrival=0.0, energy_joules=energy,
        response_time=response,
    )


def test_places_on_most_headroom_then_rebalances():
    scheduler = _scheduler([_slot("a", peak=100.0), _slot("b", peak=50.0)])
    placed, deferred = scheduler.place([_ticket(0), _ticket(1)], 0)
    assert not deferred
    # "a" has 90 W headroom vs "b"'s 40 W, so it absorbs the first two
    # 10 W charges before "b" would surface.
    assert [t.machine for t in placed] == ["a", "a"]


def test_ties_break_on_machine_name():
    scheduler = _scheduler([_slot("b"), _slot("a")])
    placed, _ = scheduler.place([_ticket(0)], 0)
    assert placed[0].machine == "a"


def test_rack_cap_defers_then_sheds():
    # Rack cap 35 W against 2 x 10 W idle: headroom 15 W fits exactly one
    # 10 W charge at a time.
    slots = [_slot("a"), _slot("b")]
    scheduler = PowerAwareScheduler(
        slots, {0: 35.0}, {"sandybridge": 10.0},
        epoch_seconds=1.0, max_defers=2,
    )
    tickets = [_ticket(i) for i in range(3)]
    placed, deferred = scheduler.place(tickets, 0)
    assert len(placed) == 1
    assert len(deferred) == 2
    # Without completions the deferred pair keeps bouncing until shed.
    for epoch in (1, 2):
        placed, deferred = scheduler.place(deferred, epoch)
        assert not placed
    assert not deferred
    assert scheduler.shed == 2
    assert scheduler.shed_log == [
        "1:search:no-headroom:epoch2",
        "2:search:no-headroom:epoch2",
    ]
    assert scheduler.shed_fingerprint() == scheduler.shed_fingerprint()


def test_completion_releases_charge_and_learns_profile():
    scheduler = _scheduler([_slot("a")], bootstrap=10.0)
    placed, _ = scheduler.place([_ticket(0)], 0)
    assert scheduler.inflight_count() == 1
    before = scheduler.machines["a"].predicted_watts
    scheduler.note_completed(_completion(0, "a", energy=4.0))
    assert scheduler.inflight_count() == 0
    assert scheduler.machines["a"].predicted_watts == pytest.approx(
        before - 10.0
    )
    # Below MIN_PROFILE_SAMPLES the bootstrap still rules.
    assert scheduler.predicted_request_watts(
        "sandybridge", "solr:search"
    ) == pytest.approx(10.0)
    for request_id in range(1, MIN_PROFILE_SAMPLES):
        scheduler.place([_ticket(request_id)], 0)
        scheduler.note_completed(_completion(request_id, "a", energy=4.0))
    # Profile switched over: 4 J per request over a 1 s epoch = 4 W.
    assert scheduler.predicted_request_watts(
        "sandybridge", "solr:search"
    ) == pytest.approx(4.0)


def test_failover_releases_without_learning():
    scheduler = _scheduler([_slot("a")])
    placed, _ = scheduler.place([_ticket(0)], 0)
    scheduler.note_failover(FailoverRecord(
        time=0.5, machine="a", request_id=0,
        ticket_wire=placed[0].to_wire(),
    ))
    assert scheduler.inflight_count() == 0
    assert scheduler.failovers == 1
    assert not scheduler.profiles


def test_crashed_machine_not_placed_until_recovered():
    scheduler = _scheduler([_slot("a"), _slot("b")])
    scheduler.note_crashed("a")
    placed, _ = scheduler.place([_ticket(0), _ticket(1)], 0)
    assert {t.machine for t in placed} == {"b"}
    scheduler.note_recovered("a")
    placed, _ = scheduler.place([_ticket(2)], 1)
    assert placed[0].machine == "a"


def test_epoch_averaged_charge_scales_with_epoch_length():
    short = _scheduler([_slot("a")], bootstrap=5.0, epoch=0.5)
    long = _scheduler([_slot("a")], bootstrap=5.0, epoch=2.0)
    assert short.predicted_request_watts("sandybridge", "k") \
        == pytest.approx(10.0)
    assert long.predicted_request_watts("sandybridge", "k") \
        == pytest.approx(2.5)


def test_constructor_validation():
    with pytest.raises(ValueError):
        _scheduler([])
    with pytest.raises(ValueError):
        _scheduler([_slot("a")], epoch=0.0)
    with pytest.raises(ValueError):
        PowerAwareScheduler(
            [_slot("a"), _slot("a")], {0: 10.0}, {"sandybridge": 1.0},
            epoch_seconds=1.0,
        )
    with pytest.raises(ValueError):
        PowerAwareScheduler(
            [_slot("a", rack=3)], {0: 10.0}, {"sandybridge": 1.0},
            epoch_seconds=1.0,
        )


def test_stats_keys_stable():
    scheduler = _scheduler([_slot("a")])
    assert sorted(scheduler.stats()) == [
        "completed", "deferred_total", "failovers", "inflight", "placed",
        "profiles", "shed",
    ]
