"""ShardWorld and coordinator mechanics that the property tests skim over."""

import pytest

from repro.server.dispatch import DispatchTicket
from repro.shard.coordinator import ShardRunConfig, ShardedClusterRun
from repro.shard.messages import FailoverRecord, inject_directive
from repro.shard.worker import ShardConfig, ShardWorld, build_shard_workload


def _world(calibrations, machines=(("m0", "sandybridge"),)):
    return ShardWorld.build(
        ShardConfig(shard_id=0, machines=tuple(machines), workload="solr"),
        calibrations,
    )


def _ticket(request_id, machine, arrival=0.1):
    return DispatchTicket(
        request_id=request_id, workload="solr", rtype="search",
        params={"work_factor": 0.5}, arrival=arrival, machine=machine,
    )


def test_world_serves_ticket_and_emits_completion(calibrations):
    world = _world(calibrations)
    world.deliver([inject_directive(_ticket(0, "m0"))])
    completions, failovers = world.run_epoch(0.25)
    assert not failovers
    assert len(completions) == 1
    completion, machine, request_id = completions[0][:3]
    assert (machine, request_id) == ("m0", 0)
    assert 0.1 < completion <= 0.25
    assert world.completed_per_machine["m0"] == 1
    assert world.energy_per_machine["m0"] > 0.0
    assert not world.inflight


def test_ticket_to_dead_machine_bounces_as_failover(calibrations):
    world = _world(calibrations)
    world.cluster.by_name("m0").crash()
    world.deliver([inject_directive(_ticket(3, "m0"))])
    completions, failovers = world.run_epoch(0.25)
    assert not completions
    assert len(failovers) == 1
    record = FailoverRecord.from_wire(failovers[0])
    assert record.request_id == 3
    assert record.ticket() == _ticket(3, "m0")


def test_crash_strands_inflight_work(calibrations):
    from repro.shard.messages import crash_directive

    world = _world(calibrations)
    world.deliver([
        inject_directive(_ticket(0, "m0", arrival=0.01)),
        crash_directive("m0", 0.011),  # mid-service
    ])
    completions, failovers = world.run_epoch(0.25)
    assert not completions
    assert len(failovers) == 1
    assert world.cluster.by_name("m0").crash_count == 1


def test_unknown_directive_and_workload_rejected(calibrations):
    world = _world(calibrations)
    with pytest.raises(ValueError):
        world.deliver([("teleport", ("m0", 0.1))])
    with pytest.raises(ValueError):
        build_shard_workload("warehouse")


def test_state_digest_is_pure_function_of_history(calibrations):
    directives = [inject_directive(_ticket(i, "m0", 0.02 * (i + 1)))
                  for i in range(4)]
    digests = []
    for _ in range(2):
        world = _world(calibrations)
        world.deliver(list(directives))
        world.run_epoch(0.25)
        digests.append(world.state_digest())
    assert digests[0] == digests[1]


def test_machine_table_cycles_specs():
    table = ShardRunConfig(n_machines=5).machine_table()
    assert [name for name, _spec in table] == [
        "m0000", "m0001", "m0002", "m0003", "m0004",
    ]
    assert [spec for _name, spec in table] == [
        "sandybridge", "woodcrest", "westmere", "sandybridge", "woodcrest",
    ]
    with pytest.raises(ValueError):
        ShardRunConfig(n_machines=0).machine_table()


def test_directives_sorted_before_shard_split(calibrations):
    run = ShardedClusterRun(
        ShardRunConfig(n_machines=4, n_shards=2, duration=0.5),
        calibrations,
    )
    placed = [
        _ticket(1, "m0002", arrival=0.2),
        _ticket(0, "m0000", arrival=0.1),
    ]
    per_shard = run._epoch_directives(placed, [(0.15, "crash", "m0000")])
    # Shard 0 owns m0000 and m0002: inject at 0.1, crash at 0.15, inject
    # at 0.2 -- time-ordered regardless of input order.
    shard0 = per_shard[0]
    assert [kind for kind, _body in shard0] == ["inject", "crash", "inject"]
    # Shard 1 (m0001, m0003) received nothing this epoch.
    assert not per_shard.get(1)


def test_unknown_arrival_model_rejected(calibrations):
    run = ShardedClusterRun(
        ShardRunConfig(n_machines=3, arrival="bursty"), calibrations
    )
    with pytest.raises(ValueError):
        run._rate_at(0.0)


def test_diurnal_rate_shape(calibrations):
    run = ShardedClusterRun(
        ShardRunConfig(
            n_machines=3, arrival="diurnal", diurnal_period=4.0,
            diurnal_amplitude=0.5, flash_start=2.0, flash_duration=0.5,
            flash_multiplier=3.0,
        ),
        calibrations,
    )
    steady = run._aggregate_rate
    assert run._rate_at(1.0) == pytest.approx(steady * 1.5)  # sine peak
    assert run._rate_at(3.0) == pytest.approx(steady * 0.5)  # sine trough
    inside = run._rate_at(2.2)
    run_no_flash = ShardedClusterRun(
        ShardRunConfig(
            n_machines=3, arrival="diurnal", diurnal_period=4.0,
            diurnal_amplitude=0.5,
        ),
        calibrations,
    )
    assert inside == pytest.approx(run_no_flash._rate_at(2.2) * 3.0)


def test_scenario_registry():
    from repro.shard.scenario import SCENARIOS, run_scenario

    assert set(SCENARIOS) == {"solr", "chaos", "flash"}
    with pytest.raises(KeyError):
        run_scenario("warehouse")


def test_run_result_mean_response_and_fingerprint(calibrations):
    from repro.shard import run_sharded

    result = run_sharded(
        ShardRunConfig(n_machines=3, duration=0.5, load_fraction=0.3),
        calibrations,
    )
    assert result.completed > 0
    assert result.mean_response_time() > 0.0
    assert set(result.fingerprints) == {"report", "shed", "batch", "energy"}
    assert len(result.fingerprint()) == 64
    # Double-run determinism of the whole pipeline.
    again = run_sharded(
        ShardRunConfig(n_machines=3, duration=0.5, load_fraction=0.3),
        calibrations,
    )
    assert again.fingerprint() == result.fingerprint()
