"""Shard-count invariance: the tentpole property, pinned by hypothesis.

An N-shard run must produce bit-identical ``report``/``shed``/``batch``/
``energy`` fingerprints to the 1-shard run for any N, any seed, any
machine count -- and the property must survive worker processes dying
mid-epoch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard import ShardRunConfig, run_sharded
from repro.shard.scenario import chaos_world_config

KEYS = ("report", "shed", "batch", "energy")


def _config(seed, n_machines, n_shards, workload="solr", **overrides):
    values = dict(
        workload=workload,
        n_machines=n_machines,
        n_shards=n_shards,
        duration=0.5,
        epoch=0.25,
        seed=seed,
        load_fraction=0.4,
        rack_size=3,
        oversub_fraction=0.8,
    )
    values.update(overrides)
    return ShardRunConfig(**values)


@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_machines=st.integers(min_value=3, max_value=6),
    n_shards=st.sampled_from((2, 3, 4)),
)
def test_sharded_fingerprints_match_single_shard(seed, n_machines, n_shards):
    baseline = run_sharded(_config(seed, n_machines, 1))
    sharded = run_sharded(_config(seed, n_machines, n_shards))
    for key in KEYS:
        assert sharded.fingerprints[key] == baseline.fingerprints[key], key
    assert sharded.n_requests == baseline.n_requests
    assert sharded.completed == baseline.completed


@pytest.mark.slow
@settings(max_examples=3, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_shards=st.sampled_from((2, 3, 4)),
)
def test_chaos_invariance_through_failover(seed, n_shards):
    baseline = run_sharded(
        _config(seed, 5, 1, workload="chaos", faults=2, fault_outage=0.3)
    )
    sharded = run_sharded(
        _config(seed, 5, n_shards, workload="chaos", faults=2,
                fault_outage=0.3)
    )
    assert sharded.fingerprints == baseline.fingerprints


def test_worker_count_does_not_change_fingerprints():
    serial = run_sharded(_config(11, 4, 4, workers=1))
    parallel = run_sharded(_config(11, 4, 4, workers=2))
    assert parallel.fingerprints == serial.fingerprints
    assert parallel.worker_restarts == 0


def test_worker_kill_mid_epoch_recovers_bit_identically():
    """SIGKILL one fork worker mid-run: the pool must replay the dead
    worker's shards from directive history, digest-verify the replayed
    state, and finish with fingerprints identical to the clean run."""
    config = chaos_world_config(n_shards=4, workers=2, duration=1.0)
    clean = run_sharded(chaos_world_config(n_shards=4, workers=1,
                                           duration=1.0))
    killed = {"done": False}

    def hook(pool, epoch_index):
        if epoch_index == 2 and pool.parallel and not killed["done"]:
            pool.kill_worker(0)
            killed["done"] = True

    result = run_sharded(config, pool_hook=hook)
    if not killed["done"]:
        pytest.skip("fork start method unavailable")
    assert result.worker_restarts >= 1
    assert result.fingerprints == clean.fingerprints


def test_worker_kill_with_corrupted_digest_is_rejected():
    """Replay verification is real: corrupting the recorded digest makes
    the post-restart replay fail with the checkpoint layer's
    RestoreMismatchError (diff machinery, not a silent continue)."""
    from repro.checkpoint.state import RestoreMismatchError

    config = chaos_world_config(n_shards=2, workers=2, duration=1.0)
    state = {"armed": False}

    def hook(pool, epoch_index):
        if epoch_index == 2 and pool.parallel and not state["armed"]:
            shard_id = pool.configs[0].shard_id
            if shard_id in pool._digests:
                pool._digests[shard_id] = "0" * 64
                pool._summaries[shard_id] = dict(
                    pool._summaries[shard_id], late_replies=999
                )
                pool.kill_worker(0)
                state["armed"] = True

    if "fork" not in __import__("multiprocessing").get_all_start_methods():
        pytest.skip("fork start method unavailable")
    with pytest.raises(RestoreMismatchError, match="replay diverged"):
        run_sharded(config, pool_hook=hook)
    assert state["armed"]


def test_serial_pool_rejects_kill_worker():
    from repro.shard.pool import ShardPool
    from repro.shard.worker import ShardConfig
    from repro.faults.harness import chaos_calibration
    from repro.hardware.specs import spec_by_name

    calibrations = {
        "sandybridge": chaos_calibration(spec_by_name("sandybridge"))
    }
    pool = ShardPool(
        [ShardConfig(0, (("m0", "sandybridge"),), "solr")],
        calibrations, workers=1,
    )
    with pytest.raises(RuntimeError):
        pool.kill_worker(0)
    pool.close()  # serial close is a no-op, must not raise
