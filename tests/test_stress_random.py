"""Randomized whole-system stress test with invariant checks.

Generates a seeded random population of processes mixing every action kind
(compute at random profiles, sleeps, disk/net I/O, socket ping-pong, forks,
duty changes, DVFS changes), runs it under the full facility, and checks
the global invariants that must survive any interleaving:

* attributed non-halt cycles partition the truly executed cycles;
* estimated energy stays within a sane band of measured energy;
* the simulated clock and trace stay monotone;
* no process is left RUNNING, no run queue entry leaks.
"""

import numpy as np
import pytest

from repro.core import PowerContainerFacility, calibrate_machine
from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import (
    Compute,
    DiskIO,
    Fork,
    Kernel,
    NetIO,
    ProcessState,
    Recv,
    Send,
    Sleep,
    SocketPair,
    WaitChild,
)
from repro.sim import Simulator


@pytest.fixture(scope="module")
def cal():
    return calibrate_machine(SANDYBRIDGE, duration=0.15)


def _random_profile(rng):
    return RateProfile(
        name="rand",
        ipc=float(rng.uniform(0.2, 2.5)),
        flops_per_cycle=float(rng.uniform(0, 0.5)),
        cache_per_cycle=float(rng.uniform(0, 0.02)),
        mem_per_cycle=float(rng.uniform(0, 0.01)),
        hidden_watts=float(rng.choice([0.0, 0.0, 3.0])),
    )


def _random_program(rng, machine, sock, depth=0):
    """Build a random finite action script as a generator."""
    n_actions = int(rng.integers(2, 8))
    plan = []
    for _ in range(n_actions):
        kind = rng.choice(
            ["compute", "sleep", "disk", "net", "pingpong", "fork"]
            if depth == 0 else ["compute", "sleep", "disk"]
        )
        plan.append(kind)

    def program():
        executed = 0.0
        for kind in plan:
            if kind == "compute":
                cycles = float(rng.uniform(1e5, 8e6))
                yield Compute(cycles=cycles, profile=_random_profile(rng))
                executed += cycles
            elif kind == "sleep":
                yield Sleep(float(rng.uniform(1e-4, 5e-3)))
            elif kind == "disk":
                yield DiskIO(nbytes=float(rng.uniform(512, 65536)))
            elif kind == "net":
                yield NetIO(nbytes=float(rng.uniform(512, 16384)))
            elif kind == "pingpong":
                yield Send(sock.a, nbytes=64, payload="ping")
            elif kind == "fork":
                child = yield Fork(
                    _random_program(rng, machine, sock, depth + 1),
                    name="child",
                )
                yield WaitChild(child)

    return program()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_stress_invariants(cal, seed):
    rng = np.random.default_rng(seed)
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, cal)
    sock = SocketPair.local(machine)

    # A drain process consumes the ping messages.
    def drain():
        while True:
            yield Recv(sock.b)

    kernel.spawn(drain(), "drain")

    containers = []
    for i in range(int(rng.integers(6, 14))):
        container = facility.create_request_container(f"rand{i}")
        containers.append(container)
        delay = float(rng.uniform(0, 0.05))
        sim.schedule_at(
            delay,
            lambda prog=_random_program(rng, machine, sock), cid=container.id:
                kernel.spawn(prog, "task", container_id=cid),
        )

    # Random actuator churn while everything runs.
    for _ in range(10):
        t = float(rng.uniform(0.01, 0.4))
        core = machine.cores[int(rng.integers(0, 4))]
        level = int(rng.integers(2, 9))
        sim.schedule_at(t, kernel.set_core_duty, core, level)
    for _ in range(4):
        t = float(rng.uniform(0.01, 0.4))
        scale = float(rng.choice([1.0, 0.875, 0.75]))
        sim.schedule_at(t, kernel.set_chip_frequency, machine.chips[0], scale)

    sim.run_until(2.0)
    facility.flush()
    machine.checkpoint()

    # 1. Cycle conservation: attributed == executed.
    attributed = sum(
        c.stats.events.nonhalt_cycles
        for c in facility.registry.all_containers()
    )
    executed = sum(
        core.counters.read().nonhalt_cycles for core in machine.cores
    )
    overhead = sum(
        a.samples_taken for a in facility.accountants.values()
    ) * 2948.0
    assert attributed == pytest.approx(executed - overhead, rel=1e-3)

    # 2. Energy estimate within a band of truth (DVFS makes the linear
    #    model approximate, so the band is loose but bounded).
    measured = machine.integrator.active_joules
    estimated = facility.registry.total_energy("eq2")
    assert 0.5 * measured < estimated < 1.5 * measured

    # 3. No process left running or queued; all tasks terminated.
    assert kernel.scheduler.ready_count == 0
    for process in kernel.processes.values():
        assert process.state is not ProcessState.RUNNING or process.name == "drain"

    # 4. Trace is time-monotone.
    times = [e.time for e in kernel.trace]
    assert times == sorted(times)
