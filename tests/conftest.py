"""Suite-wide test configuration: hypothesis profiles and test tiers.

Two hypothesis profiles keep property tests useful locally and
reproducible in CI:

* ``dev`` (default) -- hypothesis explores fresh random examples every run,
  maximizing the chance of finding new counterexamples at your desk;
* ``ci`` -- derandomized, so a CI verdict is a pure function of the tree and
  a red run always reproduces locally with ``HYPOTHESIS_PROFILE=ci``.

The profile is chosen by ``HYPOTHESIS_PROFILE``, falling back to ``ci``
whenever the standard ``CI`` environment variable is set (GitHub Actions
sets it, and so does ``python -m ci test``).

The ``slow`` marker (registered in ``pyproject.toml``) tiers the suite:
``pytest -m "not slow"`` is the fast merge lane, the unmarked default runs
everything.
"""

import os

from hypothesis import settings

# Explicit field values: a bare settings() would inherit from whatever
# profile hypothesis auto-loaded (its own "ci" profile when $CI is set),
# making "dev" silently derandomized on CI machines.
settings.register_profile("dev", derandomize=False)
settings.register_profile("ci", derandomize=True, deadline=None)
settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE")
    or ("ci" if os.environ.get("CI") else "dev")
)
