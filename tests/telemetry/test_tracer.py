"""Unit tests for the span tracer: nesting, eviction, export, fingerprint."""

import json

import pytest

from repro.telemetry import RequestTracer, Telemetry


def test_unnamed_end_closes_innermost_span():
    tracer = RequestTracer()
    tracer.begin(0.0, "request:1", "request")
    tracer.begin(0.1, "request:1", "stage:parse")
    assert tracer.open_depth("request:1") == 2
    tracer.end(0.2, "request:1")
    assert tracer.open_depth("request:1") == 1
    tracer.end(0.3, "request:1")
    assert tracer.open_depth("request:1") == 0
    kinds = [e.kind for e in tracer.events]
    names = [e.name for e in tracer.events]
    assert kinds == ["B", "B", "E", "E"]
    assert names == ["request", "stage:parse", "stage:parse", "request"]


def test_named_end_abandons_nested_opens():
    tracer = RequestTracer()
    tracer.begin(0.0, "t", "outer")
    tracer.begin(0.1, "t", "inner")
    tracer.end(0.5, "t", name="outer")
    assert tracer.open_depth("t") == 0


def test_ring_buffer_evicts_oldest_and_counts_drops():
    tracer = RequestTracer(capacity=4)
    for i in range(6):
        tracer.instant(float(i), "t", f"e{i}")
    assert len(tracer) == 4
    assert tracer.dropped_events == 2
    assert [e.name for e in tracer.events] == ["e2", "e3", "e4", "e5"]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        RequestTracer(capacity=0)


def test_fingerprint_stable_across_identical_sequences():
    def record(tracer):
        tracer.begin(0.0, "r", "request", args={"container": 1})
        tracer.counter(0.5, "c", "energy_j", 1.25)
        tracer.end(1.0, "r", args={"energy_j": 1.25})

    a, b = RequestTracer(), RequestTracer()
    record(a)
    record(b)
    assert a.trace_fingerprint() == b.trace_fingerprint()


def test_fingerprint_sensitive_to_args_and_drops():
    a, b = RequestTracer(), RequestTracer()
    a.instant(0.0, "t", "e", args={"v": 1.0})
    b.instant(0.0, "t", "e", args={"v": 2.0})
    assert a.trace_fingerprint() != b.trace_fingerprint()

    full = RequestTracer(capacity=1)
    full.instant(0.0, "t", "e", args={"v": 1.0})
    full.instant(1.0, "t", "e2")  # evicts the first event
    alone = RequestTracer(capacity=1)
    alone.instant(1.0, "t", "e2")
    assert full.trace_fingerprint() != alone.trace_fingerprint()


def test_chrome_trace_pairs_spans_and_merges_args():
    tracer = RequestTracer()
    tracer.begin(0.0, "r", "request", args={"container": 7})
    tracer.instant(0.5, "r", "overflow")
    tracer.counter(0.5, "r", "energy_j", 2.0)
    tracer.end(1.0, "r", args={"energy_j": 2.0})
    trace = json.loads(tracer.to_chrome_json())
    events = trace["traceEvents"]
    by_ph = {e["ph"] for e in events}
    assert by_ph == {"M", "X", "i", "C"}
    (span,) = [e for e in events if e["ph"] == "X"]
    assert span["name"] == "request"
    assert span["ts"] == 0.0
    assert span["dur"] == pytest.approx(1e6)
    assert span["args"] == {"container": 7, "energy_j": 2.0}
    (meta,) = [e for e in events if e["ph"] == "M"]
    assert meta["args"]["name"] == "r"
    (counter,) = [e for e in events if e["ph"] == "C"]
    assert counter["args"] == {"energy_j": 2.0}


def test_chrome_trace_skips_unmatched_end():
    tracer = RequestTracer()
    tracer.end(1.0, "r", name="never-opened")
    events = tracer.to_chrome_trace()["traceEvents"]
    assert all(e["ph"] != "X" for e in events)


def test_timeline_markers_limit_and_drop_footer():
    tracer = RequestTracer(capacity=3)
    tracer.begin(0.0, "t", "span")
    tracer.instant(0.1, "t", "point", args={"k": "v"})
    tracer.counter(0.2, "t", "series", 1.0)
    tracer.end(0.3, "t")  # evicts the begin; ring keeps the last 3 events
    text = tracer.timeline(limit=2)
    lines = text.splitlines()
    assert "* " in lines[0] and "[k=v]" in lines[0]
    assert "= " in lines[1] and "series" in lines[1]
    assert "more events" in lines[2]
    assert "1 events dropped" in lines[-1]


def test_telemetry_handle_defaults():
    t = Telemetry()
    assert t.enabled
    assert t.tracer is not None
    assert t.registry is not None
    t.tracer.instant(0.0, "t", "e")
    assert t.trace_fingerprint() == t.tracer.trace_fingerprint()

    off = Telemetry(enabled=False)
    assert not off.enabled
    assert len(off.tracer.events) == 0
