"""Subprocess smoke tests for ``python -m repro trace`` / ``metrics``.

The trace test also checks the telemetry subsystem's acceptance shape: the
arrival-storm trace must contain at least one request whose stage spans
cross two distinct pipeline stages, with per-container energy-timeline
counter samples alongside.
"""

import json
import os
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow

ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _run_cli(args, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=ROOT, env=env, capture_output=True, text=True, timeout=timeout,
    )


def test_trace_command_emits_valid_chrome_trace(tmp_path):
    out = tmp_path / "trace.json"
    proc = _run_cli([
        "trace", "--scenario", "arrival-storm", "--seed", "42",
        "--out", str(out),
    ])
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "trace fingerprint" in proc.stdout

    trace = json.loads(out.read_text())
    events = trace["traceEvents"]
    assert {"M", "X", "i", "C"} <= {e["ph"] for e in events}

    # At least one request's spans must cross two distinct stages, with an
    # energy timeline recorded for the same container.
    stages_by_container = {}
    for event in events:
        if event["ph"] == "X" and event["name"].startswith("stage:"):
            cid = event["args"].get("container")
            if cid is not None:
                stages_by_container.setdefault(cid, set()).add(event["name"])
    multi_stage = {
        cid for cid, stages in stages_by_container.items() if len(stages) >= 2
    }
    assert multi_stage, "no request crossed two stages in the trace"

    energy_containers = set()
    for event in events:
        if event["ph"] == "C" and "energy_j" in event["args"]:
            name = event["name"]  # "container:<prefix><cid> energy_j"
            token = name.split(" ")[0].rsplit("/", 1)[-1]
            token = token.split(":")[-1]
            if token.isdigit():
                energy_containers.add(int(token))
    assert multi_stage & energy_containers, (
        "no multi-stage request has an energy timeline"
    )

    # Completed request spans carry the final attributed energy.
    request_spans = [
        e for e in events
        if e["ph"] == "X" and e["name"] == "request"
        and "energy_j" in e["args"]
    ]
    assert request_spans


def test_metrics_command_writes_exposition(tmp_path):
    out = tmp_path / "metrics.txt"
    proc = _run_cli([
        "metrics", "--scenario", "meter-nan-burst", "--seed", "42",
        "--out", str(out),
    ])
    assert proc.returncode == 0, proc.stderr[-2000:]
    text = out.read_text()
    assert "# TYPE" in text
    assert "facility_" in text
    assert text.endswith("\n")
    assert "wrote" in proc.stdout
