"""Unit coverage for the cluster-scale telemetry pieces.

Frames (wire shape + checksum rejection), metric-delta folding, the
energy-service store's queries/exports/snapshots, and every anomaly
detector in the catalog -- all on small synthetic inputs so each
behaviour is pinned independently of the sharded stack.
"""

import json

import pytest

from repro.telemetry import (
    AlertRecord,
    AnomalyEngine,
    AnomalyThresholds,
    FrameChecksumError,
    FrameDrain,
    MetricsRegistry,
    Telemetry,
    TelemetryAggregator,
    TelemetryFrame,
    TelemetryStore,
    WindowInputs,
    alert_fingerprint,
    apply_metric_deltas,
    metric_deltas,
)


# -- frames ---------------------------------------------------------------
def test_frame_wire_round_trip():
    events = ((0.5, "request:m0/7", 0, "I", "shed", (("n", 1),)),)
    frame = TelemetryFrame.build(2, 4, events, (), 0)
    wire = frame.to_wire()
    back = TelemetryFrame.from_wire(wire)
    assert back.shard_id == 2
    assert back.epoch_index == 4
    assert back.events == events
    assert back.checksum == frame.checksum


def test_frame_rejects_corruption_and_bad_shape():
    frame = TelemetryFrame.build(0, 0, (), (), 0)
    wire = list(frame.to_wire())
    wire[5] = 99  # flip the dropped count, keep the stale checksum
    with pytest.raises(FrameChecksumError, match="checksum mismatch"):
        TelemetryFrame.from_wire(tuple(wire))
    with pytest.raises(FrameChecksumError, match="7-tuple"):
        TelemetryFrame.from_wire(("tframe", 0, 0))
    with pytest.raises(FrameChecksumError, match="tag"):
        TelemetryFrame.from_wire(("bogus",) + frame.to_wire()[1:])


def test_frame_drain_assigns_per_track_seqs_and_empties_ring():
    telemetry = Telemetry()
    telemetry.tracer.instant(0.1, "request:m0/1", "a")
    telemetry.tracer.instant(0.2, "request:m0/1", "b")
    telemetry.tracer.instant(0.3, "request:m1/9", "c")
    drain = FrameDrain(telemetry)
    frame = drain.drain(0, 0)
    seqs = {(e[1], e[2]) for e in frame.events}
    assert seqs == {("request:m0/1", 0), ("request:m0/1", 1),
                    ("request:m1/9", 0)}
    assert len(telemetry.tracer.events) == 0
    # The next barrier continues the per-track counters.
    telemetry.tracer.instant(0.4, "request:m0/1", "d")
    frame2 = drain.drain(0, 1)
    assert frame2.events[0][2] == 2
    assert drain.frames == 2


# -- metric deltas --------------------------------------------------------
def test_metric_deltas_fold_into_registry():
    source = MetricsRegistry()
    source.counter("facility_sheds", help="sheds").inc(3)
    source.gauge("facility_cap", help="cap").set(42.0)
    hist = source.histogram("lat", (0.1, 1.0), help="latency")
    hist.observe(0.05)
    hist.observe(5.0)
    first = source.snapshot_state()["metrics"]
    deltas = metric_deltas({}, first)
    target = MetricsRegistry()
    apply_metric_deltas(target, deltas)
    assert target.exposition() == source.exposition()
    # Unchanged metrics are omitted from the next delta; changed ones
    # carry only the increment.
    source.counter("facility_sheds").inc(2)
    second = source.snapshot_state()["metrics"]
    incremental = metric_deltas(first, second)
    assert [entry[1] for entry in incremental] == ["facility_sheds"]
    assert incremental[0][3] == 2.0
    apply_metric_deltas(target, incremental)
    assert target.exposition() == source.exposition()


def test_apply_metric_deltas_rejects_unknown_kind():
    with pytest.raises(FrameChecksumError, match="unknown metric"):
        apply_metric_deltas(MetricsRegistry(), (("x", "name", "help", 1),))


# -- aggregator -----------------------------------------------------------
def test_aggregator_merge_is_shard_assignment_invariant():
    def frames(split):
        """The same six events split across shards two different ways."""
        events = [
            (0.1, "request:m0/1", 0, "I", "e0", ()),
            (0.2, "request:m1/1", 0, "I", "e1", ()),
            (0.3, "request:m0/1", 1, "I", "e2", ()),
            (0.4, "request:m2/1", 0, "I", "e3", ()),
            (0.5, "request:m1/1", 1, "I", "e4", ()),
            (0.6, "request:m2/1", 1, "I", "e5", ()),
        ]
        by_shard = {}
        for event in events:
            by_shard.setdefault(split(event[1]), []).append(event)
        return [
            TelemetryFrame.build(sid, 0, tuple(evs), (), 0)
            for sid, evs in sorted(by_shard.items())
        ]

    one = TelemetryAggregator()
    one.ingest(frames(lambda track: 0))
    three = TelemetryAggregator()
    three.ingest(frames(lambda track: int(track[9])))
    assert one.trace_fingerprint() == three.trace_fingerprint()
    assert one.events_merged == three.events_merged == 6
    assert [e.name for e in one.tracer.events] == [
        f"e{i}" for i in range(6)
    ]


def test_aggregator_counts_instants_and_skips_none_frames():
    agg = TelemetryAggregator()
    frame = TelemetryFrame.build(0, 0, (
        (0.1, "facility:m0", 0, "I", "meter.stale", ()),
        (0.2, "facility:m0", 1, "I", "meter.stale", ()),
    ), (), 0)
    counts = agg.ingest([None, frame, None])
    assert counts == {"meter.stale": 2}
    assert agg.frames_merged == 1


def test_aggregator_without_retention_still_fingerprints():
    frame = TelemetryFrame.build(0, 0, (
        (0.1, "request:m0/1", 0, "I", "x", ()),
    ), (), 0)
    lean = TelemetryAggregator(retain=False)
    lean.ingest([frame])
    full = TelemetryAggregator()
    full.ingest([frame])
    assert lean.trace_fingerprint() == full.trace_fingerprint()
    with pytest.raises(ValueError, match="retain=False"):
        lean.to_chrome_json()


def test_aggregator_snapshot_restore_round_trip():
    agg = TelemetryAggregator()
    agg.ingest([TelemetryFrame.build(0, 0, (
        (0.1, "request:m0/1", 0, "I", "x", ()),
    ), (("c", "n", "h", 2.0),), 1)])
    clone = TelemetryAggregator()
    clone.restore_state(agg.snapshot_state())
    assert clone.trace_fingerprint() == agg.trace_fingerprint()
    assert clone.exposition() == agg.exposition()
    assert clone.dropped_total == 1


# -- store ----------------------------------------------------------------
def _tiny_store():
    store = TelemetryStore(
        epoch_seconds=0.5, rack_of={"m0": 0, "m1": 0, "m2": 1}, top_k=2
    )
    rows = [
        (0, "m0", 1, "search", 2.0, 0.01),
        (0, "m1", 2, "search", 4.0, 0.02),
        (1, "m2", 3, "update", 1.0, 0.03),
        (1, "m0", 4, "search", 8.0, 0.01),
    ]
    for window, machine, rid, rtype, joules, response in rows:
        store.ingest_completion(window, machine, rid, rtype, joules,
                                response)
    store.ingest_window(0, shed=1, completed=2, joules=6.0)
    store.ingest_window(1, failovers=1, completed=2, joules=9.0)
    return store


def test_store_rack_watts_and_series():
    store = _tiny_store()
    assert store.rack_watts(0) == {0: 12.0, 1: 0.0}
    assert store.rack_watts(1) == {0: 16.0, 1: 2.0}
    series = store.rack_power_series()
    assert series[0] == [[0.0, 12.0], [0.5, 16.0]]
    assert series[1] == [[0.0, 0.0], [0.5, 2.0]]


def test_store_topk_is_bounded_and_ranked():
    store = _tiny_store()
    top = store.top_energy()
    assert [row["request_id"] for row in top] == [4, 2]
    assert top[0]["joules"] == 8.0


def test_store_percentiles_nearest_rank():
    store = _tiny_store()
    result = store.joules_percentiles(percentiles=(50.0, 100.0))
    assert result["search"]["p50"] == 4.0
    assert result["search"]["p100"] == 8.0
    assert result["update"]["p50"] == 1.0
    assert result["_all"]["p50"] == 2.0


def test_store_dashboard_and_csv_are_serializable():
    store = _tiny_store()
    doc = store.dashboard(meta={"scenario": "unit"},
                          alerts=[{"detector": "x"}])
    text = json.dumps(doc, sort_keys=True)
    assert json.loads(text)["summary"]["requests"] == 4
    assert doc["alerts"] == [{"detector": "x"}]
    rows = store.csv_rows()
    assert rows[0][0] == "section"
    assert any(row[0] == "top_energy" for row in rows)


def test_store_snapshot_restore_preserves_fingerprint():
    store = _tiny_store()
    clone = TelemetryStore(epoch_seconds=0.5, rack_of={})
    clone.restore_state(store.snapshot_state())
    assert clone.store_fingerprint() == store.store_fingerprint()
    # The restored heap keeps accepting pushes correctly.
    clone.ingest_completion(2, "m2", 9, "update", 16.0, 0.1)
    assert clone.top_energy()[0]["request_id"] == 9


def test_store_rejects_bad_construction():
    with pytest.raises(ValueError, match="epoch_seconds"):
        TelemetryStore(epoch_seconds=0.0, rack_of={})
    with pytest.raises(ValueError, match="top_k"):
        TelemetryStore(epoch_seconds=1.0, rack_of={}, top_k=0)


# -- anomaly detectors ----------------------------------------------------
def test_cap_violation_streak_fires_once_at_threshold():
    engine = AnomalyEngine(rack_caps={0: 100.0},
                           thresholds=AnomalyThresholds(cap_streak=3))
    fired = []
    for window in range(5):
        fired += engine.observe_window(WindowInputs(
            window=window, time=0.5 * (window + 1),
            rack_watts=((0, 150.0),),
        ))
    assert [a.detector for a in fired] == ["cap-violation-streak"]
    assert fired[0].window == 2
    assert fired[0].subject == "rack0"
    assert fired[0].severity == "page"
    # Dropping under the cap resets the streak.
    engine.observe_window(WindowInputs(window=5, time=3.0,
                                       rack_watts=((0, 10.0),)))
    assert engine._cap_streaks[0] == 0


def test_shed_spike_needs_history_floor_and_factor():
    engine = AnomalyEngine(thresholds=AnomalyThresholds(
        shed_spike_min=20, shed_spike_factor=3.0, shed_history=4))
    # First window has no trailing baseline: never a spike.
    assert engine.observe_window(
        WindowInputs(window=0, time=0.5, shed=500)) == []
    engine = AnomalyEngine(thresholds=AnomalyThresholds(
        shed_spike_min=20, shed_spike_factor=3.0, shed_history=4))
    engine.observe_window(WindowInputs(window=0, time=0.5, shed=10))
    # 25 >= max(20, 3 * 10) is false -> quiet; 40 fires.
    assert engine.observe_window(
        WindowInputs(window=1, time=1.0, shed=25)) == []
    fired = engine.observe_window(WindowInputs(window=2, time=1.5,
                                               shed=60))
    assert [a.detector for a in fired] == ["shed-rate-spike"]
    assert fired[0].value == 60.0


def test_instant_driven_detectors():
    engine = AnomalyEngine(thresholds=AnomalyThresholds(
        stale_storm=3, recal_churn=2))
    fired = engine.observe_window(WindowInputs(
        window=0, time=0.5,
        instant_counts=(("meter.stale", 3), ("recal.refit", 2)),
    ))
    assert [a.detector for a in fired] == [
        "meter-staleness-storm", "recalibration-churn",
    ]
    assert [a.severity for a in fired] == ["warn", "info"]


def test_attribution_drift_at_finalize():
    engine = AnomalyEngine(thresholds=AnomalyThresholds(
        drift_ratio=0.25, drift_min_joules=1.0))
    fired = engine.finalize(2.0, [
        ("m0", 10, 100.0, 100.0),   # perfect: quiet
        ("m1", 10, 50.0, 100.0),    # 50% drift: fires
        ("m2", 0, 0.0, 100.0),      # no completions: quiet
        ("m3", 10, 0.0, 0.5),       # under the joule floor: quiet
    ])
    assert [a.subject for a in fired] == ["m1"]
    assert fired[0].detector == "attribution-drift"
    assert fired[0].value == pytest.approx(0.5)


def test_alert_fingerprint_and_engine_snapshot():
    engine = AnomalyEngine(thresholds=AnomalyThresholds(stale_storm=1))
    engine.observe_window(WindowInputs(
        window=0, time=0.5, instant_counts=(("meter.stale", 4),)))
    assert engine.alert_fingerprint() == alert_fingerprint(engine.alerts)
    assert engine.alert_fingerprint() != alert_fingerprint([])
    clone = AnomalyEngine()
    clone.restore_state(engine.snapshot_state())
    assert clone.alert_fingerprint() == engine.alert_fingerprint()
    assert clone.alerts[0] == engine.alerts[0]
    assert isinstance(clone.alerts[0], AlertRecord)


def test_alert_record_wire_round_trip():
    alert = AlertRecord(1.0, 2, "shed-rate-spike", "warn", "cluster",
                        60.0, 30.0, "spike")
    assert AlertRecord.from_wire(alert.to_wire()) == alert
