"""Telemetry must never change the physics it observes.

Two guarantees, mirroring the ``python -m ci telemetry`` lane:

* **determinism** -- two identically-seeded instrumented runs produce
  bit-identical ``trace_fingerprint()`` digests;
* **neutrality** -- attaching a telemetry handle (enabled or disabled)
  leaves every attribution and energy number bit-identical to an
  uninstrumented run, across hypothesis-drawn seeds.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import run_scenario, scenario_by_name
from repro.faults.harness import build_single_world
from repro.telemetry import Telemetry

pytestmark = pytest.mark.slow


def _energy_fingerprint(seed: int, telemetry) -> tuple:
    world = build_single_world(seed, duration=0.25, telemetry=telemetry)
    world.start()
    world.simulator.run_until(world.duration)
    world.facility.flush()
    return (
        world.measured_joules(),
        world.attributed_joules(),
        world.driver.completed,
        tuple(sorted(world.facility.health_stats().items())),
    )


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_telemetry_never_changes_attribution(seed):
    bare = _energy_fingerprint(seed, telemetry=None)
    enabled = Telemetry()
    assert _energy_fingerprint(seed, telemetry=enabled) == bare
    assert len(enabled.tracer.events) > 0

    disabled = Telemetry(enabled=False)
    assert _energy_fingerprint(seed, telemetry=disabled) == bare
    assert len(disabled.tracer.events) == 0
    assert len(disabled.registry) == 0


def test_trace_fingerprint_is_deterministic_across_runs():
    scenario = scenario_by_name("meter-nan-burst")
    first = Telemetry()
    report_a = run_scenario(scenario, seed=42, telemetry=first)
    second = Telemetry()
    report_b = run_scenario(scenario, seed=42, telemetry=second)
    assert first.trace_fingerprint() == second.trace_fingerprint()
    assert report_a.fingerprint() == report_b.fingerprint()
    assert len(first.tracer.events) == len(second.tracer.events)


def test_instrumented_report_matches_baseline_report():
    scenario = scenario_by_name("meter-nan-burst")
    baseline = run_scenario(scenario, seed=42)
    traced = run_scenario(scenario, seed=42, telemetry=Telemetry())
    assert baseline.fingerprint() == traced.fingerprint()
