"""Unit tests for the deterministic metrics registry."""

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_increments_and_rejects_decrease():
    c = Counter("requests_total")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_gauge_set_and_signed_inc():
    g = Gauge("queue_depth")
    g.set(10.0)
    g.inc(-3.0)
    assert g.value == 7.0


def test_histogram_buckets_values_at_and_between_edges():
    h = Histogram("latency", edges=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.001, 0.005, 0.05, 5.0):
        h.observe(value)
    # 0.0005 and 0.001 land in the first bucket (inclusive upper bound),
    # 5.0 only in the implicit +Inf bucket.
    assert h.bucket_counts == [2, 1, 1]
    assert h.cumulative_counts() == [2, 3, 4]
    assert h.count == 5
    assert h.sum == pytest.approx(5.0565)


def test_histogram_rejects_bad_edges():
    with pytest.raises(ValueError):
        Histogram("empty", edges=())
    with pytest.raises(ValueError):
        Histogram("unsorted", edges=(0.1, 0.01))
    with pytest.raises(ValueError):
        Histogram("duplicate", edges=(0.1, 0.1))


def test_registry_get_or_create_returns_same_object():
    registry = MetricsRegistry()
    a = registry.counter("hits", help="cache hits")
    b = registry.counter("hits")
    assert a is b
    assert len(registry) == 1
    assert registry.get("hits") is a
    assert registry.get("missing") is None


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_registry_rejects_histogram_edge_change():
    registry = MetricsRegistry()
    registry.histogram("lat", edges=(0.1, 1.0))
    assert registry.histogram("lat", edges=(0.1, 1.0)) is registry.get("lat")
    with pytest.raises(ValueError):
        registry.histogram("lat", edges=(0.2, 2.0))


def test_snapshot_is_sorted_and_expands_histograms():
    registry = MetricsRegistry()
    registry.gauge("zeta").set(1.0)
    registry.counter("alpha").inc(2.0)
    h = registry.histogram("lat", edges=(0.5, 1.5))
    h.observe(0.4)
    h.observe(2.0)
    snap = registry.snapshot()
    assert list(snap) == [
        "alpha", "lat_count", "lat_sum",
        "lat_bucket_le_0_5", "lat_bucket_le_1_5", "zeta",
    ]
    assert snap["alpha"] == 2.0
    assert snap["zeta"] == 1.0
    assert snap["lat_count"] == 2.0
    assert snap["lat_sum"] == pytest.approx(2.4)
    assert snap["lat_bucket_le_0_5"] == 1.0
    assert snap["lat_bucket_le_1_5"] == 1.0  # cumulative; 2.0 is +Inf only


def test_exposition_renders_prometheus_text():
    registry = MetricsRegistry()
    registry.counter("hits", help="cache hits").inc(3.0)
    registry.gauge("depth").set(2.0)
    h = registry.histogram("lat", edges=(0.5,), help="latency")
    h.observe(0.1)
    h.observe(9.0)
    text = registry.exposition()
    assert text.endswith("\n")
    assert "# HELP hits cache hits" in text
    assert "# TYPE hits counter" in text
    assert "hits 3.0" in text
    assert "# TYPE depth gauge" in text
    assert 'lat_bucket{le="0.5"} 1' in text
    assert 'lat_bucket{le="+Inf"} 2' in text
    assert "lat_count 2" in text


def test_equal_registries_render_byte_identically():
    def build():
        registry = MetricsRegistry()
        registry.counter("a").inc(1.0)
        registry.histogram("h", edges=(1.0, 2.0)).observe(1.5)
        return registry

    assert build().exposition() == build().exposition()
    assert build().snapshot() == build().snapshot()
