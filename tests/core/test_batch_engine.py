"""Batch accounting engine: oracle equivalence and engine semantics.

The vectorized kernels in ``repro.core.batch`` claim *bit-identical*
results to the scalar per-core arithmetic (``reference_sample`` is the
pristine transliteration of ``CoreAccountant.sample``'s front half).  The
hypothesis properties here compare the two over random counter streams,
wrap-around deltas, observer-overhead corrections, and empty intervals --
with ``==``, never ``approx``.  The engine-level tests then check that
``BatchAccountingEngine.sample_all`` charges exactly what sequential
per-accountant ``sample()`` calls would, and that a double run of a seeded
batch workload replays bit for bit.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.batch import (
    CPU_FIELDS,
    BatchAccountingEngine,
    batch_observer_correction,
    batch_utilization,
    batch_wrap_deltas,
    reference_sample,
)
from repro.hardware.counters import COUNTER_WRAP

_counter = st.floats(min_value=0.0, max_value=COUNTER_WRAP, allow_nan=False)
_unit = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
_dt = st.floats(min_value=1e-9, max_value=10.0, allow_nan=False)
_freq = st.floats(min_value=1e6, max_value=1e10, allow_nan=False)


def _rows(draw, n, width, strategy):
    return np.array(
        [[draw(strategy) for _ in range(width)] for _ in range(n)]
    )


@given(data=st.data())
def test_kernels_match_oracle_on_random_streams(data):
    """Full front-half pipeline, random counters: bitwise equality."""
    n = data.draw(st.integers(min_value=1, max_value=8))
    snapshot = _rows(data.draw, n, 7, _counter)
    baseline = _rows(data.draw, n, 7, _counter)
    units = _rows(data.draw, n, CPU_FIELDS, _unit)
    ops = np.array([
        float(data.draw(st.integers(min_value=0, max_value=1000)))
        for _ in range(n)
    ])
    dts = np.array([data.draw(_dt) for _ in range(n)])
    freq = np.array([data.draw(_freq) for _ in range(n)])

    deltas = batch_wrap_deltas(snapshot, baseline)
    deltas = batch_observer_correction(deltas, units, ops)
    metrics = batch_utilization(deltas, freq * dts)

    for i in range(n):
        expected = reference_sample(
            list(snapshot[i]), list(baseline[i]), float(dts[i]),
            float(freq[i]), observer_unit=list(units[i]),
            pending_ops=int(ops[i]),
        )
        assert expected is not None
        exp_deltas, exp_metrics = expected
        assert list(deltas[i]) == exp_deltas
        assert list(metrics[i]) == exp_metrics


@given(
    start=st.floats(min_value=0.0, max_value=COUNTER_WRAP - 1.0),
    delta=st.floats(min_value=0.0, max_value=1e12),
)
def test_wrap_deltas_match_oracle_across_wrap(start, delta):
    """A counter that wrapped mid-interval: both paths recover the same
    (bit-identical) delta, including the fp-noise-to-zero clamp."""
    snapshot = np.full((1, 7), (start + delta) % COUNTER_WRAP)
    baseline = np.full((1, 7), start)
    batched = batch_wrap_deltas(snapshot, baseline)
    expected, _ = reference_sample(
        list(snapshot[0]), list(baseline[0]), 1.0, 1e9
    )
    assert list(batched[0]) == expected


@given(data=st.data())
def test_observer_correction_matches_oracle_and_clamps(data):
    """Observer-overhead subtraction: identical values, and never below
    zero even when the correction exceeds the measured delta."""
    deltas = np.abs(_rows(data.draw, 4, 7, _counter))
    units = _rows(data.draw, 4, CPU_FIELDS, _unit)
    ops = np.array([
        float(data.draw(st.integers(min_value=0, max_value=10_000)))
        for _ in range(4)
    ])
    corrected = batch_observer_correction(deltas, units, ops)
    assert (corrected[:, :CPU_FIELDS] >= 0.0).all()
    # Disk/net columns are never observer-corrected.
    assert (corrected[:, CPU_FIELDS:] == deltas[:, CPU_FIELDS:]).all()
    for i in range(4):
        value = deltas[i, 0] - units[i, 0] * ops[i]
        assert corrected[i, 0] == (value if value > 0.0 else 0.0)


def test_zero_ops_correction_is_identity():
    rng = np.random.default_rng(11)
    deltas = rng.uniform(0.0, 1e9, (6, 7))
    units = rng.uniform(0.0, 1e3, (6, CPU_FIELDS))
    corrected = batch_observer_correction(deltas, units, np.zeros(6))
    assert (corrected == deltas).all()


def test_reference_sample_empty_interval_returns_none():
    snapshot = [1.0] * 7
    baseline = [0.0] * 7
    assert reference_sample(snapshot, baseline, 0.0, 1e9) is None
    assert reference_sample(snapshot, baseline, -1e-6, 1e9) is None


# ---------------------------------------------------------------------------
# Engine-level semantics
# ---------------------------------------------------------------------------
def _build_facility(occupy_every=1):
    from repro.core import PowerContainerFacility, calibrate_machine
    from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
    from repro.kernel import Compute, Kernel
    from repro.sim import Simulator

    calibration = calibrate_machine(SANDYBRIDGE, duration=0.05)
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, calibration)
    spin = RateProfile(name="batch-test-spin", ipc=1.0)
    containers = []
    for index in range(len(machine.cores)):
        container = facility.create_request_container(f"batch-{index}")
        containers.append(container)
        if index % occupy_every:
            continue

        def program():
            yield Compute(cycles=machine.freq_hz * 0.2, profile=spin)

        kernel.spawn(
            program(), f"batch-spin-{index}", container_id=container.id,
            pinned_core=index,
        )
    return sim, facility, containers


def test_sample_all_matches_sequential_scalar_samples():
    """One facility batched, an identical twin sampled per core: every
    per-container statistic must agree bit for bit."""
    sim_a, fac_a, conts_a = _build_facility()
    sim_b, fac_b, conts_b = _build_facility()
    now = 0.0
    # Off-grid step: the facility's own 1 ms OS tick samples on the grid,
    # so an on-grid sample_all would only ever see empty intervals.
    for _ in range(25):
        now += 1.37e-3
        sim_a.run_until(now)
        sim_b.run_until(now)
        fac_a.batch_engine.sample_all(sim_a.now)
        for accountant in fac_b.batch_engine._accountants:
            accountant.sample(sim_b.now)
    for ca, cb in zip(conts_a, conts_b):
        assert ca.stats.energy_joules == cb.stats.energy_joules
        assert ca.stats.cpu_seconds == cb.stats.cpu_seconds
        assert ca.stats.sample_count == cb.stats.sample_count
        assert ca.stats.events.nonhalt_cycles == cb.stats.events.nonhalt_cycles


def test_sample_all_skips_empty_intervals():
    """A second pass at the same instant (dt == 0) charges nothing."""
    sim, facility, _ = _build_facility()
    sim.run_until(1.25e-3)  # off the 1 ms OS-tick grid
    engine = facility.batch_engine
    assert engine.sample_all(sim.now) == len(facility.accountants)
    assert engine.sample_all(sim.now) == 0


def test_sample_all_skips_idle_cores():
    """Idle cores advance their baselines but charge no samples."""
    sim, facility, containers = _build_facility(occupy_every=2)
    sim.run_until(1.25e-3)  # off the 1 ms OS-tick grid
    before = [c.stats.sample_count for c in containers]
    charged = facility.batch_engine.sample_all(sim.now)
    occupied = sum(
        1 for accountant in facility.accountants.values()
        if accountant.occupied
    )
    assert 0 < occupied < len(facility.accountants)
    assert charged == occupied
    for index, container in enumerate(containers):
        expected = 1 if index % 2 == 0 else 0
        assert container.stats.sample_count - before[index] == expected


def test_batch_double_run_fingerprint_is_bit_identical():
    """Two identically-seeded batch runs replay bit for bit."""
    energies = []
    for _ in range(2):
        sim, facility, containers = _build_facility()
        now = 0.0
        for _ in range(15):
            now += 1.37e-3
            sim.run_until(now)
            facility.batch_engine.sample_all(sim.now)
        primary = facility.primary
        energies.append(tuple(c.energy(primary) for c in containers))
    assert energies[0] == energies[1]


def test_engine_requires_accountants():
    with pytest.raises(ValueError):
        BatchAccountingEngine([])
