"""End-to-end request-context tracking tests (Section 3.3 scenarios)."""

import pytest

from repro.core import PowerContainerFacility
from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import (
    Compute,
    ContextTag,
    Kernel,
    Message,
    Recv,
    Send,
    SocketPair,
)
from repro.server import SubService
from repro.sim import Simulator

WORK = RateProfile(name="work", ipc=1.0)


@pytest.fixture
def world(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal)
    return sim, machine, kernel, facility


def test_interleaved_requests_on_persistent_connection(world):
    """The paper's central tracking hazard, end to end: two requests'
    work flows through ONE persistent worker->service connection; each
    container must be charged exactly its own service-side work."""
    sim, machine, kernel, facility = world
    cycles_by_request = {1: 4e6, 2: 12e6}

    def service_factory(message):
        def handler():
            yield Compute(cycles=message.payload, profile=WORK)
            return "done"
        return handler()

    service = SubService(kernel, "db", service_factory)
    endpoint = service.connect()
    c1 = facility.create_request_container("req1")
    c2 = facility.create_request_container("req2")

    def worker():
        # Request 1 arrives; send its query but DO NOT read the reply yet.
        msg1 = yield Recv(worker_inbox.b)
        yield Send(endpoint, nbytes=64, payload=cycles_by_request[1])
        # Request 2 arrives on the same worker (pooling).
        msg2 = yield Recv(worker_inbox.b)
        yield Send(endpoint, nbytes=64, payload=cycles_by_request[2])
        # Now read both replies, in order.
        yield Recv(endpoint)
        yield Recv(endpoint)

    worker_inbox = SocketPair.local(machine, "inbox")
    kernel.spawn(worker(), "worker")
    kernel.inject(worker_inbox.b, Message(
        nbytes=1, tag=ContextTag(container_id=c1.id)))
    sim.run_until(0.001)
    kernel.inject(worker_inbox.b, Message(
        nbytes=1, tag=ContextTag(container_id=c2.id)))
    sim.run_until(0.2)
    facility.flush()

    freq = machine.freq_hz
    # The service thread processed query 1 under context 1 and query 2
    # under context 2, even though both flowed on one connection.
    assert c1.stats.cpu_seconds == pytest.approx(
        cycles_by_request[1] / freq, rel=0.02
    )
    assert c2.stats.cpu_seconds == pytest.approx(
        cycles_by_request[2] / freq, rel=0.02
    )


def test_cross_machine_stats_merge_on_dispatcher(sb_cal):
    """Section 3.4: response messages piggy-back cumulative stats; the
    dispatcher-side container accumulates the remote execution cost."""
    sim = Simulator()
    dispatcher_machine = build_machine(SANDYBRIDGE, sim, name="dispatcher")
    server_machine = build_machine(SANDYBRIDGE, sim, name="server")
    k_disp = Kernel(dispatcher_machine, sim)
    k_srv = Kernel(server_machine, sim)
    f_disp = PowerContainerFacility(k_disp, sb_cal)
    f_srv = PowerContainerFacility(k_srv, sb_cal)

    conn = SocketPair.remote(dispatcher_machine, server_machine, latency=1e-4)
    container = f_disp.create_request_container("cluster-req")

    def server_program():
        while True:
            msg = yield Recv(conn.b)
            yield Compute(cycles=8e6, profile=WORK)
            yield Send(conn.b, nbytes=256, payload="reply")

    def dispatcher_program():
        yield Send(conn.a, nbytes=128, payload="request")
        yield Recv(conn.a)

    k_srv.spawn(server_program(), "server")
    k_disp.spawn(
        dispatcher_program(), "dispatcher", container_id=container.id
    )
    sim.run_until(0.5)
    f_srv.flush()
    f_disp.flush()

    # The server-side container (same id, remote registry) holds the work...
    remote = f_srv.registry.get(container.id)
    assert remote.stats.cpu_seconds == pytest.approx(8e6 / 3.1e9, rel=0.02)
    # ...but the reply's carried stats ALSO landed on the dispatcher side.
    assert container.stats.cpu_seconds >= remote.stats.cpu_seconds * 0.95
    assert container.energy(f_disp.primary) > 0


def test_unknown_remote_container_materialized(world):
    sim, machine, kernel, facility = world
    sock = SocketPair.local(machine)

    def receiver():
        yield Recv(sock.b)
        yield Compute(cycles=1e6, profile=WORK)

    kernel.spawn(receiver(), "rx")
    kernel.inject(sock.b, Message(nbytes=1, tag=ContextTag(container_id=777)))
    sim.run_until(0.1)
    facility.flush()
    remote = facility.registry.get(777)
    assert remote.stats.cpu_seconds > 0


def test_flush_is_idempotent(world):
    sim, machine, kernel, facility = world
    c = facility.create_request_container("r")

    def program():
        yield Compute(cycles=5e6, profile=WORK)

    kernel.spawn(program(), "w", container_id=c.id)
    sim.run_until(0.1)
    facility.flush()
    first = c.energy(facility.primary)
    facility.flush()
    facility.flush()
    assert c.energy(facility.primary) == first


def test_untagged_messages_keep_receiver_context(world):
    """A message without a context tag must not clobber the receiver's
    current binding."""
    sim, machine, kernel, facility = world
    c = facility.create_request_container("r")
    sock = SocketPair.local(machine)

    def receiver():
        yield Recv(sock.b)
        yield Compute(cycles=2e6, profile=WORK)

    rx = kernel.spawn(receiver(), "rx", container_id=c.id)
    kernel.inject(sock.b, Message(nbytes=1))  # untagged
    sim.run_until(0.1)
    facility.flush()
    assert rx.container_id == c.id
    assert c.stats.cpu_seconds > 0
