"""Tests for the chip-wide DVFS capping baseline."""

import pytest

from repro.core.dvfs import DvfsConditioner
from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
from repro.core import PowerContainerFacility
from repro.kernel import Compute, Kernel
from repro.sim import Simulator

VIRUS = RateProfile(name="virus", ipc=2.2, cache_per_cycle=0.018,
                    mem_per_cycle=0.012)
NORMAL = RateProfile(name="normal", ipc=0.3)


def _world(sb_cal, target):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal)
    conditioner = DvfsConditioner(kernel, target_active_watts=target)
    facility.attach_conditioner(conditioner)
    return sim, machine, kernel, facility, conditioner


def _spin(machine, seconds, profile):
    def program():
        yield Compute(cycles=machine.freq_hz * seconds, profile=profile)
    return program()


def test_target_validation(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    with pytest.raises(ValueError):
        DvfsConditioner(kernel, target_active_watts=0.0)


def test_dvfs_caps_power_under_heavy_load(sb_cal):
    target = 40.0
    sim, machine, kernel, facility, conditioner = _world(sb_cal, target)
    for i in range(4):
        c = facility.create_request_container(f"v{i}")
        kernel.spawn(_spin(machine, 0.4, VIRUS), f"v{i}", container_id=c.id)
    sim.run_until(0.1)
    machine.checkpoint()
    start = machine.integrator.active_joules
    sim.run_until(0.4)
    machine.checkpoint()
    watts = (machine.integrator.active_joules - start) / 0.3
    assert watts < target * 1.10
    assert conditioner.adjustments > 0
    assert machine.chips[0].freq_scale < 1.0


def test_dvfs_leaves_light_load_at_full_speed(sb_cal):
    sim, machine, kernel, facility, conditioner = _world(sb_cal, 40.0)
    c = facility.create_request_container("n")
    kernel.spawn(_spin(machine, 0.2, NORMAL), "n", container_id=c.id)
    sim.run_until(0.3)
    assert machine.chips[0].freq_scale == 1.0


def test_dvfs_punishes_everyone_not_just_the_virus(sb_cal):
    """The fairness contrast: with one virus among normals, chip-wide DVFS
    slows the normal requests almost as much as the virus."""
    target = 44.0
    sim, machine, kernel, facility, conditioner = _world(sb_cal, target)
    normal_ids = []
    for i in range(3):
        c = facility.create_request_container(f"n{i}")
        normal_ids.append(c.id)
        kernel.spawn(_spin(machine, 0.2, NORMAL), f"n{i}", container_id=c.id)
    virus = facility.create_request_container("virus")
    kernel.spawn(_spin(machine, 0.2, VIRUS), "virus", container_id=virus.id)
    sim.run_until(1.0)
    facility.flush()
    # All four tasks requested 0.2 s of nominal-frequency cycles; under a
    # chip-wide slowdown everyone's wall time stretches together.
    normals = [
        p for p in kernel.processes.values() if p.name.startswith("n")
    ]
    virus_proc = next(
        p for p in kernel.processes.values() if p.name == "virus"
    )
    assert virus_proc.cpu_seconds > 0.21  # the virus was slowed...
    for proc in normals:
        assert proc.cpu_seconds > 0.21  # ...and so was everyone else
