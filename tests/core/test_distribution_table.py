"""Unit tests for the cross-machine energy profile table."""

import pytest

from repro.core import EnergyProfileTable


@pytest.fixture
def table():
    t = EnergyProfileTable()
    for _ in range(4):
        t.record("sandybridge", "rsa", 0.4)
        t.record("woodcrest", "rsa", 1.8)
        t.record("sandybridge", "stress", 2.0)
        t.record("woodcrest", "stress", 2.2)
    return t


def test_mean_energy(table):
    assert table.mean_energy("sandybridge", "rsa") == pytest.approx(0.4)
    assert table.sample_count("sandybridge", "rsa") == 4


def test_negative_energy_rejected(table):
    with pytest.raises(ValueError):
        table.record("sandybridge", "rsa", -1.0)


def test_missing_profile_raises(table):
    assert not table.has_profile("westmere", "rsa")
    with pytest.raises(KeyError):
        table.mean_energy("westmere", "rsa")


def test_ratio(table):
    assert table.ratio("rsa", "sandybridge", "woodcrest") == pytest.approx(
        0.4 / 1.8
    )
    assert table.ratio("stress", "sandybridge", "woodcrest") == pytest.approx(
        2.0 / 2.2
    )


def test_ratio_zero_denominator():
    t = EnergyProfileTable()
    t.record("a", "x", 1.0)
    t.record("b", "x", 0.0)
    with pytest.raises(ValueError):
        t.ratio("x", "a", "b")


def test_affinity_order(table):
    # RSA gains most from SandyBridge: it comes first (keep), stress last
    # (cheapest to displace).
    order = table.affinity_order(["stress", "rsa"], "sandybridge", "woodcrest")
    assert order == ["rsa", "stress"]


def test_affinity_order_unknown_types_neutral(table):
    order = table.affinity_order(
        ["stress", "mystery", "rsa"], "sandybridge", "woodcrest"
    )
    assert order[0] == "rsa"
    assert order[-1] == "mystery" or order[-1] == "stress"


def test_known_types(table):
    assert table.known_types("sandybridge") == ["rsa", "stress"]
    assert table.known_types("westmere") == []
