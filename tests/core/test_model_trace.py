"""Tests for the facility's machine-level model trace."""

import numpy as np
import pytest

from repro.core import PowerContainerFacility
from repro.core.model import FEATURES_FULL
from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import Compute, Kernel, Sleep
from repro.sim import Simulator

WORK = RateProfile(name="w", ipc=1.0, cache_per_cycle=0.008)


@pytest.fixture
def traced(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal, trace_period=5e-3)
    facility.start_tracing()

    def program():
        for _ in range(10):
            yield Compute(cycles=machine.freq_hz * 10e-3, profile=WORK)
            yield Sleep(5e-3)

    kernel.spawn(program(), "w")
    sim.run_until(0.2)
    return sim, machine, facility


def test_trace_period_spacing(traced):
    _sim, _machine, facility = traced
    times, _watts = facility.model_trace_series()
    gaps = np.diff(times)
    assert np.allclose(gaps, 5e-3)


def test_trace_rows_have_full_feature_width(traced):
    _sim, _machine, facility = traced
    for point in facility.trace[:10]:
        assert point.row.shape == (len(FEATURES_FULL),)
        assert (point.row >= -1e-9).all()


def test_trace_watts_track_activity(traced):
    _sim, _machine, facility = traced
    _times, watts = facility.model_trace_series()
    # The duty pattern (10 ms on, 5 ms off) shows up in the series.
    assert watts.max() > 10.0
    assert watts.min() < 2.0


def test_trace_mcore_never_exceeds_core_count(traced):
    _sim, _machine, facility = traced
    mcore_index = FEATURES_FULL.index("mcore")
    for point in facility.trace:
        assert point.row[mcore_index] <= 4.0 + 0.05


def test_trace_chipshare_bounded_by_chip_count(traced):
    _sim, _machine, facility = traced
    index = FEATURES_FULL.index("mchipshare")
    for point in facility.trace:
        assert 0.0 <= point.row[index] <= 1.0 + 1e-9
