"""Tests for the per-client energy ledger."""

import pytest

from repro.core.clients import ClientEnergyLedger, ClientUsage
from repro.core.container import PowerContainer
from repro.hardware import EventVector


def _container(cid, client, energy, rtype="read", cpu=0.01, io=0.0):
    c = PowerContainer(cid, meta={"client": client, "rtype": rtype})
    c.stats.record_interval(1.0, cpu, EventVector(), {"recal": energy}, 1.0)
    c.stats.io_energy_joules = io
    return c


def test_record_aggregates_per_client():
    ledger = ClientEnergyLedger()
    ledger.record(_container(1, "alice", 2.0))
    ledger.record(_container(2, "alice", 3.0))
    ledger.record(_container(3, "bob", 1.0))
    alice = ledger.usage("alice")
    assert alice.request_count == 2
    assert alice.energy_joules == pytest.approx(5.0)
    assert alice.mean_energy_per_request == pytest.approx(2.5)
    assert ledger.usage("bob").energy_joules == pytest.approx(1.0)


def test_io_energy_included_in_total():
    ledger = ClientEnergyLedger()
    ledger.record(_container(1, "alice", 2.0, io=0.5))
    assert ledger.usage("alice").energy_joules == pytest.approx(2.5)
    assert ledger.usage("alice").io_energy_joules == pytest.approx(0.5)


def test_unattributed_energy_tracked():
    ledger = ClientEnergyLedger()
    anon = PowerContainer(9)
    anon.stats.record_interval(1.0, 0.01, EventVector(), {"recal": 4.0}, 1.0)
    assert ledger.record(anon) is None
    assert ledger.unattributed_joules == pytest.approx(4.0)
    assert ledger.total_joules == 0.0


def test_clients_sorted_by_energy():
    ledger = ClientEnergyLedger()
    ledger.record(_container(1, "small", 1.0))
    ledger.record(_container(2, "big", 10.0))
    ledger.record(_container(3, "mid", 5.0))
    assert ledger.clients() == ["big", "mid", "small"]


def test_by_request_type_breakdown():
    ledger = ClientEnergyLedger()
    ledger.record(_container(1, "alice", 2.0, rtype="read"))
    ledger.record(_container(2, "alice", 6.0, rtype="write"))
    usage = ledger.usage("alice")
    assert usage.by_request_type == {"read": pytest.approx(2.0),
                                     "write": pytest.approx(6.0)}
    assert usage.peak_request_energy == pytest.approx(6.0)


def test_billing():
    ledger = ClientEnergyLedger()
    ledger.record(_container(1, "alice", 100.0))
    bill = ledger.bill(joules_per_unit=10.0)
    assert bill["alice"] == pytest.approx(10.0)
    with pytest.raises(ValueError):
        ledger.bill(0.0)


def test_unseen_client_empty_usage():
    ledger = ClientEnergyLedger()
    usage = ledger.usage("ghost")
    assert isinstance(usage, ClientUsage)
    assert usage.request_count == 0
    assert usage.mean_energy_per_request == 0.0


def test_end_to_end_client_attribution(sb_cal):
    """Containers from a live run, tagged with client ids, aggregate to
    the full measured request energy."""
    from repro.hardware import SANDYBRIDGE
    from repro.workloads import SolrWorkload, run_workload

    run = run_workload(
        SolrWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.4, duration=2.0, warmup=0.0, with_meter=False,
    )
    # Tag each completed request with one of three synthetic tenants.
    for result in run.driver.results:
        result.container.meta["client"] = f"tenant-{result.request_id % 3}"
    ledger = ClientEnergyLedger(approach="recal")
    ledger.record_all(r.container for r in run.driver.results)
    total = sum(r.energy("recal") for r in run.driver.results)
    assert ledger.total_joules == pytest.approx(total, rel=1e-9)
    assert len(ledger.clients()) == 3
