"""Tests for the Eq. 3 chip-share estimator."""

import pytest

from repro.core import ChipShareEstimator
from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
from repro.sim import Simulator

SPIN = RateProfile(name="spin", ipc=1.0)


@pytest.fixture
def machine():
    return build_machine(SANDYBRIDGE, Simulator())


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        ChipShareEstimator(mode="psychic")


def test_none_mode_always_zero(machine):
    est = ChipShareEstimator(mode="none")
    machine.cores[0].begin_activity(SPIN)
    assert est.estimate(machine.cores[0], 1.0) == 0.0


def test_sole_busy_core_gets_full_share(machine):
    est = ChipShareEstimator(mode="mailbox")
    core = machine.cores[0]
    core.begin_activity(SPIN)
    # Siblings idle with zeroed mailboxes.
    assert est.estimate(core, 1.0) == pytest.approx(1.0)


def test_two_busy_cores_split_evenly_with_fresh_samples(machine):
    est = ChipShareEstimator(mode="mailbox")
    a, b = machine.cores[0], machine.cores[1]
    a.begin_activity(SPIN)
    b.begin_activity(SPIN)
    b.mailbox.post(1.0, 1.0)
    assert est.estimate(a, 1.0) == pytest.approx(0.5)


def test_four_busy_cores_quarter_share(machine):
    est = ChipShareEstimator(mode="mailbox")
    for core in machine.cores:
        core.begin_activity(SPIN)
        core.mailbox.post(1.0, 1.0)
    assert est.estimate(machine.cores[0], 1.0) == pytest.approx(0.25)


def test_idle_task_check_zeroes_stale_sibling(machine):
    """A sibling that went idle posts nothing more; its stale sample must be
    ignored when the OS schedules the idle task there."""
    est = ChipShareEstimator(mode="mailbox", idle_task_check=True)
    a, b = machine.cores[0], machine.cores[1]
    a.begin_activity(SPIN)
    b.mailbox.post(0.5, 1.0)  # stale: b was busy earlier
    # b is now idle (no active profile).
    assert est.estimate(a, 1.0) == pytest.approx(1.0)


def test_without_idle_task_check_stale_sample_pollutes(machine):
    est = ChipShareEstimator(mode="mailbox", idle_task_check=False)
    a, b = machine.cores[0], machine.cores[1]
    a.begin_activity(SPIN)
    b.mailbox.post(0.5, 1.0)  # stale
    assert est.estimate(a, 1.0) == pytest.approx(0.5)  # wrongly halved


def test_partial_utilization_scales_share(machine):
    est = ChipShareEstimator(mode="mailbox")
    core = machine.cores[0]
    core.begin_activity(SPIN)
    assert est.estimate(core, 0.5) == pytest.approx(0.5)


def test_zero_utilization_gets_no_share(machine):
    est = ChipShareEstimator(mode="mailbox")
    assert est.estimate(machine.cores[0], 0.0) == 0.0


def test_share_capped_at_one(machine):
    est = ChipShareEstimator(mode="mailbox")
    core = machine.cores[0]
    core.begin_activity(SPIN)
    assert est.estimate(core, 1.0) <= 1.0


def test_oracle_mode_counts_busy_cores(machine):
    est = ChipShareEstimator(mode="oracle")
    for core in machine.cores[:3]:
        core.begin_activity(SPIN)
    assert est.estimate(machine.cores[0], 1.0) == pytest.approx(1.0 / 3.0)


def test_oracle_counts_own_core_when_sampled_after_block(machine):
    """Oracle share for a task sampled just after its core went idle still
    counts that core as busy for the period being accounted."""
    est = ChipShareEstimator(mode="oracle")
    machine.cores[1].begin_activity(SPIN)
    # cores[0] idle at sampling time, but it ran the task this period.
    assert est.estimate(machine.cores[0], 1.0) == pytest.approx(0.5)


def test_shares_sum_to_one_when_all_busy(machine):
    est = ChipShareEstimator(mode="mailbox")
    for core in machine.cores:
        core.begin_activity(SPIN)
        core.mailbox.post(1.0, 1.0)
    total = sum(est.estimate(c, 1.0) for c in machine.cores)
    assert total == pytest.approx(1.0)
