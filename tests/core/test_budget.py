"""Tests for per-request energy budgets."""

import pytest

from repro.core import PowerContainerFacility
from repro.core.budget import EnergyBudgetConditioner
from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import Compute, Kernel
from repro.sim import Simulator

WORK = RateProfile(name="work", ipc=1.0)


def _world(sb_cal, budget, **kwargs):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal)
    conditioner = EnergyBudgetConditioner(
        kernel, default_budget_joules=budget, **kwargs
    )
    facility.attach_conditioner(conditioner)
    return sim, machine, kernel, facility, conditioner


def _spin(machine, seconds):
    def program():
        yield Compute(cycles=machine.freq_hz * seconds, profile=WORK)
    return program()


def test_parameter_validation(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    with pytest.raises(ValueError):
        EnergyBudgetConditioner(kernel, default_budget_joules=0.0)
    with pytest.raises(ValueError):
        EnergyBudgetConditioner(kernel, 1.0, exhausted_duty_level=0)


def test_request_within_budget_runs_full_speed(sb_cal):
    sim, machine, kernel, facility, conditioner = _world(sb_cal, budget=100.0)
    c = facility.create_request_container("cheap")
    kernel.spawn(_spin(machine, 0.05), "w", container_id=c.id)
    sim.run_until(0.2)
    facility.flush()
    assert c.stats.mean_duty_ratio == pytest.approx(1.0)
    assert c.id not in conditioner.exhausted


def test_exhausted_request_gets_clamped(sb_cal):
    """A ~15 W request with a 0.3 J budget exhausts it after ~20 ms and is
    clamped to the minimum duty level for the rest of its execution."""
    sim, machine, kernel, facility, conditioner = _world(sb_cal, budget=0.3)
    c = facility.create_request_container("hog")
    kernel.spawn(_spin(machine, 0.1), "w", container_id=c.id)
    sim.run_until(2.0)
    facility.flush()
    assert c.id in conditioner.exhausted
    assert c.stats.mean_duty_ratio < 0.5
    # The request still completed all its cycles, just slowly.
    assert c.stats.events.nonhalt_cycles == pytest.approx(
        machine.freq_hz * 0.1, rel=1e-3
    )


def test_grant_restores_full_speed(sb_cal):
    sim, machine, kernel, facility, conditioner = _world(sb_cal, budget=0.3)
    c = facility.create_request_container("hog")
    kernel.spawn(_spin(machine, 0.1), "w", container_id=c.id)
    sim.run_until(0.05)  # exhausted by now
    container = facility.registry.get(c.id)
    assert conditioner.remaining(container) < 0
    conditioner.grant(container, 100.0)  # delegation
    assert c.id not in conditioner.exhausted
    sim.run_until(2.0)
    facility.flush()
    # After the grant the remaining execution ran at full speed, so the
    # average duty is well above the clamped level.
    assert c.stats.mean_duty_ratio > 0.6


def test_per_type_budgets(sb_cal):
    budgets = {"gold": 100.0, "bronze": 0.2}
    sim, machine, kernel, facility, conditioner = _world(
        sb_cal, budget=1.0,
        budget_for=lambda c: budgets[c.meta["tier"]],
    )
    gold = facility.create_request_container("g", meta={"tier": "gold"})
    bronze = facility.create_request_container("b", meta={"tier": "bronze"})
    kernel.spawn(_spin(machine, 0.08), "g", container_id=gold.id)
    kernel.spawn(_spin(machine, 0.08), "b", container_id=bronze.id)
    sim.run_until(2.0)
    facility.flush()
    assert gold.stats.mean_duty_ratio == pytest.approx(1.0)
    assert bronze.stats.mean_duty_ratio < 0.6


def test_grant_validation(sb_cal):
    sim, machine, kernel, facility, conditioner = _world(sb_cal, budget=1.0)
    c = facility.create_request_container("r")
    container = facility.registry.get(c.id)
    with pytest.raises(ValueError):
        conditioner.grant(container, -1.0)
    # NaN would make every later remaining() comparison silently false and
    # the request would run unthrottled forever; inf is unbounded budget.
    with pytest.raises(ValueError):
        conditioner.grant(container, float("nan"))
    with pytest.raises(ValueError):
        conditioner.grant(container, float("inf"))
    assert conditioner.budget_of(container) == pytest.approx(1.0)


def test_revoke_grant_inverse(sb_cal):
    sim, machine, kernel, facility, conditioner = _world(sb_cal, budget=1.0)
    container = facility.registry.get(facility.create_request_container("r").id)
    conditioner.grant(container, 5.0)
    assert conditioner.budget_of(container) == pytest.approx(6.0)
    assert conditioner.revoke_grant(container, 2.0) == pytest.approx(2.0)
    assert conditioner.budget_of(container) == pytest.approx(4.0)
    # Revocation is capped at the outstanding grant: the base budget is
    # the container's own, only delegated extras can be taken back.
    assert conditioner.revoke_grant(container, 100.0) == pytest.approx(3.0)
    assert conditioner.budget_of(container) == pytest.approx(1.0)
    assert conditioner.revoke_grant(container) == 0.0
    with pytest.raises(ValueError):
        conditioner.revoke_grant(container, -1.0)
    with pytest.raises(ValueError):
        conditioner.revoke_grant(container, float("nan"))


def test_revoke_all_and_rethrottle(sb_cal):
    """Revoking the grant that rescued an exhausted request re-clamps it."""
    sim, machine, kernel, facility, conditioner = _world(sb_cal, budget=0.3)
    c = facility.create_request_container("hog")
    kernel.spawn(_spin(machine, 0.1), "w", container_id=c.id)
    sim.run_until(0.05)  # exhausted by now
    container = facility.registry.get(c.id)
    conditioner.grant(container, 100.0)
    assert c.id not in conditioner.exhausted
    # None revokes everything outstanding.
    assert conditioner.revoke_grant(container) == pytest.approx(100.0)
    assert c.id in conditioner.exhausted
    assert conditioner.remaining(container) < 0


def test_background_unthrottled(sb_cal):
    sim, machine, kernel, facility, conditioner = _world(sb_cal, budget=0.01)
    kernel.spawn(_spin(machine, 0.1), "daemon")  # background, no container
    sim.run_until(0.5)
    facility.flush()
    bg = facility.registry.background
    assert bg.stats.mean_duty_ratio == pytest.approx(1.0)
