"""Miscellaneous facility behaviours: configuration, tracing, chip share
under churn on the 12-core Westmere."""

import numpy as np
import pytest

from repro.core import PowerContainerFacility, calibrate_machine
from repro.core.facility import ApproachConfig, default_approaches
from repro.core.model import FEATURES_EQ1
from repro.hardware import RateProfile, SANDYBRIDGE, WESTMERE, build_machine
from repro.kernel import Compute, Kernel, Sleep
from repro.sim import Simulator

WORK = RateProfile(name="work", ipc=1.0, cache_per_cycle=0.005)


def test_default_approaches_are_the_papers_three():
    names = [c.name for c in default_approaches()]
    assert names == ["eq1", "eq2", "recal"]
    assert default_approaches()[0].chipshare_mode == "none"
    assert default_approaches()[2].recalibrated


def test_custom_single_approach(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(
        kernel, sb_cal,
        approaches=[ApproachConfig("solo", FEATURES_EQ1, "none")],
    )
    assert facility.primary == "solo"
    assert set(facility.models) == {"solo"}
    assert facility.recalibrators == {}


def test_trace_period_defaults_to_meter_period(sb_cal):
    from repro.hardware import PackageMeter
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    meter = PackageMeter(machine, sim, period=2e-3, delay=1e-3)
    facility = PowerContainerFacility(kernel, sb_cal, meter=meter)
    assert facility.trace_period == 2e-3


def test_estimated_delay_seconds_property(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal, trace_period=1e-3)
    assert facility.estimated_delay_seconds is None
    facility.pin_delay(3)
    assert facility.estimated_delay_seconds == pytest.approx(3e-3)


def test_start_tracing_idempotent(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal, trace_period=1e-2)
    facility.start_tracing()
    facility.start_tracing()
    sim.run_until(0.1)
    # A doubled tracer would produce ~20 points for a 0.1 s run.
    assert 8 <= len(facility.trace) <= 11


@pytest.mark.slow
def test_westmere_chip_share_under_churn():
    """On the 12-core Westmere with tasks arriving and departing every few
    milliseconds, stale mailbox samples and the idle-task check must still
    produce a validation error within the paper's band."""
    cal = calibrate_machine(WESTMERE, duration=0.2)
    sim = Simulator()
    machine = build_machine(WESTMERE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, cal)
    rng = np.random.default_rng(7)
    containers = []

    def burst(cycles):
        def program():
            yield Compute(cycles=cycles, profile=WORK)
        return program()

    # Churn: 300 short tasks with random arrival over 1.5 s.
    t = 0.0
    for i in range(300):
        t += float(rng.exponential(0.005))
        cycles = machine.freq_hz * float(rng.uniform(0.002, 0.02))
        container = facility.create_request_container(f"churn{i}")
        containers.append(container)
        sim.schedule_at(
            t,
            lambda c=cycles, cid=container.id: kernel.spawn(
                burst(c), "task", container_id=cid
            ),
        )
    sim.run_until(3.0)
    facility.flush()
    machine.checkpoint()
    measured = machine.integrator.active_joules
    estimated = facility.registry.total_energy("eq2")
    assert abs(estimated - measured) / measured < 0.08


def test_sleeping_tasks_do_not_accumulate_events(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal)
    container = facility.create_request_container("sleepy")

    def program():
        yield Compute(cycles=1e6, profile=WORK)
        yield Sleep(0.5)
        yield Compute(cycles=1e6, profile=WORK)

    kernel.spawn(program(), "w", container_id=container.id)
    sim.run_until(1.0)
    facility.flush()
    assert container.stats.events.nonhalt_cycles == pytest.approx(2e6, rel=1e-3)
    assert container.stats.cpu_seconds == pytest.approx(2e6 / 3.1e9, rel=1e-3)
