"""Unit tests for the cluster power-cap enforcer and its brownout ladder.

The enforcer is exercised against a fake two-machine cluster whose power
draw is set directly by the test, so every ladder transition (escalation
rate, hysteresis band, degraded-telemetry cap) can be provoked exactly.
The closed loop against real machines runs in the chaos scenarios
(``cap-squeeze``) and the CLI demo.
"""

import pytest

from repro.core.powercap import (
    BROWNOUT_LADDER,
    PowerCapEnforcer,
)
from repro.server.overload import OverloadProtector
from repro.sim import Simulator

INTERVAL = 0.02


class _FakeKernel:
    machine = None  # the conditioner's budget math is not driven here


class _FakeHealth:
    def __init__(self):
        self.meter_state = "ok"


class _FakeFacility:
    def __init__(self):
        self.health = _FakeHealth()
        self.conditioner = None

    def attach_conditioner(self, conditioner):
        self.conditioner = conditioner


class _FakeIntegrator:
    def __init__(self):
        self.active_joules = 0.0


class _FakeMachine:
    """Ground-truth integrator whose draw the test sets directly."""

    def __init__(self, sim):
        self._sim = sim
        self.integrator = _FakeIntegrator()
        self.watts = 0.0
        self._last = 0.0

    def checkpoint(self):
        now = self._sim.now
        self.integrator.active_joules += self.watts * (now - self._last)
        self._last = now


class _FakeMember:
    def __init__(self, name, sim):
        self.name = name
        self.machine = _FakeMachine(sim)
        self.kernel = _FakeKernel()
        self.facility = _FakeFacility()
        self.alive = True


class _FakeCluster:
    def __init__(self, names=("m0", "m1")):
        self.simulator = Simulator()
        self.machines = [_FakeMember(n, self.simulator) for n in names]


def _world(**kwargs):
    cluster = _FakeCluster()
    protector = kwargs.pop("protector", OverloadProtector())
    enforcer = PowerCapEnforcer(
        cluster, kwargs.pop("cap_watts", 100.0), protector=protector,
        interval=INTERVAL, **kwargs,
    )
    return cluster, protector, enforcer


def _set_watts(cluster, per_machine_watts):
    """Checkpoint, then change the draw (clean interval boundaries)."""
    for member in cluster.machines:
        member.machine.checkpoint()
        member.machine.watts = per_machine_watts


def _run_ticks(cluster, n):
    cluster.simulator.run_until(cluster.simulator.now + n * INTERVAL + 1e-6)


def test_parameter_validation():
    cluster = _FakeCluster()
    with pytest.raises(ValueError):
        PowerCapEnforcer(cluster, cap_watts=0.0)
    with pytest.raises(ValueError):
        PowerCapEnforcer(cluster, 100.0, interval=0.0)
    with pytest.raises(ValueError):
        PowerCapEnforcer(cluster, 100.0, step_down_headroom=1.5)
    with pytest.raises(ValueError):
        PowerCapEnforcer(cluster, 100.0, hold_intervals=0)
    with pytest.raises(ValueError):
        PowerCapEnforcer(cluster, 100.0, degraded_cap_fraction=0.0)


def test_escalates_one_rung_per_interval_to_full_rejection():
    cluster, protector, enforcer = _world(hold_intervals=2)
    enforcer.start()
    _set_watts(cluster, 80.0)  # 160 W total, cap 100
    _run_ticks(cluster, 3)
    assert enforcer.level == 3
    assert BROWNOUT_LADDER[enforcer.level] == "reject"
    assert enforcer.escalations == 3
    assert [t.direction for t in enforcer.transitions] == ["up"] * 3
    assert [t.level for t in enforcer.transitions] == [1, 2, 3]
    assert protector.brownout_level == 3
    # At rung >= 1 every alive machine gets an equal share of the cap.
    for member in cluster.machines:
        assert member.facility.conditioner.target_active_watts == \
            pytest.approx(50.0)
    assert enforcer.max_consecutive_over >= 3


def test_steps_down_with_hysteresis_after_load_drops():
    cluster, protector, enforcer = _world(hold_intervals=2)
    enforcer.start()
    _set_watts(cluster, 80.0)
    _run_ticks(cluster, 3)  # level 3 (previous test's ramp)
    _set_watts(cluster, 10.0)  # 20 W total, far below 85 W headroom
    _run_ticks(cluster, 2)
    assert enforcer.level == 2  # one rung down per hold_intervals
    _run_ticks(cluster, 4)
    assert enforcer.level == 0
    assert protector.brownout_level == 0
    assert enforcer.deescalations == 3
    # Back at full speed the conditioners idle again.
    for member in cluster.machines:
        assert member.facility.conditioner.target_active_watts == float("inf")


def test_hysteresis_band_holds_the_current_rung():
    cluster, _, enforcer = _world(hold_intervals=1)
    enforcer.start()
    _set_watts(cluster, 60.0)  # 120 W > 100 W: escalate once
    _run_ticks(cluster, 1)
    assert enforcer.level == 1
    # 90 W total is under the cap but above the 85 W step-down threshold:
    # the ladder must hold, not oscillate at the boundary.
    _set_watts(cluster, 45.0)
    _run_ticks(cluster, 5)
    assert enforcer.level == 1
    assert enforcer.deescalations == 0
    _set_watts(cluster, 25.0)  # 50 W, clearly under the headroom
    _run_ticks(cluster, 1)
    assert enforcer.level == 0
    assert enforcer.deescalations == 1


def test_stale_meter_forces_conservative_cap():
    cluster, _, enforcer = _world(degraded_cap_fraction=0.6, hold_intervals=1)
    enforcer.start()
    # 70 W total: comfortably under the 100 W cap with healthy telemetry...
    cluster.machines[0].facility.health.meter_state = "stale"
    _set_watts(cluster, 35.0)
    _run_ticks(cluster, 1)
    # ...but over the degraded 60 W cap, so the enforcer throttles.
    assert enforcer.degraded
    assert enforcer.effective_cap() == pytest.approx(60.0)
    assert enforcer.level == 1
    assert enforcer.degraded_intervals == 1
    assert cluster.machines[0].facility.conditioner.target_active_watts == \
        pytest.approx(30.0)
    # Telemetry recovers: the nominal cap returns and the rung releases.
    cluster.machines[0].facility.health.meter_state = "ok"
    _run_ticks(cluster, 1)
    assert not enforcer.degraded
    assert enforcer.effective_cap() == pytest.approx(100.0)
    assert enforcer.level == 0  # 70 W < 85 W headroom


def test_without_protector_ladder_stops_at_conditioning():
    cluster = _FakeCluster()
    enforcer = PowerCapEnforcer(cluster, 100.0, protector=None,
                                interval=INTERVAL)
    enforcer.start()
    _set_watts(cluster, 80.0)
    _run_ticks(cluster, 5)
    assert enforcer.level == 1  # shedding/rejection need a protector
    assert enforcer.escalations == 1
    assert enforcer.over_cap_intervals == 5


def test_dead_machines_do_not_dilute_the_cap_share():
    cluster, _, enforcer = _world()
    enforcer.start()
    cluster.machines[1].alive = False
    _set_watts(cluster, 120.0)
    _run_ticks(cluster, 1)
    # The whole effective cap goes to the lone survivor.
    assert cluster.machines[0].facility.conditioner.target_active_watts == \
        pytest.approx(100.0)


def test_health_stats_schema():
    cluster, _, enforcer = _world()
    enforcer.start()
    _set_watts(cluster, 80.0)
    _run_ticks(cluster, 2)
    stats = enforcer.health_stats()
    assert stats["powercap_level"] == 2.0
    assert stats["powercap_cap_watts"] == 100.0
    assert stats["powercap_ticks"] == 2.0
    assert stats["powercap_escalations"] == 2.0
    assert stats["powercap_measured_watts"] == pytest.approx(160.0)
    for key in ("powercap_effective_cap", "powercap_deescalations",
                "powercap_over_cap_intervals", "powercap_max_consecutive_over",
                "powercap_degraded_intervals", "powercap_degraded",
                "powercap_transitions", "powercap_conditioner_adjustments"):
        assert key in stats
    assert all(isinstance(v, float) for v in stats.values())
