"""Tests for power anomaly (power virus) detection."""

import pytest

from repro.core.anomaly import (
    AnomalyReport,
    DetectingConditionerBridge,
    PowerAnomalyDetector,
)
from repro.core.container import PowerContainer
from repro.core.registry import BACKGROUND_CONTAINER_ID


def _feed_baseline(detector, n=30, watts=10.0):
    for i in range(n):
        c = PowerContainer(1000 + i, label=f"normal-{i}")
        detector.observe(c, watts + (i % 5) * 0.2, now=float(i))


def test_threshold_validation():
    with pytest.raises(ValueError):
        PowerAnomalyDetector(threshold_deviations=0)


def test_no_flags_before_baseline_established():
    detector = PowerAnomalyDetector(min_baseline_samples=20)
    virus = PowerContainer(1, label="virus")
    for i in range(10):
        assert detector.observe(virus, 50.0, now=float(i)) is None
    assert not detector.is_flagged(1)


def test_normal_requests_never_flagged():
    detector = PowerAnomalyDetector()
    _feed_baseline(detector)
    normal = PowerContainer(1, label="normal")
    for i in range(10):
        assert detector.observe(normal, 10.5, now=float(i)) is None
    assert detector.reports == []


def test_power_virus_flagged_after_sustained_evidence():
    detector = PowerAnomalyDetector(min_observations=3)
    _feed_baseline(detector)
    virus = PowerContainer(1, label="virus", meta={"rtype": "virus"})
    assert detector.observe(virus, 25.0, now=100.0) is None
    assert detector.observe(virus, 25.0, now=100.1) is None
    report = detector.observe(virus, 25.0, now=100.2)
    assert isinstance(report, AnomalyReport)
    assert report.container_id == 1
    assert report.meta["rtype"] == "virus"
    assert detector.is_flagged(1)


def test_container_flagged_only_once():
    detector = PowerAnomalyDetector(min_observations=1)
    _feed_baseline(detector)
    virus = PowerContainer(1, label="virus")
    first = detector.observe(virus, 30.0, now=1.0)
    second = detector.observe(virus, 30.0, now=2.0)
    assert first is not None
    assert second is None
    assert len(detector.reports) == 1


def test_single_spike_not_flagged():
    """One outlier sample is not sustained evidence."""
    detector = PowerAnomalyDetector(min_observations=3)
    _feed_baseline(detector)
    flaky = PowerContainer(2, label="flaky")
    assert detector.observe(flaky, 28.0, now=1.0) is None
    # Back to normal: the suspicion counter resets.
    assert detector.observe(flaky, 10.0, now=1.1) is None
    assert detector.observe(flaky, 28.0, now=1.2) is None
    assert detector.observe(flaky, 28.0, now=1.3) is None
    assert not detector.is_flagged(2)


def test_anomalous_samples_do_not_poison_baseline():
    detector = PowerAnomalyDetector(min_observations=1)
    _feed_baseline(detector)
    baseline_before = detector.baseline_watts
    virus = PowerContainer(1, label="virus")
    for i in range(50):
        detector.observe(virus, 40.0, now=float(i))
    assert detector.baseline_watts == pytest.approx(baseline_before, abs=0.5)


def test_background_container_ignored():
    detector = PowerAnomalyDetector(min_observations=1)
    _feed_baseline(detector)
    bg = PowerContainer(BACKGROUND_CONTAINER_ID, label="background")
    assert detector.observe(bg, 100.0, now=1.0) is None


def test_report_str_is_informative():
    report = AnomalyReport(
        container_id=7, label="gae:virus", detected_at=1.5,
        power_watts=22.0, baseline_watts=11.0, deviations=9.3,
    )
    text = str(report)
    assert "gae:virus" in text and "22.0" in text


@pytest.mark.slow
def test_bridge_detects_viruses_in_live_run(sb_cal):
    """End-to-end: the bridge on a GAE-Hybrid run flags virus containers
    and not Vosao containers."""
    from repro.workloads import GaeHybridWorkload, run_workload
    from repro.hardware import SANDYBRIDGE

    detector = PowerAnomalyDetector(threshold_deviations=5.0)

    def bridge_factory(kernel):
        return DetectingConditionerBridge(detector, kernel.simulator)

    run = run_workload(
        GaeHybridWorkload(), SANDYBRIDGE, sb_cal,
        load_fraction=0.6, duration=5.0, warmup=0.0,
        conditioner_factory=bridge_factory,
    )
    virus_ids = {
        r.container.id for r in run.driver.results if r.rtype == "virus"
    }
    vosao_ids = {
        r.container.id for r in run.driver.results if r.rtype != "virus"
    }
    flagged = {report.container_id for report in detector.reports}
    assert virus_ids, "the hybrid run must contain viruses"
    # Most viruses detected; no normal request falsely flagged.
    assert len(flagged & virus_ids) >= len(virus_ids) * 0.6
    assert not (flagged & vosao_ids)
