"""Property-based tests on Eq. 3 chip-share conservation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ChipShareEstimator
from repro.hardware import RateProfile, SANDYBRIDGE, WESTMERE, build_machine
from repro.sim import Simulator

SPIN = RateProfile(name="spin", ipc=1.0)


@settings(max_examples=40)
@given(
    busy_mask=st.lists(st.booleans(), min_size=4, max_size=4),
    utils=st.lists(st.floats(min_value=0.05, max_value=1.0),
                   min_size=4, max_size=4),
)
def test_property_fresh_sample_shares_sum_to_at_most_one(busy_mask, utils):
    """With fresh mailbox samples, the busy cores' shares never overshoot
    the single chip's worth of maintenance power."""
    machine = build_machine(SANDYBRIDGE, Simulator())
    est = ChipShareEstimator(mode="mailbox")
    for core, busy, util in zip(machine.cores, busy_mask, utils):
        if busy:
            core.begin_activity(SPIN)
            core.mailbox.post(1.0, util)
    total = sum(
        est.estimate(core, util)
        for core, busy, util in zip(machine.cores, busy_mask, utils)
        if busy
    )
    assert total <= 1.0 + 1e-9


@settings(max_examples=40)
@given(n_busy=st.integers(min_value=1, max_value=4))
def test_property_full_utilization_shares_sum_to_one(n_busy):
    machine = build_machine(SANDYBRIDGE, Simulator())
    est = ChipShareEstimator(mode="mailbox")
    for core in machine.cores[:n_busy]:
        core.begin_activity(SPIN)
        core.mailbox.post(1.0, 1.0)
    total = sum(est.estimate(c, 1.0) for c in machine.cores[:n_busy])
    assert total == pytest.approx(1.0)


@settings(max_examples=30)
@given(
    busy_per_chip=st.tuples(st.integers(min_value=0, max_value=6),
                            st.integers(min_value=0, max_value=6)),
)
def test_property_multichip_shares_bounded_per_chip(busy_per_chip):
    """On the dual-chip Westmere, each chip's shares are independent and
    each sums to at most 1 (one maintenance domain per chip)."""
    machine = build_machine(WESTMERE, Simulator())
    est = ChipShareEstimator(mode="mailbox")
    for chip, n_busy in zip(machine.chips, busy_per_chip):
        for core in chip.cores[:n_busy]:
            core.begin_activity(SPIN)
            core.mailbox.post(1.0, 1.0)
    for chip, n_busy in zip(machine.chips, busy_per_chip):
        total = sum(est.estimate(c, 1.0) for c in chip.cores[:n_busy])
        if n_busy:
            assert total == pytest.approx(1.0)
        else:
            assert total == 0.0


@settings(max_examples=30)
@given(
    stale=st.floats(min_value=0.0, max_value=1.0),
    own=st.floats(min_value=0.05, max_value=1.0),
)
def test_property_stale_sample_bounds(stale, own):
    """However stale the sibling sample, the share stays in (0, 1]."""
    machine = build_machine(SANDYBRIDGE, Simulator())
    est = ChipShareEstimator(mode="mailbox", idle_task_check=False)
    a, b = machine.cores[0], machine.cores[1]
    a.begin_activity(SPIN)
    b.mailbox.post(0.0, stale)
    share = est.estimate(a, own)
    assert 0.0 < share <= 1.0
    # A stale busy-looking sibling can only shrink the share, never
    # inflate it beyond the own utilization.
    assert share <= own + 1e-12
