"""Failure-injection tests: the facility degrades gracefully.

A real deployment sees flaky meters, noisy measurements, and workloads with
pathological shapes; the accounting layer must keep producing sane numbers
(falling back to the offline model) rather than crash or corrupt state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PowerContainerFacility
from repro.faults import (
    FaultPlan,
    MeterFaultInjector,
    MeterFaultProfile,
    TagFaultInjector,
    build_cluster_world,
    build_single_world,
    schedule_meter_outage,
)
from repro.hardware import (
    PackageMeter,
    RateProfile,
    SANDYBRIDGE,
    WallMeter,
    build_machine,
)
from repro.kernel import Compute, Kernel, Recv, Send, Sleep
from repro.kernel.sockets import SocketPair
from repro.sim import Simulator

HOT = RateProfile(name="hot", ipc=1.2, cache_per_cycle=0.012,
                  mem_per_cycle=0.007, hidden_watts=5.0)


def _world(sb_cal, meter=None, **kwargs):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    if meter == "package":
        kwargs.setdefault("meter", PackageMeter(machine, sim, period=1e-3,
                                                delay=1e-3))
        kwargs.setdefault("meter_idle_watts", sb_cal.package_idle_watts)
        kwargs.setdefault("trace_period", 1e-3)
        kwargs.setdefault("recalib_interval", 0.1)
        kwargs.setdefault("max_delay_seconds", 0.01)
    facility = PowerContainerFacility(kernel, sb_cal, **kwargs)
    return sim, machine, kernel, facility


def _busy_program(machine, duration):
    def program():
        elapsed = 0.0
        while elapsed < duration:
            yield Compute(cycles=machine.freq_hz * 0.02, profile=HOT)
            yield Sleep(0.005)
            elapsed += 0.025
    return program()


def test_meter_outage_mid_run_degrades_gracefully(sb_cal):
    """The meter dies mid-run: recalibration stops improving, accounting
    keeps running on the last recalibrated model, nothing crashes."""
    sim, machine, kernel, facility = _world(sb_cal, meter="package")
    facility.start_tracing()
    container = facility.create_request_container("r")
    kernel.spawn(_busy_program(machine, 2.0), "w", container_id=container.id)
    sim.schedule(1.0, facility.meter.stop)
    sim.run_until(2.0)
    facility.flush()
    machine.checkpoint()
    measured = machine.integrator.active_joules
    estimated = facility.registry.total_energy("recal")
    # Recalibration ran during the first second, so the estimate is good.
    assert abs(estimated - measured) / measured < 0.12
    samples_at_death = len(facility.meter.all_samples)
    assert samples_at_death < 1100  # sampling genuinely stopped


def test_facility_without_meter_never_recalibrates(sb_cal):
    sim, machine, kernel, facility = _world(sb_cal)
    facility.start_tracing()
    kernel.spawn(_busy_program(machine, 1.0), "w")
    sim.run_until(1.0)
    assert facility.recalibrators["recal"].recalibration_count == 0
    assert facility.estimated_delay_samples is None


def test_noisy_meter_still_recalibrates(sb_cal):
    """Heavy measurement noise (2 W std) slows but does not break
    recalibration: the refit stays within a sane band."""
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    noisy = PackageMeter(machine, sim, period=1e-3, delay=1e-3,
                         noise_std_watts=2.0,
                         rng=np.random.default_rng(1))
    facility = PowerContainerFacility(
        kernel, sb_cal, meter=noisy,
        meter_idle_watts=sb_cal.package_idle_watts,
        trace_period=1e-3, recalib_interval=0.1, max_delay_seconds=0.01,
    )
    facility.start_tracing()
    container = facility.create_request_container("r")
    kernel.spawn(_busy_program(machine, 2.0), "w", container_id=container.id)
    sim.run_until(2.0)
    facility.flush()
    machine.checkpoint()
    measured = machine.integrator.active_joules
    estimated = facility.registry.total_energy("recal")
    assert abs(estimated - measured) / measured < 0.15
    assert (facility.models["recal"].coefficients >= 0).all()


def test_empty_run_produces_no_nans(sb_cal):
    sim, machine, kernel, facility = _world(sb_cal, meter="package")
    facility.start_tracing()
    sim.run_until(0.5)  # machine idle the whole time
    facility.flush()
    _times, watts = facility.model_trace_series()
    assert np.isfinite(watts).all()
    assert facility.registry.total_energy("recal") == 0.0


def test_zero_length_requests_are_harmless(sb_cal):
    sim, machine, kernel, facility = _world(sb_cal)
    container = facility.create_request_container("empty")

    def program():
        yield Compute(cycles=0, profile=HOT)

    kernel.spawn(program(), "w", container_id=container.id)
    sim.run_until(0.01)
    facility.flush()
    assert container.mean_power("recal") == 0.0
    assert container.energy("recal") == 0.0


def test_meter_flapping_three_outages_recovers_each_time(sb_cal):
    """Acceptance: kill the package meter mid-run and restart it, three
    times.  Every outage must trip the staleness watchdog (fallback to the
    last-good model), every restart must be detected (recovery), and the
    end-to-end attribution error must stay bounded throughout."""
    sim, machine, kernel, facility = _world(sb_cal, meter="package")
    facility.start_tracing()
    injector = MeterFaultInjector(facility.meter, np.random.default_rng(0))
    # 0.3 s outages comfortably exceed the 0.2 s staleness timeout.
    for start in (0.3, 1.0, 1.7):
        schedule_meter_outage(sim, injector, at=start, duration=0.3)
    container = facility.create_request_container("r")
    kernel.spawn(_busy_program(machine, 2.4), "w", container_id=container.id)
    sim.run_until(2.4)
    facility.flush()
    machine.checkpoint()

    assert injector.outages == 3
    assert facility.meter.start_count == 4  # initial start + 3 restarts
    health = facility.health_stats()
    assert health["meter_fallbacks"] >= 2
    assert health["meter_recoveries"] >= 2
    measured = machine.integrator.active_joules
    estimated = facility.registry.total_energy("recal")
    assert abs(estimated - measured) / measured < 0.2


def test_nan_burst_is_rejected_and_models_stay_finite(sb_cal):
    """A burst of NaN / negative readings mid-run: every poisoned sample is
    rejected at ingestion, the guard keeps garbage out of the live model,
    and the trace never shows a non-finite watt."""
    sim, machine, kernel, facility = _world(sb_cal, meter="package")
    facility.start_tracing()
    injector = MeterFaultInjector(facility.meter, np.random.default_rng(2))
    sim.schedule(0.5, injector.set_profile,
                 MeterFaultProfile(nan_prob=0.6, negative_prob=0.3))
    sim.schedule(1.2, injector.set_profile, None)
    container = facility.create_request_container("r")
    kernel.spawn(_busy_program(machine, 2.0), "w", container_id=container.id)
    sim.run_until(2.0)
    facility.flush()
    machine.checkpoint()

    assert injector.corrupted > 50
    assert facility.health_stats()["rejected_meter_samples"] > 0
    for model in facility.models.values():
        assert np.isfinite(model.coefficients).all()
    _times, watts = facility.model_trace_series()
    assert np.isfinite(watts).all()
    measured = machine.integrator.active_joules
    estimated = facility.registry.total_energy("recal")
    assert abs(estimated - measured) / measured < 0.2


def test_tag_loss_under_pipelined_sockets(sb_cal):
    """Four tagged segments queue on one endpoint before the reader wakes
    (pipelining); the first two lose their in-band tags on the wire.  The
    untagged segments are counted and routed to background, the leaked
    send-side references are released via ``on_loss``, and the reader ends
    bound to the context of the last *tagged* segment it consumed."""
    sim, machine, kernel, facility = _world(
        sb_cal, route_untagged_to_background=True
    )
    pair = SocketPair.local(machine, "pipe")
    lost: list[int] = []

    def on_loss(container_id: int) -> None:
        facility.registry.decref(container_id)  # release the send-side ref
        lost.append(container_id)
        if len(lost) == 2:
            injector.deactivate()

    injector = TagFaultInjector(
        pair.b, np.random.default_rng(0), loss_prob=1.0, on_loss=on_loss
    )
    injector.activate()

    containers = [facility.create_request_container(f"r{i}") for i in range(4)]

    def sender():
        yield Send(pair.a, nbytes=100.0)

    for c in containers:
        kernel.spawn(sender(), f"s{c.id}", container_id=c.id)

    def receiver():
        for _ in range(4):
            yield Recv(pair.b)

    # Spawn the reader only after every segment is buffered: the classic
    # pipelined-socket hazard of Section 3.3.
    reader_ref = {}
    sim.schedule(0.01, lambda: reader_ref.update(
        proc=kernel.spawn(receiver(), "reader")
    ))
    sim.run_until(0.05)

    assert injector.lost_tags == 2
    assert lost == [containers[0].id, containers[1].id]
    assert facility.health.untagged_segments == 2
    # Send increfs in flight; on_recv decrefs on delivery, and on_loss
    # releases the reference a stripped tag would otherwise leak.  With the
    # senders exited and the reader drained, every container must be fully
    # released -- a nonzero refcount here is exactly the tag-loss leak.
    assert [c.refcount for c in containers] == [0, 0, 0, 0]
    # The reader consumed [untagged, untagged, c2, c3] and must end bound
    # to the last tagged context, not a stale one.
    assert reader_ref["proc"].container_id == containers[3].id


def test_cluster_crash_mid_dispatch_fails_over():
    """A machine crashes with requests in flight: the dispatcher fails the
    stranded work over to the survivor, excludes the corpse, and re-admits
    it after recovery -- no request is lost without being counted."""
    world = build_cluster_world(seed=3, duration=1.2)
    sim = world.simulator
    victim = world.cluster.by_name("sb1")
    sim.schedule_at(0.3, victim.crash)
    sim.schedule_at(0.7, victim.recover)
    world.start()
    sim.run_until(1.2)

    dispatcher = world.dispatcher
    assert victim.crash_count == 1
    assert dispatcher.failed_over >= 1
    assert dispatcher.completed > 0
    assert not any(
        r.machine_name == "sb1" and 0.3 < r.arrival < 0.7
        for r in dispatcher.results
    )
    assert any(
        r.machine_name == "sb1" and r.arrival >= 0.7
        for r in dispatcher.results
    )


@pytest.mark.slow
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_fault_plans_never_corrupt_accounting(seed):
    """Property: whatever random fault plan a seed draws -- outages, noise
    windows, tag loss, frozen mailboxes, in any overlap -- the facility
    never reports NaN or negative energy and every model stays finite."""
    world = build_single_world(seed, duration=0.5)
    plan = FaultPlan.random(
        world.hub.stream("property-plan"), world.duration,
        endpoints=("listener",), n_cores=world.machine.n_cores,
    )
    plan.apply(world.simulator, world.targets)
    world.start()
    world.simulator.run_until(world.duration)
    world.facility.flush()

    _times, watts = world.facility.model_trace_series()
    if len(watts):
        assert np.isfinite(watts).all()
    for model in world.facility.models.values():
        assert np.isfinite(model.coefficients).all()
    primary = world.facility.primary
    for container in world.facility.registry.all_containers():
        energy = container.total_energy(primary)
        assert np.isfinite(energy)
        assert energy >= -1e-6


def test_wall_meter_with_delay_longer_than_run(sb_cal):
    """If the run ends before any sample is delivered, recalibration simply
    never fires -- no crash, offline accounting intact."""
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    meter = WallMeter(machine, sim, period=0.25, delay=60.0)
    facility = PowerContainerFacility(
        kernel, sb_cal, meter=meter, meter_idle_watts=sb_cal.idle_watts,
        meter_covers_peripherals=True, trace_period=0.25,
        recalib_interval=0.5, max_delay_seconds=2.0,
    )
    facility.start_tracing()
    kernel.spawn(_busy_program(machine, 1.5), "w")
    sim.run_until(1.5)
    assert facility.recalibrators["recal"].recalibration_count == 0
