"""Failure-injection tests: the facility degrades gracefully.

A real deployment sees flaky meters, noisy measurements, and workloads with
pathological shapes; the accounting layer must keep producing sane numbers
(falling back to the offline model) rather than crash or corrupt state.
"""

import numpy as np

from repro.core import PowerContainerFacility
from repro.hardware import (
    PackageMeter,
    RateProfile,
    SANDYBRIDGE,
    WallMeter,
    build_machine,
)
from repro.kernel import Compute, Kernel, Sleep
from repro.sim import Simulator

HOT = RateProfile(name="hot", ipc=1.2, cache_per_cycle=0.012,
                  mem_per_cycle=0.007, hidden_watts=5.0)


def _world(sb_cal, meter=None, **kwargs):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    if meter == "package":
        kwargs.setdefault("meter", PackageMeter(machine, sim, period=1e-3,
                                                delay=1e-3))
        kwargs.setdefault("meter_idle_watts", sb_cal.package_idle_watts)
        kwargs.setdefault("trace_period", 1e-3)
        kwargs.setdefault("recalib_interval", 0.1)
        kwargs.setdefault("max_delay_seconds", 0.01)
    facility = PowerContainerFacility(kernel, sb_cal, **kwargs)
    return sim, machine, kernel, facility


def _busy_program(machine, duration):
    def program():
        elapsed = 0.0
        while elapsed < duration:
            yield Compute(cycles=machine.freq_hz * 0.02, profile=HOT)
            yield Sleep(0.005)
            elapsed += 0.025
    return program()


def test_meter_outage_mid_run_degrades_gracefully(sb_cal):
    """The meter dies mid-run: recalibration stops improving, accounting
    keeps running on the last recalibrated model, nothing crashes."""
    sim, machine, kernel, facility = _world(sb_cal, meter="package")
    facility.start_tracing()
    container = facility.create_request_container("r")
    kernel.spawn(_busy_program(machine, 2.0), "w", container_id=container.id)
    sim.schedule(1.0, facility.meter.stop)
    sim.run_until(2.0)
    facility.flush()
    machine.checkpoint()
    measured = machine.integrator.active_joules
    estimated = facility.registry.total_energy("recal")
    # Recalibration ran during the first second, so the estimate is good.
    assert abs(estimated - measured) / measured < 0.12
    samples_at_death = len(facility.meter.all_samples)
    assert samples_at_death < 1100  # sampling genuinely stopped


def test_facility_without_meter_never_recalibrates(sb_cal):
    sim, machine, kernel, facility = _world(sb_cal)
    facility.start_tracing()
    kernel.spawn(_busy_program(machine, 1.0), "w")
    sim.run_until(1.0)
    assert facility.recalibrators["recal"].recalibration_count == 0
    assert facility.estimated_delay_samples is None


def test_noisy_meter_still_recalibrates(sb_cal):
    """Heavy measurement noise (2 W std) slows but does not break
    recalibration: the refit stays within a sane band."""
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    noisy = PackageMeter(machine, sim, period=1e-3, delay=1e-3,
                         noise_std_watts=2.0,
                         rng=np.random.default_rng(1))
    facility = PowerContainerFacility(
        kernel, sb_cal, meter=noisy,
        meter_idle_watts=sb_cal.package_idle_watts,
        trace_period=1e-3, recalib_interval=0.1, max_delay_seconds=0.01,
    )
    facility.start_tracing()
    container = facility.create_request_container("r")
    kernel.spawn(_busy_program(machine, 2.0), "w", container_id=container.id)
    sim.run_until(2.0)
    facility.flush()
    machine.checkpoint()
    measured = machine.integrator.active_joules
    estimated = facility.registry.total_energy("recal")
    assert abs(estimated - measured) / measured < 0.15
    assert (facility.models["recal"].coefficients >= 0).all()


def test_empty_run_produces_no_nans(sb_cal):
    sim, machine, kernel, facility = _world(sb_cal, meter="package")
    facility.start_tracing()
    sim.run_until(0.5)  # machine idle the whole time
    facility.flush()
    _times, watts = facility.model_trace_series()
    assert np.isfinite(watts).all()
    assert facility.registry.total_energy("recal") == 0.0


def test_zero_length_requests_are_harmless(sb_cal):
    sim, machine, kernel, facility = _world(sb_cal)
    container = facility.create_request_container("empty")

    def program():
        yield Compute(cycles=0, profile=HOT)

    kernel.spawn(program(), "w", container_id=container.id)
    sim.run_until(0.01)
    facility.flush()
    assert container.mean_power("recal") == 0.0
    assert container.energy("recal") == 0.0


def test_wall_meter_with_delay_longer_than_run(sb_cal):
    """If the run ends before any sample is delivered, recalibration simply
    never fires -- no crash, offline accounting intact."""
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    meter = WallMeter(machine, sim, period=0.25, delay=60.0)
    facility = PowerContainerFacility(
        kernel, sb_cal, meter=meter, meter_idle_watts=sb_cal.idle_watts,
        meter_covers_peripherals=True, trace_period=0.25,
        recalib_interval=0.5, max_delay_seconds=2.0,
    )
    facility.start_tracing()
    kernel.spawn(_busy_program(machine, 1.5), "w")
    sim.run_until(1.5)
    assert facility.recalibrators["recal"].recalibration_count == 0
