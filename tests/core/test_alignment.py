"""Tests for Eq. 4 cross-correlation alignment."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import align_series, cross_correlation, estimate_delay
from repro.core.alignment import correlation_curve


def _phased_signal(n, period=40, amplitude=5.0, base=30.0, seed=0):
    """A square-ish power signal with distinct phases."""
    rng = np.random.default_rng(seed)
    phases = (np.arange(n) // period) % 2
    return base + amplitude * phases + rng.normal(0, 0.2, n)


def test_zero_delay_detected():
    signal = _phased_signal(400)
    assert estimate_delay(signal, signal, max_delay_samples=50) == 0


def test_known_delay_recovered():
    model = _phased_signal(400)
    delay = 12
    measured = model[:-delay]  # measurement lags: last 12 model samples unseen
    est = estimate_delay(measured, model, max_delay_samples=50)
    assert est == delay


def test_delay_recovered_with_level_error():
    """A badly calibrated model misjudges levels but tracks transitions;
    alignment must still find the right delay (the paper's key insight)."""
    model = _phased_signal(400)
    delay = 7
    measured = (model * 1.8 + 10.0)[:-delay]  # scaled + offset measurement
    est = estimate_delay(measured, model, max_delay_samples=30)
    assert est == delay


def test_delay_recovered_despite_noise():
    rng = np.random.default_rng(3)
    model = _phased_signal(600, seed=1)
    delay = 20
    measured = model[:-delay] + rng.normal(0, 1.0, 600 - delay)
    est = estimate_delay(measured, model, max_delay_samples=40)
    assert abs(est - delay) <= 1


def test_cross_correlation_rejects_negative_delay():
    with pytest.raises(ValueError):
        cross_correlation(np.ones(5), np.ones(5), -1)


def test_cross_correlation_beyond_series_is_zero():
    assert cross_correlation(np.ones(5), np.ones(5), 10) == 0.0


def test_correlation_curve_length():
    curve = correlation_curve(np.ones(50), np.ones(50), 10)
    assert len(curve) == 11


def test_align_series_pairs_matching_intervals():
    model = np.arange(10, dtype=float)
    measured = model[:-3] * 2  # delay of 3 samples
    m, mod = align_series(measured, model, delay_samples=3)
    assert len(m) == len(mod) == 7
    assert np.allclose(m, mod * 2)


def test_align_series_zero_delay_identity():
    a = np.arange(5, dtype=float)
    m, mod = align_series(a, a, 0)
    assert np.allclose(m, mod)


def test_align_series_empty_inputs():
    m, mod = align_series(np.array([]), np.array([]), 0)
    assert len(m) == 0 and len(mod) == 0


def test_align_series_rejects_negative_delay():
    with pytest.raises(ValueError):
        align_series(np.ones(5), np.ones(5), -2)


def test_align_unequal_lengths_right_aligned():
    model = np.arange(20, dtype=float)
    measured = np.array([17.0, 18.0, 19.0])  # most recent three, no delay
    m, mod = align_series(measured, model, 0)
    assert np.allclose(mod, [17.0, 18.0, 19.0])


@settings(max_examples=30)
@given(delay=st.integers(min_value=0, max_value=25))
def test_property_any_delay_recovered(delay):
    model = _phased_signal(500, period=23, seed=9)
    measured = model if delay == 0 else model[:-delay]
    assert estimate_delay(measured, model, max_delay_samples=30) == delay
