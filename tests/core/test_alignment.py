"""Tests for Eq. 4 cross-correlation alignment."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import align_series, cross_correlation, estimate_delay
from repro.core.alignment import correlation_curve, correlation_curve_reference


def _phased_signal(n, period=40, amplitude=5.0, base=30.0, seed=0):
    """A square-ish power signal with distinct phases."""
    rng = np.random.default_rng(seed)
    phases = (np.arange(n) // period) % 2
    return base + amplitude * phases + rng.normal(0, 0.2, n)


def test_zero_delay_detected():
    signal = _phased_signal(400)
    assert estimate_delay(signal, signal, max_delay_samples=50) == 0


def test_known_delay_recovered():
    model = _phased_signal(400)
    delay = 12
    measured = model[:-delay]  # measurement lags: last 12 model samples unseen
    est = estimate_delay(measured, model, max_delay_samples=50)
    assert est == delay


def test_delay_recovered_with_level_error():
    """A badly calibrated model misjudges levels but tracks transitions;
    alignment must still find the right delay (the paper's key insight)."""
    model = _phased_signal(400)
    delay = 7
    measured = (model * 1.8 + 10.0)[:-delay]  # scaled + offset measurement
    est = estimate_delay(measured, model, max_delay_samples=30)
    assert est == delay


def test_delay_recovered_despite_noise():
    rng = np.random.default_rng(3)
    model = _phased_signal(600, seed=1)
    delay = 20
    measured = model[:-delay] + rng.normal(0, 1.0, 600 - delay)
    est = estimate_delay(measured, model, max_delay_samples=40)
    assert abs(est - delay) <= 1


def test_cross_correlation_rejects_negative_delay():
    with pytest.raises(ValueError):
        cross_correlation(np.ones(5), np.ones(5), -1)


def test_cross_correlation_beyond_series_is_zero():
    assert cross_correlation(np.ones(5), np.ones(5), 10) == 0.0


def test_correlation_curve_length():
    curve = correlation_curve(np.ones(50), np.ones(50), 10)
    assert len(curve) == 11


def test_align_series_pairs_matching_intervals():
    model = np.arange(10, dtype=float)
    measured = model[:-3] * 2  # delay of 3 samples
    m, mod = align_series(measured, model, delay_samples=3)
    assert len(m) == len(mod) == 7
    assert np.allclose(m, mod * 2)


def test_align_series_zero_delay_identity():
    a = np.arange(5, dtype=float)
    m, mod = align_series(a, a, 0)
    assert np.allclose(m, mod)


def test_align_series_empty_inputs():
    m, mod = align_series(np.array([]), np.array([]), 0)
    assert len(m) == 0 and len(mod) == 0


def test_align_series_rejects_negative_delay():
    with pytest.raises(ValueError):
        align_series(np.ones(5), np.ones(5), -2)


def test_align_unequal_lengths_right_aligned():
    model = np.arange(20, dtype=float)
    measured = np.array([17.0, 18.0, 19.0])  # most recent three, no delay
    m, mod = align_series(measured, model, 0)
    assert np.allclose(mod, [17.0, 18.0, 19.0])


@settings(max_examples=30)
@given(delay=st.integers(min_value=0, max_value=25))
def test_property_any_delay_recovered(delay):
    model = _phased_signal(500, period=23, seed=9)
    measured = model if delay == 0 else model[:-delay]
    assert estimate_delay(measured, model, max_delay_samples=30) == delay


# ---------------------------------------------------------------------------
# Vectorized curve vs. the loop oracle
# ---------------------------------------------------------------------------

_series = st.lists(
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    min_size=0,
    max_size=64,
)


@settings(max_examples=120)
@given(measured=_series, modeled=_series, max_delay=st.integers(0, 90))
def test_vectorized_curve_matches_loop_oracle(measured, modeled, max_delay):
    """Both vectorized strategies agree with the per-delay loop to 1e-12."""
    measured = np.array(measured)
    modeled = np.array(modeled)
    oracle = correlation_curve_reference(measured, modeled, max_delay)
    # FFT roundoff is bounded by the magnitude of the products summed, not by
    # the (possibly cancelling-to-zero) result, so scale the tolerance by the
    # inputs: 1e-12 relative to max|measured| * max|modeled|.
    peak_m = float(np.max(np.abs(measured))) if len(measured) else 0.0
    peak_x = float(np.max(np.abs(modeled))) if len(modeled) else 0.0
    scale = max(1.0, peak_m * peak_x)
    for method in ("auto", "windows", "fft"):
        curve = correlation_curve(measured, modeled, max_delay, method=method)
        assert curve.shape == oracle.shape
        np.testing.assert_allclose(curve, oracle, rtol=0, atol=1e-12 * scale)


def test_vectorized_curve_matches_oracle_at_recalibration_scale():
    """The FFT path (chosen by auto at real sizes) stays within 1e-12."""
    rng = np.random.default_rng(11)
    measured = 50.0 + 10.0 * rng.normal(size=1500)
    modeled = 48.0 + 9.0 * rng.normal(size=1500)
    measured -= measured.mean()
    modeled -= modeled.mean()
    oracle = correlation_curve_reference(measured, modeled, 1499)
    curve = correlation_curve(measured, modeled, 1499)
    scale = float(np.max(np.abs(oracle)))
    np.testing.assert_allclose(curve, oracle, rtol=0, atol=1e-12 * scale)
    assert np.argmax(curve) == np.argmax(oracle)


def test_correlation_curve_rejects_unknown_method():
    with pytest.raises(ValueError):
        correlation_curve(np.ones(5), np.ones(5), 2, method="loop")


def test_correlation_curve_rejects_negative_delay():
    with pytest.raises(ValueError):
        correlation_curve(np.ones(5), np.ones(5), -1)


def test_correlation_curve_empty_series_is_zero():
    assert np.all(correlation_curve(np.array([]), np.ones(5), 3) == 0.0)
    assert np.all(correlation_curve(np.ones(5), np.array([]), 3) == 0.0)
