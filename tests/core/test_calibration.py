"""Tests for offline calibration (Section 4.1)."""

import numpy as np
import pytest

from repro.core import calibrate_machine, calibration_microbenchmarks
from repro.core.model import FEATURES_EQ1, FEATURES_EQ2, FEATURES_FULL
from repro.hardware import SANDYBRIDGE, WOODCREST


@pytest.fixture(scope="module")
def sb_calibration():
    return calibrate_machine(SANDYBRIDGE, duration=0.2)


def test_suite_covers_paper_benchmarks():
    names = {b.name for b in calibration_microbenchmarks()}
    assert {"cpu-spin", "high-instr", "high-float", "high-cache",
            "high-mem", "disk-io", "net-io", "mixed"} <= names


def test_sample_matrix_shape(sb_calibration):
    n_benches = len(calibration_microbenchmarks())
    assert sb_calibration.samples.shape == (n_benches * 4, len(FEATURES_FULL))
    assert len(sb_calibration.active_watts) == n_benches * 4


def test_all_powers_positive(sb_calibration):
    assert (sb_calibration.active_watts > 0).all()


def test_metrics_within_physical_bounds(sb_calibration):
    mcore = sb_calibration.samples[:, FEATURES_FULL.index("mcore")]
    assert (mcore >= 0).all()
    assert (mcore <= SANDYBRIDGE.n_cores + 1e-6).all()
    chipshare = sb_calibration.samples[:, FEATURES_FULL.index("mchipshare")]
    assert (chipshare <= SANDYBRIDGE.n_chips + 1e-6).all()


def test_full_fit_recovers_true_coefficients_closely(sb_calibration):
    """Calibration workloads have no hidden power, so the fitted model
    should recover the physical coefficients well."""
    model = sb_calibration.fit(FEATURES_FULL)
    true = SANDYBRIDGE.true_model
    assert model.coefficient("mcore") == pytest.approx(true.w_core, rel=0.15)
    assert model.coefficient("mchipshare") == pytest.approx(
        true.maintenance_watts, rel=0.25
    )
    assert model.coefficient("mdisk") == pytest.approx(
        true.disk_active_watts, rel=0.25
    )


def test_fitted_model_predicts_calibration_points(sb_calibration):
    model = sb_calibration.fit(FEATURES_FULL)
    indexes = [FEATURES_FULL.index(f) for f in FEATURES_FULL]
    predicted = sb_calibration.samples[:, indexes] @ model.coefficients
    errors = np.abs(predicted - sb_calibration.active_watts)
    relative = errors / sb_calibration.active_watts
    assert relative.mean() < 0.05


def test_eq1_fit_has_larger_residuals_than_eq2(sb_calibration):
    """Without the chip-share term the fit must absorb maintenance power
    into core-level coefficients, worsening the residuals (approach #1)."""

    def residual(features):
        model = sb_calibration.fit(features)
        idx = [FEATURES_FULL.index(f) for f in features]
        predicted = sb_calibration.samples[:, idx] @ model.coefficients
        return np.abs(predicted - sb_calibration.active_watts).mean()

    assert residual(FEATURES_EQ1) > residual(FEATURES_EQ2)


def test_cmax_table_matches_paper_scale(sb_calibration):
    """Section 4.1 published table, reproduced within tolerance."""
    table = sb_calibration.cmax_table(FEATURES_FULL)
    assert table["mcore"] == pytest.approx(33.1, rel=0.2)
    assert table["mchipshare"] == pytest.approx(5.6, rel=0.5)
    assert table["mcache"] == pytest.approx(13.9, rel=0.35)
    assert table["mmem"] == pytest.approx(8.2, rel=0.35)


def test_idle_watts_recorded(sb_calibration):
    assert sb_calibration.idle_watts == pytest.approx(26.1)


def test_woodcrest_calibration_sees_two_chips():
    result = calibrate_machine(
        WOODCREST,
        loads=(1.0, 0.5),
        duration=0.1,
        benchmarks=calibration_microbenchmarks()[:3],
    )
    chipshare = result.samples[:, FEATURES_FULL.index("mchipshare")]
    # At full load both chips are active.
    assert chipshare.max() == pytest.approx(2.0, abs=0.1)


def test_load_levels_scale_power(sb_calibration):
    """Within one benchmark, higher load level must draw more power."""
    n_loads = 4
    spin = sb_calibration.active_watts[:n_loads]  # loads 1.0, .75, .5, .25
    assert spin[0] > spin[1] > spin[2] > spin[3]
