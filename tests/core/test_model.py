"""Tests for the linear power model (Eq. 1/2) and its fitting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import MetricSample, PowerModel, FEATURES_EQ1, FEATURES_EQ2


def test_active_power_is_linear_combination():
    model = PowerModel(("mcore", "mins"), np.array([10.0, 2.0]))
    sample = MetricSample(mcore=0.5, mins=1.0)
    assert model.active_power(sample) == pytest.approx(10.0 * 0.5 + 2.0)


def test_active_power_clamped_at_zero():
    model = PowerModel(("mcore",), np.array([0.0]))
    assert model.active_power(MetricSample(mcore=1.0)) == 0.0


def test_unknown_feature_rejected():
    with pytest.raises(ValueError):
        PowerModel(("mcore", "bogus"), np.array([1.0, 2.0]))


def test_coefficient_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        PowerModel(("mcore",), np.array([1.0, 2.0]))


def test_coefficient_lookup():
    model = PowerModel(("mcore", "mmem"), np.array([3.0, 7.0]))
    assert model.coefficient("mmem") == 7.0
    assert model.coefficient("mins") == 0.0  # not in feature set


def test_eq1_excludes_chipshare():
    assert "mchipshare" not in FEATURES_EQ1
    assert "mchipshare" in FEATURES_EQ2


def test_fit_recovers_known_coefficients():
    rng = np.random.default_rng(0)
    truth = np.array([8.0, 1.5, 170.0])
    features = ("mcore", "mins", "mcache")
    X = rng.uniform(0, 1, size=(50, 3)) * np.array([1.0, 2.5, 0.02])
    y = X @ truth
    model = PowerModel.fit(X, y, features)
    assert np.allclose(model.coefficients, truth, rtol=1e-8)


def test_fit_clamps_negative_coefficients():
    # Degenerate target forcing a negative coefficient in the raw fit.
    X = np.array([[1.0, 1.0], [1.0, 0.5], [1.0, 0.0], [1.0, 0.75]])
    y = np.array([1.0, 1.5, 2.0, 1.25])  # decreasing in second feature
    model = PowerModel.fit(X, y, ("mcore", "mins"))
    assert (model.coefficients >= 0).all()


def test_fit_requires_enough_samples():
    with pytest.raises(ValueError):
        PowerModel.fit(np.ones((1, 2)), np.ones(1), ("mcore", "mins"))


def test_fit_shape_validation():
    with pytest.raises(ValueError):
        PowerModel.fit(np.ones((5, 3)), np.ones(5), ("mcore", "mins"))
    with pytest.raises(ValueError):
        PowerModel.fit(np.ones((5, 2)), np.ones(4), ("mcore", "mins"))


def test_weighted_fit_prefers_heavier_samples():
    features = ("mcore",)
    X = np.array([[1.0], [1.0]])
    y = np.array([10.0, 20.0])
    heavy_first = PowerModel.fit(X, y, features, sample_weights=np.array([100.0, 1.0]))
    heavy_second = PowerModel.fit(X, y, features, sample_weights=np.array([1.0, 100.0]))
    assert heavy_first.coefficient("mcore") < heavy_second.coefficient("mcore")


def test_update_coefficients_swaps_values():
    model = PowerModel(("mcore",), np.array([1.0]))
    model.update_coefficients(np.array([5.0]))
    assert model.coefficient("mcore") == 5.0
    with pytest.raises(ValueError):
        model.update_coefficients(np.array([1.0, 2.0]))


def test_copy_is_independent():
    model = PowerModel(("mcore",), np.array([1.0]), label="a")
    clone = model.copy(label="b")
    clone.update_coefficients(np.array([9.0]))
    assert model.coefficient("mcore") == 1.0
    assert clone.label == "b"


def test_batch_matches_scalar_path():
    model = PowerModel(("mcore", "mins"), np.array([10.0, 2.0]))
    rows = np.array([[0.5, 1.0], [1.0, 2.5], [0.0, 0.0]])
    batch = model.active_power_batch(rows)
    for row, watts in zip(rows, batch):
        sample = MetricSample(mcore=row[0], mins=row[1])
        assert watts == pytest.approx(model.active_power(sample))


def test_metric_sample_vector_projection_order():
    sample = MetricSample(mcore=1.0, mins=2.0, mcache=3.0)
    vec = sample.as_vector(("mcache", "mcore"))
    assert list(vec) == [3.0, 1.0]


@given(
    coef=st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=2),
    m=st.lists(st.floats(min_value=0, max_value=1), min_size=2, max_size=2),
)
def test_property_power_nonnegative_and_monotone_in_metrics(coef, m):
    model = PowerModel(("mcore", "mins"), np.array(coef))
    base = model.active_power(MetricSample(mcore=m[0], mins=m[1]))
    bigger = model.active_power(MetricSample(mcore=m[0] + 0.1, mins=m[1]))
    assert base >= 0
    assert bigger >= base
