"""Tests for online recalibration, from unit level to closed loop."""

import numpy as np
import pytest

from repro.core import OnlineRecalibrator, PowerContainerFacility, PowerModel
from repro.hardware import PackageMeter, RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import Compute, Kernel, Sleep
from repro.sim import Simulator

#: A production workload with power invisible to core-level counters -- the
#: mechanism behind the paper's Stress/power-virus modeling errors.
HIDDEN_HOT = RateProfile(
    name="hidden-hot", ipc=1.1, cache_per_cycle=0.01, mem_per_cycle=0.006,
    hidden_watts=6.0,
)


# ----------------------------------------------------------------------
# Unit level
# ----------------------------------------------------------------------
def _simple_recalibrator(offline_bias=0.0):
    model = PowerModel(("mcore",), np.array([10.0]))
    X_off = np.array([[0.5], [1.0], [0.25]])
    y_off = X_off[:, 0] * 10.0 + offline_bias
    return OnlineRecalibrator(model, X_off, y_off), model


def test_recalibrate_without_online_samples_is_noop():
    recal, model = _simple_recalibrator()
    before = model.coefficients
    after = recal.recalibrate()
    assert np.allclose(before, after)
    assert recal.recalibration_count == 0


def test_online_samples_shift_coefficients():
    recal, model = _simple_recalibrator()
    # Online reality: 14 W per unit mcore (hidden power appeared).
    X_on = np.array([[1.0]] * 20)
    y_on = np.full(20, 14.0)
    recal.add_pairs(X_on, y_on)
    recal.recalibrate()
    assert model.coefficient("mcore") > 11.0
    assert recal.recalibration_count == 1


def test_online_window_is_bounded():
    recal, model = _simple_recalibrator()
    recal = OnlineRecalibrator(model, np.array([[1.0]]*6), np.ones(6)*10,
                               max_online_samples=10)
    recal.add_pairs(np.ones((25, 1)), np.full(25, 14.0))
    assert recal.online_sample_count == 10


def test_shape_validation():
    recal, model = _simple_recalibrator()
    with pytest.raises(ValueError):
        recal.add_pairs(np.ones((3, 2)), np.ones(3))
    with pytest.raises(ValueError):
        OnlineRecalibrator(model, np.ones((3, 2)), np.ones(3))


def test_equal_weighting_balances_offline_and_online():
    """Offline says 10 W/unit; online says 14 W/unit.  With equal weights
    and equal counts the refit lands strictly between."""
    model = PowerModel(("mcore",), np.array([10.0]))
    X_off = np.ones((10, 1))
    recal = OnlineRecalibrator(model, X_off, np.full(10, 10.0))
    recal.add_pairs(np.ones((10, 1)), np.full(10, 14.0))
    recal.recalibrate()
    assert 11.0 < model.coefficient("mcore") < 13.0
    assert model.coefficient("mcore") == pytest.approx(12.0, abs=0.2)


# ----------------------------------------------------------------------
# Closed loop on the simulated machine
# ----------------------------------------------------------------------
def _run_hidden_workload(sb_cal, with_meter):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    meter = PackageMeter(machine, sim, period=1e-3, delay=1e-3) if with_meter else None
    facility = PowerContainerFacility(
        kernel,
        sb_cal,
        meter=meter,
        meter_idle_watts=2.2,          # package idle floor
        meter_covers_peripherals=False,
        recalib_interval=0.1,
        max_delay_seconds=0.02,
        trace_period=1e-3,
    )
    facility.start_tracing()
    container = facility.create_request_container("hot")

    def program():
        # Fluctuating load so alignment has transitions to lock onto.
        for _ in range(40):
            yield Compute(cycles=machine.freq_hz * 20e-3, profile=HIDDEN_HOT)
            yield Sleep(5e-3)

    kernel.spawn(program(), "hot", container_id=container.id)
    sim.run_until(1.2)
    facility.flush()
    machine.checkpoint()
    measured = machine.integrator.active_joules
    return facility, container, measured


def test_offline_model_underestimates_hidden_power(sb_cal):
    facility, container, measured = _run_hidden_workload(sb_cal, with_meter=False)
    est = facility.registry.total_energy("eq2")
    # Hidden 6 W/core is invisible: eq2 must underestimate clearly.
    assert est < measured * 0.92


def test_recalibration_reduces_validation_error(sb_cal):
    facility, container, measured = _run_hidden_workload(sb_cal, with_meter=True)
    err_eq2 = abs(facility.registry.total_energy("eq2") - measured) / measured
    err_recal = abs(facility.registry.total_energy("recal") - measured) / measured
    assert err_recal < err_eq2
    assert err_recal < 0.10


def test_alignment_estimates_meter_delay(sb_cal):
    facility, _, _ = _run_hidden_workload(sb_cal, with_meter=True)
    delay = facility.estimated_delay_seconds
    assert delay is not None
    # Package meter delay is 1 ms (one trace period).
    assert delay == pytest.approx(1e-3, abs=1.5e-3)


def test_recalibration_ran_at_least_once(sb_cal):
    facility, _, _ = _run_hidden_workload(sb_cal, with_meter=True)
    assert facility.recalibrators["recal"].recalibration_count >= 1


def test_model_trace_recorded(sb_cal):
    facility, _, _ = _run_hidden_workload(sb_cal, with_meter=False)
    times, watts = facility.model_trace_series()
    assert len(times) > 1000
    assert watts.max() > 5.0      # busy phases visible
    assert watts.min() < 1.0      # idle gaps visible
