"""Tests for fair request power conditioning (Section 3.4)."""

import pytest

from repro.core import PowerConditioner, PowerContainerFacility
from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import Compute, Kernel
from repro.sim import Simulator

NORMAL = RateProfile(name="normal", ipc=0.3)
VIRUS = RateProfile(
    name="virus", ipc=2.2, cache_per_cycle=0.018, mem_per_cycle=0.012,
    hidden_watts=3.0,
)


def _world(sb_cal, target_watts):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal)
    conditioner = PowerConditioner(kernel, target_active_watts=target_watts)
    facility.attach_conditioner(conditioner)
    return sim, machine, kernel, facility, conditioner


def _spin(machine, seconds, profile):
    def program():
        yield Compute(cycles=machine.freq_hz * seconds, profile=profile)
    return program()


def test_invalid_parameters_rejected(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    with pytest.raises(ValueError):
        PowerConditioner(kernel, target_active_watts=0.0)
    with pytest.raises(ValueError):
        PowerConditioner(kernel, target_active_watts=40.0, min_level=0)


def test_normal_request_runs_at_full_speed(sb_cal):
    sim, machine, kernel, facility, conditioner = _world(sb_cal, 40.0)
    c = facility.create_request_container("normal")
    kernel.spawn(_spin(machine, 0.1, NORMAL), "w", container_id=c.id)
    sim.run_until(0.2)
    facility.flush()
    # A ~14 W spinner under a 40 W budget with one busy core: never throttled.
    assert c.stats.mean_duty_ratio == pytest.approx(1.0)


def test_power_virus_gets_throttled(sb_cal):
    # 44 W over four busy cores: an 11 W per-core budget that the ~11 W
    # normal spinners just fit while the ~17 W virus does not.
    sim, machine, kernel, facility, conditioner = _world(sb_cal, 44.0)
    normals = []
    for i in range(3):
        c = facility.create_request_container(f"n{i}")
        normals.append(c)
        kernel.spawn(_spin(machine, 0.3, NORMAL), f"n{i}", container_id=c.id)
    virus = facility.create_request_container("virus")
    kernel.spawn(_spin(machine, 0.1, VIRUS), "virus", container_id=virus.id)
    sim.run_until(0.5)
    facility.flush()
    assert virus.stats.mean_duty_ratio < 0.85
    for c in normals:
        assert c.stats.mean_duty_ratio > 0.97


def test_conditioning_caps_system_power(sb_cal):
    """With conditioning, measured active power stays near the target even
    with viruses on all cores.  The viruses here have no hidden power, so
    the offline model sees their draw; hidden-power capping additionally
    needs online recalibration (exercised in the Fig. 11 benchmark).  The
    tolerance covers chip maintenance power, which duty-cycling by design
    cannot scale down."""
    target = 40.0
    visible_virus = RateProfile(
        name="visible-virus", ipc=2.2, cache_per_cycle=0.018,
        mem_per_cycle=0.012,
    )
    sim, machine, kernel, facility, conditioner = _world(sb_cal, target)
    for i in range(4):
        c = facility.create_request_container(f"v{i}")
        kernel.spawn(
            _spin(machine, 0.3, visible_virus), f"v{i}", container_id=c.id
        )
    # Skip the initial learning window, then measure steady state.
    sim.run_until(0.1)
    machine.checkpoint()
    start = machine.integrator.active_joules
    sim.run_until(0.3)
    machine.checkpoint()
    watts = (machine.integrator.active_joules - start) / 0.2
    assert watts < target * 1.10


def test_unconditioned_viruses_exceed_target(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal)
    for i in range(4):
        c = facility.create_request_container(f"v{i}")
        kernel.spawn(_spin(machine, 0.2, VIRUS), f"v{i}", container_id=c.id)
    sim.run_until(0.2)
    machine.checkpoint()
    watts = machine.integrator.active_joules / 0.2
    assert watts > 40.0 * 1.3


def test_budget_grows_when_cores_idle(sb_cal):
    """A virus running alone gets the whole machine budget: no throttling
    (the paper's Fig. 12 top-right outliers)."""
    sim, machine, kernel, facility, conditioner = _world(sb_cal, 40.0)
    virus = facility.create_request_container("virus")
    kernel.spawn(_spin(machine, 0.1, VIRUS), "virus", container_id=virus.id)
    sim.run_until(0.2)
    facility.flush()
    # ~20 W virus under a 40 W solo budget: full speed.
    assert virus.stats.mean_duty_ratio == pytest.approx(1.0)


def test_duty_restored_for_next_request(sb_cal):
    """After a throttled virus, a normal request on the same core runs at
    full speed (per-request, not per-core, policy)."""
    sim, machine, kernel, facility, conditioner = _world(sb_cal, 44.0)
    for i in range(3):
        c = facility.create_request_container(f"n{i}")
        kernel.spawn(_spin(machine, 0.4, NORMAL), f"bg{i}", container_id=c.id)
    virus = facility.create_request_container("virus")
    kernel.spawn(
        _spin(machine, 0.05, VIRUS), "virus", container_id=virus.id,
        pinned_core=3,
    )
    sim.run_until(0.2)
    late = facility.create_request_container("late")
    kernel.spawn(
        _spin(machine, 0.05, NORMAL), "late", container_id=late.id,
        pinned_core=3,
    )
    sim.run_until(0.4)
    facility.flush()
    assert virus.stats.mean_duty_ratio < 0.9
    assert late.stats.mean_duty_ratio > 0.95


def test_background_never_throttled(sb_cal):
    sim, machine, kernel, facility, conditioner = _world(sb_cal, 40.0)
    kernel.spawn(_spin(machine, 0.2, VIRUS), "daemon")  # background
    for i in range(3):
        c = facility.create_request_container(f"n{i}")
        kernel.spawn(_spin(machine, 0.2, NORMAL), f"n{i}", container_id=c.id)
    sim.run_until(0.3)
    facility.flush()
    bg = facility.registry.background
    assert bg.stats.mean_duty_ratio == pytest.approx(1.0)
