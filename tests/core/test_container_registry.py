"""Tests for power containers and the registry."""

import pytest

from repro.core import ContainerRegistry, PowerContainer
from repro.core.registry import BACKGROUND_CONTAINER_ID
from repro.hardware import EventVector


def test_registry_has_background_container():
    reg = ContainerRegistry()
    assert reg.get(None).id == BACKGROUND_CONTAINER_ID
    assert reg.get(None) is reg.background


def test_create_assigns_unique_ids():
    reg = ContainerRegistry()
    a = reg.create("req-a")
    b = reg.create("req-b")
    assert a.id != b.id
    assert a.id != BACKGROUND_CONTAINER_ID


def test_get_unknown_id_materializes_remote_container():
    reg = ContainerRegistry()
    c = reg.get(12345)
    assert c.id == 12345
    assert reg.get(12345) is c


def test_refcount_lifecycle_closes_container():
    reg = ContainerRegistry()
    c = reg.create("req")
    reg.incref(c.id)
    reg.incref(c.id)
    reg.decref(c.id)
    assert not c.closed
    reg.decref(c.id)
    assert c.closed


def test_background_never_closes():
    reg = ContainerRegistry()
    reg.incref(None)
    reg.decref(None)
    reg.decref(None)  # over-decrement is tolerated
    assert not reg.background.closed


def test_request_containers_excludes_background():
    reg = ContainerRegistry()
    reg.create("a")
    reg.create("b")
    assert len(reg.request_containers()) == 2
    assert len(reg.all_containers()) == 3


def test_label_prefix_filter():
    reg = ContainerRegistry()
    reg.create("solr-1")
    reg.create("solr-2")
    reg.create("gae-1")
    assert len(reg.with_label_prefix("solr")) == 2


def test_record_interval_accumulates_stats():
    c = PowerContainer(1)
    c.stats.record_interval(
        now=1.0,
        dt=0.001,
        events=EventVector(nonhalt_cycles=1e6, instructions=2e6),
        energy_by_approach={"eq2": 0.01, "recal": 0.012},
        duty_ratio=1.0,
    )
    c.stats.record_interval(
        now=1.001,
        dt=0.001,
        events=EventVector(nonhalt_cycles=1e6),
        energy_by_approach={"eq2": 0.01, "recal": 0.011},
        duty_ratio=0.5,
    )
    assert c.stats.cpu_seconds == pytest.approx(0.002)
    assert c.energy("eq2") == pytest.approx(0.02)
    assert c.energy("recal") == pytest.approx(0.023)
    assert c.stats.events.nonhalt_cycles == pytest.approx(2e6)
    assert c.stats.sample_count == 2
    assert c.stats.mean_duty_ratio == pytest.approx(0.75)
    assert c.stats.first_activity == pytest.approx(0.999)
    assert c.stats.last_activity == pytest.approx(1.001)


def test_mean_power_is_energy_over_cpu_time():
    c = PowerContainer(1)
    c.stats.record_interval(
        1.0, 0.5, EventVector(), {"recal": 5.0}, duty_ratio=1.0
    )
    assert c.mean_power("recal") == pytest.approx(10.0)


def test_mean_power_zero_when_never_scheduled():
    assert PowerContainer(1).mean_power("recal") == 0.0


def test_total_energy_includes_io():
    c = PowerContainer(1)
    c.stats.record_interval(1.0, 0.1, EventVector(), {"recal": 1.0}, 1.0)
    c.stats.io_energy_joules = 0.5
    assert c.total_energy("recal") == pytest.approx(1.5)


def test_observe_power_ewma_projection():
    c = PowerContainer(1)
    c.observe_power("recal", watts=5.0, duty_ratio=0.5)
    # First observation seeds the EWMA with the full-speed projection.
    assert c.full_speed_power_ewma == pytest.approx(10.0)
    c.observe_power("recal", watts=10.0, duty_ratio=1.0, ewma_alpha=0.5)
    assert c.full_speed_power_ewma == pytest.approx(10.0)


def test_observe_power_without_ewma_update():
    c = PowerContainer(1)
    c.observe_power("eq1", watts=5.0, duty_ratio=1.0, update_ewma=False)
    assert c.full_speed_power_ewma == 0.0
    assert c.last_power_watts["eq1"] == 5.0


def test_export_carried_delta_never_double_counts():
    c = PowerContainer(1)
    c.stats.record_interval(1.0, 0.1, EventVector(), {"recal": 1.0}, 1.0)
    first = c.export_carried_delta()
    assert first["energy:recal"] == pytest.approx(1.0)
    second = c.export_carried_delta()
    assert second["energy:recal"] == pytest.approx(0.0)
    c.stats.record_interval(1.2, 0.1, EventVector(), {"recal": 0.5}, 1.0)
    third = c.export_carried_delta()
    assert third["energy:recal"] == pytest.approx(0.5)


def test_merge_carried_adds_remote_stats():
    c = PowerContainer(1)
    c.stats.merge_carried(
        {"cpu_seconds": 0.2, "io_energy_joules": 0.1, "energy:recal": 2.0}
    )
    assert c.stats.cpu_seconds == pytest.approx(0.2)
    assert c.stats.io_energy_joules == pytest.approx(0.1)
    assert c.energy("recal") == pytest.approx(2.0)


def test_export_then_merge_round_trip():
    remote = PowerContainer(7)
    remote.stats.record_interval(1.0, 0.3, EventVector(), {"recal": 3.0}, 1.0)
    local = PowerContainer(7)
    local.stats.merge_carried(remote.export_carried_delta())
    assert local.energy("recal") == pytest.approx(3.0)
    assert local.stats.cpu_seconds == pytest.approx(0.3)


def test_total_energy_sums_over_registry():
    reg = ContainerRegistry()
    a = reg.create("a")
    b = reg.create("b")
    a.stats.record_interval(1.0, 0.1, EventVector(), {"recal": 1.0}, 1.0)
    b.stats.record_interval(1.0, 0.1, EventVector(), {"recal": 2.0}, 1.0)
    b.stats.io_energy_joules = 0.5
    assert reg.total_energy("recal") == pytest.approx(3.5)
