"""Property-based tests for the energy-budget policy arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.core.budget import EnergyBudgetConditioner
from repro.core.container import PowerContainer
from repro.hardware import EventVector, SANDYBRIDGE, build_machine
from repro.kernel import Kernel
from repro.sim import Simulator


def _conditioner(default=1.0, **kwargs):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    return EnergyBudgetConditioner(kernel, default, **kwargs)


def _container_with_energy(joules):
    c = PowerContainer(1)
    c.stats.record_interval(1.0, 0.01, EventVector(), {"recal": joules}, 1.0)
    return c


@given(
    budget=st.floats(min_value=0.01, max_value=100.0),
    spent=st.floats(min_value=0.0, max_value=200.0),
)
def test_property_remaining_is_budget_minus_spent(budget, spent):
    cond = _conditioner(default=budget)
    container = _container_with_energy(spent)
    assert cond.remaining(container) == pytest.approx(budget - spent)


@given(
    budget=st.floats(min_value=0.01, max_value=10.0),
    grants=st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=5),
)
def test_property_grants_accumulate(budget, grants):
    cond = _conditioner(default=budget)
    container = _container_with_energy(0.0)
    for grant in grants:
        cond.grant(container, grant)
    assert cond.budget_of(container) == pytest.approx(budget + sum(grants))


@given(spent=st.floats(min_value=0.0, max_value=100.0))
def test_property_level_is_full_iff_within_budget(spent):
    cond = _conditioner(default=50.0)
    container = _container_with_energy(spent)
    level = cond._level_for(container)
    if spent < 50.0:
        assert level == 8
    else:
        assert level == cond.exhausted_duty_level
