"""Tests for per-core accounting, observer effect, and facility hooks."""

import pytest

from repro.core import ObserverEffect, PowerContainerFacility
from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import Compute, Kernel, Sleep
from repro.sim import Simulator

SPIN = RateProfile(name="spin", ipc=1.0)
HOT = RateProfile(name="hot", ipc=1.2, cache_per_cycle=0.015, mem_per_cycle=0.009)


def _world(sb_cal, **facility_kwargs):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal, **facility_kwargs)
    return sim, machine, kernel, facility


def _spin(machine, seconds, profile=SPIN):
    def program():
        yield Compute(cycles=machine.freq_hz * seconds, profile=profile)
    return program()


def test_facility_attaches_as_kernel_hooks(sb_cal):
    sim, machine, kernel, facility = _world(sb_cal)
    assert kernel.hooks is facility


def test_energy_attributed_to_bound_container(sb_cal):
    sim, machine, kernel, facility = _world(sb_cal)
    container = facility.create_request_container("req")
    kernel.spawn(_spin(machine, 0.1), "w", container_id=container.id)
    sim.run_until(0.2)
    facility.flush()
    assert container.stats.cpu_seconds == pytest.approx(0.1, rel=1e-3)
    # One spinning core + full chip share for ~0.1 s.
    model = facility.models["recal"]
    expected_watts = model.coefficient("mcore") + model.coefficient("mins") + \
        model.coefficient("mchipshare")
    assert container.energy("recal") == pytest.approx(
        expected_watts * 0.1, rel=0.1
    )


def test_untracked_work_lands_in_background(sb_cal):
    sim, machine, kernel, facility = _world(sb_cal)
    kernel.spawn(_spin(machine, 0.05), "daemon")  # no container
    sim.run_until(0.1)
    facility.flush()
    assert facility.registry.background.stats.cpu_seconds == pytest.approx(
        0.05, rel=1e-2
    )


def test_two_containers_split_energy_by_work(sb_cal):
    sim, machine, kernel, facility = _world(sb_cal)
    a = facility.create_request_container("a")
    b = facility.create_request_container("b")
    kernel.spawn(_spin(machine, 0.1), "wa", container_id=a.id)
    kernel.spawn(_spin(machine, 0.05), "wb", container_id=b.id)
    sim.run_until(0.2)
    facility.flush()
    assert a.stats.cpu_seconds == pytest.approx(0.1, rel=1e-2)
    assert b.stats.cpu_seconds == pytest.approx(0.05, rel=1e-2)
    assert a.energy("recal") > b.energy("recal")


def test_concurrent_tasks_share_chip_power(sb_cal):
    """Two concurrent spinners each get about half the maintenance power."""
    sim, machine, kernel, facility = _world(sb_cal)
    a = facility.create_request_container("a")
    b = facility.create_request_container("b")
    kernel.spawn(_spin(machine, 0.1), "wa", container_id=a.id)
    kernel.spawn(_spin(machine, 0.1), "wb", container_id=b.id)
    sim.run_until(0.2)
    facility.flush()
    # Energies should be nearly equal (same work, same share).
    assert a.energy("recal") == pytest.approx(b.energy("recal"), rel=0.05)


def test_sum_of_container_energy_matches_measured_active_power(sb_cal):
    """The paper's Fig. 8 validation invariant at small scale."""
    sim, machine, kernel, facility = _world(sb_cal)
    containers = []
    for i in range(3):
        c = facility.create_request_container(f"r{i}")
        containers.append(c)
        kernel.spawn(_spin(machine, 0.08, HOT), f"w{i}", container_id=c.id)
    sim.run_until(0.2)
    facility.flush()
    machine.checkpoint()
    measured = machine.integrator.active_joules
    estimated = facility.registry.total_energy("recal")
    assert estimated == pytest.approx(measured, rel=0.10)


def test_eq1_underestimates_compared_to_eq2(sb_cal):
    """Approach #1 has no chip-share term: on a lone task it misses most of
    the maintenance power that approach #2 attributes."""
    sim, machine, kernel, facility = _world(sb_cal)
    c = facility.create_request_container("r")
    kernel.spawn(_spin(machine, 0.1), "w", container_id=c.id)
    sim.run_until(0.2)
    facility.flush()
    machine.checkpoint()
    measured = machine.integrator.active_joules
    err_eq1 = abs(c.energy("eq1") - measured) / measured
    err_eq2 = abs(c.energy("eq2") - measured) / measured
    assert err_eq2 < err_eq1


def test_observer_effect_injected_into_counters(sb_cal):
    sim, machine, kernel, facility = _world(sb_cal)
    kernel.spawn(_spin(machine, 0.05), "w")
    sim.run_until(0.1)
    # ~50 overflow samples, each injecting 2948 cycles: counters exceed work.
    total = machine.cores[0].counters.read().nonhalt_cycles
    work = machine.freq_hz * 0.05
    assert total > work
    assert total - work == pytest.approx(
        facility.accountants[0].samples_taken * 2948, rel=0.1
    )


def test_observer_subtraction_keeps_attribution_clean(sb_cal):
    """With subtraction on, attributed events match the true work; with it
    off, the maintenance events pollute the request profile."""
    def run(subtract):
        sim, machine, kernel, facility = _world(sb_cal, subtract_observer=subtract)
        c = facility.create_request_container("r")
        kernel.spawn(_spin(machine, 0.05), "w", container_id=c.id)
        sim.run_until(0.1)
        facility.flush()
        return c.stats.events.nonhalt_cycles

    work = SANDYBRIDGE.freq_hz * 0.05
    clean = run(True)
    dirty = run(False)
    assert clean == pytest.approx(work, rel=1e-3)
    assert dirty > clean


def test_no_observer_effect_when_disabled(sb_cal):
    sim, machine, kernel, facility = _world(sb_cal, observer=None)
    kernel.spawn(_spin(machine, 0.05), "w")
    sim.run_until(0.1)
    total = machine.cores[0].counters.read().nonhalt_cycles
    assert total == pytest.approx(machine.freq_hz * 0.05, rel=1e-6)


def test_intermittent_task_utilization_accounted(sb_cal):
    """A 50%-utilization task accumulates only its busy time."""
    sim, machine, kernel, facility = _world(sb_cal)
    c = facility.create_request_container("r")

    def program():
        for _ in range(20):
            yield Compute(cycles=machine.freq_hz * 1e-3, profile=SPIN)
            yield Sleep(1e-3)

    kernel.spawn(program(), "w", container_id=c.id)
    sim.run_until(0.1)
    facility.flush()
    assert c.stats.cpu_seconds == pytest.approx(0.02, rel=0.05)


def test_primary_defaults_to_last_approach(sb_cal):
    sim, machine, kernel, facility = _world(sb_cal)
    assert facility.primary == "recal"


def test_bad_primary_rejected(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    with pytest.raises(ValueError):
        PowerContainerFacility(kernel, sb_cal, primary="nonexistent")


def test_refcount_released_after_completion(sb_cal):
    sim, machine, kernel, facility = _world(sb_cal)
    c = facility.create_request_container("r")
    kernel.spawn(_spin(machine, 0.01), "w", container_id=c.id)
    sim.run_until(0.05)
    facility.complete_request(c)
    assert c.closed  # worker exited (decref) + driver release


def test_coincident_samples_do_not_double_subtract_observer(sb_cal):
    """Regression: two samples at the same instant must not leak one
    maintenance op's worth of cycles.

    ``sample()`` at ``dt == 0`` re-baselines the counters to a snapshot that
    already contains the maintenance events injected by a sample at that
    same timestamp.  The pending observer correction must reset with the
    baseline, or the next real interval subtracts 2948 cycles of genuine
    request work (the bug hypothesis found via interleaved socket segments
    whose compute end coincided with an overflow interrupt).
    """
    from repro.hardware import EventVector

    sim, machine, kernel, facility = _world(sb_cal)
    accountant = facility.accountants[0]
    core = machine.cores[0]
    container = facility.create_request_container("r")
    work = EventVector(nonhalt_cycles=1e6, instructions=1e6)

    accountant.sample_and_rebind(0.0, container.id, occupied=True)
    core.inject_events(work.copy())
    accountant.sample(1e-3)   # attributes work, then injects maintenance
    accountant.sample(1e-3)   # coincident: re-baselines over the injection
    core.inject_events(work.copy())
    accountant.sample(2e-3)

    assert container.stats.events.nonhalt_cycles == pytest.approx(
        2e6, abs=1.0
    )


def test_observer_effect_event_vector_scales():
    ov = ObserverEffect()
    v = ov.event_vector(3)
    assert v.nonhalt_cycles == pytest.approx(3 * 2948)
    assert v.instructions == pytest.approx(3 * 1656)
    assert v.flops == pytest.approx(3 * 16)
    assert v.cache_refs == pytest.approx(9)
