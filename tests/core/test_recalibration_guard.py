"""Unit tests for the recalibration guard rail and sample-ingestion filter.

One NaN measurement must never reach a least-square refit, and one absurd
refit must never reach the live model -- these tests pin both defenses at
the unit level (the chaos scenarios exercise them end to end).
"""

import numpy as np
import pytest

from repro.core import OnlineRecalibrator, PowerModel, RecalibrationGuard

FEATURES = ("mcore", "mins")
#: True coefficients of the toy linear world the tests fit against.
TRUE_COEF = np.array([8.0, 1.5])


def _offline_data(n=40, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 4.0, size=(n, len(FEATURES)))
    y = X @ TRUE_COEF
    return X, y


def _recalibrator(guard=None, seed=0):
    X, y = _offline_data(seed=seed)
    model = PowerModel.fit(X, y, FEATURES, label="test")
    return OnlineRecalibrator(model, X, y, guard=guard), X, y


# ----------------------------------------------------------------------
# add_pairs ingestion filter (regression: NaN poisoning)
# ----------------------------------------------------------------------
def test_add_pairs_filters_nonfinite_and_negative_watts():
    recal, _X, _y = _recalibrator()
    rows = np.array([
        [1.0, 1.0],           # clean
        [2.0, 0.5],           # NaN watts below
        [1.5, 1.5],           # -inf watts below
        [0.5, 2.0],           # negative watts below
        [np.nan, 1.0],        # NaN metric row
        [3.0, 0.2],           # clean
    ])
    watts = np.array([10.0, np.nan, -np.inf, -4.0, 12.0, 30.0])
    recal.add_pairs(rows, watts)
    assert recal.online_sample_count == 2
    assert recal.rejected_sample_count == 4


def test_one_nan_pair_cannot_poison_the_refit():
    """Regression: before filtering, a single NaN sample turned every
    subsequent refit into NaN coefficients."""
    recal, X, _y = _recalibrator()
    recal.add_pairs(np.array([[1.0, np.nan]]), np.array([np.nan]))
    recal.add_pairs(X[:5], X[:5] @ TRUE_COEF)
    coefficients = recal.recalibrate()
    assert np.isfinite(coefficients).all()
    assert recal.recalibration_count == 1


# ----------------------------------------------------------------------
# RecalibrationGuard validation rules
# ----------------------------------------------------------------------
def test_guard_rejects_nonfinite_candidate():
    guard = RecalibrationGuard()
    X, y = _offline_data()
    ok = guard.evaluate(np.array([np.nan, 1.0]), TRUE_COEF, X, y)
    assert not ok
    assert guard.rejected_count == 1
    assert "non-finite" in guard.last_rejection


def test_guard_rejects_excessive_drift():
    guard = RecalibrationGuard(max_relative_drift=1.0)
    X, y = _offline_data()
    wild = TRUE_COEF * 100.0
    assert not guard.evaluate(wild, TRUE_COEF, X, y)
    assert "drift" in guard.last_rejection


def test_guard_error_floor_tolerates_benign_refits():
    """The offline fit is near-exact (RMSE ~ 0); a refit that moves the
    held-out error within the scale-aware floor is a legitimate online
    adaptation, not a regression."""
    guard = RecalibrationGuard()
    X, y = _offline_data()
    nudged = TRUE_COEF + np.array([0.05, 0.02])  # ~0.1 W held-out RMSE
    assert guard.evaluate(nudged, TRUE_COEF, X, y)
    assert guard.accepted_count == 1
    assert np.allclose(guard.last_good, nudged)


def test_guard_rejects_large_error_regression():
    guard = RecalibrationGuard()
    X, y = _offline_data()
    broken = TRUE_COEF + np.array([50.0, -1.5])
    assert not guard.evaluate(broken, TRUE_COEF, X, y)
    assert "RMSE" in guard.last_rejection


def test_guard_backoff_doubles_then_resets_on_acceptance():
    guard = RecalibrationGuard(backoff_initial=1, backoff_max=4)
    X, y = _offline_data()
    bad = TRUE_COEF + np.array([50.0, 0.0])

    def skips_until_clear():
        count = 0
        while guard.should_skip():
            count += 1
        return count

    guard.evaluate(bad, TRUE_COEF, X, y)
    assert skips_until_clear() == 1
    guard.evaluate(bad, TRUE_COEF, X, y)
    assert skips_until_clear() == 2
    guard.evaluate(bad, TRUE_COEF, X, y)
    assert skips_until_clear() == 4
    guard.evaluate(bad, TRUE_COEF, X, y)
    assert skips_until_clear() == 4  # capped at backoff_max
    guard.evaluate(TRUE_COEF + 0.01, TRUE_COEF, X, y)
    assert guard.accepted_count == 1
    guard.evaluate(bad, TRUE_COEF, X, y)
    assert skips_until_clear() == 1  # reset by the acceptance
    assert guard.skipped_count == 12


def test_guard_constructor_validates():
    with pytest.raises(ValueError):
        RecalibrationGuard(max_relative_drift=0.0)
    with pytest.raises(ValueError):
        RecalibrationGuard(backoff_initial=0)
    with pytest.raises(ValueError):
        RecalibrationGuard(backoff_initial=8, backoff_max=4)


# ----------------------------------------------------------------------
# Guarded recalibrator end-to-end
# ----------------------------------------------------------------------
def test_rejected_refit_rolls_back_to_current_coefficients():
    recal, X, _y = _recalibrator(guard=RecalibrationGuard())
    before = recal.model.coefficients
    # Consistent garbage: finite, so it survives ingestion, but it pulls
    # the fit far enough off the offline data that the guard must veto.
    rows = np.tile(np.array([[1.0, 1.0]]), (200, 1))
    recal.add_pairs(rows, np.full(200, 5000.0))
    after = recal.recalibrate()
    assert np.array_equal(after, before)
    assert recal.rolled_back_count == 1
    assert recal.recalibration_count == 0
    assert recal.guard.rejected_count == 1


def test_last_good_coefficients_fall_back_to_offline():
    recal, _X, _y = _recalibrator(guard=RecalibrationGuard())
    assert np.array_equal(
        recal.last_good_coefficients(), recal.offline_coefficients
    )
    recal.add_pairs(np.array([[1.0, 1.0]]), np.array([9.5]))
    recal.recalibrate()
    assert recal.guard.last_good is not None
    assert np.array_equal(recal.last_good_coefficients(), recal.guard.last_good)


def test_guarded_recalibrator_skips_during_backoff():
    recal, _X, _y = _recalibrator(guard=RecalibrationGuard())
    rows = np.tile(np.array([[1.0, 1.0]]), (200, 1))
    recal.add_pairs(rows, np.full(200, 5000.0))
    recal.recalibrate()  # rejected -> starts backoff
    recal.recalibrate()  # skipped, not another rejection
    assert recal.guard.rejected_count == 1
    assert recal.guard.skipped_count == 1
    assert recal.rolled_back_count == 1
