"""Property: resume identity holds for arbitrary seeds and snapshot epochs.

For any workload seed and any safe-point placement, snapshotting, restoring
in a fresh world, and running to the end must equal the uninterrupted run
on all four fingerprints (report, trace, shed, batch).  Each example costs
two full short runs, so the example budget is small; the fixed-parameter
paths are covered densely by ``test_runner.py`` and the CI restore lane.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import RunConfig, resume_checkpointed, run_checkpointed

_DURATION = 0.4

FINGERPRINT_KEYS = ("report", "trace", "shed", "batch", "n_requests")


@settings(
    max_examples=5, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=9999),
    epoch_fraction=st.floats(min_value=0.15, max_value=0.85),
)
def test_resume_identity_for_random_seed_and_epoch(tmp_path_factory, seed,
                                                   epoch_fraction):
    # The period lands the final safe-point at an arbitrary fraction of
    # the run (small fractions yield several ticks; resume always starts
    # from the newest).
    config = RunConfig(
        kind="solr", seed=seed, duration=_DURATION, warmup=0.1,
        cal_duration=0.05,
        checkpoint_period=round(epoch_fraction * _DURATION, 6),
    )
    directory = str(tmp_path_factory.mktemp("ckpt"))
    oneshot = run_checkpointed(config, directory=directory)
    resumed = resume_checkpointed(directory)
    assert resumed["resumed"] is True
    for key in FINGERPRINT_KEYS:
        assert resumed[key] == oneshot[key], key
