"""Shared fixtures for checkpoint/restore tests."""

import pytest

from repro.core import calibrate_machine
from repro.hardware import SANDYBRIDGE


@pytest.fixture(scope="session")
def sb_cal():
    """Session-cached SandyBridge calibration."""
    return calibrate_machine(SANDYBRIDGE, duration=0.2)


@pytest.fixture
def quick_config():
    """A short checkpointed Solr config crossing two safe-points."""
    from repro.checkpoint import RunConfig

    return RunConfig(
        kind="solr", seed=7, duration=0.5, warmup=0.1, load_fraction=0.6,
        cal_duration=0.05, checkpoint_period=0.2,
    )
