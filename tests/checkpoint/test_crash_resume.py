"""Chaos crash test: SIGKILL a live run, resume it, demand bit-identity.

The harness runs ``python -m repro run-ckpt`` in a subprocess whose
``on_checkpoint`` hook SIGKILLs the process the instant a checkpoint is
durably on disk -- the most hostile crash there is (no atexit, no flush,
no warning).  ``python -m repro resume`` must then converge to the same
final fingerprints as an uninterrupted run of the same config.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

FINGERPRINT_KEYS = ("report", "trace", "shed", "batch")


def _run_cli(*args):
    env = dict(os.environ)
    src = os.path.join(ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args], cwd=ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def _json_tail(proc):
    return json.loads(proc.stdout.strip().splitlines()[-1])


@pytest.mark.slow
@pytest.mark.parametrize("case_args, kill_after", [
    (("--kind", "solr", "--duration", "0.6", "--warmup", "0.1",
      "--period", "0.2"), 1),
    (("--kind", "chaos", "--scenario", "meter-nan-burst",
      "--duration-scale", "0.5", "--period", "0.3"), 1),
])
def test_sigkilled_run_resumes_to_identical_fingerprints(tmp_path, case_args,
                                                         kill_after):
    clean = _run_cli("run-ckpt", *case_args)
    assert clean.returncode == 0, clean.stdout
    expected = _json_tail(clean)

    directory = str(tmp_path / "ckpt")
    crashed = _run_cli(
        "run-ckpt", *case_args, "--dir", directory,
        "--kill-after-checkpoint", str(kill_after),
    )
    assert crashed.returncode == -signal.SIGKILL
    assert os.listdir(directory), "no checkpoint survived the kill"

    resumed_proc = _run_cli("resume", "--dir", directory)
    assert resumed_proc.returncode == 0, resumed_proc.stdout
    resumed = _json_tail(resumed_proc)
    assert resumed["resumed"] is True
    for key in FINGERPRINT_KEYS:
        assert resumed[key] == expected[key], key


@pytest.mark.slow
def test_resume_rejects_corrupted_checkpoint(tmp_path):
    directory = str(tmp_path / "ckpt")
    crashed = _run_cli(
        "run-ckpt", "--kind", "solr", "--duration", "0.6", "--warmup", "0.1",
        "--period", "0.2", "--dir", directory,
        "--kill-after-checkpoint", "1",
    )
    assert crashed.returncode == -signal.SIGKILL
    name = sorted(os.listdir(directory))[-1]
    path = os.path.join(directory, name)
    raw = bytearray(open(path, "rb").read())
    raw[len(raw) // 2] ^= 0xFF
    open(path, "wb").write(bytes(raw))

    proc = _run_cli("resume", "--dir", directory)
    assert proc.returncode != 0
    assert "digest mismatch" in proc.stdout
