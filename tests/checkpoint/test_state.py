"""Snapshot payload rules: plain-data validation, digests, and diffs."""

import math

import numpy as np
import pytest

from repro.checkpoint import (
    canonical_bytes,
    diff_states,
    generator_state,
    payload_digest,
    set_generator_state,
    validate_plain,
)


# ---------------------------------------------------------------------------
# validate_plain
# ---------------------------------------------------------------------------
def test_plain_tree_passes():
    validate_plain({
        "v": 1, "name": "x", "values": [1, 2.5, None, True],
        "nested": {"t": (1, "a"), "raw": b"bytes"},
    })


def test_object_reference_rejected_with_path():
    class Thing:
        pass

    with pytest.raises(TypeError, match=r"payload\['a'\]\[1\]"):
        validate_plain({"a": [0, Thing()]})


def test_non_string_dict_key_rejected():
    with pytest.raises(TypeError, match="not a string"):
        validate_plain({1: "x"})


def test_set_rejected():
    with pytest.raises(TypeError, match="set"):
        validate_plain({"s": {1, 2}})


def test_numpy_scalar_rejected():
    with pytest.raises(TypeError):
        validate_plain({"x": np.float64(1.0)})


# ---------------------------------------------------------------------------
# canonical bytes / digest
# ---------------------------------------------------------------------------
def test_canonical_bytes_stable_for_equal_payloads():
    payload = {"a": 1, "b": [1.5, "x"], "c": {"d": None}}
    clone = {"a": 1, "b": [1.5, "x"], "c": {"d": None}}
    assert canonical_bytes(payload) == canonical_bytes(clone)
    assert payload_digest(payload) == payload_digest(clone)


def test_digest_sensitive_to_any_field():
    base = {"a": 1, "b": 2.0}
    assert payload_digest(base) != payload_digest({"a": 1, "b": 2.0000001})


# ---------------------------------------------------------------------------
# diff_states
# ---------------------------------------------------------------------------
def test_identical_trees_have_no_diff():
    tree = {"x": [1, 2.0, float("nan")], "y": {"z": "s"}}
    clone = {"x": [1, 2.0, float("nan")], "y": {"z": "s"}}
    assert diff_states(tree, clone) == []


def test_nan_equals_nan():
    assert diff_states({"w": float("nan")}, {"w": float("nan")}) == []


def test_negative_zero_differs_from_zero():
    diffs = diff_states({"w": -0.0}, {"w": 0.0})
    assert diffs and "-0.0" in diffs[0]


def test_scalar_divergence_named_by_path():
    diffs = diff_states({"a": {"b": [1, 2]}}, {"a": {"b": [1, 3]}})
    assert diffs == ["state['a']['b'][1]: 2 != 3"]


def test_missing_and_unexpected_keys_sorted():
    diffs = diff_states({"a": 1, "b": 2}, {"b": 2, "c": 3})
    assert diffs == [
        "state['a']: missing in replayed state",
        "state['c']: unexpected in replayed state",
    ]


def test_length_mismatch_reported_once():
    assert diff_states([1, 2, 3], [1, 2]) == ["state: length 3 != 2"]


def test_diff_limit_respected():
    expected = {str(i): i for i in range(20)}
    actual = {str(i): i + 1 for i in range(20)}
    assert len(diff_states(expected, actual, limit=5)) == 5


# ---------------------------------------------------------------------------
# RNG state capture
# ---------------------------------------------------------------------------
def test_generator_state_roundtrip_is_bit_exact():
    gen = np.random.Generator(np.random.PCG64(123))
    gen.random(17)
    state = generator_state(gen)
    validate_plain(state)
    ahead = gen.random(5).tolist()
    clone = np.random.Generator(np.random.PCG64(0))
    set_generator_state(clone, state)
    assert clone.random(5).tolist() == ahead


def test_generator_state_capture_does_not_advance():
    gen = np.random.Generator(np.random.PCG64(7))
    before = generator_state(gen)
    after = generator_state(gen)
    assert before == after
    assert math.isfinite(gen.random())
