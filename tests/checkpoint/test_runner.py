"""Checkpointed runs: resume identity, tamper detection, disabled mode."""

import pytest

from repro.checkpoint import (
    CheckpointManager,
    CheckpointedRun,
    RestoreMismatchError,
    RunConfig,
    resume_checkpointed,
    run_checkpointed,
)

FINGERPRINT_KEYS = ("report", "trace", "shed", "batch")


# ---------------------------------------------------------------------------
# RunConfig
# ---------------------------------------------------------------------------
def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown run kind"):
        RunConfig(kind="mystery")


def test_nonpositive_period_rejected():
    with pytest.raises(ValueError, match="must be positive"):
        RunConfig(checkpoint_period=0.0)


def test_config_payload_roundtrip(quick_config):
    clone = RunConfig.from_payload(quick_config.to_payload())
    assert clone == quick_config


def test_config_missing_field_rejected(quick_config):
    payload = quick_config.to_payload()
    del payload["seed"]
    with pytest.raises(ValueError, match="missing fields.*seed"):
        RunConfig.from_payload(payload)


# ---------------------------------------------------------------------------
# Solr resume identity
# ---------------------------------------------------------------------------
def test_solr_resume_matches_uninterrupted(tmp_path, quick_config):
    directory = str(tmp_path / "ckpt")
    oneshot = run_checkpointed(quick_config, directory=directory)
    assert oneshot["resumed"] is False
    resumed = resume_checkpointed(directory)
    assert resumed["resumed"] is True
    for key in FINGERPRINT_KEYS + ("n_requests", "sim_time"):
        assert resumed[key] == oneshot[key], key


def test_checkpoints_written_at_every_safe_point(tmp_path, quick_config):
    directory = str(tmp_path / "ckpt")
    seen = []
    run_checkpointed(
        quick_config, directory=directory, on_checkpoint=seen.append,
    )
    # duration 0.5 / period 0.2 -> safe-points at 0.2 and 0.4.
    assert seen == [1, 2]
    assert CheckpointManager(directory).indices() == [1, 2]


def test_disabled_mode_schedules_and_saves_nothing(tmp_path):
    config = RunConfig(
        kind="solr", duration=0.4, warmup=0.1, cal_duration=0.05,
        checkpoint_period=None,
    )
    directory = str(tmp_path / "ckpt")
    fingerprints = run_checkpointed(config, directory=directory)
    assert fingerprints["resumed"] is False
    assert CheckpointManager(directory).indices() == []


def test_checkpointing_is_invisible_to_the_run(tmp_path, quick_config):
    """Fingerprints with checkpointing on equal fingerprints with it off,
    and the only events checkpointing adds are the safe-point ticks
    themselves -- the disabled mode is exactly the plain run (the <= 1.05x
    overhead budget holds structurally: zero extra simulated work)."""
    disabled = CheckpointedRun(RunConfig(**{
        **quick_config.to_payload(), "checkpoint_period": None,
    }))
    plain = disabled.run()
    enabled = CheckpointedRun(quick_config, directory=str(tmp_path / "ckpt"))
    checkpointed = enabled.run()
    for key in FINGERPRINT_KEYS + ("n_requests",):
        assert checkpointed[key] == plain[key], key
    # duration 0.5 / period 0.2 -> exactly two auto-checkpoint events.
    assert (enabled.simulator.snapshot_state()["event_count"]
            == disabled.simulator.snapshot_state()["event_count"] + 2)


# ---------------------------------------------------------------------------
# Divergence detection
# ---------------------------------------------------------------------------
def test_tampered_layer_state_fails_verification(tmp_path, quick_config):
    directory = str(tmp_path / "ckpt")
    run_checkpointed(quick_config, directory=directory)
    manager = CheckpointManager(directory)
    body = manager.load_latest()
    body["layers"]["sim"]["event_count"] += 1
    manager.save(
        body["index"], body["sim_time"], body["config"], body["layers"],
    )
    with pytest.raises(RestoreMismatchError, match=r"sim\['event_count'\]"):
        resume_checkpointed(directory)


def test_resume_with_shorter_run_never_reaches_tick(tmp_path, quick_config):
    directory = str(tmp_path / "ckpt")
    run_checkpointed(quick_config, directory=directory)
    manager = CheckpointManager(directory)
    body = manager.load_latest()
    run = CheckpointedRun(quick_config, _resume_body=body)
    run._resume_index = 99  # a tick the schedule never fires
    with pytest.raises(RestoreMismatchError, match="without reaching"):
        run.run()


# ---------------------------------------------------------------------------
# Chaos resume identity (one per world shape)
# ---------------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("scenario", [
    "meter-nan-burst",   # single-machine world
    "cluster-crash",     # cluster world + dispatcher
    "arrival-storm",     # overload world: protector + enforcer + shed set
])
def test_chaos_resume_matches_uninterrupted(tmp_path, scenario):
    config = RunConfig(
        kind="chaos", seed=42, scenario=scenario, duration_scale=0.5,
        checkpoint_period=0.3,
    )
    directory = str(tmp_path / "ckpt")
    oneshot = run_checkpointed(config, directory=directory)
    resumed = resume_checkpointed(directory)
    assert resumed["resumed"] is True
    for key in FINGERPRINT_KEYS + ("passed",):
        assert resumed[key] == oneshot[key], key
