"""A stale meter stays stale across snapshot/restore (satellite: guards).

The meter-health watchdog and the recalibration guard both carry "when do
we try again" state -- the ``stale`` flag with its fallback coefficients,
and the guard's backoff deadline.  A restore that silently reset either
would make a resumed run re-trust a meter the original run had already
demoted, diverging from the uninterrupted timeline.
"""

import numpy as np

from repro.core import PowerContainerFacility
from repro.core.recalibration import RecalibrationGuard
from repro.hardware import PackageMeter, RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import Compute, Kernel, Sleep
from repro.sim import Simulator

HOT = RateProfile(name="ckpt-hot", ipc=1.2, cache_per_cycle=0.012,
                  mem_per_cycle=0.007, hidden_watts=5.0)


def _metered_world(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(
        kernel, sb_cal,
        meter=PackageMeter(machine, sim, period=1e-3, delay=1e-3),
        meter_idle_watts=sb_cal.package_idle_watts,
        trace_period=1e-3,
        recalib_interval=0.1,
        max_delay_seconds=0.01,
    )
    facility.start_tracing()
    return sim, machine, kernel, facility


def _busy_program(machine, duration):
    def program():
        elapsed = 0.0
        while elapsed < duration:
            yield Compute(cycles=machine.freq_hz * 0.02, profile=HOT)
            yield Sleep(0.005)
            elapsed += 0.025
    return program()


def test_stale_meter_stays_stale_after_restore(sb_cal):
    sim, machine, kernel, facility = _metered_world(sb_cal)
    container = facility.create_request_container("r")
    kernel.spawn(_busy_program(machine, 1.5), "w", container_id=container.id)
    # Kill the meter mid-run; the watchdog declares it stale one staleness
    # timeout later and falls the live models back to last-good.
    sim.schedule(0.3, facility.meter.stop)
    sim.run_until(1.2)
    assert facility.health.meter_state == "stale"
    fallbacks = facility.health.meter_fallbacks
    assert fallbacks >= 1

    snapshot = facility.snapshot_state()

    # Perturb everything the snapshot should own, then restore.
    facility.health.meter_state = "ok"
    facility.health.meter_fallbacks = 0
    facility.health.meter_recoveries = 99
    for recalibrator in facility.recalibrators.values():
        guard = recalibrator.guard
        if guard is not None:
            guard._backoff = 999
            guard._skip_remaining = 7
            guard.skipped_count = 123
    facility.restore_state(snapshot)

    assert facility.health.meter_state == "stale"
    assert facility.health.meter_fallbacks == fallbacks
    for name, recalibrator in facility.recalibrators.items():
        guard = recalibrator.guard
        if guard is None:
            continue
        expected = snapshot["recalibrators"][name]["guard"]
        assert guard._backoff == expected["backoff"], name
        assert guard._skip_remaining == expected["skip_remaining"], name
        assert guard.skipped_count == expected["skipped_count"], name


def test_rejected_guard_keeps_backoff_deadline_across_restore():
    guard = RecalibrationGuard(backoff_initial=2, backoff_max=16)
    holdout_X = np.eye(3)
    holdout_y = np.ones(3)
    current = np.array([1.0, 1.0, 1.0])
    absurd = np.full(3, 1e9)  # drift far beyond the bound -> rejected
    assert guard.evaluate(absurd, current, holdout_X, holdout_y) is False
    assert guard.rejected_count == 1

    snapshot = guard.snapshot_state()
    clone = RecalibrationGuard(backoff_initial=2, backoff_max=16)
    clone.restore_state(snapshot)

    assert clone.rejected_count == guard.rejected_count
    assert clone.last_rejection == guard.last_rejection
    # The backoff deadline is identical: both skip exactly the same number
    # of upcoming refit rounds, then re-engage on the same round.
    original_window = [guard.should_skip() for _ in range(4)]
    restored_window = [clone.should_skip() for _ in range(4)]
    assert restored_window == original_window == [True, True, False, False]


def test_accepted_vector_survives_restore():
    guard = RecalibrationGuard()
    holdout_X = np.eye(2)
    holdout_y = np.array([2.0, 3.0])
    good = np.array([2.0, 3.0])
    assert guard.evaluate(good, np.zeros(2), holdout_X, holdout_y) is True

    clone = RecalibrationGuard()
    clone.restore_state(guard.snapshot_state())
    assert clone.last_good is not None
    np.testing.assert_array_equal(clone.last_good, good)
    assert clone.accepted_count == 1
