"""Checkpoint persistence: atomicity, pruning, and corrupt-file rejection."""

import hashlib
import os
import pickle

import pytest

from repro.checkpoint import (
    SCHEMA_VERSION,
    CheckpointManager,
    CorruptCheckpointError,
    SchemaMismatchError,
)

LAYERS = {"sim": {"v": 1, "now": 0.25}, "hub": {"v": 1, "seed": 7}}
CONFIG = {"kind": "solr", "seed": 7}


def _manager(tmp_path, **kwargs):
    return CheckpointManager(str(tmp_path / "ckpt"), **kwargs)


# ---------------------------------------------------------------------------
# save / load roundtrip
# ---------------------------------------------------------------------------
def test_save_load_roundtrip(tmp_path):
    manager = _manager(tmp_path)
    path = manager.save(3, 0.25, CONFIG, LAYERS)
    assert os.path.basename(path) == "checkpoint-000003.ckpt"
    body = manager.load(path)
    assert body["schema"] == SCHEMA_VERSION
    assert body["index"] == 3
    assert body["sim_time"] == 0.25
    assert body["config"] == CONFIG
    assert body["layers"] == LAYERS


def test_save_leaves_no_temporaries(tmp_path):
    manager = _manager(tmp_path)
    manager.save(1, 0.1, CONFIG, LAYERS)
    assert sorted(os.listdir(manager.directory)) == ["checkpoint-000001.ckpt"]


def test_load_latest_picks_highest_index(tmp_path):
    manager = _manager(tmp_path)
    for index in (1, 2, 3):
        manager.save(index, index * 0.1, CONFIG, LAYERS)
    assert manager.load_latest()["index"] == 3


def test_prune_keeps_newest(tmp_path):
    manager = _manager(tmp_path, keep=2)
    for index in range(1, 6):
        manager.save(index, index * 0.1, CONFIG, LAYERS)
    assert manager.indices() == [4, 5]


def test_object_in_layers_rejected_at_save_time(tmp_path):
    manager = _manager(tmp_path)
    with pytest.raises(TypeError, match="not plain snapshot data"):
        manager.save(1, 0.1, CONFIG, {"sim": {"v": 1, "obj": object()}})
    assert manager.indices() == []


# ---------------------------------------------------------------------------
# corrupt / mismatched files are rejected, never silently loaded
# ---------------------------------------------------------------------------
def test_load_latest_on_empty_directory_errors(tmp_path):
    manager = _manager(tmp_path)
    with pytest.raises(CorruptCheckpointError, match="no checkpoints"):
        manager.load_latest()


def test_flipped_byte_rejected(tmp_path):
    manager = _manager(tmp_path)
    path = manager.save(1, 0.1, CONFIG, LAYERS)
    raw = bytearray(open(path, "rb").read())
    raw[len(raw) // 2] ^= 0xFF
    open(path, "wb").write(bytes(raw))
    with pytest.raises(CorruptCheckpointError, match="digest mismatch"):
        manager.load(path)


def test_truncated_file_rejected(tmp_path):
    manager = _manager(tmp_path)
    path = manager.save(1, 0.1, CONFIG, LAYERS)
    raw = open(path, "rb").read()
    open(path, "wb").write(raw[: len(raw) - 7])
    with pytest.raises(CorruptCheckpointError, match="digest mismatch"):
        manager.load(path)


def test_missing_magic_rejected(tmp_path):
    manager = _manager(tmp_path)
    path = manager.save(1, 0.1, CONFIG, LAYERS)
    raw = open(path, "rb").read()
    open(path, "wb").write(b"NOT-A-CKPT\n" + raw[11:])
    with pytest.raises(CorruptCheckpointError, match="magic header"):
        manager.load(path)


def test_malformed_digest_header_rejected(tmp_path):
    manager = _manager(tmp_path)
    path = manager.save(1, 0.1, CONFIG, LAYERS)
    open(path, "wb").write(b"REPRO-CKPT\nshort\n" + b"x" * 32)
    with pytest.raises(CorruptCheckpointError, match="malformed digest"):
        manager.load(path)


def _write_raw_body(path, body) -> None:
    """Bypass save-time validation to craft a structurally wrong body."""
    blob = pickle.dumps(body, protocol=4)
    digest = hashlib.sha256(blob).hexdigest()
    with open(path, "wb") as handle:
        handle.write(b"REPRO-CKPT\n")
        handle.write(digest.encode("ascii") + b"\n")
        handle.write(blob)


def test_schema_mismatch_rejected(tmp_path):
    manager = _manager(tmp_path)
    path = manager.path_for(1)
    _write_raw_body(path, {
        "schema": SCHEMA_VERSION + 1, "index": 1, "sim_time": 0.1,
        "config": CONFIG, "layers": LAYERS,
    })
    with pytest.raises(SchemaMismatchError, match="refusing to load"):
        manager.load(path)


def test_non_record_body_rejected(tmp_path):
    manager = _manager(tmp_path)
    path = manager.path_for(1)
    _write_raw_body(path, ["not", "a", "record"])
    with pytest.raises(CorruptCheckpointError, match="not a checkpoint"):
        manager.load(path)


def test_missing_required_key_rejected(tmp_path):
    manager = _manager(tmp_path)
    path = manager.path_for(1)
    _write_raw_body(path, {
        "schema": SCHEMA_VERSION, "index": 1, "sim_time": 0.1,
        "config": CONFIG,
    })
    with pytest.raises(CorruptCheckpointError, match="'layers'"):
        manager.load(path)


def test_undeserializable_body_rejected(tmp_path):
    manager = _manager(tmp_path)
    path = manager.path_for(1)
    blob = b"\x80\x04 this is not a pickle"
    digest = hashlib.sha256(blob).hexdigest()
    with open(path, "wb") as handle:
        handle.write(b"REPRO-CKPT\n" + digest.encode() + b"\n" + blob)
    with pytest.raises(CorruptCheckpointError, match="does not deserialize"):
        manager.load(path)


def test_keep_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        CheckpointManager(str(tmp_path / "x"), keep=0)
