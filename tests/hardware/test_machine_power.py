"""Tests for machine assembly, ground-truth power, and energy integration."""

import pytest

from repro.hardware import (
    RateProfile,
    SANDYBRIDGE,
    WOODCREST,
    WESTMERE,
    build_machine,
    spec_by_name,
)
from repro.sim import Simulator

SPIN = RateProfile(name="spin", ipc=1.0)


@pytest.fixture
def sb():
    sim = Simulator()
    return build_machine(SANDYBRIDGE, sim), sim


def test_topology_sandybridge(sb):
    machine, _ = sb
    assert machine.n_cores == 4
    assert len(machine.chips) == 1
    assert [c.index for c in machine.cores] == [0, 1, 2, 3]


def test_topology_woodcrest():
    sim = Simulator()
    machine = build_machine(WOODCREST, sim)
    assert machine.n_cores == 4
    assert len(machine.chips) == 2
    assert machine.cores[0].chip is machine.chips[0]
    assert machine.cores[2].chip is machine.chips[1]


def test_topology_westmere():
    machine = build_machine(WESTMERE, Simulator())
    assert machine.n_cores == 12
    assert len(machine.chips) == 2


def test_spec_by_name_round_trip():
    assert spec_by_name("sandybridge") is SANDYBRIDGE
    with pytest.raises(KeyError):
        spec_by_name("epyc")


def test_idle_machine_draws_only_idle_power(sb):
    machine, _ = sb
    breakdown = machine.power_breakdown()
    assert breakdown.active_watts == 0.0
    assert breakdown.machine_watts == pytest.approx(26.1)
    # Package still draws its idle floor.
    assert breakdown.package_watts[0] == pytest.approx(2.2)


def test_one_busy_core_includes_maintenance(sb):
    machine, _ = sb
    machine.cores[0].begin_activity(SPIN)
    breakdown = machine.power_breakdown()
    model = SANDYBRIDGE.true_model
    expected_core = model.w_core + model.w_ins * SPIN.ipc
    assert breakdown.per_core_watts[0] == pytest.approx(expected_core)
    assert breakdown.maintenance_watts[0] == pytest.approx(5.6)
    assert breakdown.active_watts == pytest.approx(expected_core + 5.6)


def test_maintenance_charged_once_per_chip_not_per_core(sb):
    machine, _ = sb
    machine.cores[0].begin_activity(SPIN)
    one = machine.power_breakdown().active_watts
    machine.cores[1].begin_activity(SPIN)
    two = machine.power_breakdown().active_watts
    # Second core adds only its core-level power, no second maintenance.
    assert (two - one) < (one - 0.0)
    per_core = machine.power_breakdown().per_core_watts[1]
    assert two - one == pytest.approx(per_core)


def test_woodcrest_second_chip_adds_maintenance():
    machine = build_machine(WOODCREST, Simulator())
    machine.cores[0].begin_activity(SPIN)  # chip 0
    one = machine.power_breakdown().active_watts
    machine.cores[2].begin_activity(SPIN)  # chip 1
    two = machine.power_breakdown().active_watts
    per_core = machine.power_breakdown().per_core_watts[2]
    maintenance = WOODCREST.true_model.maintenance_watts
    assert two - one == pytest.approx(per_core + maintenance)


def test_duty_cycle_scales_core_power_linearly(sb):
    machine, _ = sb
    core = machine.cores[0]
    core.begin_activity(SPIN)
    full = machine.power_breakdown().per_core_watts[0]
    core.set_duty_level(4)  # 4/8 = half speed
    half = machine.power_breakdown().per_core_watts[0]
    assert half == pytest.approx(full / 2)


def test_hidden_watts_contribute_to_truth(sb):
    machine, _ = sb
    plain = RateProfile(name="plain", ipc=1.0)
    hidden = RateProfile(name="hot", ipc=1.0, hidden_watts=4.0)
    machine.cores[0].begin_activity(plain)
    base = machine.power_breakdown().per_core_watts[0]
    machine.cores[0].begin_activity(hidden)
    hot = machine.power_breakdown().per_core_watts[0]
    assert hot - base == pytest.approx(4.0)


def test_energy_integration_piecewise_exact(sb):
    machine, sim = sb
    machine.checkpoint()
    sim.run_until(1.0)
    machine.checkpoint()  # 1 s idle
    machine.cores[0].begin_activity(SPIN)
    sim.run_until(3.0)
    machine.checkpoint()  # 2 s with one spinning core
    idle = 26.1
    active = machine.power_breakdown().active_watts
    expected = idle * 3.0 + active * 2.0
    assert machine.integrator.machine_joules == pytest.approx(expected)
    assert machine.integrator.active_joules == pytest.approx(active * 2.0)


def test_checkpoint_is_idempotent_at_same_time(sb):
    machine, sim = sb
    sim.run_until(1.0)
    machine.checkpoint()
    before = machine.integrator.machine_joules
    machine.checkpoint()
    assert machine.integrator.machine_joules == before


def test_per_core_and_maintenance_energy_split(sb):
    machine, sim = sb
    machine.cores[0].begin_activity(SPIN)
    machine.checkpoint()
    sim.run_until(2.0)
    machine.checkpoint()
    per_core = machine.integrator.per_core_joules(0)
    maint = machine.integrator.maintenance_joules(0)
    model = SANDYBRIDGE.true_model
    assert per_core == pytest.approx((model.w_core + model.w_ins) * 2.0)
    assert maint == pytest.approx(5.6 * 2.0)


def test_package_energy_includes_package_idle(sb):
    machine, sim = sb
    machine.checkpoint()
    sim.run_until(5.0)
    machine.checkpoint()
    assert machine.integrator.package_joules(0) == pytest.approx(2.2 * 5.0)


def test_impulse_energy_charged_to_core_and_package(sb):
    machine, _ = sb
    machine.add_impulse_energy(0.5, core_index=1)
    assert machine.integrator.machine_joules == pytest.approx(0.5)
    assert machine.integrator.per_core_joules(1) == pytest.approx(0.5)
    assert machine.integrator.package_joules(0) == pytest.approx(0.5)


def test_disk_transfer_power_and_timing(sb):
    machine, sim = sb
    duration = machine.disk.begin_transfer(1_000_000)
    assert duration == pytest.approx(4e-3 + 1_000_000 / 100e6)
    assert machine.power_breakdown().peripheral_watts == pytest.approx(1.7)
    sim.run_until(duration)
    machine.disk.end_transfer()
    assert machine.power_breakdown().peripheral_watts == 0.0
    assert machine.integrator.peripheral_joules == pytest.approx(1.7 * duration)


def test_net_and_disk_power_are_additive(sb):
    machine, _ = sb
    machine.disk.begin_transfer(1000)
    machine.net.begin_transfer(1000)
    assert machine.power_breakdown().peripheral_watts == pytest.approx(1.7 + 5.8)


def test_ending_transfer_without_start_raises(sb):
    machine, _ = sb
    with pytest.raises(RuntimeError):
        machine.disk.end_transfer()


def test_run_for_cycles_requires_active_profile(sb):
    machine, _ = sb
    with pytest.raises(RuntimeError):
        machine.cores[0].run_for_cycles(100)


def test_core_cycles_seconds_round_trip(sb):
    machine, _ = sb
    core = machine.cores[0]
    core.set_duty_level(4)
    cycles = 3.1e6
    assert core.cycles_for_seconds(core.seconds_for_cycles(cycles)) == pytest.approx(cycles)


def test_duty_level_bounds(sb):
    machine, _ = sb
    core = machine.cores[0]
    with pytest.raises(ValueError):
        core.set_duty_level(0)
    with pytest.raises(ValueError):
        core.set_duty_level(9)


def test_sandybridge_calibration_table_shape():
    """The true model reproduces the published Section 4.1 maxima."""
    model = SANDYBRIDGE.true_model
    assert model.w_core * 4 == pytest.approx(33.1)           # Ccore * Mmax
    assert model.w_ins * 10 == pytest.approx(12.4)           # Cins * Mmax
    assert model.w_cache * 0.08 == pytest.approx(13.9)       # Ccache * Mmax
    assert model.w_mem * 0.04 == pytest.approx(8.2)          # Cmem * Mmax
    assert model.maintenance_watts == pytest.approx(5.6)     # Cchipshare * Mmax
    assert model.idle_machine_watts == pytest.approx(26.1)   # Cidle
    assert model.disk_active_watts == pytest.approx(1.7)
    assert model.net_active_watts == pytest.approx(5.8)


def test_energy_for_events_matches_power_times_time():
    model = SANDYBRIDGE.true_model
    profile = RateProfile(ipc=2.0, cache_per_cycle=0.01)
    events = profile.events_for_cycles(3.1e6)  # 1 ms at 3.1 GHz
    joules = model.energy_for_events(events, freq_hz=3.1e9)
    watts = model.core_active_watts(1.0, 2.0, 0.0, 0.01, 0.0, 0.0)
    assert joules == pytest.approx(watts * 1e-3)


def test_energy_for_zero_events_is_zero():
    model = SANDYBRIDGE.true_model
    from repro.hardware import EventVector
    assert model.energy_for_events(EventVector(), 3.1e9) == 0.0
