"""Tests for the delayed power meters."""

import pytest

from repro.hardware import (
    PackageMeter,
    RateProfile,
    SANDYBRIDGE,
    WallMeter,
    build_machine,
)
from repro.sim import Simulator

SPIN = RateProfile(name="spin", ipc=1.0)


def _setup():
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    return sim, machine


def test_wall_meter_reads_idle_power():
    sim, machine = _setup()
    meter = WallMeter(machine, sim, period=1.0, delay=1.2)
    meter.start()
    sim.run_until(3.5)
    samples = meter.all_samples
    assert len(samples) == 3
    for s in samples:
        assert s.watts == pytest.approx(26.1)


def test_meter_delay_gates_availability():
    sim, machine = _setup()
    meter = WallMeter(machine, sim, period=1.0, delay=1.2)
    meter.start()
    sim.run_until(2.0)
    # Sample for interval ending at t=1 not visible until t=2.2.
    assert meter.samples_available(2.0) == []
    assert len(meter.samples_available(2.3)) == 1


def test_latest_available():
    sim, machine = _setup()
    meter = WallMeter(machine, sim, period=1.0, delay=0.5)
    meter.start()
    sim.run_until(3.4)
    latest = meter.latest_available(sim.now)
    assert latest is not None
    assert latest.interval_end == pytest.approx(2.0)


def test_package_meter_excludes_machine_idle_floor():
    sim, machine = _setup()
    meter = PackageMeter(machine, sim, period=1e-3, delay=1e-3)
    meter.start()
    sim.run_until(0.01)
    # Idle machine: package meter sees only the package idle floor.
    for s in meter.all_samples:
        assert s.watts == pytest.approx(2.2)


def test_package_meter_sees_core_activity():
    sim, machine = _setup()
    machine.cores[0].begin_activity(SPIN)
    machine.checkpoint()
    meter = PackageMeter(machine, sim, period=1e-3, delay=1e-3)
    meter.start()
    sim.run_until(0.005)
    model = SANDYBRIDGE.true_model
    expected = 2.2 + 5.6 + model.w_core + model.w_ins
    assert meter.all_samples[-1].watts == pytest.approx(expected)


def test_meter_captures_power_transition():
    sim, machine = _setup()
    meter = WallMeter(machine, sim, period=1.0, delay=0.0)
    meter.start()
    sim.schedule(2.0, lambda: (machine.checkpoint(),
                               machine.cores[0].begin_activity(SPIN)))
    sim.run_until(4.0)
    watts = [s.watts for s in meter.all_samples]
    assert watts[0] == pytest.approx(26.1)          # idle
    assert watts[-1] > 26.1 + 10                     # busy


def test_meter_noise_is_reproducible():
    import numpy as np
    readings = []
    for _ in range(2):
        sim, machine = _setup()
        meter = WallMeter(machine, sim, period=1.0, delay=0.0,
                          noise_std_watts=1.0, rng=np.random.default_rng(5))
        meter.start()
        sim.run_until(5.0)
        readings.append([s.watts for s in meter.all_samples])
    assert readings[0] == readings[1]
    assert any(abs(w - 26.1) > 1e-6 for w in readings[0])


def test_mean_watts_over_window():
    sim, machine = _setup()
    meter = WallMeter(machine, sim, period=1.0, delay=0.0)
    meter.start()
    sim.run_until(5.0)
    assert meter.mean_watts(0.0, 5.0) == pytest.approx(26.1)
    assert meter.mean_watts(10.0) == 0.0


def test_stop_halts_sampling():
    sim, machine = _setup()
    meter = WallMeter(machine, sim, period=1.0, delay=0.0)
    meter.start()
    sim.run_until(2.5)
    meter.stop()
    count = len(meter.all_samples)
    sim.run_until(6.0)
    assert len(meter.all_samples) == count


def test_invalid_meter_parameters_rejected():
    sim, machine = _setup()
    with pytest.raises(ValueError):
        WallMeter(machine, sim, period=0.0)
    with pytest.raises(ValueError):
        WallMeter(machine, sim, period=1.0, delay=-0.1)


def test_double_start_is_noop():
    sim, machine = _setup()
    meter = WallMeter(machine, sim, period=1.0, delay=0.0)
    meter.start()
    meter.start()
    sim.run_until(3.0)
    assert len(meter.all_samples) == 3
