"""Tests for counter banks and the sibling sample mailbox."""

import pytest

from repro.hardware import CounterBank, SampleMailbox, EventVector
from repro.hardware.counters import UtilizationSample


def test_counterbank_accumulates():
    bank = CounterBank()
    bank.accumulate(EventVector(nonhalt_cycles=100, instructions=200))
    bank.accumulate(EventVector(nonhalt_cycles=50))
    snap = bank.read()
    assert snap.nonhalt_cycles == 150
    assert snap.instructions == 200


def test_read_returns_snapshot_not_live_reference():
    bank = CounterBank()
    snap = bank.read()
    bank.accumulate(EventVector(nonhalt_cycles=10))
    assert snap.nonhalt_cycles == 0


def test_overflow_disabled_by_default():
    bank = CounterBank()
    assert bank.cycles_until_overflow() == float("inf")
    assert not bank.overflow_pending()


def test_overflow_threshold_counts_down():
    bank = CounterBank(overflow_threshold_cycles=1000)
    assert bank.cycles_until_overflow() == 1000
    bank.accumulate(EventVector(nonhalt_cycles=400))
    assert bank.cycles_until_overflow() == 600
    bank.accumulate(EventVector(nonhalt_cycles=600))
    assert bank.overflow_pending()


def test_acknowledge_rearms_from_current_count():
    bank = CounterBank(overflow_threshold_cycles=1000)
    bank.accumulate(EventVector(nonhalt_cycles=1500))
    assert bank.overflow_pending()
    bank.acknowledge_overflow()
    assert not bank.overflow_pending()
    assert bank.cycles_until_overflow() == 1000


def test_overflow_remaining_never_negative():
    bank = CounterBank(overflow_threshold_cycles=100)
    bank.accumulate(EventVector(nonhalt_cycles=250))
    assert bank.cycles_until_overflow() == 0


def test_mailbox_initially_zero():
    box = SampleMailbox()
    sample = box.peek()
    assert sample.time == 0.0
    assert sample.mcore == 0.0


def test_mailbox_post_and_peek():
    box = SampleMailbox()
    box.post(1.5, 0.75)
    assert box.peek() == UtilizationSample(time=1.5, mcore=0.75)


def test_mailbox_keeps_only_latest():
    box = SampleMailbox()
    box.post(1.0, 0.2)
    box.post(2.0, 0.9)
    assert box.peek().mcore == 0.9


def test_mailbox_rejects_out_of_range_utilization():
    box = SampleMailbox()
    with pytest.raises(ValueError):
        box.post(1.0, 1.5)
    with pytest.raises(ValueError):
        box.post(1.0, -0.1)


def test_mailbox_clamps_tiny_overshoot():
    box = SampleMailbox()
    box.post(1.0, 1.0 + 5e-10)
    assert box.peek().mcore == 1.0
