"""Unit tests for the ground-truth power model pieces."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware import RateProfile, SANDYBRIDGE
from repro.hardware.power import TruePowerModel


@pytest.fixture
def model():
    return SANDYBRIDGE.true_model


def test_idle_core_draws_nothing(model):
    assert model.core_active_watts(0.0, 2.0, 1.0, 0.02, 0.01, 5.0) == 0.0


def test_core_watts_linear_in_utilization(model):
    half = model.core_active_watts(0.5, 1.0, 0.0, 0.0, 0.0, 0.0)
    full = model.core_active_watts(1.0, 1.0, 0.0, 0.0, 0.0, 0.0)
    assert full == pytest.approx(2 * half)


def test_hidden_watts_add_directly(model):
    base = model.core_active_watts(1.0, 1.0, 0.0, 0.0, 0.0, 0.0)
    hot = model.core_active_watts(1.0, 1.0, 0.0, 0.0, 0.0, 7.0)
    assert hot - base == pytest.approx(7.0)


def test_energy_for_events_negative_free(model):
    profile = RateProfile(ipc=1.0)
    assert model.energy_for_events(
        profile.events_for_cycles(1000), 3.1e9
    ) > 0


@given(
    util=st.floats(min_value=0.01, max_value=1.0),
    ipc=st.floats(min_value=0.0, max_value=4.0),
    cache=st.floats(min_value=0.0, max_value=0.05),
)
def test_property_watts_monotone_in_each_metric(util, ipc, cache):
    model = SANDYBRIDGE.true_model
    base = model.core_active_watts(util, ipc, 0.0, cache, 0.0, 0.0)
    more_ipc = model.core_active_watts(util, ipc + 0.1, 0.0, cache, 0.0, 0.0)
    more_cache = model.core_active_watts(util, ipc, 0.0, cache + 0.001, 0.0, 0.0)
    assert more_ipc >= base
    assert more_cache >= base
    assert base >= util * model.w_core - 1e-12


def test_custom_model_construction():
    model = TruePowerModel(
        idle_machine_watts=10.0, package_idle_watts=1.0,
        maintenance_watts=2.0, w_core=5.0, w_ins=1.0, w_flop=0.5,
        w_cache=100.0, w_mem=200.0,
    )
    watts = model.core_active_watts(1.0, 1.0, 1.0, 0.01, 0.005, 0.0)
    assert watts == pytest.approx(5.0 + 1.0 + 0.5 + 1.0 + 1.0)
