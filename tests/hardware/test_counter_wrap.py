"""Tests for 48-bit counter wraparound handling."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware import CounterBank, EventVector
from repro.hardware.counters import COUNTER_WRAP, wrapped_delta


def test_unwrapped_bank_reads_raw_totals():
    bank = CounterBank()
    bank.accumulate(EventVector(nonhalt_cycles=COUNTER_WRAP + 100))
    assert bank.read().nonhalt_cycles == COUNTER_WRAP + 100


def test_wrapped_bank_reduces_modulo_width():
    bank = CounterBank(wrap=True)
    bank.accumulate(EventVector(nonhalt_cycles=COUNTER_WRAP + 100))
    assert bank.read().nonhalt_cycles == pytest.approx(100)


def test_wrapped_delta_plain_case():
    a = EventVector(nonhalt_cycles=1000)
    b = EventVector(nonhalt_cycles=4000)
    assert wrapped_delta(b, a).nonhalt_cycles == 3000


def test_wrapped_delta_recovers_across_wrap():
    before = EventVector(nonhalt_cycles=COUNTER_WRAP - 500)
    after = EventVector(nonhalt_cycles=700)  # wrapped: real delta 1200
    assert wrapped_delta(after, before).nonhalt_cycles == pytest.approx(1200)


def test_wrapped_delta_treats_fp_noise_as_zero():
    a = EventVector(instructions=1000.0)
    b = EventVector(instructions=1000.0 - 1e-7)
    assert wrapped_delta(b, a).instructions == 0.0


def test_accounting_correct_across_wrap(sb_cal=None):
    """End-to-end: an accountant reading wrapped registers attributes the
    right event counts across a wrap boundary."""
    from repro.core import calibrate_machine, PowerContainerFacility
    from repro.hardware import SANDYBRIDGE, build_machine, RateProfile
    from repro.kernel import Compute, Kernel
    from repro.sim import Simulator

    cal = calibrate_machine(SANDYBRIDGE, duration=0.1)
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    # Pre-load the counter near the wrap point, then enable wrapping.
    core = machine.cores[0]
    core.counters.accumulate(EventVector(
        nonhalt_cycles=COUNTER_WRAP - 2e6,
        instructions=COUNTER_WRAP - 2e6,
    ))
    core.counters.wrap = True
    core.counters.acknowledge_overflow()
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, cal)
    # Resync the accountant's baseline to the preloaded register value.
    facility.accountants[0]._last_events = core.counters.read()
    container = facility.create_request_container("wrap-test")

    def program():
        yield Compute(cycles=8e6, profile=RateProfile(ipc=1.0))

    kernel.spawn(program(), "w", container_id=container.id, pinned_core=0)
    sim.run_until(0.1)
    facility.flush()
    assert container.stats.events.nonhalt_cycles == pytest.approx(8e6, rel=1e-3)


@given(
    start=st.floats(min_value=0, max_value=COUNTER_WRAP - 1),
    delta=st.floats(min_value=0, max_value=1e12),
)
def test_property_wrapped_delta_inverts_modular_addition(start, delta):
    before = EventVector(nonhalt_cycles=start)
    after = EventVector(nonhalt_cycles=(start + delta) % COUNTER_WRAP)
    recovered = wrapped_delta(after, before).nonhalt_cycles
    # abs tolerance: the double-precision ulp near 2**48 is ~0.03 events.
    assert recovered == pytest.approx(delta, rel=1e-9, abs=0.1)
