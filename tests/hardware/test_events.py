"""Tests for hardware event vectors and rate profiles."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware import EventVector, RateProfile
from repro.hardware.events import IDLE_PROFILE


def test_event_vector_defaults_to_zero():
    vec = EventVector()
    assert vec.is_zero()


def test_add_accumulates():
    a = EventVector(nonhalt_cycles=100, instructions=50)
    a.add(EventVector(nonhalt_cycles=10, instructions=5, flops=2))
    assert a.nonhalt_cycles == 110
    assert a.instructions == 55
    assert a.flops == 2


def test_subtract():
    a = EventVector(nonhalt_cycles=100)
    a.subtract(EventVector(nonhalt_cycles=30))
    assert a.nonhalt_cycles == 70


def test_subtract_clamps_at_zero_when_requested():
    a = EventVector(nonhalt_cycles=10, instructions=5)
    a.subtract(EventVector(nonhalt_cycles=20, instructions=2), clamp=True)
    assert a.nonhalt_cycles == 0
    assert a.instructions == 3


def test_subtract_without_clamp_can_go_negative():
    a = EventVector(nonhalt_cycles=10)
    a.subtract(EventVector(nonhalt_cycles=20))
    assert a.nonhalt_cycles == -10


def test_delta_from():
    later = EventVector(nonhalt_cycles=100, mem_trans=7)
    earlier = EventVector(nonhalt_cycles=40, mem_trans=3)
    delta = later.delta_from(earlier)
    assert delta.nonhalt_cycles == 60
    assert delta.mem_trans == 4
    # originals untouched
    assert later.nonhalt_cycles == 100
    assert earlier.nonhalt_cycles == 40


def test_copy_is_independent():
    a = EventVector(flops=1)
    b = a.copy()
    b.flops = 99
    assert a.flops == 1


def test_scaled():
    a = EventVector(nonhalt_cycles=10, cache_refs=4)
    b = a.scaled(0.5)
    assert b.nonhalt_cycles == 5
    assert b.cache_refs == 2


def test_as_dict_round_trip():
    a = EventVector(nonhalt_cycles=1, instructions=2, flops=3, cache_refs=4,
                    mem_trans=5, disk_bytes=6, net_bytes=7)
    d = a.as_dict()
    assert d["mem_trans"] == 5
    assert EventVector(**d).as_dict() == d


def test_profile_events_scale_with_cycles():
    profile = RateProfile(name="p", ipc=2.0, flops_per_cycle=0.5,
                          cache_per_cycle=0.01, mem_per_cycle=0.005)
    events = profile.events_for_cycles(1000)
    assert events.nonhalt_cycles == 1000
    assert events.instructions == 2000
    assert events.flops == 500
    assert events.cache_refs == 10
    assert events.mem_trans == 5


def test_profile_rejects_negative_rates():
    with pytest.raises(ValueError):
        RateProfile(ipc=-1.0)


def test_idle_profile_generates_nothing_but_cycles():
    events = IDLE_PROFILE.events_for_cycles(100)
    assert events.instructions == 0
    assert events.flops == 0


def test_blended_profile_midpoint():
    a = RateProfile(name="a", ipc=1.0, hidden_watts=0.0)
    b = RateProfile(name="b", ipc=3.0, hidden_watts=4.0)
    mid = a.blended(b, 0.5)
    assert mid.ipc == pytest.approx(2.0)
    assert mid.hidden_watts == pytest.approx(2.0)


def test_blended_profile_rejects_out_of_range_weight():
    a = RateProfile()
    with pytest.raises(ValueError):
        a.blended(a, 1.5)


@given(
    cycles=st.floats(min_value=0, max_value=1e12),
    ipc=st.floats(min_value=0, max_value=8),
)
def test_property_event_counts_nonnegative_and_proportional(cycles, ipc):
    profile = RateProfile(ipc=ipc)
    events = profile.events_for_cycles(cycles)
    assert events.instructions >= 0
    assert events.instructions == pytest.approx(ipc * cycles)


@given(
    a=st.lists(st.floats(min_value=0, max_value=1e9), min_size=7, max_size=7),
    b=st.lists(st.floats(min_value=0, max_value=1e9), min_size=7, max_size=7),
)
def test_property_add_then_subtract_is_identity(a, b):
    names = ("nonhalt_cycles", "instructions", "flops", "cache_refs",
             "mem_trans", "disk_bytes", "net_bytes")
    va = EventVector(**dict(zip(names, a)))
    vb = EventVector(**dict(zip(names, b)))
    vc = va.copy()
    vc.add(vb)
    vc.subtract(vb)
    for name in names:
        assert getattr(vc, name) == pytest.approx(getattr(va, name), rel=1e-9, abs=1e-3)
