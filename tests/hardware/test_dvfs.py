"""Tests for chip-level DVFS (frequency/voltage scaling)."""

import pytest

from repro.hardware import RateProfile, SANDYBRIDGE, WOODCREST, build_machine
from repro.hardware.chip import DVFS_SCALES
from repro.kernel import Compute, Kernel
from repro.sim import Simulator

SPIN = RateProfile(name="spin", ipc=1.0)


def _build(spec=SANDYBRIDGE):
    sim = Simulator()
    machine = build_machine(spec, sim)
    kernel = Kernel(machine, sim)
    return sim, machine, kernel


def test_default_scale_is_nominal():
    _sim, machine, _k = _build()
    assert machine.chips[0].freq_scale == 1.0
    assert machine.chips[0].dynamic_power_factor == pytest.approx(1.0)


def test_invalid_pstate_rejected():
    _sim, machine, _k = _build()
    with pytest.raises(ValueError):
        machine.chips[0].set_freq_scale(0.9)


def test_scaling_slows_execution_proportionally():
    sim, machine, kernel = _build()
    machine.chips[0].set_freq_scale(0.5)
    done = []

    def program():
        yield Compute(cycles=machine.freq_hz * 0.1, profile=SPIN)
        done.append(sim.now)

    kernel.spawn(program(), "w")
    sim.run_until(1.0)
    assert done == [pytest.approx(0.2, rel=1e-6)]


def test_scaling_reduces_power_superlinearly():
    """Halving frequency saves more than half the dynamic power (V^2 f)."""
    _sim, machine, _k = _build()
    core = machine.cores[0]
    core.begin_activity(SPIN)
    full = machine.power_breakdown().per_core_watts[0]
    machine.chips[0].set_freq_scale(0.5)
    half = machine.power_breakdown().per_core_watts[0]
    assert half < full * 0.5
    assert half == pytest.approx(full * 0.5 * (0.6 + 0.4 * 0.5) ** 2)


def test_maintenance_power_scales_with_voltage_only():
    _sim, machine, _k = _build()
    machine.cores[0].begin_activity(SPIN)
    full = machine.power_breakdown().maintenance_watts[0]
    machine.chips[0].set_freq_scale(0.5)
    scaled = machine.power_breakdown().maintenance_watts[0]
    assert scaled == pytest.approx(full * (0.6 + 0.4 * 0.5) ** 2)


def test_dvfs_is_per_chip_on_multisocket():
    sim, machine, kernel = _build(WOODCREST)
    machine.chips[0].set_freq_scale(0.5)
    assert machine.cores[0].effective_hz == pytest.approx(3.0e9 * 0.5)
    assert machine.cores[2].effective_hz == pytest.approx(3.0e9)  # chip 1


def test_kernel_set_chip_frequency_mid_slice_conserves_work():
    sim, machine, kernel = _build()
    total_cycles = machine.freq_hz * 0.2
    done = []

    def program():
        yield Compute(cycles=total_cycles, profile=SPIN)
        done.append(sim.now)

    kernel.spawn(program(), "w")
    sim.run_until(0.1)  # half done at nominal speed
    kernel.set_chip_frequency(machine.chips[0], 0.5)
    sim.run_until(1.0)
    # Remaining half at half speed takes 0.2 s: finish at 0.3 s.
    assert done == [pytest.approx(0.3, rel=1e-6)]
    counted = machine.cores[0].counters.read().nonhalt_cycles
    assert counted == pytest.approx(total_cycles, rel=1e-6)


def test_set_same_frequency_is_noop():
    sim, machine, kernel = _build()
    kernel.set_chip_frequency(machine.chips[0], 1.0)
    assert machine.chips[0].freq_scale == 1.0


def test_energy_integration_correct_across_dvfs_change():
    sim, machine, kernel = _build()

    def program():
        yield Compute(cycles=machine.freq_hz * 0.3, profile=SPIN)

    kernel.spawn(program(), "w")
    sim.run_until(0.1)
    machine.checkpoint()
    e_before = machine.integrator.active_joules
    kernel.set_chip_frequency(machine.chips[0], 0.5)
    sim.run_until(0.2)
    machine.checkpoint()
    e_after = machine.integrator.active_joules - e_before
    # 0.1 s at half speed: power = full * 0.5 * V^2 factor.
    model = machine.true_model
    full = model.core_active_watts(1.0, 1.0, 0, 0, 0, 0) + model.maintenance_watts
    factor_dyn = 0.5 * (0.6 + 0.4 * 0.5) ** 2
    factor_static = (0.6 + 0.4 * 0.5) ** 2
    expected = (
        model.core_active_watts(1.0, 1.0, 0, 0, 0, 0) * factor_dyn
        + model.maintenance_watts * factor_static
    ) * 0.1
    assert e_after == pytest.approx(expected, rel=1e-6)


def test_all_pstates_are_monotonic_in_power():
    _sim, machine, _k = _build()
    core = machine.cores[0]
    core.begin_activity(SPIN)
    powers = []
    for scale in DVFS_SCALES:
        machine.chips[0].set_freq_scale(scale)
        powers.append(machine.power_breakdown().per_core_watts[0])
    assert powers == sorted(powers, reverse=True)
