"""Tests for the optional shared-cache contention model."""

import pytest

from repro.hardware import (
    CacheContentionModel,
    RateProfile,
    SANDYBRIDGE,
    build_machine,
)
from repro.kernel import Compute, Kernel
from repro.sim import Simulator

LIGHT = RateProfile(name="light", ipc=1.5, cache_per_cycle=0.001)
HEAVY = RateProfile(name="heavy", ipc=0.9, cache_per_cycle=0.016,
                    mem_per_cycle=0.009)


def _world(contended):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    if contended:
        machine.contention = CacheContentionModel()
    kernel = Kernel(machine, sim)
    return sim, machine, kernel


def _run_heavy_tasks(n_tasks, contended, cycles=20e6):
    sim, machine, kernel = _world(contended)
    done = []

    def program(tag):
        yield Compute(cycles=cycles, profile=HEAVY)
        done.append((tag, sim.now))

    for i in range(n_tasks):
        kernel.spawn(program(i), f"t{i}")
    sim.run_until(2.0)
    return machine, done


def test_contention_off_by_default():
    machine = build_machine(SANDYBRIDGE, Simulator())
    assert machine.contention is None


def test_single_heavy_task_uncontended():
    """One heavy task stays under the threshold: no slowdown."""
    _machine, solo = _run_heavy_tasks(1, contended=True)
    _machine2, base = _run_heavy_tasks(1, contended=False)
    assert solo[0][1] == pytest.approx(base[0][1], rel=1e-9)


def test_four_heavy_tasks_slow_each_other():
    _m, contended = _run_heavy_tasks(4, contended=True)
    _m2, free = _run_heavy_tasks(4, contended=False)
    slow = max(t for _, t in contended)
    fast = max(t for _, t in free)
    assert slow > fast * 1.3


def test_light_tasks_unaffected():
    sim, machine, kernel = _world(contended=True)
    done = []

    def program():
        yield Compute(cycles=20e6, profile=LIGHT)
        done.append(sim.now)

    for i in range(4):
        kernel.spawn(program(), f"l{i}")
    sim.run_until(1.0)
    assert done[0] == pytest.approx(20e6 / SANDYBRIDGE.freq_hz, rel=1e-2)


def test_contended_counters_show_lower_ipc():
    """Under contention, non-halt cycles grow but instructions track the
    work: observed instructions-per-cycle drops."""
    machine, _done = _run_heavy_tasks(4, contended=True)
    totals = machine.cores[0].counters.read()
    observed_ipc = totals.instructions / totals.nonhalt_cycles
    assert observed_ipc < HEAVY.ipc * 0.8
    # Instructions still match the requested work exactly.
    machine2, _d = _run_heavy_tasks(4, contended=False)
    assert totals.instructions == pytest.approx(
        machine2.cores[0].counters.read().instructions, rel=1e-6
    )


def test_contended_energy_per_task_rises():
    """Stalled cycles still burn core power: the same work costs more
    energy under contention (the Fig. 10 Stress caveat's mechanism)."""
    machine_c, done_c = _run_heavy_tasks(4, contended=True)
    machine_f, done_f = _run_heavy_tasks(4, contended=False)
    machine_c.checkpoint()
    machine_f.checkpoint()
    assert machine_c.integrator.active_joules > \
        machine_f.integrator.active_joules * 1.1


def test_work_fraction_bounds():
    model = CacheContentionModel()
    machine = build_machine(SANDYBRIDGE, Simulator())
    machine.contention = model
    core = machine.cores[0]
    assert model.work_fraction(core) == 1.0  # idle chip
    for c in machine.cores:
        c.begin_activity(HEAVY)
    wf = model.work_fraction(core)
    assert 0.0 < wf < 1.0


def test_pressure_scales_with_duty():
    model = CacheContentionModel()
    machine = build_machine(SANDYBRIDGE, Simulator())
    core = machine.cores[0]
    core.begin_activity(HEAVY)
    full = model.core_pressure(core)
    core.set_duty_level(4)
    assert model.core_pressure(core) == pytest.approx(full / 2)


def test_accounting_still_conserves_under_contention(sb_cal=None):
    from repro.core import calibrate_machine, PowerContainerFacility

    cal = calibrate_machine(SANDYBRIDGE, duration=0.1)
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    machine.contention = CacheContentionModel()
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, cal)
    containers = []
    for i in range(4):
        c = facility.create_request_container(f"r{i}")
        containers.append(c)

        def program():
            yield Compute(cycles=15e6, profile=HEAVY)

        kernel.spawn(program(), f"t{i}", container_id=c.id)
    sim.run_until(1.0)
    facility.flush()
    # Attributed non-halt cycles equal executed cycles (minus observer ops).
    attributed = sum(
        c.stats.events.nonhalt_cycles
        for c in facility.registry.all_containers()
    )
    executed = sum(core.counters.read().nonhalt_cycles
                   for core in machine.cores)
    overhead = sum(a.samples_taken for a in facility.accountants.values()) * 2948
    assert attributed == pytest.approx(executed - overhead, rel=1e-3)
