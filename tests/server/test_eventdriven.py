"""Tests for event-driven servers and user-level stage-transfer tracking."""

import pytest

from repro.core import PowerContainerFacility
from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import ContextTag, Kernel, Message
from repro.server.eventdriven import EventDrivenServer
from repro.sim import Simulator

WORK = RateProfile(name="work", ipc=1.0)


def _world(sb_cal, track):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(
        kernel, sb_cal, track_user_level_stages=track
    )
    server = EventDrivenServer(
        kernel, "evd", WORK,
        cycles_for=lambda payload: payload[1],  # (request_id, cycles)
        turn_cycles=1e6,
    )
    return sim, machine, kernel, facility, server


def _serve_two(sb_cal, track):
    """Two interleaved requests: A heavy (12M cycles), B light (3M)."""
    sim, machine, kernel, facility, server = _world(sb_cal, track)
    replies = []
    server.client_side.on_message = lambda m: replies.append(m.payload)
    a = facility.create_request_container("A")
    b = facility.create_request_container("B")
    server.inject(Message(nbytes=64, payload=(0, 12e6),
                          tag=ContextTag(container_id=a.id)))
    server.inject(Message(nbytes=64, payload=(1, 3e6),
                          tag=ContextTag(container_id=b.id)))
    sim.run_until(0.5)
    facility.flush()
    return a, b, replies, server


def test_event_loop_serves_interleaved_requests(sb_cal):
    a, b, replies, server = _serve_two(sb_cal, track=True)
    assert server.requests_served == 2
    assert len(replies) == 2
    # The light request finishes first despite arriving second
    # (round-robin turns, not FIFO completion).
    assert replies[0][0][0] == 1


def test_sync_tracking_attributes_each_request_correctly(sb_cal):
    """The future-work mechanism: per-request locks make user-level stage
    transfers OS-visible, so attribution matches each request's work."""
    a, b, _replies, _server = _serve_two(sb_cal, track=True)
    freq = SANDYBRIDGE.freq_hz
    assert a.stats.events.nonhalt_cycles == pytest.approx(12e6, rel=0.02)
    assert b.stats.events.nonhalt_cycles == pytest.approx(3e6, rel=0.02)
    assert a.energy("recal") > 3 * b.energy("recal")


def test_without_tracking_event_driven_work_is_misattributed(sb_cal):
    """Section 3.3's limitation, demonstrated: with user-level tracking
    off, whole turns land on whichever request last tagged the process."""
    a, b, _replies, _server = _serve_two(sb_cal, track=False)
    total = a.stats.events.nonhalt_cycles + b.stats.events.nonhalt_cycles
    assert total == pytest.approx(15e6, rel=0.02)  # work conserved...
    # ...but B (3M cycles of real work) is charged far more than its share:
    # it tagged the process last, so A's turns accrue to B.
    assert b.stats.events.nonhalt_cycles > 6e6
    assert a.stats.events.nonhalt_cycles < 9e6


def test_many_requests_conserve_total_work(sb_cal):
    sim, machine, kernel, facility, server = _world(sb_cal, track=True)
    containers = []
    for i in range(8):
        c = facility.create_request_container(f"r{i}")
        containers.append(c)
        server.inject(Message(nbytes=64, payload=(i, (i + 1) * 1e6),
                              tag=ContextTag(container_id=c.id)))
    sim.run_until(1.0)
    facility.flush()
    assert server.requests_served == 8
    for i, container in enumerate(containers):
        assert container.stats.events.nonhalt_cycles == pytest.approx(
            (i + 1) * 1e6, rel=0.05
        )


def test_sync_keys_are_per_server_namespaced(sb_cal):
    """Two event-driven servers may reuse request ids without clashing."""
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal)
    s1 = EventDrivenServer(kernel, "one", WORK, lambda p: p[1])
    s2 = EventDrivenServer(kernel, "two", WORK, lambda p: p[1])
    c1 = facility.create_request_container("c1")
    c2 = facility.create_request_container("c2")
    s1.inject(Message(nbytes=1, payload=(0, 4e6),
                      tag=ContextTag(container_id=c1.id)))
    s2.inject(Message(nbytes=1, payload=(0, 2e6),
                      tag=ContextTag(container_id=c2.id)))
    sim.run_until(0.5)
    facility.flush()
    assert c1.stats.events.nonhalt_cycles == pytest.approx(4e6, rel=0.05)
    assert c2.stats.events.nonhalt_cycles == pytest.approx(2e6, rel=0.05)
