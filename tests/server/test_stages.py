"""Tests for server worker pools and sub-services."""

import pytest

from repro.core import PowerContainerFacility
from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import Compute, ContextTag, Kernel, Message, Recv, Send
from repro.server import Server, SubService
from repro.sim import Simulator

WORK = RateProfile(name="work", ipc=1.0)


@pytest.fixture
def world(sb_cal):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, sb_cal)
    return sim, machine, kernel, facility


def _echo_factory(machine, cycles=1e6):
    def factory(message):
        def handler():
            yield Compute(cycles=cycles, profile=WORK)
            return ("echo", message.payload)
        return handler()
    return factory


def test_server_requires_workers_and_exactly_one_factory(world):
    sim, machine, kernel, facility = world
    factory = _echo_factory(machine)
    with pytest.raises(ValueError):
        Server(kernel, "s", factory, n_workers=0)
    with pytest.raises(ValueError):
        Server(kernel, "s", None, n_workers=2)  # neither factory
    with pytest.raises(ValueError):
        Server(kernel, "s", factory, n_workers=2,
               worker_factory=lambda i: factory)  # both


def test_server_serves_and_replies_via_callback(world):
    sim, machine, kernel, facility = world
    server = Server(kernel, "s", _echo_factory(machine), n_workers=2)
    replies = []
    server.client_side.on_message = replies.append
    server.inject(Message(nbytes=64, payload=("r1", None)))
    sim.run_until(0.1)
    assert len(replies) == 1
    assert replies[0].payload == (("r1", None), ("echo", ("r1", None)))
    assert server.requests_served == 1


def test_server_workers_serve_concurrently(world):
    sim, machine, kernel, facility = world
    server = Server(kernel, "s", _echo_factory(machine, cycles=3.1e8),
                    n_workers=4)
    done = []
    server.client_side.on_message = lambda m: done.append(sim.now)
    for i in range(4):
        server.inject(Message(nbytes=64, payload=(f"r{i}", None)))
    sim.run_until(1.0)
    # 4 x 100 ms of work on 4 cores finishes in ~100 ms, not 400 ms.
    assert len(done) == 4
    assert max(done) < 0.15


def test_worker_factory_gives_each_worker_private_state(world):
    sim, machine, kernel, facility = world
    created = []

    def worker_factory(index):
        created.append(index)
        return _echo_factory(machine)

    Server(kernel, "s", n_workers=3, worker_factory=worker_factory)
    assert created == [0, 1, 2]


def test_server_worker_inherits_request_context(world):
    sim, machine, kernel, facility = world
    server = Server(kernel, "s", _echo_factory(machine), n_workers=1)
    container = facility.create_request_container("req")
    server.client_side.on_message = lambda m: None
    server.inject(Message(nbytes=64, payload=("r", None),
                          tag=ContextTag(container_id=container.id)))
    sim.run_until(0.1)
    facility.flush()
    assert container.stats.cpu_seconds > 0


def test_subservice_connect_spawns_thread_per_connection(world):
    sim, machine, kernel, facility = world

    def db_factory(message):
        def handler():
            yield Compute(cycles=1e6, profile=WORK)
            return "rows"
        return handler()

    service = SubService(kernel, "db", db_factory)
    a = service.connect()
    b = service.connect()
    assert a is not b
    assert len(service.threads) == 2


def test_subservice_round_trip_propagates_context(world):
    sim, machine, kernel, facility = world

    def db_factory(message):
        def handler():
            yield Compute(cycles=2e6, profile=WORK)
            return "rows"
        return handler()

    service = SubService(kernel, "db", db_factory)
    endpoint = service.connect()
    container = facility.create_request_container("req")
    got = []

    def client():
        yield Send(endpoint, nbytes=100, payload="query")
        reply = yield Recv(endpoint)
        got.append(reply.payload)

    kernel.spawn(client(), "client", container_id=container.id)
    sim.run_until(0.1)
    facility.flush()
    assert got == ["rows"]
    # The DB thread's work was charged to the request's container.
    expected = 2e6 / machine.freq_hz + 2e6 / machine.freq_hz  # client0 + db
    assert container.stats.cpu_seconds >= 2e6 / machine.freq_hz
