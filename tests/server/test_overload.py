"""Unit tests for admission control, shedding, and circuit breaking.

Everything here drives :mod:`repro.server.overload` directly with explicit
``now`` floats -- no simulator, no cluster -- so each admission gate and the
accounting identity can be pinned down in isolation.  The end-to-end
behaviour under real traffic lives in ``test_dispatch_robustness.py`` and
the chaos scenarios.
"""

import pytest

from repro.requests import RequestSpec
from repro.server.overload import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DECISION_ADMIT,
    DECISION_QUEUE,
    OUTCOME_REJECTED,
    OUTCOME_SHED,
    CircuitBreaker,
    OverloadConfig,
    OverloadProtector,
    TokenBucket,
)
from repro.sim import RngHub


class _Workload:
    name = "wl"


def _spec(priority=0, deadline=None, rtype="q"):
    return RequestSpec(rtype, priority=priority, deadline=deadline)


def _protector(**overrides):
    """A protector whose token bucket never interferes unless asked to."""
    defaults = dict(
        max_inflight=2, queue_depth=2, bucket_rate=1e6, bucket_capacity=1e6,
        deadline_budget=None,
    )
    defaults.update(overrides)
    protector = OverloadProtector(OverloadConfig(**defaults))
    protector.bind(["m0"])
    return protector


def _arrive(protector, now=0.0, **spec_kwargs):
    return protector.register_arrival(_spec(**spec_kwargs), now)


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------
def test_token_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, capacity=10.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=10.0, capacity=-1.0)


def test_token_bucket_burst_then_deny_then_lazy_refill():
    bucket = TokenBucket(rate=10.0, capacity=2.0)
    assert bucket.try_take(0.0)
    assert bucket.try_take(0.0)
    assert not bucket.try_take(0.0)  # burst capacity spent
    assert bucket.accepted == 2 and bucket.denied == 1
    # No timer events: tokens reappear purely from the elapsed sim time.
    assert bucket.try_take(0.1)  # 0.1 s * 10/s = 1 token
    assert not bucket.try_take(0.1)
    # Refill clamps at capacity no matter how long the idle gap was.
    bucket.refill(100.0)
    assert bucket.tokens == pytest.approx(2.0)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(half_open_probes=0)
    with pytest.raises(ValueError):
        CircuitBreaker(reset_timeout=0.0)


def test_breaker_opens_after_threshold_and_recovers_via_half_open():
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout=0.1,
                             half_open_probes=1)
    breaker.record_failure(0.0)
    assert breaker.state == BREAKER_CLOSED and breaker.allow(0.0)
    breaker.record_failure(0.01)
    assert breaker.state == BREAKER_OPEN and breaker.opened_count == 1
    assert not breaker.allow(0.05)  # still inside the reset timeout
    # After the timeout the next query transitions to half-open...
    assert breaker.allow(0.2)
    assert breaker.state == BREAKER_HALF_OPEN
    # ...with a bounded probe budget consumed by actual dispatch attempts.
    breaker.note_attempt()
    assert not breaker.allow(0.2)  # single probe spent
    breaker.record_success(0.25)
    assert breaker.state == BREAKER_CLOSED and breaker.closed_count == 1
    assert breaker.allow(0.3)


def test_breaker_failure_during_half_open_reopens_immediately():
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout=0.1)
    for _ in range(3):
        breaker.record_failure(0.0)
    assert breaker.allow(0.2)  # half-open
    breaker.record_failure(0.2)  # probe failed: one strike re-opens
    assert breaker.state == BREAKER_OPEN and breaker.opened_count == 2
    assert not breaker.allow(0.25)
    assert breaker.state_code == 2.0


# ----------------------------------------------------------------------
# OverloadConfig
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", [
    dict(max_inflight=0),
    dict(queue_depth=-1),
    dict(bucket_rate=0.0),
    dict(bucket_capacity=-5.0),
    dict(deadline_budget=0.0),
    dict(n_priorities=0),
])
def test_overload_config_validation(bad):
    with pytest.raises(ValueError):
        OverloadConfig(**bad)


# ----------------------------------------------------------------------
# OverloadProtector: arrival classification
# ----------------------------------------------------------------------
def test_register_arrival_stamps_deadline_and_draws_priority():
    protector = OverloadProtector(
        OverloadConfig(deadline_budget=0.25, n_priorities=3),
        priority_rng=RngHub(7).stream("priorities"),
    )
    tickets = [protector.register_arrival(_spec(), now=1.0) for _ in range(32)]
    assert [t.arrival_id for t in tickets] == list(range(32))
    assert all(t.spec.deadline == pytest.approx(1.25) for t in tickets)
    assert {t.spec.priority for t in tickets} == {0, 1, 2}


def test_register_arrival_preserves_explicit_deadline():
    protector = _protector(deadline_budget=0.25)
    ticket = protector.register_arrival(_spec(deadline=9.0), now=1.0)
    assert ticket.spec.deadline == 9.0


# ----------------------------------------------------------------------
# OverloadProtector: admission gates, in gate order
# ----------------------------------------------------------------------
def test_brownout_level3_rejects_everything():
    protector = _protector()
    protector.brownout_level = 3
    ticket = _arrive(protector, priority=2)
    assert protector.admit(_Workload(), ticket, "m0", 0.0) == OUTCOME_REJECTED
    assert protector.shed_log[-1].reason == "brownout-reject"
    assert protector.rejected == 1


def test_brownout_level2_sheds_only_below_priority_floor():
    protector = _protector(shed_floor_priority=1)
    protector.brownout_level = 2
    low = _arrive(protector, priority=0)
    high = _arrive(protector, priority=1)
    assert protector.admit(_Workload(), low, "m0", 0.0) == OUTCOME_SHED
    assert protector.shed_log[-1].reason == "brownout-shed"
    assert protector.admit(_Workload(), high, "m0", 0.0) == DECISION_ADMIT


def test_expired_deadline_is_shed_at_admission():
    protector = _protector()
    ticket = protector.register_arrival(_spec(deadline=0.5), now=0.0)
    assert protector.admit(_Workload(), ticket, "m0", 0.6) == OUTCOME_SHED
    assert protector.shed_log[-1].reason == "deadline"
    assert protector.deadline_sheds == 1


def test_open_breaker_rejects_at_the_door():
    protector = _protector()
    for _ in range(protector.config.breaker_failure_threshold):
        protector.on_machine_failure("m0", 0.0)
    assert not protector.machine_available("m0", 0.0)
    ticket = _arrive(protector)
    assert protector.admit(_Workload(), ticket, "m0", 0.0) == OUTCOME_REJECTED
    assert protector.shed_log[-1].reason == "circuit-open"


def test_empty_token_bucket_rejects():
    protector = _protector(bucket_rate=1.0, bucket_capacity=1.0)
    first, second = _arrive(protector), _arrive(protector)
    assert protector.admit(_Workload(), first, "m0", 0.0) == DECISION_ADMIT
    assert protector.admit(_Workload(), second, "m0", 0.0) == OUTCOME_REJECTED
    assert protector.shed_log[-1].reason == "token-bucket"
    assert protector.machines["m0"].bucket.denied == 1


def test_admit_queue_and_queue_full_shed():
    protector = _protector(max_inflight=1, queue_depth=1)
    wl = _Workload()
    a, b, c = (_arrive(protector) for _ in range(3))
    assert protector.admit(wl, a, "m0", 0.0) == DECISION_ADMIT
    protector.note_inject("m0", a)
    assert protector.admit(wl, b, "m0", 0.0) == DECISION_QUEUE
    # Queue full and the newcomer does not outrank anyone: it is shed.
    assert protector.admit(wl, c, "m0", 0.0) == OUTCOME_SHED
    assert protector.shed_log[-1].reason == "queue-full"
    assert protector.accounting_gap() == 0


def test_priority_eviction_displaces_lowest_priority_waiter():
    protector = _protector(max_inflight=1, queue_depth=1)
    wl = _Workload()
    serving = _arrive(protector, priority=0)
    waiter = _arrive(protector, priority=0)
    vip = _arrive(protector, priority=2)
    assert protector.admit(wl, serving, "m0", 0.0) == DECISION_ADMIT
    protector.note_inject("m0", serving)
    assert protector.admit(wl, waiter, "m0", 0.0) == DECISION_QUEUE
    assert protector.admit(wl, vip, "m0", 0.0) == DECISION_QUEUE
    shed = protector.shed_log[-1]
    assert shed.arrival_id == waiter.arrival_id
    assert shed.reason == "priority-evicted"
    assert protector.machines["m0"].evictions == 1
    # The VIP now holds the only queue slot.
    assert protector.machines["m0"].queue[0].ticket is vip


# ----------------------------------------------------------------------
# OverloadProtector: serving lifecycle + accounting identity
# ----------------------------------------------------------------------
def test_completion_drains_queue_and_sheds_expired_waiters():
    protector = _protector(max_inflight=1, queue_depth=2)
    wl = _Workload()
    serving = _arrive(protector)
    stale = protector.register_arrival(_spec(deadline=0.1), now=0.0)
    fresh = protector.register_arrival(_spec(deadline=9.0), now=0.0)
    protector.admit(wl, serving, "m0", 0.0)
    protector.note_inject("m0", serving)
    assert protector.admit(wl, stale, "m0", 0.0) == DECISION_QUEUE
    assert protector.admit(wl, fresh, "m0", 0.0) == DECISION_QUEUE
    # The slot frees after the stale waiter's deadline: it is shed at
    # dequeue (never served late) and the fresh one is handed back.
    ready = protector.on_complete("m0", now=0.5)
    assert [e.ticket.arrival_id for e in ready] == [fresh.arrival_id]
    assert protector.shed_log[-1].arrival_id == stale.arrival_id
    assert protector.shed_log[-1].reason == "deadline"
    for entry in ready:
        protector.note_inject("m0", entry.ticket)
    assert protector.accounting_gap() == 0


def test_accounting_identity_through_mixed_outcomes():
    protector = _protector(max_inflight=1, queue_depth=1)
    wl = _Workload()
    outcomes = []
    for _ in range(6):
        ticket = _arrive(protector)
        decision = protector.admit(wl, ticket, "m0", 0.0)
        if decision == DECISION_ADMIT:
            protector.note_inject("m0", ticket)
        outcomes.append(decision)
    # 1 admitted, 1 queued, 4 shed (queue full, equal priorities).
    assert outcomes.count(DECISION_ADMIT) == 1
    assert outcomes.count(DECISION_QUEUE) == 1
    assert outcomes.count(OUTCOME_SHED) == 4
    assert protector.pending() == 2
    assert protector.accounting_gap() == 0
    # The freed slot drains the queue; the drained ticket is injected and
    # stays pending, so arrivals == completed + shed + pending throughout.
    for entry in protector.on_complete("m0", 0.0):
        protector.note_inject("m0", entry.ticket)
    assert protector.accounting_gap() == 0
    # A retry backoff keeps its ticket pending, not lost.
    protector.note_retry_scheduled()
    extra = _arrive(protector)
    assert protector.accounting_gap() == 0
    protector.note_retry_fired()
    protector.reject(extra, "retries-exhausted", 1.0)
    assert protector.accounting_gap() == 0
    assert protector.shed_log[-1].reason == "retries-exhausted"


def test_failover_and_queue_eviction_return_tickets():
    protector = _protector(max_inflight=1, queue_depth=2)
    wl = _Workload()
    serving, w1, w2 = (_arrive(protector) for _ in range(3))
    protector.admit(wl, serving, "m0", 0.0)
    protector.note_inject("m0", serving)
    protector.admit(wl, w1, "m0", 0.0)
    protector.admit(wl, w2, "m0", 0.0)
    # Crash: the in-flight slot frees, the queue is handed back whole.
    protector.on_failover("m0")
    entries = protector.evict_queue("m0")
    assert [e.ticket.arrival_id for e in entries] == [
        w1.arrival_id, w2.arrival_id,
    ]
    assert protector.queued_now() == 0 and protector.inflight_now() == 0
    # The stranded ticket carries its injection count into any terminal
    # outcome: partial energy was really burned on the dead machine.
    protector.reject(serving, "retries-exhausted", 1.0)
    assert protector.shed_log[-1].injections == 1


# ----------------------------------------------------------------------
# Fingerprint + stats export
# ----------------------------------------------------------------------
def _scripted_run(flip_priority=False):
    protector = _protector(max_inflight=1, queue_depth=0)
    wl = _Workload()
    for i in range(4):
        priority = (i % 2) if not flip_priority else ((i + 1) % 2)
        ticket = _arrive(protector, priority=priority)
        if protector.admit(wl, ticket, "m0", 0.0) == DECISION_ADMIT:
            protector.note_inject("m0", ticket)
    return protector


def test_shed_fingerprint_is_stable_and_outcome_sensitive():
    assert _scripted_run().shed_fingerprint() == \
        _scripted_run().shed_fingerprint()
    assert _scripted_run().shed_fingerprint() != \
        _scripted_run(flip_priority=True).shed_fingerprint()


def test_health_stats_schema():
    protector = _scripted_run()
    stats = protector.health_stats()
    assert stats["overload_arrivals"] == 4.0
    assert stats["overload_admitted"] == 1.0
    assert stats["overload_shed"] == 3.0
    assert stats["overload_accounting_gap"] == 0.0
    # The digest is 48 bits so the float round-trip is exact.
    assert stats["shed_fingerprint"] == float(
        int(protector.shed_fingerprint(), 16)
    )
    for key in ("m0_breaker_state", "m0_breaker_opened", "m0_bucket_denied",
                "m0_queue_peak", "m0_queue_evictions"):
        assert key in stats
    assert all(isinstance(v, float) for v in stats.values())
