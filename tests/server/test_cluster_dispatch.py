"""Tests for the heterogeneous cluster and dispatch policies."""

import pytest

from repro.server import (
    Dispatcher,
    HeterogeneousCluster,
    MachineHeterogeneityAwarePolicy,
    SimpleLoadBalancePolicy,
    WorkloadHeterogeneityAwarePolicy,
)
from repro.hardware import SANDYBRIDGE, WOODCREST
from repro.sim import RngHub
from repro.workloads import GaeVosaoWorkload, RsaCryptoWorkload

pytestmark = pytest.mark.slow


def _cluster(sb_cal, wc_cal):
    cluster = HeterogeneousCluster()
    cluster.add_machine(SANDYBRIDGE, sb_cal)
    cluster.add_machine(WOODCREST, wc_cal)
    return cluster


def _dispatcher(cluster, policy, rate=100.0, seed=0):
    vosao = GaeVosaoWorkload()
    rsa = RsaCryptoWorkload()
    cluster.build_workload(vosao)
    cluster.build_workload(rsa)
    return Dispatcher(
        cluster, [(vosao, 0.7), (rsa, 0.3)], policy, rate,
        RngHub(seed).stream("arrivals"),
    )


def test_cluster_machine_lookup(sb_cal, wc_cal):
    cluster = _cluster(sb_cal, wc_cal)
    assert cluster.by_name("sandybridge").spec is SANDYBRIDGE
    with pytest.raises(KeyError):
        cluster.by_name("epyc")


def test_duplicate_workload_build_rejected(sb_cal, wc_cal):
    cluster = _cluster(sb_cal, wc_cal)
    workload = GaeVosaoWorkload()
    cluster.build_workload(workload)
    with pytest.raises(ValueError):
        cluster.build_workload(GaeVosaoWorkload())


def test_dispatcher_validates_inputs(sb_cal, wc_cal):
    cluster = _cluster(sb_cal, wc_cal)
    vosao = GaeVosaoWorkload()
    cluster.build_workload(vosao)
    rng = RngHub(0).stream("a")
    with pytest.raises(ValueError):
        Dispatcher(cluster, [(vosao, 1.0)], SimpleLoadBalancePolicy(), 0.0, rng)
    with pytest.raises(ValueError):
        Dispatcher(cluster, [(vosao, 0.0)], SimpleLoadBalancePolicy(), 10.0, rng)


def test_simple_policy_splits_requests_evenly(sb_cal, wc_cal):
    cluster = _cluster(sb_cal, wc_cal)
    disp = _dispatcher(cluster, SimpleLoadBalancePolicy(), rate=150.0)
    disp.start(2.0)
    cluster.simulator.run_until(2.5)
    counts = disp.dispatched_to
    assert abs(counts["sandybridge"] - counts["woodcrest"]) <= 1


def test_machine_aware_prefers_efficient_machine_at_low_load(sb_cal, wc_cal):
    cluster = _cluster(sb_cal, wc_cal)
    policy = MachineHeterogeneityAwarePolicy("sandybridge", "woodcrest")
    disp = _dispatcher(cluster, policy, rate=40.0)  # light load
    disp.start(2.0)
    cluster.simulator.run_until(2.5)
    assert disp.dispatched_to["sandybridge"] > 5 * max(
        disp.dispatched_to["woodcrest"], 1
    )


def test_machine_aware_spills_when_preferred_is_busy(sb_cal, wc_cal):
    cluster = _cluster(sb_cal, wc_cal)
    policy = MachineHeterogeneityAwarePolicy("sandybridge", "woodcrest")
    disp = _dispatcher(cluster, policy, rate=300.0)  # heavy load
    disp.start(3.0)
    cluster.simulator.run_until(3.5)
    assert disp.dispatched_to["woodcrest"] > 20


def test_workload_aware_keeps_high_affinity_type_on_preferred(sb_cal, wc_cal):
    """Under spill pressure, RSA (strong SandyBridge affinity) should stay
    on SandyBridge far more than Vosao does."""
    cluster = _cluster(sb_cal, wc_cal)
    policy = WorkloadHeterogeneityAwarePolicy("sandybridge", "woodcrest")
    disp = _dispatcher(cluster, policy, rate=300.0)
    disp.start(4.0)
    cluster.simulator.run_until(4.5)
    rsa_results = [r for r in disp.results if r.workload_name == "rsa-crypto"]
    vosao_results = [r for r in disp.results if r.workload_name == "gae-vosao"]
    assert rsa_results and vosao_results
    rsa_on_wc = sum(r.machine_name == "woodcrest" for r in rsa_results)
    vosao_on_wc = sum(r.machine_name == "woodcrest" for r in vosao_results)
    assert rsa_on_wc / len(rsa_results) < vosao_on_wc / len(vosao_results)


def test_dispatcher_builds_energy_profiles(sb_cal, wc_cal):
    cluster = _cluster(sb_cal, wc_cal)
    disp = _dispatcher(cluster, SimpleLoadBalancePolicy(), rate=100.0)
    disp.start(2.0)
    cluster.simulator.run_until(2.5)
    profiles = disp.profiles
    assert profiles.has_profile("sandybridge", "gae-vosao:read")
    assert profiles.has_profile("woodcrest", "gae-vosao:read")
    ratio = profiles.ratio("rsa-crypto:key-large", "sandybridge", "woodcrest")
    assert ratio < 0.5  # strong SandyBridge affinity


def test_response_time_accounting(sb_cal, wc_cal):
    cluster = _cluster(sb_cal, wc_cal)
    disp = _dispatcher(cluster, SimpleLoadBalancePolicy(), rate=80.0)
    disp.start(2.0)
    cluster.simulator.run_until(2.5)
    assert disp.mean_response_time() > 0
    assert disp.mean_response_time("rsa-crypto") > disp.mean_response_time(
        "gae-vosao"
    )
    assert disp.mean_response_time("nonexistent") == 0.0


def test_energy_marks_measure_window(sb_cal, wc_cal):
    cluster = _cluster(sb_cal, wc_cal)
    disp = _dispatcher(cluster, SimpleLoadBalancePolicy(), rate=100.0)
    disp.start(2.0)
    cluster.simulator.run_until(1.0)
    cluster.mark_energy()
    cluster.simulator.run_until(2.0)
    total = cluster.total_active_joules_since_mark()
    assert total > 0
    per_machine = [m.active_joules_since_mark() for m in cluster.machines]
    assert sum(per_machine) == pytest.approx(total)
