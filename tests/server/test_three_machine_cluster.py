"""Three-machine cluster coverage: all testbed machines serving together."""

import pytest

from repro.core import calibrate_machine
from repro.hardware import SANDYBRIDGE, WESTMERE, WOODCREST
from repro.server import (
    Dispatcher,
    HeterogeneousCluster,
    SimpleLoadBalancePolicy,
    WorkloadHeterogeneityAwarePolicy,
)
from repro.sim import RngHub
from repro.workloads import SolrWorkload

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def wm_cal():
    return calibrate_machine(WESTMERE, duration=0.2)


def test_three_machine_cluster_serves_everywhere(sb_cal, wc_cal, wm_cal):
    cluster = HeterogeneousCluster()
    cluster.add_machine(SANDYBRIDGE, sb_cal)
    cluster.add_machine(WOODCREST, wc_cal)
    cluster.add_machine(WESTMERE, wm_cal)
    workload = SolrWorkload()
    cluster.build_workload(workload)
    dispatcher = Dispatcher(
        cluster, [(workload, 1.0)], SimpleLoadBalancePolicy(),
        request_rate=300.0, rng=RngHub(1).stream("arrivals"),
    )
    dispatcher.start(2.0)
    cluster.simulator.run_until(2.5)
    assert dispatcher.completed > 400
    # Round robin reached all three machines.
    for member in cluster.machines:
        assert dispatcher.dispatched_to[member.name] > 100
        member.facility.flush()
        served = [
            c for c in member.facility.registry.request_containers()
            if c.stats.cpu_seconds > 0
        ]
        assert served


def test_three_machine_workload_aware_prefers_newest(sb_cal, wc_cal, wm_cal):
    """With SandyBridge preferred and Woodcrest as fallback, Westmere can
    coexist in the cluster without receiving traffic from this policy."""
    cluster = HeterogeneousCluster()
    cluster.add_machine(SANDYBRIDGE, sb_cal)
    cluster.add_machine(WOODCREST, wc_cal)
    cluster.add_machine(WESTMERE, wm_cal)
    workload = SolrWorkload()
    cluster.build_workload(workload)
    policy = WorkloadHeterogeneityAwarePolicy("sandybridge", "woodcrest")
    dispatcher = Dispatcher(
        cluster, [(workload, 1.0)], policy,
        request_rate=120.0, rng=RngHub(2).stream("arrivals"),
    )
    dispatcher.start(2.0)
    cluster.simulator.run_until(2.5)
    assert dispatcher.dispatched_to["sandybridge"] > 0
    assert dispatcher.dispatched_to["westmere"] == 0


def test_pinned_core_out_of_range_rejected(sb_cal):
    from repro.hardware import build_machine
    from repro.kernel import Compute, Kernel
    from repro.hardware import RateProfile
    from repro.sim import Simulator

    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)

    def program():
        yield Compute(cycles=1e5, profile=RateProfile())

    with pytest.raises(ValueError):
        kernel.spawn(program(), "w", pinned_core=99)
    with pytest.raises(ValueError):
        kernel.spawn(program(), "w", pinned_core=-1)
