"""Dispatcher fault tolerance: dead machines, retries, exclusion, failover.

The unit tests drive the policy eligibility logic with lightweight fakes;
the integration tests crash real cluster machines mid-run and check the
dispatcher's full self-healing loop (failover, exclusion, re-admission,
late-reply tolerance).
"""

import pytest

from repro.requests import RequestSpec
from repro.server import (
    Dispatcher,
    HeterogeneousCluster,
    MachineHeterogeneityAwarePolicy,
    NoAvailableMachine,
    SimpleLoadBalancePolicy,
    WorkloadHeterogeneityAwarePolicy,
)
from repro.hardware import SANDYBRIDGE
from repro.sim import RngHub
from repro.workloads import SyntheticWorkload
from repro.workloads.synthetic import StageSpec
from repro.hardware.events import RateProfile


class _FakeMachine:
    def __init__(self, name, alive=True):
        self.name = name
        self.alive = alive


class _FakeCluster:
    def __init__(self, machines):
        self.machines = machines

    def by_name(self, name):
        for m in self.machines:
            if m.name == name:
                return m
        raise KeyError(name)


class _FakeWorkload:
    name = "wl"


class _FakeDispatcher:
    def __init__(self, machines, utils):
        from repro.core.distribution import EnergyProfileTable

        self.cluster = _FakeCluster(machines)
        self._utils = utils
        self.profiles = EnergyProfileTable()

    def smoothed_utilization(self, name):
        return self._utils[name]


# ----------------------------------------------------------------------
# Policy eligibility (unit level)
# ----------------------------------------------------------------------
def test_round_robin_skips_dead_machines():
    policy = SimpleLoadBalancePolicy()
    machines = [_FakeMachine("a"), _FakeMachine("b", alive=False),
                _FakeMachine("c")]
    disp = _FakeDispatcher(machines, {})
    picks = [policy.choose(_FakeWorkload(), RequestSpec("x"), disp).name
             for _ in range(4)]
    assert picks == ["a", "c", "a", "c"]


def test_round_robin_raises_when_everything_is_dead():
    policy = SimpleLoadBalancePolicy()
    disp = _FakeDispatcher(
        [_FakeMachine("a", alive=False), _FakeMachine("b", alive=False)], {}
    )
    with pytest.raises(NoAvailableMachine):
        policy.choose(_FakeWorkload(), RequestSpec("x"), disp)


def test_machine_aware_falls_back_when_preferred_is_dead():
    policy = MachineHeterogeneityAwarePolicy("fast", "slow")
    disp = _FakeDispatcher(
        [_FakeMachine("fast", alive=False), _FakeMachine("slow")],
        {"fast": 0.1, "slow": 0.1},
    )
    assert policy.choose(_FakeWorkload(), RequestSpec("x"), disp).name == "slow"


def test_machine_aware_raises_when_both_are_dead():
    policy = MachineHeterogeneityAwarePolicy("fast", "slow")
    disp = _FakeDispatcher(
        [_FakeMachine("fast", alive=False), _FakeMachine("slow", alive=False)],
        {"fast": 0.1, "slow": 0.1},
    )
    with pytest.raises(NoAvailableMachine):
        policy.choose(_FakeWorkload(), RequestSpec("x"), disp)


def test_workload_aware_spills_back_when_fallback_is_dead():
    """Under pressure the policy would spill to the fallback; if the
    fallback is dead, the (overloaded but alive) preferred machine still
    serves rather than dropping the request."""
    policy = WorkloadHeterogeneityAwarePolicy("fast", "slow")
    disp = _FakeDispatcher(
        [_FakeMachine("fast"), _FakeMachine("slow", alive=False)],
        {"fast": 0.95, "slow": 0.1},
    )
    assert policy.choose(_FakeWorkload(), RequestSpec("x"), disp).name == "fast"


# ----------------------------------------------------------------------
# Dispatcher integration (real cluster)
# ----------------------------------------------------------------------
_PROFILE = RateProfile(name="disp-test", ipc=1.2, cache_per_cycle=0.01,
                       mem_per_cycle=0.004, hidden_watts=1.0)


def _workload():
    return SyntheticWorkload(
        name="disp-test",
        stages=[StageSpec("work", cycles=1.2e7, profile=_PROFILE)],
        demand_jitter=0.1,
        n_workers=6,
    )


def _cluster_with_dispatcher(sb_cal, rate=400.0, seed=11, **dispatcher_kwargs):
    cluster = HeterogeneousCluster()
    for name in ("m0", "m1"):
        cluster.add_machine(SANDYBRIDGE, sb_cal, name=name)
    workload = _workload()
    cluster.build_workload(workload)
    dispatcher = Dispatcher(
        cluster, [(workload, 1.0)], SimpleLoadBalancePolicy(), rate,
        RngHub(seed).stream("arrivals"), **dispatcher_kwargs,
    )
    return cluster, dispatcher


def test_crash_mid_run_fails_over_and_readmits(sb_cal):
    cluster, dispatcher = _cluster_with_dispatcher(sb_cal)
    sim = cluster.simulator
    victim = cluster.by_name("m1")
    sim.schedule_at(0.25, victim.crash)
    sim.schedule_at(0.6, victim.recover)
    dispatcher.start(1.0)
    sim.run_until(1.0)

    assert victim.crash_count == 1
    assert dispatcher.failed_over >= 1
    assert dispatcher.retries >= 1
    assert dispatcher.completed > 0
    # Nothing was handed to the dead machine while it was down...
    downtime = [r for r in dispatcher.results
                if r.machine_name == "m1" and 0.25 < r.arrival < 0.6]
    assert not downtime
    # ...and it serves again after recovery (re-admission).
    assert any(r.machine_name == "m1" and r.arrival >= 0.6
               for r in dispatcher.results)


def test_crashed_machines_late_reply_is_tolerated(sb_cal):
    """A request in flight on the crashing machine is failed over, but the
    dead machine's worker process still finishes and replies; the reply
    must be counted, not double-completed."""
    cluster, dispatcher = _cluster_with_dispatcher(sb_cal)
    sim = cluster.simulator
    victim = cluster.by_name("m1")
    sim.schedule_at(0.25, victim.crash)
    dispatcher.start(0.8)
    sim.run_until(0.8)
    assert dispatcher.failed_over >= 1
    # Every failed-over request's worker eventually replied late.
    assert dispatcher.late_replies >= 1
    # Failovers were re-dispatched, not silently lost: completions plus
    # still-in-flight plus explicit drops account for every dispatch.
    assert dispatcher.dropped_requests == 0


def test_total_outage_drops_requests_after_max_retries(sb_cal):
    cluster, dispatcher = _cluster_with_dispatcher(
        sb_cal, rate=300.0, max_retries=2, retry_backoff=1e-3,
    )
    sim = cluster.simulator
    for member in cluster.machines:
        sim.schedule_at(0.2, member.crash)
    dispatcher.start(0.6)
    sim.run_until(0.6)
    assert dispatcher.dispatch_failures >= 1
    assert dispatcher.dropped_requests >= 1
    # The dispatcher itself survived the outage to the end of the run.
    assert sim.now == 0.6


def test_health_stats_exports_the_full_dispatch_schema(sb_cal):
    """``Dispatcher.health_stats()`` is the one schema chaos reports and
    the CI overload lane read: global counters plus per-machine exclusion
    state, all floats, stable keys."""
    cluster, dispatcher = _cluster_with_dispatcher(
        sb_cal, failure_threshold=2, exclusion_cooldown=0.5,
    )
    dispatcher._record_failure("m0")
    dispatcher._record_failure("m0")  # m0 now excluded
    stats = dispatcher.health_stats()
    for key in ("completed", "dispatch_failures", "retries",
                "dropped_requests", "failed_over", "late_replies"):
        assert key in stats
    assert stats["m0_consecutive_failures"] == 2.0
    assert stats["m0_excluded"] == 1.0
    assert stats["m1_excluded"] == 0.0
    assert stats["m0_dispatched"] == 0.0
    assert all(isinstance(v, float) for v in stats.values())
    # Without an overload protector the overload keys stay absent: the
    # schema reflects what is actually wired, not aspirations.
    assert "overload_arrivals" not in stats


def test_overload_dispatcher_serves_storms_with_exact_accounting(sb_cal):
    """End to end: an overload-protected dispatcher under 3x overload keeps
    serving, sheds/rejects the excess explicitly, and accounts for every
    arrival exactly once."""
    from repro.server import OverloadConfig, OverloadProtector

    protector = OverloadProtector(OverloadConfig(
        max_inflight=3, queue_depth=4, bucket_rate=300.0,
        bucket_capacity=10.0, deadline_budget=0.1,
    ))
    cluster, dispatcher = _cluster_with_dispatcher(
        sb_cal, rate=1200.0, overload=protector,
    )
    dispatcher.start(0.5)
    cluster.simulator.run_until(0.5)
    assert dispatcher.completed > 0
    assert protector.rejected + protector.shed > 0
    assert protector.completed == dispatcher.completed
    assert protector.accounting_gap() == 0
    stats = dispatcher.health_stats()
    assert stats["overload_arrivals"] == float(protector.arrivals)
    assert stats["overload_accounting_gap"] == 0.0
    assert "m0_breaker_state" in stats


def test_overload_breaker_composes_with_exclusion_in_is_dispatchable(sb_cal):
    """Both PR 2's health exclusion and the circuit breaker must admit a
    machine; either one alone blocks dispatch to it."""
    from repro.server import OverloadConfig, OverloadProtector

    protector = OverloadProtector(OverloadConfig(
        breaker_failure_threshold=2, breaker_reset_timeout=10.0,
    ))
    cluster, dispatcher = _cluster_with_dispatcher(
        sb_cal, overload=protector, failure_threshold=5,
    )
    member = cluster.by_name("m0")
    # Two failures trip the breaker (threshold 2) while staying below the
    # dispatcher's own exclusion threshold (5): the breaker alone blocks.
    dispatcher._record_failure("m0")
    dispatcher._record_failure("m0")
    assert dispatcher._health["m0"].excluded_until is None
    assert not dispatcher.is_dispatchable(member)
    # A success closes the breaker and the machine is dispatchable again.
    dispatcher._record_success("m0")
    assert dispatcher.is_dispatchable(member)


def test_failure_exclusion_and_cooldown_probe(sb_cal):
    cluster, dispatcher = _cluster_with_dispatcher(
        sb_cal, failure_threshold=2, exclusion_cooldown=0.1,
    )
    member = cluster.by_name("m0")
    dispatcher._record_failure("m0")
    assert dispatcher.is_dispatchable(member)  # below threshold
    dispatcher._record_failure("m0")
    assert not dispatcher.is_dispatchable(member)  # excluded
    cluster.simulator.run_until(0.15)  # let the cooldown expire
    assert dispatcher.is_dispatchable(member)  # probe re-admits
    dispatcher._record_success("m0")
    assert dispatcher._health["m0"].consecutive_failures == 0
