"""Tests for the in-band dispatcher (full Section 3.4 message path)."""

import pytest

from repro.hardware import SANDYBRIDGE, WOODCREST
from repro.requests import RequestSpec
from repro.server import HeterogeneousCluster
from repro.server.inband import InBandDispatcher
from repro.workloads import SolrWorkload


def _cluster(sb_cal, wc_cal):
    cluster = HeterogeneousCluster()
    dispatcher_machine = cluster.add_machine(
        SANDYBRIDGE, sb_cal, name="dispatcher"
    )
    server_a = cluster.add_machine(SANDYBRIDGE, sb_cal, name="server-a")
    server_b = cluster.add_machine(WOODCREST, wc_cal, name="server-b")
    workload = SolrWorkload(n_workers=8)
    for member in (server_a, server_b):
        member.servers[workload.name] = workload.build_server(
            member.kernel, member.facility
        )
    dispatcher = InBandDispatcher(
        dispatcher_machine, [server_a, server_b], workload,
    )
    return cluster, dispatcher, workload, (server_a, server_b)


def test_requires_workload_built_on_servers(sb_cal, wc_cal):
    cluster = HeterogeneousCluster()
    disp = cluster.add_machine(SANDYBRIDGE, sb_cal, name="dispatcher")
    bare = cluster.add_machine(SANDYBRIDGE, sb_cal, name="bare")
    with pytest.raises(ValueError):
        InBandDispatcher(disp, [bare], SolrWorkload())


def test_requests_round_trip_through_cluster(sb_cal, wc_cal):
    cluster, dispatcher, workload, _servers = _cluster(sb_cal, wc_cal)
    import numpy as np
    rng = np.random.default_rng(0)
    for _ in range(12):
        dispatcher.submit(workload.sample_request(rng))
    cluster.simulator.run_until(2.0)
    assert dispatcher.completed == 12
    assert dispatcher.mean_response_time() > 0


def test_round_robin_spreads_over_servers(sb_cal, wc_cal):
    cluster, dispatcher, workload, (a, b) = _cluster(sb_cal, wc_cal)
    import numpy as np
    rng = np.random.default_rng(0)
    for _ in range(10):
        dispatcher.submit(workload.sample_request(rng))
    cluster.simulator.run_until(2.0)
    for member in (a, b):
        member.facility.flush()
        served = [
            c for c in member.facility.registry.request_containers()
            if c.stats.cpu_seconds > 0
        ]
        assert len(served) >= 4


def test_dispatcher_container_accumulates_remote_cost(sb_cal, wc_cal):
    """The headline property: the dispatcher-side container's statistics
    include the remote execution cost carried back on the reply tag."""
    cluster, dispatcher, workload, (a, _b) = _cluster(sb_cal, wc_cal)
    dispatcher.submit(RequestSpec("search", params={"work_factor": 1.0}))
    cluster.simulator.run_until(2.0)
    for member in cluster.machines:
        member.facility.flush()
    assert dispatcher.completed == 1
    container = dispatcher.results[0].container
    # Remote execution was ~ the query cycles at 3.1 or 3.0 GHz, which
    # vastly exceeds the dispatcher's ~0.1 ms forwarding work.
    expected_remote = workload.demand_cycles(1.0, "sandybridge") / 3.1e9
    assert container.stats.cpu_seconds > expected_remote * 0.8
    assert container.energy(dispatcher.facility.primary) > 0


def test_dispatcher_forwarding_work_is_tracked_locally(sb_cal, wc_cal):
    cluster, dispatcher, workload, _servers = _cluster(sb_cal, wc_cal)
    import numpy as np
    rng = np.random.default_rng(1)
    for _ in range(8):
        dispatcher.submit(workload.sample_request(rng))
    cluster.simulator.run_until(2.0)
    dispatcher.facility.flush()
    # The dispatcher machine itself burned CPU on forwarding.
    dispatcher.member.machine.checkpoint()
    assert dispatcher.member.machine.integrator.active_joules > 0


def test_custom_placement_policy(sb_cal, wc_cal):
    cluster, _default, workload, (a, b) = _cluster(sb_cal, wc_cal)
    # Build a second dispatcher pinned to server-a only via policy.
    dispatcher_machine = cluster.add_machine(
        SANDYBRIDGE, sb_cal, name="dispatcher2"
    )
    pinned = InBandDispatcher(
        dispatcher_machine, [a, b], workload,
        choose_server=lambda spec: a,
    )
    import numpy as np
    rng = np.random.default_rng(2)
    for _ in range(6):
        pinned.submit(workload.sample_request(rng))
    cluster.simulator.run_until(2.0)
    assert pinned.completed == 6
    b.facility.flush()
    served_on_b = [
        c for c in b.facility.registry.request_containers()
        if c.stats.cpu_seconds > 0
    ]
    assert served_on_b == []
