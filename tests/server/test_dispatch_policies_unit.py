"""Unit tests for dispatch policy decision logic (no full cluster runs)."""


from repro.server.dispatch import (
    MachineHeterogeneityAwarePolicy,
    SimpleLoadBalancePolicy,
    WorkloadHeterogeneityAwarePolicy,
)
from repro.core.distribution import EnergyProfileTable
from repro.requests import RequestSpec


class _FakeMachine:
    def __init__(self, name):
        self.name = name


class _FakeCluster:
    def __init__(self, names):
        self.machines = [_FakeMachine(n) for n in names]

    def by_name(self, name):
        for m in self.machines:
            if m.name == name:
                return m
        raise KeyError(name)


class _FakeWorkload:
    name = "wl"


class _FakeDispatcher:
    def __init__(self, names, utils):
        self.cluster = _FakeCluster(names)
        self._utils = utils
        self.profiles = EnergyProfileTable()

    def smoothed_utilization(self, name):
        return self._utils[name]


def test_simple_round_robin():
    policy = SimpleLoadBalancePolicy()
    disp = _FakeDispatcher(["a", "b"], {"a": 0.0, "b": 0.0})
    picks = [policy.choose(_FakeWorkload(), RequestSpec("x"), disp).name
             for _ in range(4)]
    assert picks == ["a", "b", "a", "b"]


def test_machine_aware_threshold():
    policy = MachineHeterogeneityAwarePolicy("fast", "slow",
                                             utilization_threshold=0.7)
    below = _FakeDispatcher(["fast", "slow"], {"fast": 0.5, "slow": 0.1})
    above = _FakeDispatcher(["fast", "slow"], {"fast": 0.8, "slow": 0.1})
    spec = RequestSpec("x")
    assert policy.choose(_FakeWorkload(), spec, below).name == "fast"
    assert policy.choose(_FakeWorkload(), spec, above).name == "slow"


def _profiled_dispatcher(fast_util):
    disp = _FakeDispatcher(["fast", "slow"], {"fast": fast_util, "slow": 0.2})
    # rsa strongly prefers fast (ratio 0.2); vosao is displaceable (0.6).
    for _ in range(3):
        disp.profiles.record("fast", "wl:rsa", 0.2)
        disp.profiles.record("slow", "wl:rsa", 1.0)
        disp.profiles.record("fast", "wl:vosao", 0.6)
        disp.profiles.record("slow", "wl:vosao", 1.0)
    return disp


def test_workload_aware_keeps_affine_type_under_pressure():
    policy = WorkloadHeterogeneityAwarePolicy("fast", "slow")
    disp = _profiled_dispatcher(fast_util=0.8)  # above 0.7, below overload
    assert policy.choose(_FakeWorkload(), RequestSpec("rsa"), disp).name \
        == "fast"
    assert policy.choose(_FakeWorkload(), RequestSpec("vosao"), disp).name \
        == "slow"


def test_workload_aware_spills_everything_when_overloaded():
    policy = WorkloadHeterogeneityAwarePolicy("fast", "slow",
                                              overload_threshold=0.92)
    disp = _profiled_dispatcher(fast_util=0.95)
    assert policy.choose(_FakeWorkload(), RequestSpec("rsa"), disp).name \
        == "slow"


def test_workload_aware_bootstraps_like_machine_aware():
    """Unknown types are displaceable until profiles exist."""
    policy = WorkloadHeterogeneityAwarePolicy("fast", "slow")
    disp = _FakeDispatcher(["fast", "slow"], {"fast": 0.8, "slow": 0.2})
    assert policy.choose(_FakeWorkload(), RequestSpec("new"), disp).name \
        == "slow"


def test_workload_aware_single_known_type_is_displaceable():
    policy = WorkloadHeterogeneityAwarePolicy("fast", "slow")
    disp = _FakeDispatcher(["fast", "slow"], {"fast": 0.8, "slow": 0.2})
    disp.profiles.record("fast", "wl:solo", 0.5)
    disp.profiles.record("slow", "wl:solo", 1.0)
    assert policy.choose(_FakeWorkload(), RequestSpec("solo"), disp).name \
        == "slow"
