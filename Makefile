# Developer entry points. Every target is a thin alias for `python -m ci`,
# so `make <target>` and GitHub Actions always agree on what "passing" means.

PYTHON ?= python

.PHONY: help lint fix docs test test-full examples bench chaos overload telemetry restore shard transport perf determinism ci ci-fast

help:
	@echo "make lint         - stdlib AST lint (python -m ci lint)"
	@echo "make fix          - lint with whitespace auto-fix"
	@echo "make docs         - docs/README cross-reference check"
	@echo "make test         - fast pytest lane (-m 'not slow')"
	@echo "make test-full    - entire pytest suite"
	@echo "make examples     - run every example in quick mode"
	@echo "make bench        - regenerate every paper table/figure"
	@echo "make chaos        - fault-injection scenarios + invariants"
	@echo "make overload     - overload/brownout scenarios double-run + demo"
	@echo "make telemetry    - trace-fingerprint double-run + neutrality gate"
	@echo "make restore      - SIGKILL/resume identity + corrupt-file rejection"
	@echo "make shard        - shard-count invariance + worker-kill recovery"
	@echo "make transport    - lossy-transport invariance + coordinator resume"
	@echo "make perf         - benchmark regression check + fingerprint guard"
	@echo "make determinism  - seeded double-run equality gate"
	@echo "make ci           - the full merge gate"
	@echo "make ci-fast      - lint + docs + fast tests + determinism"

lint:
	$(PYTHON) -m ci lint

fix:
	$(PYTHON) -m ci lint --fix

docs:
	$(PYTHON) -m ci docs

test:
	$(PYTHON) -m ci test

test-full:
	$(PYTHON) -m ci test --full

examples:
	$(PYTHON) -m ci examples

bench:
	$(PYTHON) -m ci bench

chaos:
	$(PYTHON) -m ci chaos

overload:
	$(PYTHON) -m ci overload

telemetry:
	$(PYTHON) -m ci telemetry

restore:
	$(PYTHON) -m ci restore

shard:
	$(PYTHON) -m ci shard

transport:
	$(PYTHON) -m ci transport

perf:
	$(PYTHON) -m ci perf

determinism:
	$(PYTHON) -m ci determinism

ci:
	$(PYTHON) -m ci all

ci-fast:
	$(PYTHON) -m ci all --fast
