"""Stdlib-only AST lint for the repository.

Not a style checker -- every rule here targets a class of bug that has no
other automated guard in this repo:

* ``E9``  syntax errors (file does not parse at all)
* ``F401`` unused module-level import (dead dependency edges; skipped in
  ``__init__.py`` where imports *are* the re-export surface)
* ``F811`` duplicate def/class in one scope -- the classic silently-lost
  test when two tests share a name
* ``T100`` forgotten debugger hooks (``breakpoint()``, ``pdb.set_trace``)
* ``W191`` tab indentation, ``W291`` trailing whitespace, ``W292`` missing
  final newline (``--fix`` rewrites these three in place)
* ``E501`` line longer than ``MAX_LINE`` characters
* ``H100`` ``dataclasses.fields()`` inside a function under the hot-path
  packages (``src/repro/{core,hardware,sim}``) -- reflection there once
  cost a double-digit share of every attribution sample; cold paths go on
  the explicit allowlist instead
* ``H101`` list/dict comprehension inside a function whose ``def`` line
  carries a ``# hot-path`` marker -- each comprehension allocates a fresh
  container per sample on paths that run per context switch / overflow;
  hot functions use preallocated buffers and explicit loops instead

Run:  ``python -m ci lint [--fix]``
"""

from __future__ import annotations

import ast
import os
from ci.report import Finding

MAX_LINE = 120

#: Directories never scanned.
SKIP_DIRS = {
    "__pycache__", ".git", ".hypothesis", ".pytest_cache", ".benchmarks",
    "build", "dist", "results",
}

#: Decorators that make re-definition intentional.
_REDEF_OK_DECORATORS = {"overload", "setter", "getter", "deleter", "register"}

#: Packages whose functions run on the per-sample/per-event hot path, where
#: ``dataclasses.fields()`` reflection is a measurable per-call cost (H100).
_HOT_PATH_PREFIXES = tuple(
    os.path.join("src", "repro", pkg) + os.sep
    for pkg in ("core", "hardware", "sim")
)

#: ``(relpath, function_name)`` pairs allowed to call ``dataclasses.fields``
#: because they are cold paths (setup, reporting -- run per experiment, not
#: per sample).  Additions need a comment saying why the path is cold.
_FIELDS_ALLOWLIST: set[tuple[str, str]] = set()


def iter_python_files(root: str) -> list[str]:
    """Every tracked-looking ``.py`` file under ``root``, sorted."""
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in SKIP_DIRS and not d.endswith(".egg-info")
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                out.append(os.path.join(dirpath, name))
    return out


def _decorator_names(node: ast.AST) -> set[str]:
    names = set()
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _check_redefinitions(tree: ast.Module, relpath: str) -> list[Finding]:
    """F811: two defs with one name in the same scope."""
    findings = []
    scopes = [tree] + [
        n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)
    ]
    for scope in scopes:
        seen: dict[str, int] = {}
        for node in scope.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if _decorator_names(node) & _REDEF_OK_DECORATORS:
                continue
            if node.name in seen:
                findings.append(Finding(
                    relpath, node.lineno, "F811",
                    f"redefinition of {node.name!r} "
                    f"(first defined at line {seen[node.name]}) -- "
                    "the earlier definition is silently shadowed",
                ))
            seen[node.name] = node.lineno
    return findings


def _check_unused_imports(tree: ast.Module, relpath: str) -> list[Finding]:
    """F401 on module-level imports (conservative: any textual use counts)."""
    imported: dict[str, tuple[int, str]] = {}
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                imported[bound] = (node.lineno, alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imported[bound] = (node.lineno, alias.name)
    if not imported:
        return []

    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # `import a.b; a.b.c` -- the Name root is covered above.
            used.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # Forward-reference annotations and __all__ entries.
            if node.value.isidentifier():
                used.add(node.value)
            else:
                for part in node.value.replace(".", " ").split():
                    if part.isidentifier():
                        used.add(part)

    findings = []
    for bound, (lineno, target) in sorted(imported.items()):
        if bound not in used:
            findings.append(Finding(
                relpath, lineno, "F401", f"{target!r} imported but unused",
            ))
    return findings


def _check_debugger(tree: ast.Module, relpath: str) -> list[Finding]:
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id == "breakpoint":
                findings.append(Finding(
                    relpath, node.lineno, "T100", "breakpoint() left in code",
                ))
            elif (
                isinstance(fn, ast.Attribute) and fn.attr == "set_trace"
                and isinstance(fn.value, ast.Name)
                and fn.value.id in ("pdb", "ipdb")
            ):
                findings.append(Finding(
                    relpath, node.lineno, "T100",
                    f"{fn.value.id}.set_trace() left in code",
                ))
    return findings


def _is_fields_call(node: ast.Call, fields_aliases: set[str]) -> bool:
    fn = node.func
    if isinstance(fn, ast.Name):
        return fn.id in fields_aliases
    return (
        isinstance(fn, ast.Attribute)
        and fn.attr == "fields"
        and isinstance(fn.value, ast.Name)
        and fn.value.id == "dataclasses"
    )


def _check_hot_reflection(tree: ast.Module, relpath: str) -> list[Finding]:
    """H100: ``dataclasses.fields()`` inside a hot-path function."""
    if not relpath.startswith(_HOT_PATH_PREFIXES):
        return []
    # Names that ``dataclasses.fields`` is bound to in this module.
    fields_aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "dataclasses":
            for alias in node.names:
                if alias.name == "fields":
                    fields_aliases.add(alias.asname or alias.name)
    findings = []
    reported: set[int] = set()  # call ids (nested defs are walked twice)
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if (relpath, func.name) in _FIELDS_ALLOWLIST:
            continue
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and id(node) not in reported
                and _is_fields_call(node, fields_aliases)
            ):
                reported.add(id(node))
                findings.append(Finding(
                    relpath, node.lineno, "H100",
                    f"dataclasses.fields() inside {func.name!r} -- "
                    "reflection on the attribution hot path; precompute "
                    "the field tuple at class/module level, or allowlist "
                    "the function in ci/lint.py if the path is cold",
                ))
    return findings


#: The marker that opts a function into the H101 comprehension ban.  It
#: lives in a comment, so the check reads the ``def`` source line -- the
#: AST does not carry comments.
_HOT_PATH_MARKER = "# hot-path"


def _check_hot_comprehensions(
    tree: ast.Module, lines: list[str], relpath: str
) -> list[Finding]:
    """H101: list/dict comprehension inside a ``# hot-path`` function."""
    findings = []
    reported: set[int] = set()  # node ids (nested defs are walked twice)
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if func.lineno > len(lines):
            continue
        if _HOT_PATH_MARKER not in lines[func.lineno - 1]:
            continue
        for node in ast.walk(func):
            if (
                isinstance(node, (ast.ListComp, ast.DictComp))
                and id(node) not in reported
            ):
                reported.add(id(node))
                kind = "list" if isinstance(node, ast.ListComp) else "dict"
                findings.append(Finding(
                    relpath, node.lineno, "H101",
                    f"{kind} comprehension inside hot-path function "
                    f"{func.name!r} -- allocates a fresh container per "
                    "sample; use a preallocated buffer or an explicit loop",
                ))
    return findings


def _check_text(source: str, relpath: str) -> list[Finding]:
    findings = []
    lines = source.splitlines()
    for i, line in enumerate(lines, start=1):
        stripped = line.rstrip("\n")
        indent = stripped[: len(stripped) - len(stripped.lstrip())]
        if "\t" in indent:
            findings.append(Finding(relpath, i, "W191", "tab in indentation"))
        if stripped != stripped.rstrip():
            findings.append(Finding(relpath, i, "W291", "trailing whitespace"))
        if len(stripped) > MAX_LINE:
            findings.append(Finding(
                relpath, i, "E501",
                f"line too long ({len(stripped)} > {MAX_LINE})",
            ))
    if source and not source.endswith("\n"):
        findings.append(Finding(
            relpath, len(lines), "W292", "no newline at end of file",
        ))
    return findings


def _fix_text(source: str) -> str:
    """Rewrite the W191/W291/W292 classes; leave everything else alone."""
    fixed_lines = []
    for line in source.splitlines():
        stripped = line.rstrip()
        indent = stripped[: len(stripped) - len(stripped.lstrip())]
        if "\t" in indent:
            stripped = indent.replace("\t", "    ") + stripped.lstrip()
        fixed_lines.append(stripped)
    return "\n".join(fixed_lines) + "\n" if fixed_lines else source


def lint_file(path: str, root: str, fix: bool = False) -> list[Finding]:
    """All findings for one file (optionally auto-fixing whitespace)."""
    relpath = os.path.relpath(path, root)
    with open(path, encoding="utf-8") as fh:
        source = fh.read()

    findings = _check_text(source, relpath)
    if fix and any(f.code in ("W191", "W291", "W292") for f in findings):
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(_fix_text(source))
        findings = [
            f for f in findings if f.code not in ("W191", "W291", "W292")
        ]

    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        findings.append(Finding(
            relpath, exc.lineno or 1, "E9", f"syntax error: {exc.msg}",
        ))
        return findings

    findings.extend(_check_redefinitions(tree, relpath))
    findings.extend(_check_debugger(tree, relpath))
    findings.extend(_check_hot_reflection(tree, relpath))
    findings.extend(_check_hot_comprehensions(
        tree, source.splitlines(), relpath
    ))
    if os.path.basename(path) != "__init__.py":
        findings.extend(_check_unused_imports(tree, relpath))
    return sorted(findings, key=lambda f: (f.path, f.line, f.code))


def run_lint(root: str, fix: bool = False):
    """Lane entry point -> (ok, findings, detail)."""
    findings = []
    files = iter_python_files(root)
    for path in files:
        findings.extend(lint_file(path, root, fix=fix))
    return not findings, findings, f"{len(files)} files"
