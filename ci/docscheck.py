"""Docs/README cross-reference checker.

Documentation rots silently: APIs get renamed, CLI commands get added, files
move.  This lane makes the docs' claims machine-checked:

* every item in a ``docs/api.md`` package table must resolve to a real
  attribute of that package (a row passes when at least one identifier in
  its item cell imports -- tolerant of prose, fatal for fully-stale rows);
* the CLI section of ``docs/api.md`` must mention every command that
  ``repro.cli`` actually registers;
* every repository-relative file path mentioned in the Markdown corpus
  (README, docs/, DESIGN, EXPERIMENTS, ROADMAP) must exist.

Run:  ``python -m ci docs``
"""

from __future__ import annotations

import importlib
import os
import re
from ci.report import Finding

#: Markdown files whose repo-path references are verified.
DOC_FILES = (
    "README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
    "docs/api.md", "docs/architecture.md", "docs/paper_mapping.md",
    "docs/ci.md", "docs/robustness.md", "docs/performance.md",
    "docs/observability.md",
)

_SECTION_RE = re.compile(r"^##\s+`(repro(?:\.\w+)?)`")
_BACKTICK_RE = re.compile(r"`([^`]+)`")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z0-9_]+)*")
_PATH_RE = re.compile(
    r"\b((?:docs|examples|benchmarks|tests|src|ci|\.github)"
    r"/[A-Za-z0-9_./\-]+\.(?:py|md|yml|toml))\b"
)


def _resolves(module, dotted: str) -> bool:
    """True when ``dotted`` walks to an attribute of ``module``."""
    parts = dotted.split(".")
    if parts[0] == getattr(module, "__name__", "").split(".")[-1]:
        parts = parts[1:]
    obj = module
    for part in parts:
        if not hasattr(obj, part):
            return False
        obj = getattr(obj, part)
    return True


def _check_api_tables(root: str) -> list[Finding]:
    findings = []
    api_path = os.path.join(root, "docs", "api.md")
    if not os.path.exists(api_path):
        return [Finding("docs/api.md", 1, "D100", "docs/api.md is missing")]
    with open(api_path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()

    module = None
    module_name = ""
    for lineno, line in enumerate(lines, start=1):
        section = _SECTION_RE.match(line)
        if section:
            module_name = section.group(1)
            try:
                module = importlib.import_module(module_name)
            except ImportError as exc:
                findings.append(Finding(
                    "docs/api.md", lineno, "D301",
                    f"documented package {module_name!r} does not import: {exc}",
                ))
                module = None
            continue
        if line.startswith("## "):
            module = None  # non-package section, e.g. "## CLI"
            continue
        if module is None or not line.startswith("|"):
            continue
        cells = line.split("|")
        if len(cells) < 3:
            continue
        item_cell = cells[1].strip()
        if item_cell in ("item", "") or set(item_cell) <= {"-", " "}:
            continue
        candidates = []
        for span in _BACKTICK_RE.findall(item_cell):
            candidates.extend(_IDENT_RE.findall(span))
        if not candidates:
            continue
        if not any(_resolves(module, cand) for cand in candidates):
            findings.append(Finding(
                "docs/api.md", lineno, "D302",
                f"no identifier in {item_cell!r} resolves in {module_name}",
            ))
    return findings


def _check_cli_section(root: str) -> list[Finding]:
    from repro.cli import COMMANDS

    api_path = os.path.join(root, "docs", "api.md")
    if not os.path.exists(api_path):
        return []
    with open(api_path, encoding="utf-8") as fh:
        text = fh.read()
    marker = "## CLI"
    section = text[text.index(marker):] if marker in text else ""
    findings = []
    for command in sorted(set(COMMANDS) | {"list"}):
        if not re.search(rf"\b{re.escape(command)}\b", section):
            findings.append(Finding(
                "docs/api.md", text.count("\n", 0, text.index(marker)) + 1
                if marker in text else 1,
                "D303",
                f"CLI command {command!r} is registered but undocumented",
            ))
    return findings


def _check_paths(root: str) -> list[Finding]:
    findings = []
    for doc in DOC_FILES:
        full = os.path.join(root, doc)
        if not os.path.exists(full):
            continue
        with open(full, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        for lineno, line in enumerate(lines, start=1):
            for ref in _PATH_RE.findall(line):
                if not os.path.exists(os.path.join(root, ref)):
                    findings.append(Finding(
                        doc, lineno, "D304",
                        f"referenced path {ref!r} does not exist",
                    ))
    return findings


def run_docscheck(root: str):
    """Lane entry point -> (ok, findings, detail)."""
    findings = []
    findings.extend(_check_api_tables(root))
    findings.extend(_check_cli_section(root))
    findings.extend(_check_paths(root))
    return not findings, findings, f"{len(DOC_FILES)} documents"
