"""Repository CI toolkit: ``python -m ci <lane>``.

Stdlib-only quality gates for the Power Containers reproduction, runnable
locally and from GitHub Actions with identical behavior:

* ``lint``        -- AST-based static checks over src/tests/benchmarks/examples
* ``docs``        -- cross-reference docs/README against the importable API
* ``determinism`` -- run the same seeded experiment twice, demand bit-equality
* ``test``        -- tier-1 pytest lane (``--full`` for the slow tests too)
* ``examples``    -- every ``examples/*.py`` in quick mode, in a subprocess
* ``bench``       -- the paper-figure benchmark suite
* ``all``         -- the full merge gate (everything except ``bench``)

The package is deliberately dependency-free (``ast``, ``subprocess``,
``importlib`` only) so the lint/docs lanes run on a bare Python before the
project's own requirements are installed.  It lives at the repository top
level, outside ``src/``, and is never packaged or imported by ``repro``.
"""

from ci.report import CheckResult, Reporter

__all__ = ["CheckResult", "Reporter"]
