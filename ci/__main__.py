"""``python -m ci`` entry point."""

import sys

from ci.runner import main

if __name__ == "__main__":
    sys.exit(main())
