"""Uniform finding/result reporting for CI lanes."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One problem located in one file."""

    path: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.code}] {self.message}"


@dataclass
class CheckResult:
    """Outcome of one CI lane."""

    name: str
    ok: bool
    seconds: float
    findings: list[Finding] = field(default_factory=list)
    detail: str = ""


class Reporter:
    """Collects lane results and renders the final gate summary."""

    def __init__(self) -> None:
        self.results: list[CheckResult] = []

    def run(self, name: str, fn) -> CheckResult:
        """Time ``fn()`` -> (ok, findings, detail) and record the result."""
        start = time.monotonic()
        ok, findings, detail = fn()
        result = CheckResult(
            name=name, ok=ok, seconds=time.monotonic() - start,
            findings=list(findings), detail=detail,
        )
        self.results.append(result)
        status = "ok" if result.ok else "FAIL"
        print(f"[ci] {name:<12} {status:>4}  ({result.seconds:.1f}s)"
              + (f"  {detail}" if detail else ""))
        for finding in result.findings:
            print(f"       {finding.render()}")
        return result

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def summary(self) -> str:
        width = max((len(r.name) for r in self.results), default=4)
        lines = ["", "CI gate summary", "-" * (width + 22)]
        for r in self.results:
            mark = "PASS" if r.ok else "FAIL"
            extra = "" if r.ok else f"  ({len(r.findings)} finding(s))"
            lines.append(f"  {r.name:<{width}}  {mark}  {r.seconds:7.1f}s{extra}")
        lines.append("-" * (width + 22))
        lines.append("gate: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)
