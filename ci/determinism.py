"""Determinism gate: the same seeded experiment twice, bit for bit.

The whole reproduction rests on the simulator's promise that a given seed
and schedule replay exactly (``repro.sim.engine``).  Accidental nondeterminism
-- dict-ordering dependence, hidden global state, float accumulation-order
changes -- would silently invalidate every paper figure while all
shape-asserting tests still pass.  This lane:

1. calibrates the same machine twice and demands identical coefficients;
2. runs a short seeded Solr workload twice and demands identical request
   counts, per-request energies, response times, and measured joules;
3. runs representative chaos scenarios (``repro.faults``) twice and demands
   bit-identical report fingerprints -- fault injection draws randomness
   too, and a chaos run that cannot replay cannot be debugged.

Everything is compared with ``==`` on floats: the runs must be *identical*,
not merely close.

Run:  ``python -m ci determinism``
"""

from __future__ import annotations

from ci.report import Finding

#: Short but non-trivial: long enough to exercise scheduling, sockets,
#: meters, recalibration, and tens of requests.
_CAL_DURATION = 0.1
_RUN_DURATION = 1.5


def _run_once(facility_kwargs=None):
    from repro.core import calibrate_machine
    from repro.hardware import SANDYBRIDGE
    from repro.workloads import SolrWorkload, run_workload

    calibration = calibrate_machine(SANDYBRIDGE, duration=_CAL_DURATION)
    run = run_workload(
        SolrWorkload(), SANDYBRIDGE, calibration,
        load_fraction=0.6, duration=_RUN_DURATION, warmup=0.2, seed=7,
        facility_kwargs=facility_kwargs,
    )
    primary = run.facility.primary
    fingerprint = {
        "coefficients": tuple(
            (name, float(watts))
            for name, watts in sorted(calibration.cmax_table().items())
        ),
        "idle_watts": calibration.idle_watts,
        "n_requests": len(run.driver.results),
        "energies": tuple(r.energy(primary) for r in run.driver.results),
        "response_times": tuple(r.response_time for r in run.driver.results),
        "measured_joules": run.measured_active_joules,
    }
    return fingerprint


#: Chaos scenarios double-run by the gate: one metered single-machine
#: scenario (meter faults + guards), the cluster crash/failover path, and
#: the overload world (the shed set and brownout ladder must replay --
#: ``shed_fingerprint`` and every ``powercap_*`` counter are in the report).
_CHAOS_SCENARIOS = ("meter-nan-burst", "cluster-crash", "arrival-storm")
_CHAOS_SEED = 42


def _chaos_fingerprints() -> dict[str, str]:
    from repro.faults import run_scenario, scenario_by_name

    return {
        name: run_scenario(
            scenario_by_name(name), seed=_CHAOS_SEED
        ).fingerprint()
        for name in _CHAOS_SCENARIOS
    }


def run_determinism(root: str):
    """Lane entry point -> (ok, findings, detail)."""
    first = _run_once()
    second = _run_once()
    findings = []
    for key in first:
        if first[key] != second[key]:
            findings.append(Finding(
                "ci/determinism.py", 1, "NDET",
                f"{key} differs between identically-seeded runs "
                f"({first[key]!r:.80} vs {second[key]!r:.80})",
            ))
    chaos_first = _chaos_fingerprints()
    chaos_second = _chaos_fingerprints()
    for name in _CHAOS_SCENARIOS:
        if chaos_first[name] != chaos_second[name]:
            findings.append(Finding(
                "ci/determinism.py", 1, "NDET",
                f"chaos scenario {name!r} fingerprint differs between "
                f"identically-seeded runs",
            ))
    detail = (f"{first['n_requests']} requests, "
              f"{len(first['coefficients'])} coefficients, "
              f"{len(_CHAOS_SCENARIOS)} chaos fingerprints compared")
    return not findings, findings, detail
