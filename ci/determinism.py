"""Determinism gate: the same seeded experiment twice, bit for bit.

The whole reproduction rests on the simulator's promise that a given seed
and schedule replay exactly (``repro.sim.engine``).  Accidental nondeterminism
-- dict-ordering dependence, hidden global state, float accumulation-order
changes -- would silently invalidate every paper figure while all
shape-asserting tests still pass.  This lane:

1. calibrates the same machine twice and demands identical coefficients;
2. runs a short seeded Solr workload twice and demands identical request
   counts, per-request energies, response times, and measured joules;
3. runs representative chaos scenarios (``repro.faults``) twice and demands
   bit-identical report fingerprints -- fault injection draws randomness
   too, and a chaos run that cannot replay cannot be debugged;
4. runs a checkpointed Solr experiment, resumes it from its newest
   checkpoint (``repro.checkpoint``), and demands the resumed run's
   report/trace/shed/batch fingerprints match the uninterrupted run's;
5. runs a sharded chaos world clean, under barrier checkpointing, and
   resumed from an early checkpoint (``repro.shard``), and demands all
   three land on identical report/shed/batch/energy fingerprints.

Everything is compared with ``==`` on floats: the runs must be *identical*,
not merely close.

Run:  ``python -m ci determinism``
"""

from __future__ import annotations

from ci.report import Finding

#: Short but non-trivial: long enough to exercise scheduling, sockets,
#: meters, recalibration, and tens of requests.
_CAL_DURATION = 0.1
_RUN_DURATION = 1.5


def _run_once(facility_kwargs=None):
    from repro.core import calibrate_machine
    from repro.hardware import SANDYBRIDGE
    from repro.workloads import SolrWorkload, run_workload

    calibration = calibrate_machine(SANDYBRIDGE, duration=_CAL_DURATION)
    run = run_workload(
        SolrWorkload(), SANDYBRIDGE, calibration,
        load_fraction=0.6, duration=_RUN_DURATION, warmup=0.2, seed=7,
        facility_kwargs=facility_kwargs,
    )
    primary = run.facility.primary
    fingerprint = {
        "coefficients": tuple(
            (name, float(watts))
            for name, watts in sorted(calibration.cmax_table().items())
        ),
        "idle_watts": calibration.idle_watts,
        "n_requests": len(run.driver.results),
        "energies": tuple(r.energy(primary) for r in run.driver.results),
        "response_times": tuple(r.response_time for r in run.driver.results),
        "measured_joules": run.measured_active_joules,
    }
    return fingerprint


#: Chaos scenarios double-run by the gate: one metered single-machine
#: scenario (meter faults + guards), the cluster crash/failover path, and
#: the overload world (the shed set and brownout ladder must replay --
#: ``shed_fingerprint`` and every ``powercap_*`` counter are in the report).
_CHAOS_SCENARIOS = ("meter-nan-burst", "cluster-crash", "arrival-storm")
_CHAOS_SEED = 42


def _chaos_fingerprints() -> dict[str, str]:
    from repro.faults import run_scenario, scenario_by_name

    return {
        name: run_scenario(
            scenario_by_name(name), seed=_CHAOS_SEED
        ).fingerprint()
        for name in _CHAOS_SCENARIOS
    }


def _batch_fingerprint():
    """Seeded batch-engine run: synchronous ``sample_all`` accounting ticks
    interleaved with simulated execution, fingerprinted per container.

    The per-event path is already covered by the Solr double-run above;
    this exercises the vectorized :class:`BatchAccountingEngine` pass
    (``Facility.flush`` / sharded-sweep ticks) end to end, so a batch
    kernel that picks up accumulation-order or dtype nondeterminism fails
    the gate even though no workload driver calls it on every sample.
    """
    from repro.core import PowerContainerFacility, calibrate_machine
    from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
    from repro.kernel import Compute, Kernel
    from repro.sim import Simulator

    calibration = calibrate_machine(SANDYBRIDGE, duration=_CAL_DURATION)
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, calibration)
    spin = RateProfile(name="det-spin", ipc=1.1)
    containers = []
    for index in range(len(machine.cores)):
        container = facility.create_request_container(f"det-{index}")
        containers.append(container)

        def program():
            yield Compute(cycles=machine.freq_hz * 0.05, profile=spin)

        kernel.spawn(
            program(), f"det-spin-{index}", container_id=container.id,
            pinned_core=index,
        )
    charged = 0
    now = 0.0
    # Off the facility's 1 ms OS-tick grid, so the batch pass sees real
    # open intervals instead of already-sampled (dt == 0) ones.
    for _ in range(40):
        now += 1.37e-3
        sim.run_until(now)
        charged += facility.batch_engine.sample_all(sim.now)
    primary = facility.primary
    return {
        "batch_charged": charged,
        "batch_energies": tuple(c.energy(primary) for c in containers),
        "batch_samples": tuple(
            c.stats.sample_count for c in containers
        ),
    }


def _checkpoint_fingerprints():
    """Checkpointed Solr run + in-place resume: both fingerprint dicts.

    A shortened run (the restore CI lane covers the cross-process SIGKILL
    path) that crosses two auto-checkpoint safe-points, then resumes from
    the newest checkpoint in the same process.  Snapshot collection must be
    invisible to the run and the replay-verified resume must land on the
    same report/trace/shed/batch digests -- any drift in a layer's
    ``snapshot_state``/``restore_state`` pair fails the gate here.
    """
    import shutil
    import tempfile

    from repro.checkpoint import (
        RunConfig,
        resume_checkpointed,
        run_checkpointed,
    )

    config = RunConfig(
        kind="solr", seed=7, duration=0.6, warmup=0.1, load_fraction=0.6,
        cal_duration=_CAL_DURATION, checkpoint_period=0.2,
    )
    directory = tempfile.mkdtemp(prefix="repro-determinism-ckpt-")
    try:
        oneshot = run_checkpointed(config, directory=directory)
        resumed = resume_checkpointed(directory)
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return oneshot, resumed


def _shard_resume_fingerprints():
    """Sharded chaos run three ways: clean, checkpointed, and resumed.

    The transport CI lane covers the cross-process coordinator SIGKILL;
    this in-process case pins the snapshot discipline itself: collecting
    barrier checkpoints must not perturb the run, and a coordinator
    rebuilt from the *oldest retained* checkpoint (not the newest) must
    replay the remaining epochs onto identical fingerprints.
    """
    import shutil
    import tempfile

    from repro.checkpoint import CheckpointManager
    from repro.shard import (
        ShardCheckpointPolicy,
        resume_sharded,
        run_scenario,
    )

    directory = tempfile.mkdtemp(prefix="repro-determinism-shard-")
    try:
        clean = run_scenario("chaos", n_shards=2, duration=0.75)
        checkpointed = run_scenario(
            "chaos", n_shards=2, duration=0.75,
            checkpoint=ShardCheckpointPolicy(directory=directory, every=1),
        )
        earliest = min(CheckpointManager(directory).indices())
        resumed = resume_sharded(directory, index=earliest)
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return clean, checkpointed, resumed


def run_determinism(root: str):
    """Lane entry point -> (ok, findings, detail)."""
    first = _run_once()
    second = _run_once()
    findings = []
    for key in first:
        if first[key] != second[key]:
            findings.append(Finding(
                "ci/determinism.py", 1, "NDET",
                f"{key} differs between identically-seeded runs "
                f"({first[key]!r:.80} vs {second[key]!r:.80})",
            ))
    chaos_first = _chaos_fingerprints()
    chaos_second = _chaos_fingerprints()
    for name in _CHAOS_SCENARIOS:
        if chaos_first[name] != chaos_second[name]:
            findings.append(Finding(
                "ci/determinism.py", 1, "NDET",
                f"chaos scenario {name!r} fingerprint differs between "
                f"identically-seeded runs",
            ))
    batch_first = _batch_fingerprint()
    batch_second = _batch_fingerprint()
    for key in batch_first:
        if batch_first[key] != batch_second[key]:
            findings.append(Finding(
                "ci/determinism.py", 1, "NDET",
                f"{key} differs between identically-seeded batch-engine "
                f"runs",
            ))
    ckpt_oneshot, ckpt_resumed = _checkpoint_fingerprints()
    for key in ("report", "trace", "shed", "batch", "n_requests"):
        if ckpt_oneshot[key] != ckpt_resumed[key]:
            findings.append(Finding(
                "ci/determinism.py", 1, "NDET",
                f"checkpoint-resume {key} fingerprint differs from the "
                f"uninterrupted run ({ckpt_resumed[key]!r} vs "
                f"{ckpt_oneshot[key]!r})",
            ))
    if not ckpt_resumed.get("resumed"):
        findings.append(Finding(
            "ci/determinism.py", 1, "NDET",
            "checkpoint resume never restored from a checkpoint",
        ))
    shard_clean, shard_ckpt, shard_resumed = _shard_resume_fingerprints()
    for label, run in (("checkpointed", shard_ckpt),
                       ("resumed", shard_resumed)):
        for key in ("report", "shed", "batch", "energy"):
            if run.fingerprints[key] != shard_clean.fingerprints[key]:
                findings.append(Finding(
                    "ci/determinism.py", 1, "NDET",
                    f"shard coordinator-{label} {key} fingerprint differs "
                    f"from the uninterrupted sharded run",
                ))
    if not shard_resumed.resumed:
        findings.append(Finding(
            "ci/determinism.py", 1, "NDET",
            "shard coordinator resume never restored from a checkpoint",
        ))
    detail = (f"{first['n_requests']} requests, "
              f"{len(first['coefficients'])} coefficients, "
              f"{len(_CHAOS_SCENARIOS)} chaos fingerprints + "
              f"{len(batch_first['batch_energies'])} batch-engine "
              f"containers + checkpoint-resume identity + shard "
              f"coordinator-resume identity compared")
    return not findings, findings, detail
