"""CI lane orchestration: subprocess lanes + the combined merge gate."""

from __future__ import annotations

import os
import subprocess
import sys
from ci.report import Finding, Reporter

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Examples executed by the ``examples`` lane, in README order.
EXAMPLES = (
    "quickstart.py",
    "request_tracing.py",
    "power_virus_isolation.py",
    "heterogeneous_cluster.py",
    "energy_billing.py",
    "custom_service.py",
)


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = os.path.join(ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _subprocess_lane(argv: list[str], label: str, extra_env=None):
    env = _env()
    if extra_env:
        env.update(extra_env)
    proc = subprocess.run(
        argv, cwd=ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    if proc.returncode == 0:
        return True, [], label
    tail = "\n".join(proc.stdout.splitlines()[-30:])
    print(tail)
    return False, [Finding(
        label, 0, "EXIT", f"exited with status {proc.returncode}",
    )], label


def run_tests(full: bool = False):
    """tier-1 pytest lane; ``full`` includes tests marked ``slow``."""
    argv = [sys.executable, "-m", "pytest", "tests", "-q",
            "-p", "no:cacheprovider"]
    if not full:
        argv += ["-m", "not slow"]
    label = "pytest tests" + ("" if full else " -m 'not slow'")
    return _subprocess_lane(argv, label, extra_env={"CI": "true"})


def run_bench():
    """Regenerate every paper table/figure benchmark."""
    argv = [sys.executable, "-m", "pytest", "benchmarks", "-q",
            "-p", "no:cacheprovider"]
    return _subprocess_lane(argv, "pytest benchmarks", extra_env={"CI": "true"})


def run_chaos():
    """Chaos lane: every fault scenario must pass its invariants."""
    argv = [sys.executable, "-m", "repro", "chaos", "--all", "--seed", "42"]
    return _subprocess_lane(argv, "repro chaos --all --seed 42",
                            extra_env={"CI": "true"})


def run_overload():
    """Overload lane: brownout scenarios double-run + the CLI demo.

    Each overload scenario runs twice with the same seed and the two report
    fingerprints must match bit-for-bit -- the shed set, the brownout
    ladder, and every admission counter are part of the fingerprint, so a
    nondeterministic shedding decision fails here even if both runs pass
    their invariants.
    """
    sys.path.insert(0, os.path.join(ROOT, "src"))
    from repro.faults import run_scenario, scenario_by_name

    findings = []
    names = ("arrival-storm", "cap-squeeze", "storm-during-crash")
    for name in names:
        first = run_scenario(scenario_by_name(name), seed=42)
        second = run_scenario(scenario_by_name(name), seed=42)
        for violation in first.violations:
            findings.append(Finding(
                "ci/runner.py", 1, "CHAOS", f"{name}: {violation}",
            ))
        if first.fingerprint() != second.fingerprint():
            findings.append(Finding(
                "ci/runner.py", 1, "NDET",
                f"overload scenario {name!r} fingerprint differs between "
                f"identically-seeded runs",
            ))
    ok, lane_findings, _ = _subprocess_lane(
        [sys.executable, "-m", "repro", "overload", "--seed", "42"],
        "repro overload --seed 42", extra_env={"CI": "true"},
    )
    findings.extend(lane_findings)
    detail = f"{len(names)} scenarios double-run + CLI demo"
    return not findings, findings, detail


def run_telemetry():
    """Telemetry lane: tracing must be deterministic and strictly neutral.

    For every determinism-gate chaos scenario: (1) a baseline run without
    telemetry and an instrumented run must produce bit-identical report
    fingerprints (enabling telemetry never changes attribution); (2) two
    instrumented runs with the same seed must produce bit-identical
    ``trace_fingerprint()`` digests; (3) a run with a disabled handle must
    record zero events.  A Solr workload run repeats the neutrality check
    against the determinism gate's own fingerprint dict.
    """
    sys.path.insert(0, os.path.join(ROOT, "src"))
    from ci.determinism import _CHAOS_SCENARIOS, _CHAOS_SEED, _run_once
    from repro.faults import run_scenario, scenario_by_name
    from repro.telemetry import Telemetry

    findings = []
    for name in _CHAOS_SCENARIOS:
        scenario = scenario_by_name(name)
        baseline = run_scenario(scenario, seed=_CHAOS_SEED)
        first = Telemetry()
        traced = run_scenario(scenario, seed=_CHAOS_SEED, telemetry=first)
        if baseline.fingerprint() != traced.fingerprint():
            findings.append(Finding(
                "ci/runner.py", 1, "TELEM",
                f"scenario {name!r}: enabling telemetry changed the report "
                f"fingerprint (instrumentation is not neutral)",
            ))
        second = Telemetry()
        run_scenario(scenario, seed=_CHAOS_SEED, telemetry=second)
        if first.trace_fingerprint() != second.trace_fingerprint():
            findings.append(Finding(
                "ci/runner.py", 1, "NDET",
                f"scenario {name!r}: trace fingerprint differs between "
                f"identically-seeded runs",
            ))
        disabled = Telemetry(enabled=False)
        off = run_scenario(scenario, seed=_CHAOS_SEED, telemetry=disabled)
        if len(disabled.tracer.events) or len(disabled.registry):
            findings.append(Finding(
                "ci/runner.py", 1, "TELEM",
                f"scenario {name!r}: a disabled telemetry handle recorded "
                f"events or metrics",
            ))
        if baseline.fingerprint() != off.fingerprint():
            findings.append(Finding(
                "ci/runner.py", 1, "TELEM",
                f"scenario {name!r}: a disabled telemetry handle changed "
                f"the report fingerprint",
            ))

    solr_baseline = _run_once()
    solr_traced = _run_once(facility_kwargs={"telemetry": Telemetry()})
    for key in solr_baseline:
        if solr_baseline[key] != solr_traced[key]:
            findings.append(Finding(
                "ci/runner.py", 1, "TELEM",
                f"determinism-gate key {key!r} changed when telemetry was "
                f"enabled on the Solr run",
            ))

    # Cluster half: sharded neutrality + merged-stream determinism.  One
    # sharded Solr world per telemetry mode -- all four fingerprint sets
    # must be bit-identical -- then the telemetry-on case double-run with
    # equal merged trace/alert/store digests, and the dashboard exported
    # as the bench workflow's artifact.
    from repro.shard.scenario import run_scenario as run_shard_scenario

    sharded = {
        mode: run_shard_scenario("solr", n_shards=2, telemetry=mode,
                                 duration=0.5)
        for mode in ("off", "disabled", "store", "on")
    }
    for mode in ("disabled", "store", "on"):
        if sharded[mode].fingerprints != sharded["off"].fingerprints:
            findings.append(Finding(
                "ci/runner.py", 1, "TELEM",
                f"sharded telemetry mode {mode!r} changed the run "
                f"fingerprints (cluster instrumentation is not neutral)",
            ))
    rerun = run_shard_scenario("solr", n_shards=2, telemetry="on",
                               duration=0.5)
    for key in ("trace_fingerprint", "alert_fingerprint",
                "store_fingerprint"):
        if (rerun.telemetry_summary[key]
                != sharded["on"].telemetry_summary[key]):
            findings.append(Finding(
                "ci/runner.py", 1, "NDET",
                f"merged {key} differs between identically-seeded "
                f"sharded runs",
            ))
    dashboard_path = os.path.join(ROOT, "results", "dashboard-ci.json")
    os.makedirs(os.path.dirname(dashboard_path), exist_ok=True)
    with open(dashboard_path, "w") as fh:
        fh.write(sharded["on"].observability.store.dashboard_json(
            meta={"lane": "telemetry", "scenario": "solr", "shards": 2},
            alerts=sharded["on"].observability.engine.alert_table(),
        ))

    detail = (f"{len(_CHAOS_SCENARIOS)} scenarios x (neutrality + double-run "
              f"+ disabled identity) + Solr gate neutrality + sharded "
              f"4-mode neutrality + merged-stream double-run")
    return not findings, findings, detail


#: Regression threshold for ``perf --trend``: the nightly lane runs on one
#: runner class, so it can afford a much tighter bound than the default
#: merge-gate threshold -- fail on >20% regression vs the committed file.
TREND_THRESHOLD = 1.2

#: Where ``perf --trend`` appends its one-line-per-run history.
TREND_HISTORY = os.path.join("results", "BENCH_history.jsonl")


def _append_trend_history(results, problems) -> str:
    """Append one JSON line summarizing this perf run; returns the path."""
    import json
    import time

    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        ).stdout.strip() or None
    except OSError:
        sha = None
    benchmarks = {}
    for name, result in results.items():
        entry = {"kind": result.kind, "seconds": result.seconds}
        if result.ratio is not None:
            entry["ratio"] = result.ratio
        benchmarks[name] = entry
    line = {
        "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "sha": sha,
        "threshold": TREND_THRESHOLD,
        "problems": list(problems),
        "benchmarks": benchmarks,
    }
    path = os.path.join(ROOT, TREND_HISTORY)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(line, sort_keys=True) + "\n")
    return path


def run_perf_lane(trend: bool = False):
    """Perf lane: benchmark regression check bracketed by fingerprint runs.

    ``ci/determinism.py``'s seeded experiment runs once before and once
    after the benchmark suite; the two fingerprints must be identical, so a
    benchmark that leaks global state (or an optimization that changes
    attribution math) fails here even if it is fast.

    ``trend=True`` is the nightly mode: the wall-time threshold tightens
    to :data:`TREND_THRESHOLD` (>20% over the committed baseline fails),
    and every run appends a one-line JSON summary to
    ``results/BENCH_history.jsonl`` so the Actions artifact accumulates a
    queryable per-commit trend.
    """
    sys.path.insert(0, os.path.join(ROOT, "src"))
    from ci.determinism import _run_once
    from repro.perf import check_regressions, run_suite

    findings = []
    before = _run_once()
    results = run_suite()
    problems = check_regressions(
        results, os.path.join(ROOT, "BENCH_perf.json"),
        **({"threshold": TREND_THRESHOLD} if trend else {}),
    )
    for problem in problems:
        findings.append(Finding("BENCH_perf.json", 1, "PERF", problem))
    after = _run_once()
    for key in before:
        if before[key] != after[key]:
            findings.append(Finding(
                "ci/runner.py", 1, "NDET",
                f"fingerprint {key!r} differs across the perf suite -- "
                f"a benchmark perturbed global state",
            ))
    detail = (f"{len(results)} benchmarks, "
              f"{len(before)} fingerprint keys compared")
    if trend:
        _append_trend_history(results, problems)
        detail += f", trend line appended to {TREND_HISTORY}"
    return not findings, findings, detail


#: Restore-lane cases: (label, ``repro run-ckpt`` arguments, checkpoint
#: index to SIGKILL after).  One Solr macro run and one chaos scenario, both
#: short enough for the merge gate but long enough to cross several
#: auto-checkpoint safe-points.
RESTORE_CASES = (
    ("solr", ["--kind", "solr", "--duration", "0.6", "--warmup", "0.1",
              "--period", "0.2"], 1),
    ("chaos", ["--kind", "chaos", "--scenario", "meter-nan-burst",
               "--duration-scale", "0.5", "--period", "0.3"], 1),
)

#: Fingerprint keys every resumed run must reproduce bit-for-bit.
RESTORE_KEYS = ("report", "trace", "shed", "batch")


def _run_json(argv: list[str]):
    """Run a CLI subprocess; return (returncode, parsed-last-line-or-None)."""
    import json

    env = _env()
    env["CI"] = "true"
    proc = subprocess.run(
        argv, cwd=ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    lines = proc.stdout.strip().splitlines()
    payload = None
    if proc.returncode == 0 and lines:
        try:
            payload = json.loads(lines[-1])
        except ValueError:
            payload = None
    return proc, payload


def run_restore():
    """Restore lane: kill a checkpointed run mid-flight, resume, compare.

    For each case in :data:`RESTORE_CASES`: (1) a clean one-shot
    checkpointed run records its four fingerprints (report, trace, shed,
    batch); (2) the same run is SIGKILLed by its own ``on_checkpoint`` hook
    right after a checkpoint is durably on disk; (3) ``python -m repro
    resume`` restarts from that checkpoint and must reproduce all four
    fingerprints bit-for-bit.  A corrupt-file smoke then flips one byte in
    the newest checkpoint and demands the resume is *rejected* with a
    diagnostic, never silently loaded.
    """
    import shutil
    import signal
    import tempfile

    findings = []
    workdir = tempfile.mkdtemp(prefix="repro-restore-")
    solr_dir = None
    try:
        for name, case_args, kill_after in RESTORE_CASES:
            base = [sys.executable, "-m", "repro", "run-ckpt", *case_args]
            _, clean = _run_json(base)
            if clean is None:
                findings.append(Finding(
                    "ci/runner.py", 1, "RESTORE",
                    f"{name}: clean checkpointed run failed",
                ))
                continue
            ckpt_dir = os.path.join(workdir, name)
            if name == "solr":
                solr_dir = ckpt_dir
            crashed, _ = _run_json(
                base + ["--dir", ckpt_dir,
                        "--kill-after-checkpoint", str(kill_after)],
            )
            if crashed.returncode != -signal.SIGKILL:
                findings.append(Finding(
                    "ci/runner.py", 1, "RESTORE",
                    f"{name}: crash run exited {crashed.returncode}, "
                    f"expected SIGKILL",
                ))
                continue
            _, resumed = _run_json(
                [sys.executable, "-m", "repro", "resume", "--dir", ckpt_dir],
            )
            if resumed is None:
                findings.append(Finding(
                    "ci/runner.py", 1, "RESTORE",
                    f"{name}: resume after SIGKILL failed",
                ))
                continue
            if not resumed.get("resumed"):
                findings.append(Finding(
                    "ci/runner.py", 1, "RESTORE",
                    f"{name}: resume did not restore from a checkpoint",
                ))
            for key in RESTORE_KEYS:
                if clean[key] != resumed[key]:
                    findings.append(Finding(
                        "ci/runner.py", 1, "RESTORE",
                        f"{name}: resumed {key} fingerprint "
                        f"{resumed[key]!r} != uninterrupted {clean[key]!r}",
                    ))
        if solr_dir is not None and os.path.isdir(solr_dir):
            names = sorted(os.listdir(solr_dir))
            if names:
                path = os.path.join(solr_dir, names[-1])
                with open(path, "rb") as handle:
                    raw = bytearray(handle.read())
                raw[len(raw) // 2] ^= 0xFF
                with open(path, "wb") as handle:
                    handle.write(raw)
                proc, _ = _run_json(
                    [sys.executable, "-m", "repro", "resume",
                     "--dir", solr_dir],
                )
                if proc.returncode == 0:
                    findings.append(Finding(
                        "ci/runner.py", 1, "RESTORE",
                        "corrupt checkpoint was silently loaded",
                    ))
                elif "digest mismatch" not in proc.stdout:
                    findings.append(Finding(
                        "ci/runner.py", 1, "RESTORE",
                        "corrupt checkpoint rejection lacks a diagnostic "
                        "(no 'digest mismatch' in output)",
                    ))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    detail = (f"{len(RESTORE_CASES)} crash/resume cases x "
              f"{len(RESTORE_KEYS)} fingerprints + corrupt-file rejection")
    return not findings, findings, detail


#: Shard counts whose fingerprints must be identical in the shard lane.
SHARD_COUNTS = (1, 2, 4)

#: Fingerprint keys every sharded run must reproduce bit-for-bit.
SHARD_KEYS = ("report", "shed", "batch", "energy")


def run_shard():
    """Shard lane: shard-count invariance + pool-worker-kill recovery.

    (1) The Solr macro world is run with 1, 2, and 4 shards and every
    fingerprint key must match the 1-shard run bit-for-bit; (2) the same
    invariance is checked on the chaos world (crashes, failover,
    re-placement in the loop); (3) the chaos world is run again on two
    fork workers with one worker SIGKILLed mid-run -- the pool must
    replay the dead worker's shards from directive history, verify the
    replayed state digest, and still produce identical fingerprints.
    """
    sys.path.insert(0, os.path.join(ROOT, "src"))
    from repro.shard import run_scenario, run_sharded
    from repro.shard.scenario import SCENARIOS

    findings = []
    baselines = {}
    for world in ("solr", "chaos"):
        fingerprints = {}
        for n_shards in SHARD_COUNTS:
            result = run_scenario(world, n_shards=n_shards)
            fingerprints[n_shards] = result.fingerprints
        baselines[world] = fingerprints[SHARD_COUNTS[0]]
        for n_shards in SHARD_COUNTS[1:]:
            for key in SHARD_KEYS:
                if fingerprints[n_shards][key] != baselines[world][key]:
                    findings.append(Finding(
                        "ci/runner.py", 1, "SHARD",
                        f"{world}: {n_shards}-shard {key} fingerprint "
                        f"differs from 1-shard",
                    ))
    killed = {"done": False}

    def kill_hook(pool, epoch_index):
        if epoch_index == 2 and pool.parallel and not killed["done"]:
            pool.kill_worker(0)
            killed["done"] = True

    result = run_sharded(
        SCENARIOS["chaos"](n_shards=4, workers=2), pool_hook=kill_hook
    )
    if killed["done"]:
        if result.worker_restarts < 1:
            findings.append(Finding(
                "ci/runner.py", 1, "SHARD",
                "worker-kill case recorded no worker restart",
            ))
        for key in SHARD_KEYS:
            if result.fingerprints[key] != baselines["chaos"][key]:
                findings.append(Finding(
                    "ci/runner.py", 1, "SHARD",
                    f"worker-kill resume: {key} fingerprint differs "
                    f"from the uninterrupted run",
                ))
    detail = (
        f"{len(SHARD_COUNTS)} shard counts x 2 worlds x "
        f"{len(SHARD_KEYS)} fingerprints"
    )
    if killed["done"]:
        detail += " + worker-kill resume"
    else:  # fork unavailable: invariance still checked, recovery skipped
        detail += " (worker-kill skipped: no fork)"
    return not findings, findings, detail


#: Worlds whose fingerprints must survive transport weather unchanged.
TRANSPORT_WORLDS = ("solr", "chaos")

#: Per-world duration overrides keeping the transport sweep affordable.
TRANSPORT_DURATIONS = {"solr": 0.75, "chaos": 1.0}

#: Transport-stat suffixes that count an injected channel fault.
TRANSPORT_FAULT_SUFFIXES = (
    "dropped", "duplicated", "reordered", "delayed", "corrupted",
)


def _transport_faults_injected(stats: dict) -> int:
    """Total channel faults a run's transport stats record."""
    return sum(
        value for key, value in stats.items()
        if key.endswith(TRANSPORT_FAULT_SUFFIXES)
    )


def run_transport():
    """Transport lane: lossy-channel invariance + coordinator recovery.

    (1) Both invariance worlds run under the ``chaos`` transport preset
    (drops, duplicates, reorders, multi-epoch delays, and detectable
    corruption on every worker link) and must reproduce the fault-free
    fingerprints bit-for-bit, with the channel stats proving faults
    actually fired; (2) the ``corrupt`` preset must show checksummed
    frames being *rejected* (coordinator- and worker-side) while the
    fingerprints still match; (3) a two-fork-worker chaos run under lossy
    transport is SIGKILLed by its own barrier-checkpoint hook -- after one
    worker was already SIGKILLed and revived in the same run -- and
    ``python -m repro shard --resume`` must land on the uninterrupted
    run's fingerprints exactly.
    """
    import shutil
    import signal
    import tempfile

    sys.path.insert(0, os.path.join(ROOT, "src"))
    from repro.shard import run_scenario

    findings = []
    baselines = {}
    for world in TRANSPORT_WORLDS:
        duration = TRANSPORT_DURATIONS[world]
        clean = run_scenario(world, n_shards=2, duration=duration)
        baselines[world] = clean.fingerprints
        faulty = run_scenario(
            world, n_shards=2, duration=duration, transport="chaos",
        )
        if _transport_faults_injected(faulty.transport_stats) == 0:
            findings.append(Finding(
                "ci/runner.py", 1, "TRANSPORT",
                f"{world}: chaos transport preset injected no faults",
            ))
        for key in SHARD_KEYS:
            if faulty.fingerprints[key] != clean.fingerprints[key]:
                findings.append(Finding(
                    "ci/runner.py", 1, "TRANSPORT",
                    f"{world}: {key} fingerprint diverged under chaos "
                    f"transport weather",
                ))
    corrupt = run_scenario(
        "chaos", n_shards=2, duration=TRANSPORT_DURATIONS["chaos"],
        transport="corrupt",
    )
    rejected = (
        corrupt.transport_stats.get("corrupt_rejected", 0)
        + corrupt.transport_stats.get("worker_corrupt_rejected", 0)
    )
    if rejected == 0:
        findings.append(Finding(
            "ci/runner.py", 1, "TRANSPORT",
            "corrupt preset: no corrupted frame was checksum-rejected",
        ))
    for key in SHARD_KEYS:
        if corrupt.fingerprints[key] != baselines["chaos"][key]:
            findings.append(Finding(
                "ci/runner.py", 1, "TRANSPORT",
                f"corrupt preset: {key} fingerprint diverged from the "
                f"fault-free run",
            ))
    # -- coordinator SIGKILL + resume over the CLI ----------------------
    case = [
        sys.executable, "-m", "repro", "shard",
        "--scenario", "chaos", "--shards", "4", "--workers", "2",
        "--duration", "1.0", "--transport", "lossy",
    ]
    workdir = tempfile.mkdtemp(prefix="repro-transport-")
    try:
        _, clean = _run_json(case)
        if clean is None:
            findings.append(Finding(
                "ci/runner.py", 1, "TRANSPORT",
                "clean lossy CLI run failed",
            ))
        else:
            crashed, _ = _run_json(
                case + ["--ckpt-dir", workdir, "--ckpt-every", "1",
                        "--kill-after-checkpoint", "1",
                        "--kill-worker-at", "1"],
            )
            if crashed.returncode != -signal.SIGKILL:
                findings.append(Finding(
                    "ci/runner.py", 1, "TRANSPORT",
                    f"crash run exited {crashed.returncode}, expected "
                    f"SIGKILL",
                ))
            else:
                _, resumed = _run_json(
                    [sys.executable, "-m", "repro", "shard", "--resume",
                     "--ckpt-dir", workdir, "--transport", "lossy"],
                )
                if resumed is None:
                    findings.append(Finding(
                        "ci/runner.py", 1, "TRANSPORT",
                        "resume after coordinator SIGKILL failed",
                    ))
                else:
                    if not resumed.get("resumed"):
                        findings.append(Finding(
                            "ci/runner.py", 1, "TRANSPORT",
                            "resume did not restore from a checkpoint",
                        ))
                    for key in SHARD_KEYS:
                        if resumed[key] != clean[key]:
                            findings.append(Finding(
                                "ci/runner.py", 1, "TRANSPORT",
                                f"resumed {key} fingerprint {resumed[key]!r}"
                                f" != uninterrupted {clean[key]!r}",
                            ))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    detail = (
        f"{len(TRANSPORT_WORLDS)} worlds x {len(SHARD_KEYS)} fingerprints "
        f"under chaos weather + corrupt-frame rejection + coordinator "
        f"SIGKILL/resume identity"
    )
    return not findings, findings, detail


def run_examples():
    """Every example script end-to-end in quick mode, each its own process."""
    findings = []
    for name in EXAMPLES:
        path = os.path.join(ROOT, "examples", name)
        ok, lane_findings, _ = _subprocess_lane(
            [sys.executable, path], f"examples/{name}",
            extra_env={"REPRO_QUICK": "1"},
        )
        if not ok:
            findings.extend(lane_findings)
    return not findings, findings, f"{len(EXAMPLES)} examples"


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m ci",
        description=sys.modules["ci"].__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="lane", required=True)
    lint_parser = sub.add_parser("lint", help="AST lint over the repository")
    lint_parser.add_argument(
        "--fix", action="store_true",
        help="rewrite tab-indent/trailing-whitespace/final-newline findings",
    )
    sub.add_parser("docs", help="docs/README cross-reference check")
    sub.add_parser("determinism", help="seeded double-run equality gate")
    test_parser = sub.add_parser("test", help="tier-1 pytest lane")
    test_parser.add_argument(
        "--full", action="store_true", help="include tests marked slow",
    )
    sub.add_parser("examples", help="run every example in quick mode")
    sub.add_parser("bench", help="regenerate the benchmark figures")
    sub.add_parser("chaos", help="fault-injection scenarios + invariants")
    sub.add_parser(
        "overload",
        help="overload/brownout scenarios double-run + the CLI demo",
    )
    perf_parser = sub.add_parser(
        "perf", help="benchmark regression check + fingerprint guard",
    )
    perf_parser.add_argument(
        "--trend", action="store_true",
        help="nightly mode: tighten the threshold to "
             f"{TREND_THRESHOLD}x and append a summary line to "
             "results/BENCH_history.jsonl",
    )
    sub.add_parser(
        "telemetry",
        help="trace-fingerprint double-run + telemetry-neutrality gate",
    )
    sub.add_parser(
        "restore",
        help="SIGKILL/resume fingerprint identity + corrupt-file rejection",
    )
    sub.add_parser(
        "shard",
        help="shard-count invariance + pool-worker-kill recovery",
    )
    sub.add_parser(
        "transport",
        help="lossy-transport fingerprint invariance + coordinator "
             "SIGKILL/resume identity + corrupt-frame rejection",
    )
    all_parser = sub.add_parser(
        "all", help="the merge gate: lint + docs + tests + examples "
                    "+ chaos + overload + telemetry + restore + shard "
                    "+ transport + perf + determinism",
    )
    all_parser.add_argument(
        "--fast", action="store_true",
        help="skip slow tests and the examples lane",
    )
    args = parser.parse_args(argv)

    reporter = Reporter()
    if args.lane == "lint":
        reporter.run("lint", lambda: run_lint_lane(fix=args.fix))
    elif args.lane == "docs":
        reporter.run("docs", run_docs_lane)
    elif args.lane == "determinism":
        reporter.run("determinism", run_determinism_lane)
    elif args.lane == "test":
        reporter.run("test", lambda: run_tests(full=args.full))
    elif args.lane == "examples":
        reporter.run("examples", run_examples)
    elif args.lane == "bench":
        reporter.run("bench", run_bench)
    elif args.lane == "chaos":
        reporter.run("chaos", run_chaos)
    elif args.lane == "overload":
        reporter.run("overload", run_overload)
    elif args.lane == "perf":
        reporter.run("perf", lambda: run_perf_lane(trend=args.trend))
    elif args.lane == "telemetry":
        reporter.run("telemetry", run_telemetry)
    elif args.lane == "restore":
        reporter.run("restore", run_restore)
    elif args.lane == "shard":
        reporter.run("shard", run_shard)
    elif args.lane == "transport":
        reporter.run("transport", run_transport)
    elif args.lane == "all":
        reporter.run("lint", run_lint_lane)
        reporter.run("docs", run_docs_lane)
        reporter.run("test", lambda: run_tests(full=not args.fast))
        if not args.fast:
            reporter.run("examples", run_examples)
            reporter.run("chaos", run_chaos)
            reporter.run("overload", run_overload)
            reporter.run("telemetry", run_telemetry)
            reporter.run("restore", run_restore)
            reporter.run("shard", run_shard)
            reporter.run("transport", run_transport)
            reporter.run("perf", run_perf_lane)
        reporter.run("determinism", run_determinism_lane)

    print(reporter.summary())
    return 0 if reporter.ok else 1


def run_lint_lane(fix: bool = False):
    from ci.lint import run_lint

    return run_lint(ROOT, fix=fix)


def run_docs_lane():
    sys.path.insert(0, os.path.join(ROOT, "src"))
    from ci.docscheck import run_docscheck

    return run_docscheck(ROOT)


def run_determinism_lane():
    sys.path.insert(0, os.path.join(ROOT, "src"))
    from ci.determinism import run_determinism

    return run_determinism(ROOT)
