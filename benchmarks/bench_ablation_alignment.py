"""Ablation: cross-correlation alignment before recalibration.

The Wattsup-style wall meter delivers readings ~1.2 s late.  Recalibrating
against those readings *without* alignment pairs measured power with model
intervals 1.2 s in the future; with a workload whose load pulses at a
period incommensurate with the delay, the mispaired samples systematically
contradict each other and corrupt the refit.

Expected: aligned recalibration beats no recalibration; misaligned
(delay pinned to zero) recalibration is clearly worse than aligned.
"""

from repro.analysis import relative_error, render_table
from repro.core.facility import PowerContainerFacility
from repro.hardware import WOODCREST
from repro.hardware.specs import build_machine
from repro.kernel import Kernel
from repro.requests import RequestSpec
from repro.sim.engine import Simulator
from repro.sim.rng import RngHub
from repro.workloads import StressWorkload
from repro.workloads.base import OpenLoopDriver, meter_setup_for

DURATION = 14.0
#: Meter/trace period: divides the 1.2 s delay exactly (4 samples), so the
#: aligned pairing is clean and the comparison isolates alignment itself.
METER_PERIOD = 0.3
#: Burst period chosen incommensurate with the 1.2 s meter delay so a
#: zero-delay pairing lands mid-anti-phase (1.2 s = 1 1/3 periods).
BURST_PERIOD = 0.9
BURST_REQUESTS = 16


def _run(calibrations, pin_zero_delay: bool):
    spec = WOODCREST
    cal = calibrations["woodcrest"]
    sim = Simulator()
    machine = build_machine(spec, sim)
    kernel = Kernel(machine, sim)
    kwargs = meter_setup_for(spec, cal, machine, sim)
    from repro.hardware.meters import WallMeter
    kwargs["meter"] = WallMeter(machine, sim, period=METER_PERIOD, delay=1.2)
    kwargs["trace_period"] = METER_PERIOD
    facility = PowerContainerFacility(kernel, cal, **kwargs)
    if pin_zero_delay:
        facility.pin_delay(0)
    facility.start_tracing()

    workload = StressWorkload()
    server = workload.build_server(kernel, facility)
    driver = OpenLoopDriver(
        kernel, facility, workload, server,
        load_fraction=0.5, rng=RngHub(2).stream("unused"),
    )
    # Pulsed load: bursts of requests with idle gaps between them.
    t = 0.1
    while t < DURATION:
        for _ in range(BURST_REQUESTS):
            sim.schedule_at(
                t, driver.inject_request,
                RequestSpec("checksum", params={"factor": 1.0}),
            )
        t += BURST_PERIOD
    sim.run_until(DURATION)
    facility.flush()
    machine.checkpoint()
    measured = machine.integrator.active_joules
    return {
        approach: relative_error(
            facility.registry.total_energy(approach), measured
        )
        for approach in ("eq2", "recal")
    }


def test_ablation_alignment(benchmark, calibrations):
    def experiment():
        return {
            "aligned": _run(calibrations, pin_zero_delay=False),
            "misaligned": _run(calibrations, pin_zero_delay=True),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        ["no recalibration", results["aligned"]["eq2"] * 100],
        ["recalibration, aligned", results["aligned"]["recal"] * 100],
        ["recalibration, delay pinned to 0",
         results["misaligned"]["recal"] * 100],
    ]
    print()
    print(render_table(
        ["configuration", "validation error %"], rows,
        title="Ablation: measurement alignment (Woodcrest wall meter, "
              "pulsed Stress)",
        float_format="{:.1f}",
    ))

    aligned = results["aligned"]["recal"]
    misaligned = results["misaligned"]["recal"]
    baseline = results["aligned"]["eq2"]
    assert aligned < baseline, "aligned recalibration must help"
    assert misaligned > aligned, \
        "alignment must beat pairing at the wrong delay"
