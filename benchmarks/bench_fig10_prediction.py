"""Fig. 10: power prediction at new request compositions.

Paper shape: learned per-request energy profiles predict system power under
new compositions (RSA with only the largest key; WeBWorK with only the 10
most popular problem sets) within 11%; the CPU-utilization-proportional
alternative errs up to 19%; the request-rate-proportional alternative errs
up to 56%.
"""

from repro.analysis import predict_at_new_composition, render_table
from repro.hardware import SANDYBRIDGE
from repro.workloads import RsaCryptoWorkload, WeBWorKWorkload

PREDICTORS = (
    "power-containers",
    "cpu-utilization-proportional",
    "request-rate-proportional",
)


def test_fig10_prediction(benchmark, calibrations):
    def experiment():
        cal = calibrations["sandybridge"]
        rsa = predict_at_new_composition(
            RsaCryptoWorkload(),
            RsaCryptoWorkload(mix={"key-large": 1.0}),
            SANDYBRIDGE, cal,
            profiling_load=0.5, new_loads=(0.5, 0.65, 0.8), duration=6.0,
        )
        webwork = predict_at_new_composition(
            WeBWorKWorkload(),
            WeBWorKWorkload(popular_only=True),
            SANDYBRIDGE, cal,
            profiling_load=0.5, new_loads=(0.5, 0.65, 0.8), duration=6.0,
        )
        return {"rsa-crypto": rsa, "webwork": webwork}

    outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    worst = {name: 0.0 for name in PREDICTORS}
    for workload, results in outcomes.items():
        for outcome in results:
            rows.append([
                workload, outcome.load_fraction,
                outcome.measured_active_watts,
                *(outcome.errors[p] * 100 for p in PREDICTORS),
            ])
            for predictor in PREDICTORS:
                worst[predictor] = max(worst[predictor],
                                       outcome.errors[predictor])
    print()
    print(render_table(
        ["workload", "load", "measured W", "containers %", "cpu-util %",
         "rate %"],
        rows, title="Figure 10: prediction at new request compositions",
        float_format="{:.1f}",
    ))
    print()
    print(render_table(
        ["predictor", "worst error %", "paper worst %"],
        [
            ["power containers", worst["power-containers"] * 100, 11],
            ["cpu-utilization-proportional",
             worst["cpu-utilization-proportional"] * 100, 19],
            ["request-rate-proportional",
             worst["request-rate-proportional"] * 100, 56],
        ],
        title="Figure 10 summary",
        float_format="{:.1f}",
    ))

    assert worst["power-containers"] < 0.11  # the paper's bound
    assert worst["power-containers"] < worst["cpu-utilization-proportional"]
    assert (
        worst["cpu-utilization-proportional"]
        < worst["request-rate-proportional"]
    )
    assert worst["request-rate-proportional"] > 0.3
