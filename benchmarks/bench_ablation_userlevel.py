"""Ablation: user-level stage-transfer tracking (the paper's future work).

Section 3.3: OS-only tracking "cannot track user-level request stage
transfers in an event-driven server ... an important limitation", with the
future-work remedy of trapping accesses to critical synchronization data
structures (after Whodunit).  This benchmark serves a mixed
heavy/light-request workload on an event-driven (single-process) server and
compares per-request attribution error with the sync-trap inference off and
on.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import PowerContainerFacility
from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import ContextTag, Kernel, Message
from repro.server.eventdriven import EventDrivenServer
from repro.sim import Simulator

WORK = RateProfile(name="evd-work", ipc=1.2, cache_per_cycle=0.006)
#: Alternating request demands: heavy, light, heavy, ...
DEMANDS = [12e6 if i % 2 == 0 else 3e6 for i in range(30)]


def _run(calibrations, track):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(
        kernel, calibrations["sandybridge"], track_user_level_stages=track,
    )
    server = EventDrivenServer(
        kernel, "evd", WORK, cycles_for=lambda p: p[1], turn_cycles=0.8e6,
    )
    server.client_side.on_message = lambda m: None
    containers = []
    t = 0.0
    for i, demand in enumerate(DEMANDS):
        container = facility.create_request_container(f"req{i}")
        containers.append((container, demand))
        sim.schedule_at(t, server.inject, Message(
            nbytes=64, payload=(i, demand),
            tag=ContextTag(container_id=container.id),
        ))
        t += 2e-3
    sim.run_until(1.0)
    facility.flush()
    errors = [
        abs(c.stats.events.nonhalt_cycles - demand) / demand
        for c, demand in containers
    ]
    return float(np.mean(errors)), float(np.max(errors))


def test_ablation_userlevel(benchmark, calibrations):
    def experiment():
        return {
            "os-only (paper's limitation)": _run(calibrations, track=False),
            "with sync-trap inference": _run(calibrations, track=True),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name, mean * 100, worst * 100]
        for name, (mean, worst) in results.items()
    ]
    print()
    print(render_table(
        ["tracking", "mean attribution error %", "worst %"],
        rows,
        title="Ablation: event-driven server, user-level stage tracking",
        float_format="{:.1f}",
    ))

    tracked_mean, tracked_worst = results["with sync-trap inference"]
    untracked_mean, _w = results["os-only (paper's limitation)"]
    assert tracked_worst < 0.05, "inference recovers per-request work"
    assert untracked_mean > 0.3, \
        "OS-only tracking badly misattributes event-driven work"
