"""Fig. 8: validation error of the three accounting approaches.

For every workload x load x machine, the sum of profiled request energy
(background included) over the run is compared with the measured system
active power.  Paper shape, worst-case error per machine:

    approach #1 (core events only):      29% / 41% / 20%
    approach #2 (+ shared chip power):   18% / 35% / 13%
    approach #3 (+ online recalibration): 8% /  9% /  6%

The reproduction asserts the *ordering* (each technique helps) and that the
recalibrated worst case stays within about 10% on every machine.
"""

from repro.analysis import render_table
from repro.workloads import WORKLOADS

MACHINES = ("woodcrest", "westmere", "sandybridge")
LOADS = (1.0, 0.5)
APPROACHES = ("eq1", "eq2", "recal")
PAPER_WORST = {
    "woodcrest": {"eq1": 0.29, "eq2": 0.18, "recal": 0.08},
    "westmere": {"eq1": 0.41, "eq2": 0.35, "recal": 0.09},
    "sandybridge": {"eq1": 0.20, "eq2": 0.13, "recal": 0.06},
}


def test_fig08_validation(benchmark, validation_cache):
    def experiment():
        errors = {}
        for machine in MACHINES:
            for workload in WORKLOADS:
                for load in LOADS:
                    outcome = validation_cache(workload, machine, load)
                    errors[(machine, workload, load)] = outcome.errors
        return errors

    errors = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    worst = {m: {a: 0.0 for a in APPROACHES} for m in MACHINES}
    for (machine, workload, load), errs in errors.items():
        rows.append([
            machine, workload, "peak" if load == 1.0 else "half",
            *(errs[a] * 100 for a in APPROACHES),
        ])
        for approach in APPROACHES:
            worst[machine][approach] = max(
                worst[machine][approach], errs[approach]
            )
    print()
    print(render_table(
        ["machine", "workload", "load", "eq1 %", "eq2 %", "recal %"],
        rows, title="Figure 8: validation errors", float_format="{:.1f}",
    ))
    summary = [
        [m, *(worst[m][a] * 100 for a in APPROACHES),
         *(PAPER_WORST[m][a] * 100 for a in APPROACHES)]
        for m in MACHINES
    ]
    print()
    print(render_table(
        ["machine", "eq1 worst", "eq2 worst", "recal worst",
         "paper eq1", "paper eq2", "paper recal"],
        summary, title="Figure 8 summary: worst-case validation error (%)",
        float_format="{:.1f}",
    ))

    for machine in MACHINES:
        # Each successive technique improves the worst case.
        assert worst[machine]["recal"] < worst[machine]["eq2"]
        assert worst[machine]["eq2"] <= worst[machine]["eq1"] + 0.02
        # Recalibrated accounting stays within ~10%, as in the paper.
        assert worst[machine]["recal"] < 0.11
    # The un-recalibrated approaches err badly somewhere (hidden power).
    assert max(worst[m]["eq1"] for m in MACHINES) > 0.15
