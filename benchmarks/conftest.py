"""Shared benchmark fixtures: session-cached calibrations and runs.

Figures 5-8 report different views of the same workload runs, so runs are
cached per (workload, machine, load) and reused across benchmark files.
"""

import pytest

from repro.core import calibrate_machine
from repro.hardware import SANDYBRIDGE, WESTMERE, WOODCREST


@pytest.fixture(scope="session")
def calibrations():
    """Offline calibration for all three testbed machines."""
    return {
        spec.name: calibrate_machine(spec, duration=0.2)
        for spec in (WOODCREST, WESTMERE, SANDYBRIDGE)
    }


@pytest.fixture(scope="session")
def conditioning_runs(calibrations):
    """Fig. 11/12 conditioning experiment, shared by both benchmarks."""
    from repro.analysis import run_conditioning_experiment

    cal = calibrations["sandybridge"]
    return {
        conditioned: run_conditioning_experiment(
            SANDYBRIDGE, cal, conditioned=conditioned,
            duration=14.0, virus_start=7.0,
        )
        for conditioned in (False, True)
    }


@pytest.fixture(scope="session")
def distribution_results(calibrations):
    """Fig. 14 / Table 1 policy runs, shared by both benchmarks."""
    from benchmarks.bench_fig14_distribution_energy import POLICIES, _run_policy

    return {
        name: _run_policy(factory(), calibrations)
        for name, factory in POLICIES
    }


@pytest.fixture(scope="session")
def validation_cache(calibrations):
    """Memoized Fig. 5/8 validation runs keyed by (workload, machine, load)."""
    from repro.analysis import validate_workload
    from repro.hardware import spec_by_name
    from repro.workloads import workload_by_name

    cache = {}

    def get(workload_name: str, machine_name: str, load: float):
        key = (workload_name, machine_name, load)
        if key not in cache:
            spec = spec_by_name(machine_name)
            # Wall-metered machines need a longer run for the 1.2 s-delayed
            # meter to feed enough recalibration samples.
            duration = 5.0 if spec.has_package_meter else 12.0
            cache[key] = validate_workload(
                workload_by_name(workload_name),
                spec,
                calibrations[machine_name],
                load_fraction=load,
                duration=duration,
            )
        return cache[key]

    return get
