"""Fig. 9: background processing in the Google App Engine system.

Paper shape: GAE performs substantial processing with no traceable
connection to requests; charged to a special background container, it
accounts for almost one third of total system active power, and the
modelled request+background total matches the measured power.
"""

from repro.analysis import gae_background_split, render_table


def test_fig09_gae_background(benchmark, validation_cache):
    def experiment():
        return {
            load: gae_background_split(
                validation_cache("gae-vosao", "sandybridge", load).run
            )
            for load in (1.0, 0.5)
        }

    splits = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for load, split in splits.items():
        rows.append([
            "peak" if load == 1.0 else "half",
            split.measured_active_watts,
            split.modeled_request_watts,
            split.modeled_background_watts,
            split.background_fraction * 100,
        ])
    print()
    print(render_table(
        ["load", "measured W", "requests W", "background W", "background %"],
        rows, title="Figure 9: GAE background vs request power",
        float_format="{:.1f}",
    ))

    for load, split in splits.items():
        # "Almost one third" of active power is background.
        assert 0.2 < split.background_fraction < 0.45
        # Modelled total accounts for the measured power.
        assert abs(
            split.modeled_total_watts - split.measured_active_watts
        ) / split.measured_active_watts < 0.12
