"""Fig. 6: mean request power distributions (Solr, GAE-Hybrid, half load).

Paper shape: Solr's request power distribution is a fairly tight single
mass; GAE-Hybrid is bimodal, with the power-virus mass clearly above the
Vosao mass.
"""

import numpy as np

from repro.analysis import distribution_histogram, render_table
from repro.analysis.experiments import request_power_samples


def test_fig06_power_distributions(benchmark, validation_cache):
    def experiment():
        solr = validation_cache("solr", "sandybridge", 0.5).run
        hybrid = validation_cache("gae-hybrid", "sandybridge", 0.5).run
        return {
            "solr": request_power_samples(solr),
            "vosao": [
                p for p in (
                    r.mean_power(hybrid.facility.primary)
                    for r in hybrid.driver.results
                    if r.rtype in ("read", "write")
                    and r.container.stats.cpu_seconds > 0
                )
            ],
            "virus": request_power_samples(hybrid, rtype_prefix="virus"),
        }

    samples = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for name, values in samples.items():
        arr = np.asarray(values)
        rows.append([
            name, len(arr), float(arr.mean()),
            float(np.percentile(arr, 10)), float(np.percentile(arr, 90)),
        ])
    print()
    print(render_table(
        ["population", "n", "mean W", "p10 W", "p90 W"], rows,
        title="Figure 6: mean request power distributions (half load)",
    ))

    # Histograms are well-formed probability densities.
    for values in samples.values():
        density, edges = distribution_histogram(values, bins=20)
        assert float((density * np.diff(edges)).sum()) > 0.999

    solr = np.asarray(samples["solr"])
    vosao = np.asarray(samples["vosao"])
    virus = np.asarray(samples["virus"])
    assert len(virus) >= 10
    # The virus mass sits clearly above the Vosao mass.
    assert np.percentile(virus, 25) > np.percentile(vosao, 75)
    # Solr is a tight single mass relative to its mean.
    assert solr.std() / solr.mean() < 0.35
