"""Fig. 5: measured active power of the application workloads.

Paper shape: every workload draws clearly more power at peak than at half
load; Stress (and GAE-Hybrid with its viruses) are the power-hungriest
workloads; Woodcrest draws the most active power per core for the same
work, Westmere the least per core.
"""

from repro.analysis import render_table
from repro.workloads import WORKLOADS

MACHINES = ("woodcrest", "westmere", "sandybridge")
LOADS = (1.0, 0.5)


def test_fig05_workload_power(benchmark, validation_cache):
    def experiment():
        table = {}
        for machine in MACHINES:
            for workload in WORKLOADS:
                for load in LOADS:
                    outcome = validation_cache(workload, machine, load)
                    table[(machine, workload, load)] = (
                        outcome.measured_active_watts
                    )
        return table

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for workload in WORKLOADS:
        for load in LOADS:
            rows.append(
                [workload, "peak" if load == 1.0 else "half"]
                + [table[(m, workload, load)] for m in MACHINES]
            )
    print()
    print(render_table(
        ["workload", "load", *MACHINES], rows,
        title="Figure 5: measured active power (watts)",
        float_format="{:.1f}",
    ))

    for machine in MACHINES:
        for workload in WORKLOADS:
            peak = table[(machine, workload, 1.0)]
            half = table[(machine, workload, 0.5)]
            assert peak > half, f"{workload}@{machine}: peak must exceed half"
        # Stress is the hungriest single-type workload on every machine.
        stress = table[(machine, "stress", 1.0)]
        for other in ("rsa-crypto", "solr", "webwork"):
            assert stress > table[(machine, other, 1.0)]
