"""Ablation: resource contention breaks profile transferability (Fig. 10).

The paper's prediction validation assumes a request type's energy profile
is stable across workload conditions, and explicitly notes the assumption
"does not hold for workloads (like Stress) that exhibit dynamic behaviors
at different resource contention levels on the multicore".

With the optional cache-contention model enabled, this benchmark measures
Stress's per-request energy at low and peak load and shows the
low-load-learned profile mispredicts peak-load energy -- while with
contention disabled (the headline configuration) the profile transfers
cleanly.  Light workloads (Solr) transfer either way.
"""

import numpy as np

from repro.analysis import render_table
from repro.hardware import CacheContentionModel, SANDYBRIDGE
from repro.workloads import SolrWorkload, StressWorkload, run_workload


def _mean_request_energy(workload, calibrations, load, contended, seed=0):
    if contended:
        run = _contended_run(workload, calibrations, load, seed)
    else:
        run = run_workload(
            workload, SANDYBRIDGE, calibrations["sandybridge"],
            load_fraction=load, duration=5.0, warmup=1.0, seed=seed,
        )
    energies = [r.energy(run.facility.primary) for r in run.results()
                if r.container.stats.cpu_seconds > 0]
    return float(np.mean(energies))


def _contended_run(workload, calibrations, load, seed):
    from repro.core.facility import PowerContainerFacility
    from repro.hardware.specs import build_machine
    from repro.kernel import Kernel
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngHub
    from repro.workloads.base import (
        OpenLoopDriver, WorkloadRun, meter_setup_for,
    )

    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    machine.contention = CacheContentionModel()
    kernel = Kernel(machine, sim)
    kwargs = meter_setup_for(SANDYBRIDGE, calibrations["sandybridge"],
                             machine, sim)
    facility = PowerContainerFacility(
        kernel, calibrations["sandybridge"], **kwargs
    )
    facility.start_tracing()
    server = workload.build_server(kernel, facility)
    driver = OpenLoopDriver(kernel, facility, workload, server,
                            load_fraction=load,
                            rng=RngHub(seed).stream("arrivals"))
    driver.start(5.0)
    sim.run_until(1.0)
    machine.checkpoint()
    start = machine.integrator.active_joules
    sim.run_until(5.0)
    facility.flush()
    machine.checkpoint()
    return WorkloadRun(
        workload=workload, machine=machine, kernel=kernel,
        facility=facility, driver=driver, duration=5.0, measure_start=1.0,
        measured_active_joules=machine.integrator.active_joules - start,
    )


def test_ablation_contention(benchmark, calibrations):
    def experiment():
        out = {}
        for contended in (False, True):
            for name, workload_cls in (("stress", StressWorkload),
                                       ("solr", SolrWorkload)):
                low = _mean_request_energy(
                    workload_cls(), calibrations, 0.3, contended)
                peak = _mean_request_energy(
                    workload_cls(), calibrations, 1.0, contended)
                out[(contended, name)] = (low, peak, peak / low - 1)
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        ["off" if not c else "on", name, low, peak, drift * 100]
        for (c, name), (low, peak, drift) in results.items()
    ]
    print()
    print(render_table(
        ["contention", "workload", "E/req low load J", "E/req peak J",
         "profile drift %"],
        rows,
        title="Ablation: contention vs profile transferability",
        float_format="{:.2f}",
    ))

    # Without contention, profiles transfer: |drift| stays small.  (A mild
    # negative drift is expected -- at low load a lone request carries the
    # whole chip-maintenance share, slightly inflating its energy.)
    assert abs(results[(False, "stress")][2]) < 0.15
    assert abs(results[(False, "solr")][2]) < 0.15
    # With contention, the memory-bound Stress profile drifts sharply
    # upward at peak load (the paper's caveat): the gap vs its own
    # uncontended drift exceeds 25 points.
    stress_gap = results[(True, "stress")][2] - results[(False, "stress")][2]
    assert stress_gap > 0.25
    assert results[(True, "stress")][2] > 0.15
    # Light Solr stays stable either way.
    assert abs(results[(True, "solr")][2]) < 0.15
