"""Fig. 1: incremental (per-core) power on SandyBridge and Woodcrest.

Paper shape: on the quad-core SandyBridge, the idle->1-core increment is
substantially larger than the later increments (shared chip maintenance
power turns on once).  On the dual-socket Woodcrest, the first *two*
increments are large -- the OS spreads tasks across chips, so both sockets'
maintenance power is on by two busy cores.
"""

from repro.analysis import incremental_power_curve, render_table
from repro.hardware import SANDYBRIDGE, WOODCREST


def test_fig01_incremental_power(benchmark):
    results = benchmark.pedantic(
        lambda: {
            spec.name: incremental_power_curve(spec, duration=0.25)
            for spec in (SANDYBRIDGE, WOODCREST)
        },
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, increments in results.items():
        for k, watts in enumerate(increments):
            rows.append([name, f"{k}->{k + 1} cores", watts])
    print()
    print(render_table(["machine", "step", "incremental watts"], rows,
                       title="Figure 1: incremental per-core power"))

    sb = results["sandybridge"]
    assert sb[0] > sb[1] * 1.3, "first SandyBridge step must be largest"
    assert abs(sb[1] - sb[3]) / sb[1] < 0.1

    wc = results["woodcrest"]
    assert wc[0] > wc[2] * 1.2 and wc[1] > wc[2] * 1.2, \
        "first two Woodcrest steps activate one socket each"
    assert abs(wc[2] - wc[3]) / wc[2] < 0.1
