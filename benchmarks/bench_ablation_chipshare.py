"""Ablation: Eq. 3 chip-share estimation from stale sibling samples.

Compares per-request accounting accuracy under three chip-share designs:

* ``none``    -- no shared-power attribution (validation approach #1 spirit);
* ``mailbox`` -- the paper's unsynchronized stale-sample estimate (Eq. 3);
* ``oracle``  -- exact instantaneous share (needs global synchronization no
  real OS would pay for).

Expected: mailbox recovers most of the gap between none and oracle -- the
paper's justification for the cheap approximation.
"""

from repro.analysis import relative_error, render_table
from repro.core.facility import ApproachConfig
from repro.core.model import FEATURES_EQ1, FEATURES_FULL
from repro.hardware import SANDYBRIDGE
from repro.workloads import SolrWorkload, run_workload

MODES = ("none", "mailbox", "oracle")


def test_ablation_chipshare(benchmark, calibrations):
    def experiment():
        approaches = [
            ApproachConfig("none", FEATURES_EQ1, chipshare_mode="none"),
            ApproachConfig("mailbox", FEATURES_FULL, chipshare_mode="mailbox"),
            ApproachConfig("oracle", FEATURES_FULL, chipshare_mode="oracle"),
        ]
        errors = {}
        for load in (0.5, 0.25):
            # Low utilization maximizes chip-share mis-attribution: the
            # maintenance power is a large fraction of a lone task's draw.
            run = run_workload(
                SolrWorkload(), SANDYBRIDGE, calibrations["sandybridge"],
                load_fraction=load, duration=4.0, warmup=0.0,
                facility_kwargs={
                    "approaches": approaches, "primary": "mailbox"
                },
                with_meter=False,
            )
            measured = run.measured_active_joules
            errors[load] = {
                mode: relative_error(
                    run.facility.registry.total_energy(mode), measured
                )
                for mode in MODES
            }
        return errors

    errors = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        [load, *(errors[load][m] * 100 for m in MODES)]
        for load in errors
    ]
    print()
    print(render_table(
        ["load", "none %", "mailbox %", "oracle %"], rows,
        title="Ablation: chip-share estimation mode (validation error)",
        float_format="{:.1f}",
    ))

    for load in errors:
        errs = errors[load]
        assert errs["mailbox"] < errs["none"], \
            "Eq. 3 must improve over ignoring shared power"
        # The cheap estimate is close to the synchronized oracle.
        assert errs["mailbox"] < errs["oracle"] + 0.03
