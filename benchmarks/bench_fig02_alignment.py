"""Fig. 2: measurement/model alignment cross-correlation.

Paper shape: the cross-correlation over hypothetical measurement delays
peaks at about 1 ms for the SandyBridge on-chip meter (A) and about 1.2 s
(1200 ms) for the Wattsup meter behind its USB path (B).

Substitution note: the physical Wattsup reports once per second; to resolve
its 1.2 s delay within a short simulation, the experiment samples it at a
50 ms period (upsampled reporting, same coarse+delayed character).
"""

import numpy as np

from repro.analysis import render_table
from repro.core import PowerContainerFacility, estimate_delay
from repro.core.alignment import correlation_curve
from repro.hardware import RateProfile, SANDYBRIDGE, WallMeter, build_machine
from repro.kernel import Compute, Kernel, Sleep
from repro.sim import Simulator

PHASED = RateProfile(name="phased", ipc=1.6, cache_per_cycle=0.012,
                     mem_per_cycle=0.006)


def _phase_program(machine, duration):
    def program():
        elapsed = 0.0
        while elapsed < duration:
            yield Compute(cycles=machine.freq_hz * 0.12, profile=PHASED)
            yield Sleep(0.08)
            elapsed += 0.2
    return program()


def _alignment_run(calibrations, meter_kind: str, true_delay: float,
                   period: float, duration: float):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    cal = calibrations["sandybridge"]
    if meter_kind == "package":
        from repro.hardware import PackageMeter
        meter = PackageMeter(machine, sim, period=period, delay=true_delay)
        idle = cal.package_idle_watts
    else:
        meter = WallMeter(machine, sim, period=period, delay=true_delay)
        idle = cal.idle_watts
    facility = PowerContainerFacility(
        kernel, cal, meter=meter, meter_idle_watts=idle,
        meter_covers_peripherals=(meter_kind == "wall"),
        trace_period=period, recalib_interval=duration * 2,  # manual align
        max_delay_seconds=true_delay * 2.5,
    )
    facility.start_tracing()
    for core in range(2):
        kernel.spawn(_phase_program(machine, duration), f"phase{core}")
    sim.run_until(duration)

    measured = np.array([
        s.watts - idle for s in meter.samples_available(sim.now)
    ])
    _times, modeled = facility.model_trace_series()
    max_delay = int(round(true_delay * 2.5 / period))
    measured_c = measured - measured.mean()
    modeled_c = modeled - modeled.mean()
    curve = correlation_curve(measured_c, modeled_c, max_delay)
    est = estimate_delay(measured, modeled, max_delay)
    return est * period, curve


def test_fig02_alignment(benchmark, calibrations):
    def experiment():
        onchip = _alignment_run(
            calibrations, "package", true_delay=1e-3, period=1e-3, duration=4.0
        )
        wattsup = _alignment_run(
            calibrations, "wall", true_delay=1.2, period=0.05, duration=12.0
        )
        return onchip, wattsup

    (onchip_delay, onchip_curve), (wattsup_delay, wattsup_curve) = \
        benchmark.pedantic(experiment, rounds=1, iterations=1)

    print()
    print(render_table(
        ["meter", "paper delay", "estimated delay"],
        [
            ["SandyBridge on-chip", "~1 ms", f"{onchip_delay * 1e3:.1f} ms"],
            ["Wattsup (USB)", "~1200 ms", f"{wattsup_delay * 1e3:.0f} ms"],
        ],
        title="Figure 2: alignment cross-correlation peaks",
    ))
    assert abs(onchip_delay - 1e-3) <= 1e-3
    assert abs(wattsup_delay - 1.2) <= 0.1
    # The peak genuinely dominates the curve.
    assert onchip_curve.argmax() == round(onchip_delay / 1e-3)
    assert wattsup_curve.argmax() == round(wattsup_delay / 0.05)
