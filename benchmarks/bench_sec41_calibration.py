"""Section 4.1: offline power-model calibration on SandyBridge.

Paper coefficient table (maximum active-power impact, C * Mmax):

    Cidle = 26.1 W; Ccore 33.1 W; Cins 12.4 W; Ccache 13.9 W; Cmem 8.2 W;
    Cchipshare 5.6 W; Cdisk 1.7 W; Cnet 5.8 W.
"""

import pytest

from repro.analysis import render_table
from repro.core import calibrate_machine
from repro.core.model import FEATURES_FULL
from repro.hardware import SANDYBRIDGE

PAPER_TABLE = {
    "mcore": 33.1,
    "mins": 12.4,
    "mcache": 13.9,
    "mmem": 8.2,
    "mchipshare": 5.6,
    "mdisk": 1.7,
    "mnet": 5.8,
}


def test_sec41_calibration(benchmark):
    result = benchmark.pedantic(
        lambda: calibrate_machine(SANDYBRIDGE, duration=0.25),
        rounds=1,
        iterations=1,
    )
    table = result.cmax_table(FEATURES_FULL)
    rows = [["Cidle", 26.1, result.idle_watts]]
    for feature in FEATURES_FULL:
        rows.append([
            f"C{feature[1:]}", PAPER_TABLE.get(feature, float("nan")),
            table[feature],
        ])
    print()
    print(render_table(
        ["coefficient (C*Mmax)", "paper watts", "measured watts"], rows,
        title="Section 4.1: SandyBridge calibration table",
    ))

    assert result.idle_watts == pytest.approx(26.1)
    assert table["mcore"] == pytest.approx(33.1, rel=0.20)
    assert table["mchipshare"] == pytest.approx(5.6, rel=0.50)
    assert table["mcache"] == pytest.approx(13.9, rel=0.35)
    assert table["mmem"] == pytest.approx(8.2, rel=0.35)
    assert table["mdisk"] == pytest.approx(1.7, rel=0.40)
    assert table["mnet"] == pytest.approx(5.8, rel=0.40)
