"""Fig. 13: cross-machine active energy usage ratio (SandyBridge/Woodcrest).

Paper shape: the ratio ranges from 0.22 (RSA-crypto -- SandyBridge is
vastly more efficient for it) up to 0.91 (Stress -- memory-bound work gains
little from the newer machine).  Displacing a Stress request to Woodcrest
is therefore about four times cheaper, energy-wise, than displacing an
RSA-crypto request.
"""

import numpy as np

from repro.analysis import render_table
from repro.hardware import spec_by_name
from repro.workloads import run_workload, workload_by_name

WORKLOAD_NAMES = ("rsa-crypto", "solr", "webwork", "stress", "gae-vosao")
PAPER_RATIOS = {"rsa-crypto": 0.22, "stress": 0.91}


def _mean_request_energy(workload_name, machine_name, calibrations):
    spec = spec_by_name(machine_name)
    duration = 6.0 if spec.has_package_meter else 12.0
    run = run_workload(
        workload_by_name(workload_name), spec, calibrations[machine_name],
        load_fraction=1.0, duration=duration, warmup=duration * 0.3,
    )
    energies = [r.energy(run.facility.primary) for r in run.results()
                if r.container.stats.cpu_seconds > 0]
    return float(np.mean(energies))


def test_fig13_energy_ratio(benchmark, calibrations):
    def experiment():
        ratios = {}
        for name in WORKLOAD_NAMES:
            sb = _mean_request_energy(name, "sandybridge", calibrations)
            wc = _mean_request_energy(name, "woodcrest", calibrations)
            ratios[name] = (sb, wc, sb / wc)
        return ratios

    ratios = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        [name, sb, wc, ratio, PAPER_RATIOS.get(name, "-")]
        for name, (sb, wc, ratio) in ratios.items()
    ]
    print()
    print(render_table(
        ["workload", "SandyBridge J", "Woodcrest J", "ratio", "paper ratio"],
        rows, title="Figure 13: cross-machine active energy ratio",
    ))

    rsa = ratios["rsa-crypto"][2]
    stress = ratios["stress"][2]
    assert rsa < 0.3, "RSA has the strongest SandyBridge affinity"
    assert 0.8 < stress < 1.1, "Stress gains little from SandyBridge"
    # The four-fold displacement-cost difference the paper highlights.
    assert stress / rsa > 3.0
    # All other workloads fall between the extremes.
    for name in ("solr", "webwork", "gae-vosao"):
        assert rsa < ratios[name][2] < stress
