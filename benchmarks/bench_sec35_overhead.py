"""Section 3.5: overhead assessment of the power-container facility.

Paper numbers on the quad-core SandyBridge:

* one container maintenance operation: ~0.95 us (=> ~0.1% overhead at the
  1 ms sampling frequency);
* maintenance-induced events: 2948 cycles, 1656 instructions, 16 FLOPs,
  3 LLC references, no measurable memory transactions;
* ~10 uJ energy per maintenance operation at 1/4 chip share;
* recalibration: ~16 us of linear algebra per refit;
* duty-cycle register read/write: ~265/350 cycles (< 0.2 us at 3 GHz);
* container structure: 784 bytes.

This benchmark measures the *simulated* facility's own figures where they
exist in the reproduction and checks them against the paper's.
"""

from repro.analysis import render_table
from repro.core import PowerContainerFacility
from repro.core.accounting import ObserverEffect
from repro.core.container import CONTAINER_STRUCT_BYTES
from repro.core.recalibration import RECALIBRATION_CPU_SECONDS
from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import Compute, Kernel
from repro.sim import Simulator

SPIN = RateProfile(name="spin", ipc=1.0)


def test_sec35_overhead(benchmark, calibrations):
    observer = ObserverEffect()

    def experiment():
        sim = Simulator()
        machine = build_machine(SANDYBRIDGE, sim)
        kernel = Kernel(machine, sim)
        facility = PowerContainerFacility(kernel, calibrations["sandybridge"])
        container = facility.create_request_container("probe")

        def program():
            yield Compute(cycles=machine.freq_hz * 0.2, profile=SPIN)

        kernel.spawn(program(), "probe", container_id=container.id)
        sim.run_until(0.3)
        facility.flush()
        samples = facility.accountants[0].samples_taken
        # Energy of one maintenance op, charged to ground truth.
        joules = machine.true_model.energy_for_events(
            observer.event_vector(1), machine.freq_hz
        )
        return samples, joules

    samples, op_joules = benchmark.pedantic(experiment, rounds=1, iterations=1)

    op_fraction = observer.op_seconds / 1e-3  # per 1 ms sampling period
    rows = [
        ["maintenance op cost", "0.95 us", f"{observer.op_seconds * 1e6:.2f} us"],
        ["overhead at 1 ms sampling", "~0.1%", f"{op_fraction * 100:.2f}%"],
        ["events: cycles", "2948", f"{observer.cycles:.0f}"],
        ["events: instructions", "1656", f"{observer.instructions:.0f}"],
        ["events: FLOPs", "16", f"{observer.flops:.0f}"],
        ["events: LLC refs", "3", f"{observer.cache_refs:.0f}"],
        ["events: memory transactions", "0", f"{observer.mem_trans:.0f}"],
        ["energy per maintenance op", "~10 uJ", f"{op_joules * 1e6:.1f} uJ"],
        ["recalibration CPU cost", "16 us", f"{RECALIBRATION_CPU_SECONDS * 1e6:.0f} us"],
        ["container structure size", "784 B", f"{CONTAINER_STRUCT_BYTES} B"],
        ["samples in 200 ms busy run", "~200", f"{samples}"],
    ]
    print()
    print(render_table(["quantity", "paper", "measured/modeled"], rows,
                       title="Section 3.5: overhead assessment"))

    assert op_fraction < 0.002  # ~0.1% overhead
    # ~200 ms of busy execution at ~1 ms sampling, plus switch samples.
    assert 180 <= samples <= 230
    # The paper reports ~10 uJ per op (at 1/4 chip share); ours charges the
    # op's core-level energy, same order of magnitude.
    assert 1e-6 < op_joules < 3e-5
