"""Ablation: observer-effect correction (Section 3.5).

Container maintenance operations inject real events (2948 cycles, 1656
instructions, ...) into the counters once per sampling period.  Without
subtracting them, every request's event profile -- and hence its modelled
energy -- is inflated by the instrumentation itself.  The effect is small
per sample (~0.1%) but systematic; this ablation quantifies it on the
attributed cycle counts.
"""

from repro.analysis import render_table
from repro.hardware import SANDYBRIDGE
from repro.workloads import SolrWorkload, run_workload


def _attributed_cycle_inflation(calibrations, subtract: bool) -> float:
    run = run_workload(
        SolrWorkload(), SANDYBRIDGE, calibrations["sandybridge"],
        load_fraction=0.5, duration=3.0, warmup=0.0, seed=5,
        facility_kwargs={"subtract_observer": subtract},
        with_meter=False,
    )
    total_attributed = sum(
        c.stats.events.nonhalt_cycles
        for c in run.facility.registry.all_containers()
    )
    true_work = sum(
        p.cpu_seconds for p in run.kernel.processes.values()
    ) * SANDYBRIDGE.freq_hz
    return total_attributed / true_work - 1.0


def test_ablation_observer(benchmark, calibrations):
    def experiment():
        return {
            "corrected": _attributed_cycle_inflation(calibrations, True),
            "uncorrected": _attributed_cycle_inflation(calibrations, False),
        }

    inflation = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(render_table(
        ["configuration", "attributed-cycle inflation %"],
        [
            ["with observer subtraction", inflation["corrected"] * 100],
            ["without subtraction", inflation["uncorrected"] * 100],
        ],
        title="Ablation: observer-effect correction",
        float_format="{:.4f}",
    ))

    assert abs(inflation["corrected"]) < 5e-4, \
        "corrected attribution matches true work"
    assert inflation["uncorrected"] > inflation["corrected"], \
        "uncorrected attribution inflated by maintenance events"
    # The raw perturbation is around the paper's ~0.1% scale.
    assert 2e-4 < inflation["uncorrected"] < 5e-3
