"""Fig. 7: request energy usage distributions (Solr, GAE-Hybrid, half load).

Paper shape: request energy varies widely for both workloads, but for
different reasons -- Solr's spread comes from execution-time variation
(query work is long-tailed), GAE-Hybrid's mainly from power variation
(viruses vs. Vosao).
"""

import numpy as np

from repro.analysis import render_table
from repro.analysis.experiments import request_energy_samples


def test_fig07_energy_distributions(benchmark, validation_cache):
    def experiment():
        solr = validation_cache("solr", "sandybridge", 0.5).run
        hybrid = validation_cache("gae-hybrid", "sandybridge", 0.5).run
        return {
            "solr_energy": request_energy_samples(solr),
            "solr_cpu": [
                r.container.stats.cpu_seconds for r in solr.driver.results
                if r.container.stats.cpu_seconds > 0
            ],
            "vosao_energy": [
                r.energy(hybrid.facility.primary)
                for r in hybrid.driver.results
                if r.rtype in ("read", "write")
                and r.container.stats.cpu_seconds > 0
            ],
            "virus_energy": request_energy_samples(hybrid, "virus"),
        }

    samples = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for name in ("solr_energy", "vosao_energy", "virus_energy"):
        arr = np.asarray(samples[name])
        rows.append([name, len(arr), float(arr.mean()),
                     float(np.percentile(arr, 10)),
                     float(np.percentile(arr, 90))])
    print()
    print(render_table(
        ["population", "n", "mean J", "p10 J", "p90 J"], rows,
        title="Figure 7: request energy distributions (half load)",
        float_format="{:.3f}",
    ))

    solr_energy = np.asarray(samples["solr_energy"])
    solr_cpu = np.asarray(samples["solr_cpu"])
    # Solr's energy spread is driven by execution-time spread: strong
    # correlation between a request's CPU time and its energy.
    corr = np.corrcoef(solr_cpu, solr_energy)[0, 1]
    assert corr > 0.95
    assert solr_energy.std() / solr_energy.mean() > 0.4  # wide spread

    virus = np.asarray(samples["virus_energy"])
    vosao = np.asarray(samples["vosao_energy"])
    # GAE-Hybrid: viruses burn far more energy per request (longer AND
    # more power-hungry).
    assert virus.mean() > 5 * vosao.mean()
