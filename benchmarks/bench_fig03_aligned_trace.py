"""Fig. 3: aligned measurement/model power traces.

Paper shape: after shifting the on-chip meter samples by the estimated
delay, the measured trace follows the modelled trace's fluctuations through
the workload's phases.  We quantify "follows" as a high Pearson correlation
between the aligned series (and a much lower one without alignment at a
wrong hypothetical delay).
"""

import numpy as np

from repro.analysis import render_table
from repro.core import PowerContainerFacility, align_series, estimate_delay
from repro.hardware import PackageMeter, RateProfile, SANDYBRIDGE, build_machine
from repro.kernel import Compute, Kernel, Sleep
from repro.sim import Simulator

PHASED = RateProfile(name="phased3", ipc=1.8, cache_per_cycle=0.01,
                     mem_per_cycle=0.005)


def test_fig03_aligned_trace(benchmark, calibrations):
    def experiment():
        sim = Simulator()
        machine = build_machine(SANDYBRIDGE, sim)
        kernel = Kernel(machine, sim)
        cal = calibrations["sandybridge"]
        meter = PackageMeter(machine, sim, period=1e-3, delay=1e-3)
        facility = PowerContainerFacility(
            kernel, cal, meter=meter, meter_idle_watts=cal.package_idle_watts,
            trace_period=1e-3, recalib_interval=100.0,
            max_delay_seconds=5e-3,
        )
        facility.start_tracing()

        def phases():
            # Paper Fig. 3 shows ~600 ms with several distinct power phases.
            for burst, gap in ((0.06, 0.04), (0.12, 0.02), (0.03, 0.05)):
                for _ in range(4):
                    yield Compute(cycles=machine.freq_hz * burst, profile=PHASED)
                    yield Sleep(gap)

        kernel.spawn(phases(), "phases")
        kernel.spawn(phases(), "phases2")
        sim.run_until(1.5)

        measured = np.array([
            s.watts - cal.package_idle_watts
            for s in meter.samples_available(sim.now)
        ])
        _t, modeled = facility.model_trace_series()
        delay = estimate_delay(measured, modeled, 5)
        aligned_m, aligned_model = align_series(measured, modeled, delay)
        good = float(np.corrcoef(aligned_m, aligned_model)[0, 1])
        bad_m, bad_model = align_series(measured, modeled, delay + 4)
        bad = float(np.corrcoef(bad_m, bad_model)[0, 1])
        return delay, good, bad

    delay, good, bad = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(render_table(
        ["quantity", "value"],
        [
            ["estimated delay (samples)", delay],
            ["correlation, aligned", good],
            ["correlation, misaligned (+4 ms)", bad],
        ],
        title="Figure 3: aligned measured/model traces",
        float_format="{:.3f}",
    ))
    assert good > 0.95, "aligned traces must track each other"
    assert good > bad + 0.05
