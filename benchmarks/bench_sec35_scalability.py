"""Section 3.5: scalability of the container facility.

The paper argues the facility scales because (a) sampling cost is per-core,
not per-request -- requests that are not running consume space only -- and
(b) an active container costs 784 bytes, so "thousands of active power
containers" do not threaten server scalability.

This benchmark serves the same total work with 10x more (10x smaller)
requests and verifies the number of maintenance operations stays in the
same band (sampling is per-core-millisecond, not per-request), then checks
the modeled space cost of thousands of containers.
"""

from repro.analysis import render_table
from repro.core.container import CONTAINER_STRUCT_BYTES
from repro.hardware import SANDYBRIDGE
from repro.workloads import SolrWorkload, run_workload


def _total_samples(run):
    return sum(a.samples_taken for a in run.facility.accountants.values())


def test_sec35_scalability(benchmark, calibrations):
    def experiment():
        runs = {}
        for label, n_workers, scale in (("coarse", 16, 1.0),
                                        ("fine", 64, 0.1)):
            workload = SolrWorkload(n_workers=n_workers)
            # Shrink per-request work 10x; the driver compensates with 10x
            # the arrival rate, so total served work is identical.
            if scale != 1.0:
                import repro.workloads.solr as solr_module
                workload = SolrWorkload(n_workers=n_workers)
                original_demand = workload.demand_cycles

                def scaled_demand(work_factor, arch, _orig=original_demand):
                    return _orig(work_factor, arch) * scale

                workload.demand_cycles = scaled_demand
                original_mean = workload.mean_demand_seconds

                def scaled_mean(arch, _orig=original_mean):
                    return _orig(arch) * scale

                workload.mean_demand_seconds = scaled_mean
            run = run_workload(
                workload, SANDYBRIDGE, calibrations["sandybridge"],
                load_fraction=0.6, duration=3.0, warmup=0.0,
                with_meter=False,
            )
            runs[label] = run
        return runs

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    coarse, fine = runs["coarse"], runs["fine"]
    rows = []
    for label, run in runs.items():
        containers = len(run.facility.registry)
        rows.append([
            label,
            run.driver.completed,
            _total_samples(run),
            containers,
            containers * CONTAINER_STRUCT_BYTES / 1024,
        ])
    print()
    print(render_table(
        ["granularity", "requests", "maintenance ops", "containers",
         "space KiB"],
        rows, title="Section 3.5: scalability with request granularity",
        float_format="{:.1f}",
    ))

    # ~10x more requests served...
    assert fine.driver.completed > coarse.driver.completed * 5
    # ...but maintenance ops grow far slower: sampling is per-core-period
    # plus two context-switch samples per scheduled request, not
    # per-request-period.
    ops_ratio = _total_samples(fine) / _total_samples(coarse)
    requests_ratio = fine.driver.completed / coarse.driver.completed
    assert ops_ratio < requests_ratio * 0.6
    # Thousands of containers cost a few MB at 784 B each.
    assert len(fine.facility.registry) * CONTAINER_STRUCT_BYTES < 8e6
