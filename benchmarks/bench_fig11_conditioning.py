"""Fig. 11: fair power conditioning of GAE with power viruses.

Paper shape: power viruses introduced mid-run cause substantial power
spikes in the original system (A); with container-based conditioning the
power stays at or near the target despite the viruses (B).  The paper caps
at 40 W on its coefficient scale; our calibrated GAE-Vosao peak sits
slightly higher, so the equivalent target is 52 W (13 W per busy core).
"""

from repro.analysis import render_table

DURATION = 14.0
VIRUS_START = 7.0


def test_fig11_conditioning(benchmark, conditioning_runs):
    outcomes = benchmark.pedantic(
        lambda: conditioning_runs, rounds=1, iterations=1
    )
    original = outcomes[False]
    conditioned = outcomes[True]
    target = conditioned.target_active_watts

    rows = []
    for label, outcome in (("original", original), ("conditioned", conditioned)):
        rows.append([
            label,
            outcome.mean_power(2.0, VIRUS_START),
            outcome.mean_power(VIRUS_START + 0.5, DURATION),
            outcome.peak_power(VIRUS_START + 0.5, DURATION),
        ])
    print()
    print(render_table(
        ["system", "mean W before viruses", "mean W after", "peak W after"],
        rows,
        title=f"Figure 11: power conditioning (target {target:.0f} W active)",
        float_format="{:.1f}",
    ))

    spike = original.peak_power(VIRUS_START + 0.5, DURATION)
    baseline = original.mean_power(2.0, VIRUS_START)
    # (A) viruses produce visible spikes in the original system.
    assert spike > baseline + 5.0
    # (B) conditioning caps the power at/near the target despite viruses.
    capped_peak = conditioned.peak_power(VIRUS_START + 0.5, DURATION)
    assert capped_peak < spike - 3.0
    assert capped_peak < target * 1.07
    assert conditioned.mean_power(VIRUS_START + 0.5, DURATION) < target * 1.02
