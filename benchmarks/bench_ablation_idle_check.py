"""Ablation: the idle-task check in chip-share estimation (Section 3.1).

Sampling interrupts stop on idle cores, so an idle sibling's mailbox holds
its *last busy* utilization sample.  Without the paper's correction --
treating a sibling's rate as zero when the OS is currently scheduling the
idle task there -- a lone running task reads stale busy samples from its
idle siblings and under-claims the chip maintenance power.

The effect needs cores that were recently busy and then idle: an
intermittent workload at low load maximizes it.
"""

from repro.analysis import relative_error, render_table
from repro.core.facility import ApproachConfig
from repro.core.model import FEATURES_FULL
from repro.hardware import SANDYBRIDGE
from repro.workloads import SolrWorkload, run_workload


def test_ablation_idle_check(benchmark, calibrations):
    approaches = [
        ApproachConfig("with-check", FEATURES_FULL, "mailbox",
                       idle_task_check=True),
        ApproachConfig("no-check", FEATURES_FULL, "mailbox",
                       idle_task_check=False),
        ApproachConfig("oracle", FEATURES_FULL, "oracle"),
    ]

    def experiment():
        errors = {}
        for load in (0.25, 0.5):
            run = run_workload(
                SolrWorkload(), SANDYBRIDGE, calibrations["sandybridge"],
                load_fraction=load, duration=4.0, warmup=0.0,
                facility_kwargs={
                    "approaches": approaches, "primary": "with-check"
                },
                with_meter=False,
            )
            measured = run.measured_active_joules
            errors[load] = {
                config.name: relative_error(
                    run.facility.registry.total_energy(config.name), measured
                )
                for config in approaches
            }
        return errors

    errors = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [load, errors[load]["with-check"] * 100,
         errors[load]["no-check"] * 100, errors[load]["oracle"] * 100]
        for load in errors
    ]
    print()
    print(render_table(
        ["load", "with idle check %", "without %", "oracle %"],
        rows, title="Ablation: idle-task check for stale sibling samples",
        float_format="{:.1f}",
    ))

    for load in errors:
        assert errors[load]["with-check"] <= errors[load]["no-check"], \
            "the idle-task check must not hurt"
    # At low load the correction matters visibly.
    low = errors[0.25]
    assert low["no-check"] > low["with-check"] + 0.01
