"""Ablation: recalibration sample weighting (Section 3.2).

The paper weighs offline calibration samples and online measurement samples
equally in the least-square target.  This ablation compares:

* offline-only (no recalibration),
* the paper's equal weighting,
* online-dominant weighting (offline samples down-weighted 10x).

On a hidden-power workload (Stress), any use of online samples must help;
online-dominant fits the *current* workload best but discards the offline
anchor that keeps the model sane for other metric regions -- we also check
it does not catastrophically degrade a concurrently-evaluated normal
workload region by validating coefficients stay physical.
"""

import numpy as np

from repro.analysis import relative_error, render_table
from repro.hardware import SANDYBRIDGE
from repro.workloads import StressWorkload


def _run_with_weights(calibrations, offline_weight: float | None):
    """offline_weight=None disables recalibration entirely."""
    from repro.core.facility import PowerContainerFacility
    from repro.hardware.specs import build_machine
    from repro.kernel import Kernel
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngHub
    from repro.workloads.base import OpenLoopDriver, meter_setup_for

    spec = SANDYBRIDGE
    cal = calibrations["sandybridge"]
    sim = Simulator()
    machine = build_machine(spec, sim)
    kernel = Kernel(machine, sim)
    kwargs = meter_setup_for(spec, cal, machine, sim)
    if offline_weight is None:
        kwargs.pop("meter")
        facility = PowerContainerFacility(kernel, cal)
    else:
        facility = PowerContainerFacility(kernel, cal, **kwargs)
        for recalibrator in facility.recalibrators.values():
            recalibrator.offline_weight = offline_weight
    facility.start_tracing()

    workload = StressWorkload()
    server = workload.build_server(kernel, facility)
    driver = OpenLoopDriver(
        kernel, facility, workload, server,
        load_fraction=0.7, rng=RngHub(3).stream("arrivals"),
    )
    driver.start(5.0)
    sim.run_until(5.0)
    facility.flush()
    machine.checkpoint()
    measured = machine.integrator.active_joules
    error = relative_error(
        facility.registry.total_energy("recal"), measured
    )
    coefficients = facility.models["recal"].coefficients
    return error, coefficients


def test_ablation_recalibration(benchmark, calibrations):
    def experiment():
        return {
            "offline only": _run_with_weights(calibrations, None),
            "equal weighting (paper)": _run_with_weights(calibrations, 1.0),
            "online-dominant (offline x0.1)": _run_with_weights(
                calibrations, 0.1
            ),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[name, error * 100] for name, (error, _) in results.items()]
    print()
    print(render_table(
        ["weighting", "Stress validation error %"], rows,
        title="Ablation: recalibration sample weighting",
        float_format="{:.1f}",
    ))

    offline_err = results["offline only"][0]
    equal_err = results["equal weighting (paper)"][0]
    online_err = results["online-dominant (offline x0.1)"][0]
    assert equal_err < offline_err, "recalibration must help"
    assert online_err < offline_err
    # All fits stay physical (non-negative coefficients).
    for _name, (_err, coefficients) in results.items():
        assert (np.asarray(coefficients) >= 0).all()
