"""Fig. 14: heterogeneity-aware request distribution energy.

A two-machine cluster (SandyBridge + Woodcrest) serves a combined
GAE-Vosao + RSA-crypto workload (about 50/50 by load) under three dispatch
policies.  Paper shape: workload-heterogeneity-aware distribution saves
~30% combined energy vs. simple load balance and ~25% vs. the machine-aware
policy.  (Table 1's response times come from the same runs; see
``bench_table1_response_time.py``.)
"""

from repro.analysis import render_table
from repro.analysis.distribution_experiment import (
    DISTRIBUTION_POLICIES,
    run_distribution_policy,
)

#: Back-compat aliases used by conftest and the CLI.
POLICIES = DISTRIBUTION_POLICIES


def _run_policy(policy, calibrations, seed=7):
    return run_distribution_policy(policy, calibrations, seed=seed)


def test_fig14_distribution_energy(benchmark, distribution_results):
    results = benchmark.pedantic(
        lambda: distribution_results, rounds=1, iterations=1
    )
    rows = [
        [name, r["sb_watts"], r["wc_watts"], r["sb_watts"] + r["wc_watts"]]
        for name, r in results.items()
    ]
    print()
    print(render_table(
        ["policy", "SandyBridge W", "Woodcrest W", "total W"], rows,
        title="Figure 14: active energy usage rate by dispatch policy",
        float_format="{:.1f}",
    ))

    total = {
        name: r["sb_watts"] + r["wc_watts"] for name, r in results.items()
    }
    simple = total["simple load balance"]
    machine = total["machine heterogeneity-aware"]
    workload = total["workload heterogeneity-aware"]
    saving_vs_simple = 1 - workload / simple
    saving_vs_machine = 1 - workload / machine
    print(f"\nworkload-aware saving vs simple: {saving_vs_simple * 100:.1f}% "
          f"(paper ~30%); vs machine-aware: {saving_vs_machine * 100:.1f}% "
          f"(paper ~25%)")

    assert workload < machine < simple
    assert saving_vs_simple > 0.18
    assert saving_vs_machine > 0.10
