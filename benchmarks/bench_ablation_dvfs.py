"""Ablation: per-request duty modulation vs. chip-wide DVFS capping.

The paper argues (Section 3.4) that indiscriminate full-machine throttling
penalizes all requests when a single power virus spikes the draw, and that
container-specific duty-cycle modulation caps power *fairly*.  This
benchmark runs the Fig. 11 scenario under both actuators and compares:

* how well each holds the power target, and
* how the slowdown is distributed between viruses and normal requests.

Expected: both actuators cap the power, but DVFS slows Vosao requests
roughly as much as viruses while duty modulation isolates the penalty.
"""

import numpy as np

from repro.analysis import render_table
from repro.analysis.conditioning_experiment import _run_with_viruses
from repro.core.dvfs import DvfsConditioner
from repro.hardware import SANDYBRIDGE
from repro.workloads.gae import GaeHybridWorkload

DURATION = 12.0
VIRUS_START = 4.0
TARGET = 52.0


def _vosao_latency(outcome):
    pool = [
        r.response_time for r in outcome.run.driver.results
        if r.rtype in ("read", "write") and r.arrival >= VIRUS_START
    ]
    return float(np.mean(pool)) if pool else 0.0


def _service_stretch(results, freq_hz, rtypes):
    """Mean wall-occupancy stretch vs nominal-frequency execution.

    1.0 means requests ran at full speed whenever scheduled; larger values
    mean the actuator slowed their actual execution (queueing excluded).
    """
    stretches = []
    for r in results:
        stats = r.container.stats
        if r.rtype not in rtypes or stats.events.nonhalt_cycles <= 0:
            continue
        nominal = stats.events.nonhalt_cycles / freq_hz
        stretches.append(stats.cpu_seconds / nominal)
    return float(np.mean(stretches)) if stretches else 1.0


def _run_dvfs(calibrations):
    """Rebuild the Fig. 11 scenario with the DVFS governor instead."""
    from repro.core.facility import PowerContainerFacility
    from repro.hardware.specs import build_machine
    from repro.kernel import Kernel
    from repro.requests import RequestSpec
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngHub
    from repro.workloads.base import OpenLoopDriver, meter_setup_for

    cal = calibrations["sandybridge"]
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    kwargs = meter_setup_for(SANDYBRIDGE, cal, machine, sim)
    facility = PowerContainerFacility(kernel, cal, **kwargs)
    facility.attach_conditioner(
        DvfsConditioner(kernel, target_active_watts=TARGET)
    )
    facility.start_tracing()
    workload = GaeHybridWorkload(virus_load_share=1e-6)
    server = workload.build_server(kernel, facility)
    driver = OpenLoopDriver(kernel, facility, workload, server,
                            load_fraction=1.0, rng=RngHub(0).stream("arrivals"))
    driver.start(DURATION)
    rng = RngHub(0).stream("viruses")
    t = VIRUS_START
    while t < DURATION:
        sim.schedule_at(t, driver.inject_request,
                        RequestSpec("virus", params={"jitter": 1.0}))
        t += float(rng.exponential(1.0))
    sim.run_until(DURATION)
    facility.flush()
    machine.checkpoint()
    meter = kwargs["meter"]
    idle = kwargs["meter_idle_watts"]
    after = [s.watts - idle for s in meter.all_samples
             if s.interval_end > VIRUS_START + 0.5]
    vosao_lat = float(np.mean([
        r.response_time for r in driver.results
        if r.rtype in ("read", "write") and r.arrival >= VIRUS_START
    ]))
    return {
        "mean_watts": float(np.mean(after)),
        "peak_watts": float(np.percentile(after, 99)),
        "vosao_latency": vosao_lat,
        "vosao_stretch": _service_stretch(
            driver.results, machine.freq_hz, ("read", "write")
        ),
        "virus_stretch": _service_stretch(
            driver.results, machine.freq_hz, ("virus",)
        ),
    }


def test_ablation_dvfs(benchmark, calibrations):
    def experiment():
        duty = _run_with_viruses(
            GaeHybridWorkload(virus_load_share=1e-6), SANDYBRIDGE,
            calibrations["sandybridge"], conditioned=True, target=TARGET,
            duration=DURATION, virus_start=VIRUS_START, virus_rate_hz=1.0,
            seed=0,
        )
        baseline = _run_with_viruses(
            GaeHybridWorkload(virus_load_share=1e-6), SANDYBRIDGE,
            calibrations["sandybridge"], conditioned=False, target=TARGET,
            duration=DURATION, virus_start=VIRUS_START, virus_rate_hz=1.0,
            seed=0,
        )
        dvfs = _run_dvfs(calibrations)
        return duty, baseline, dvfs

    duty, baseline, dvfs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    freq = SANDYBRIDGE.freq_hz
    duty_vosao_stretch = _service_stretch(
        duty.run.driver.results, freq, ("read", "write")
    )
    duty_virus_stretch = _service_stretch(
        duty.run.driver.results, freq, ("virus",)
    )
    rows = [
        ["uncapped", baseline.peak_power(VIRUS_START + 0.5, DURATION),
         1.0, 1.0],
        ["per-request duty modulation",
         duty.peak_power(VIRUS_START + 0.5, DURATION),
         duty_vosao_stretch, duty_virus_stretch],
        ["chip-wide DVFS", dvfs["peak_watts"],
         dvfs["vosao_stretch"], dvfs["virus_stretch"]],
    ]
    print()
    print(render_table(
        ["actuator", "peak W after viruses", "Vosao exec stretch",
         "virus exec stretch"],
        rows, title=f"Ablation: capping actuator (target {TARGET:.0f} W)",
        float_format="{:.2f}",
    ))

    # Both actuators hold the cap: duty modulation suppresses the spikes;
    # the bang-bang DVFS governor oscillates around the target, so it is
    # judged on its mean.
    uncapped_peak = baseline.peak_power(VIRUS_START + 0.5, DURATION)
    assert duty.peak_power(VIRUS_START + 0.5, DURATION) < uncapped_peak - 3
    assert dvfs["mean_watts"] < TARGET * 1.02
    assert dvfs["peak_watts"] < uncapped_peak
    # Fairness: duty modulation stretches only the viruses; DVFS stretches
    # normal requests too.
    assert duty_vosao_stretch < 1.05
    assert duty_virus_stretch > 1.2
    assert dvfs["vosao_stretch"] > duty_vosao_stretch + 0.05
