"""Section 1 motivation claims, measured on the simulated SandyBridge.

The paper's introduction motivates fine-grained power management with three
measurements on its SandyBridge machine:

1. idle power is only ~5% of the CPU package power at high load
   (excellent processor energy proportionality);
2. counting the whole machine, the idle proportion is ~32%;
3. at the same full CPU utilization, a cache/memory-intensive application
   consumes ~49% more power than a CPU spinning program.

This benchmark reproduces all three measurements through the simulated
meters.
"""

from repro.analysis import render_table
from repro.hardware import PackageMeter, RateProfile, SANDYBRIDGE, WallMeter, build_machine
from repro.kernel import Compute, Kernel
from repro.sim import Simulator

SPIN = RateProfile(name="spin", ipc=1.0)
#: Cache/memory-intensive at full utilization.
MEMHOG = RateProfile(
    name="memhog", ipc=0.9, flops_per_cycle=0.35,
    cache_per_cycle=0.016, mem_per_cycle=0.009, hidden_watts=1.0,
)


def _measure(profile, duration=0.3):
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    package = PackageMeter(machine, sim, period=1e-3, delay=0.0)
    wall = WallMeter(machine, sim, period=0.1, delay=0.0)
    package.start()
    wall.start()
    if profile is not None:
        for i in range(machine.n_cores):

            def spinner(p=profile):
                while True:
                    yield Compute(cycles=machine.freq_hz * 0.05, profile=p)

            kernel.spawn(spinner(), f"w{i}")
    sim.run_until(duration)
    return package.mean_watts(0.05), wall.mean_watts(0.05)


def test_intro_claims(benchmark):
    def experiment():
        return {
            "idle": _measure(None),
            "spin": _measure(SPIN),
            "memhog": _measure(MEMHOG),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    idle_pkg, idle_wall = results["idle"]
    spin_pkg, spin_wall = results["spin"]
    hog_pkg, _hog_wall = results["memhog"]
    # "Observed high load scenario": a fully-utilized server (the spinning
    # full-load case is the moderate reference, as in the paper's server
    # measurements).
    pkg_idle_ratio = idle_pkg / hog_pkg
    wall_idle_ratio = idle_wall / spin_wall
    hog_vs_spin = hog_pkg / spin_pkg - 1

    rows = [
        ["package idle / high-load package", "~5%", pkg_idle_ratio * 100],
        ["machine idle / high-load machine", "~32%", wall_idle_ratio * 100],
        ["memhog vs spin package power", "+49%", hog_vs_spin * 100],
    ]
    print()
    print(render_table(
        ["claim", "paper", "measured %"], rows,
        title="Section 1: motivation measurements",
        float_format="{:.1f}",
    ))

    assert pkg_idle_ratio < 0.08, "package is highly energy-proportional"
    assert 0.28 < wall_idle_ratio < 0.42, "machine idle share ~1/3"
    assert 0.30 < hog_vs_spin < 0.65, \
        "memory-intensive work draws ~half again the spin power"
