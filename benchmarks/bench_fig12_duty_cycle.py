"""Fig. 12: original request power vs. applied duty-cycle throttling.

Paper shape: low-power Vosao requests suffer only minor slowdown (about 2%
average) while power viruses are substantially throttled (about 33% average
slowdown); a few viruses escape throttling because they run while other
cores are idle and so enjoy a larger budget.  Full-machine throttling to
the same cap would have slowed *all* requests by ~13%.
"""

from repro.analysis import render_table


def test_fig12_duty_cycle(benchmark, conditioning_runs):
    conditioned = benchmark.pedantic(
        lambda: conditioning_runs[True], rounds=1, iterations=1
    )

    vosao_duty = conditioned.mean_duty(lambda r: r in ("read", "write"))
    virus_duty = conditioned.mean_duty(lambda r: r == "virus")
    viruses = [s for s in conditioned.scatter if s.rtype == "virus"]
    unthrottled_viruses = [s for s in viruses if s.mean_duty_ratio > 0.95]

    print()
    print(render_table(
        ["population", "mean duty ratio", "mean slowdown %", "paper slowdown"],
        [
            ["Vosao requests", vosao_duty, (1 - vosao_duty) * 100, "~2%"],
            ["power viruses", virus_duty, (1 - virus_duty) * 100, "~33%"],
        ],
        title="Figure 12: per-request duty-cycle throttling",
        float_format="{:.2f}",
    ))
    print(f"viruses not significantly throttled (idle-sibling budget): "
          f"{len(unthrottled_viruses)}/{len(viruses)}")

    assert vosao_duty > 0.95, "normal requests run at almost full speed"
    assert 1 - virus_duty > 0.20, "viruses are substantially throttled"
    assert virus_duty < vosao_duty
    # The scatter spans the paper's qualitative X range: viruses' original
    # (full-speed) power clearly exceeds the Vosao requests'.
    import numpy as np
    virus_power = np.mean([s.original_power_watts for s in viruses])
    vosao_power = np.mean([
        s.original_power_watts for s in conditioned.scatter
        if s.rtype in ("read", "write")
    ])
    assert virus_power > vosao_power + 3.0
