"""Table 1: average request response time under the three dispatch policies.

Paper numbers (GAE-Vosao / RSA-crypto):

    simple load balance:            537 ms / 1,728 ms
    machine heterogeneity-aware:    159 ms /    66 ms
    workload heterogeneity-aware:   131 ms /    50 ms

Shape: the simple balance overloads the slower Woodcrest machine and RSA
suffers most (it is by far the most expensive work there); both
heterogeneity-aware policies keep machines at healthy utilization, with the
workload-aware policy best because RSA rarely lands on Woodcrest at all.
"""

from repro.analysis import render_table

PAPER_MS = {
    "simple load balance": (537, 1728),
    "machine heterogeneity-aware": (159, 66),
    "workload heterogeneity-aware": (131, 50),
}


def test_table1_response_time(benchmark, distribution_results):
    results = benchmark.pedantic(
        lambda: distribution_results, rounds=1, iterations=1
    )
    rows = []
    for name, r in results.items():
        paper_vosao, paper_rsa = PAPER_MS[name]
        rows.append([
            name, r["rt_vosao"] * 1000, r["rt_rsa"] * 1000,
            paper_vosao, paper_rsa,
        ])
    print()
    print(render_table(
        ["policy", "GAE-Vosao ms", "RSA-crypto ms",
         "paper Vosao ms", "paper RSA ms"],
        rows, title="Table 1: average request response time",
        float_format="{:.0f}",
    ))

    simple = results["simple load balance"]
    machine = results["machine heterogeneity-aware"]
    workload = results["workload heterogeneity-aware"]
    # Simple balance suffers badly, worst for RSA on the overloaded machine.
    assert simple["rt_rsa"] > 3 * machine["rt_rsa"]
    assert simple["rt_vosao"] > machine["rt_vosao"]
    # Workload-aware is at least as good as machine-aware for both types.
    assert workload["rt_rsa"] <= machine["rt_rsa"] * 1.1
    assert workload["rt_vosao"] <= machine["rt_vosao"] * 1.1
