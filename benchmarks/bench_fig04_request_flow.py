"""Fig. 4: a captured WeBWorK request execution with per-stage attribution.

The paper's Fig. 4 shows one request flowing through Apache PHP processing,
a MySQL thread (socket), and forked latex/dvipng processes, annotating each
stage with its attributed power and energy (e.g. "Apache httpd 14.5 W,
1.78 J ... latex 14.4 W, 0.53 J ... dvipng 16.3 W, 0.29 J").

This benchmark traces one standard-difficulty request through the modelled
topology and prints the same style of per-stage table.  Shape checks: the
context reaches all four stages; PHP dominates the energy; every stage's
power sits in the plausible per-core band; stage energies sum to the
container total.
"""

import pytest

from repro.analysis import render_table
from repro.core import PowerContainerFacility
from repro.hardware import SANDYBRIDGE, build_machine
from repro.kernel import ContextTag, Kernel, Message
from repro.requests import RequestSpec
from repro.sim import Simulator
from repro.workloads import WeBWorKWorkload


def test_fig04_request_flow(benchmark, calibrations):
    def experiment():
        sim = Simulator()
        machine = build_machine(SANDYBRIDGE, sim)
        kernel = Kernel(machine, sim)
        facility = PowerContainerFacility(kernel, calibrations["sandybridge"])
        workload = WeBWorKWorkload(n_workers=2)
        server = workload.build_server(kernel, facility)
        server.client_side.on_message = lambda message: None
        container = facility.create_request_container(
            "webwork:traced", meta={"rtype": "standard"}
        )
        spec = RequestSpec("standard", params={
            "problem_set": 42, "difficulty": 1.0, "image_cached": False,
        })
        server.inject(Message(
            nbytes=512, payload=(0, spec),
            tag=ContextTag(container_id=container.id),
        ))
        sim.run_until(0.5)
        facility.flush()
        return container

    container = benchmark.pedantic(experiment, rounds=1, iterations=1)
    stats = container.stats

    rows = []
    for stage in sorted(stats.stage_energy_joules,
                        key=stats.stage_energy_joules.get, reverse=True):
        rows.append([
            stage,
            container.stats.stage_mean_power(stage),
            stats.stage_energy_joules[stage],
            stats.stage_cpu_seconds[stage] * 1e3,
        ])
    print()
    print(render_table(
        ["stage", "power W", "energy J", "cpu ms"], rows,
        title="Figure 4: per-stage attribution of one WeBWorK request",
        float_format="{:.2f}",
    ))
    print(f"total: {container.total_energy('recal'):.2f} J over "
          f"{stats.cpu_seconds * 1e3:.1f} ms of CPU time")

    stages = set(stats.stage_energy_joules)
    # Context followed all four stages (worker pool names vary by index).
    assert any(s.startswith("webwork-worker") for s in stages)
    assert any(s.startswith("mysql-thread") for s in stages)
    assert "latex" in stages and "dvipng" in stages
    # PHP (the worker stage) dominates, as in the paper's capture.
    worker_energy = sum(
        e for s, e in stats.stage_energy_joules.items()
        if s.startswith("webwork-worker")
    )
    assert worker_energy > stats.stage_energy_joules["latex"]
    assert stats.stage_energy_joules["latex"] > stats.stage_energy_joules["dvipng"]
    # Per-stage powers are per-core-plausible (paper band: ~14-17 W).
    for stage in stages:
        assert 9.0 < container.stats.stage_mean_power(stage) < 20.0
    # Stage energies decompose the container's CPU energy exactly.
    assert sum(stats.stage_energy_joules.values()) == pytest.approx(
        container.energy("recal"), rel=1e-9
    )
