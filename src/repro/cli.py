"""Command-line experiment runner: ``python -m repro <experiment>``.

Regenerates individual paper tables/figures without going through pytest.
``python -m repro list`` shows every available experiment; each command
prints the same paper-style table its benchmark asserts on.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.analysis import render_table


def _calibrations(machines=("sandybridge", "woodcrest", "westmere"), jobs=None):
    from repro.core import calibrate_machines
    from repro.hardware import spec_by_name

    print("calibrating:", ", ".join(machines), "...", flush=True)
    return calibrate_machines(
        [spec_by_name(name) for name in machines], duration=0.25, jobs=jobs
    )


# ----------------------------------------------------------------------
# Experiment commands
# ----------------------------------------------------------------------
def cmd_fig01(_args) -> None:
    """Regenerate Fig. 1: incremental per-core power."""
    from repro.analysis import incremental_power_curve
    from repro.hardware import SANDYBRIDGE, WOODCREST

    rows = []
    for spec in (SANDYBRIDGE, WOODCREST):
        increments = incremental_power_curve(spec, duration=0.25)
        for k, watts in enumerate(increments):
            rows.append([spec.name, f"{k}->{k + 1} cores", watts])
    print(render_table(["machine", "step", "incremental watts"], rows,
                       title="Figure 1: incremental per-core power"))


def cmd_calibration(_args) -> None:
    """Regenerate the Section 4.1 calibration table."""
    from repro.core import calibrate_machine
    from repro.hardware import SANDYBRIDGE

    result = calibrate_machine(SANDYBRIDGE, duration=0.25)
    rows = [["Cidle", result.idle_watts]]
    for feature, watts in result.cmax_table().items():
        rows.append([f"C{feature[1:]}", watts])
    print(render_table(["coefficient (C*Mmax)", "watts"], rows,
                       title="Section 4.1: SandyBridge calibration"))


def cmd_validate(args) -> None:
    """Regenerate Fig. 8 validation errors for one machine."""
    from repro.analysis import validate_workload
    from repro.hardware import spec_by_name
    from repro.workloads import workload_by_name

    machine = args.machine
    cals = _calibrations((machine,))
    spec = spec_by_name(machine)
    duration = 5.0 if spec.has_package_meter else 12.0
    rows = []
    for name in args.workloads:
        for load in (1.0, 0.5):
            outcome = validate_workload(
                workload_by_name(name), spec, cals[machine],
                load_fraction=load, duration=duration,
            )
            rows.append([
                name, "peak" if load == 1.0 else "half",
                outcome.measured_active_watts,
                *(outcome.errors[a] * 100 for a in ("eq1", "eq2", "recal")),
            ])
    print(render_table(
        ["workload", "load", "measured W", "eq1 %", "eq2 %", "recal %"],
        rows, title=f"Figure 8 (single machine: {machine})",
        float_format="{:.1f}",
    ))


def cmd_conditioning(_args) -> None:
    """Regenerate the Fig. 11/12 conditioning comparison."""
    from repro.analysis import run_conditioning_experiment
    from repro.hardware import SANDYBRIDGE

    cals = _calibrations(("sandybridge",))
    rows = []
    for conditioned in (False, True):
        outcome = run_conditioning_experiment(
            SANDYBRIDGE, cals["sandybridge"], conditioned=conditioned,
            duration=12.0, virus_start=6.0,
        )
        rows.append([
            "conditioned" if conditioned else "original",
            outcome.mean_power(6.5, 12.0),
            outcome.peak_power(6.5, 12.0),
            (1 - outcome.mean_duty(lambda r: r == "virus")) * 100,
            (1 - outcome.mean_duty(lambda r: r != "virus")) * 100,
        ])
    print(render_table(
        ["system", "mean W", "peak W", "virus slowdown %",
         "normal slowdown %"],
        rows, title="Figures 11/12: fair power conditioning",
        float_format="{:.1f}",
    ))


def cmd_ratios(_args) -> None:
    """Regenerate Fig. 13 cross-machine energy ratios."""
    import numpy as np
    from repro.hardware import spec_by_name
    from repro.workloads import run_workload, workload_by_name

    cals = _calibrations(("sandybridge", "woodcrest"))
    rows = []
    for name in ("rsa-crypto", "solr", "webwork", "stress", "gae-vosao"):
        energy = {}
        for machine in ("sandybridge", "woodcrest"):
            spec = spec_by_name(machine)
            duration = 6.0 if spec.has_package_meter else 12.0
            run = run_workload(
                workload_by_name(name), spec, cals[machine],
                load_fraction=1.0, duration=duration, warmup=duration * 0.3,
            )
            energy[machine] = float(np.mean(
                [r.energy(run.facility.primary) for r in run.results()]
            ))
        rows.append([name, energy["sandybridge"], energy["woodcrest"],
                     energy["sandybridge"] / energy["woodcrest"]])
    print(render_table(
        ["workload", "SandyBridge J", "Woodcrest J", "ratio"], rows,
        title="Figure 13: cross-machine energy ratio",
    ))


def cmd_sweep(args) -> None:
    """Run a load sweep of one workload on one machine."""
    from repro.analysis import load_sweep
    from repro.hardware import spec_by_name
    from repro.workloads import workload_by_name

    machine = args.machine
    cals = _calibrations((machine,))
    points = load_sweep(
        workload_by_name(args.workload), spec_by_name(machine),
        cals[machine], loads=(0.25, 0.5, 0.75, 1.0), duration=4.0,
        jobs=args.jobs,
    )
    rows = [
        [p.load_fraction, p.measured_active_watts,
         p.mean_response_time * 1e3, p.p95_response_time * 1e3,
         p.energy_per_request, p.validation_error * 100]
        for p in points
    ]
    print(render_table(
        ["load", "active W", "mean ms", "p95 ms", "J/request", "val err %"],
        rows, title=f"load sweep: {args.workload} on {machine}",
    ))


def cmd_distribution(args) -> None:
    """Regenerate Fig. 14 / Table 1 dispatch comparison."""
    from repro.analysis.distribution_experiment import (
        run_all_distribution_policies,
    )

    cals = _calibrations(("sandybridge", "woodcrest"), jobs=args.jobs)
    rows = []
    for name, result in run_all_distribution_policies(cals, jobs=args.jobs).items():
        rows.append([
            name, result["sb_watts"] + result["wc_watts"],
            result["rt_vosao"] * 1e3, result["rt_rsa"] * 1e3,
        ])
    print(render_table(
        ["policy", "total W", "Vosao ms", "RSA ms"], rows,
        title="Figure 14 / Table 1: request distribution",
        float_format="{:.1f}",
    ))


def cmd_perf(args) -> int:
    """Run the performance suite; write or check ``BENCH_perf.json``."""
    from repro.perf import check_regressions, run_suite, write_bench_json

    results = run_suite()
    rows = []
    for result in results.values():
        throughput = ", ".join(
            f"{key}={value:,.0f}" for key, value in result.throughput.items()
        )
        rows.append([result.name, result.kind, result.seconds, throughput])
    print(render_table(
        ["benchmark", "kind", "seconds", "throughput"], rows,
        title="performance suite", float_format="{:.5f}",
    ))
    if args.check:
        problems = check_regressions(
            results, args.check, threshold=args.threshold
        )
        for problem in problems:
            print(f"REGRESSION: {problem}")
        if not problems:
            print(f"no regressions against {args.check}")
        return 1 if problems else 0
    write_bench_json(results, args.output)
    print(f"wrote {args.output}")
    return 0


def cmd_chaos(args) -> int:
    """Run chaos scenarios: seeded faults + invariant checks (robustness)."""
    from repro.faults import SCENARIOS, run_scenario, scenario_by_name

    if args.all or not args.scenario:
        scenarios = list(SCENARIOS)
    else:
        scenarios = [scenario_by_name(name) for name in args.scenario]
    failures = 0
    rows = []
    for scenario in scenarios:
        report = run_scenario(
            scenario, seed=args.seed, duration_scale=args.duration_scale
        )
        rows.append([
            scenario.name,
            "PASS" if report.passed else "FAIL",
            report.stats.get("completed", 0.0),
            report.stats.get("relative_error", float("nan")) * 100,
            len(report.violations),
        ])
        if args.fingerprints:
            print(report.fingerprint())
            print()
        for violation in report.violations:
            print(f"  {scenario.name}: {violation}")
        failures += 0 if report.passed else 1
    print(render_table(
        ["scenario", "result", "requests", "energy err %", "violations"],
        rows, title=f"chaos scenarios (seed {args.seed})",
        float_format="{:.1f}",
    ))
    return 1 if failures else 0


def cmd_overload(args) -> int:
    """Overload/brownout demo: storm + cap squeeze on a protected cluster."""
    from collections import Counter

    from repro.faults.harness import build_overload_world
    from repro.faults.plan import FaultPlan

    duration = args.duration
    world = build_overload_world(
        args.seed, duration, cap_watts=args.cap_watts
    )
    plan = FaultPlan()
    plan.arrival_storm(0.15 * duration, 0.3 * duration, multiplier=args.storm)
    plan.cap_squeeze(0.55 * duration, 0.25 * duration, fraction=args.squeeze)
    plan.apply(world.simulator, world.targets)
    world.start()
    world.simulator.run_until(duration)

    protector, enforcer = world.protector, world.enforcer
    outcomes = Counter(
        (result.outcome, result.reason) for result in protector.shed_log
    )
    rows = [["completed", "served", float(protector.completed)]]
    rows += [
        [outcome, reason, float(count)]
        for (outcome, reason), count in sorted(outcomes.items())
    ]
    print(render_table(
        ["outcome", "reason", "requests"], rows,
        title=f"admission outcomes (seed {args.seed}, "
              f"storm x{args.storm:g}, squeeze x{args.squeeze:g})",
        float_format="{:.0f}",
    ))
    print(render_table(
        ["time s", "rung", "ladder", "measured W", "cap W"],
        [
            [t.at, float(t.level), t.name, t.measured_watts, t.effective_cap]
            for t in enforcer.transitions
        ],
        title="brownout ladder transitions", float_format="{:.2f}",
    ))
    gap = protector.accounting_gap()
    print(
        f"arrivals {protector.arrivals} = completed {protector.completed} "
        f"+ shed {protector.shed} + rejected {protector.rejected} "
        f"+ pending {protector.pending()}  (gap {gap})"
    )
    print(f"shed-set fingerprint {protector.shed_fingerprint()}")
    if gap != 0:
        print("OVERLOAD ACCOUNTING VIOLATION")
        return 1
    return 0


def _run_sharded_telemetry(args, capacity: int = 65536):
    """Shared ``--shards`` path for trace/metrics: sharded run, mode "on"."""
    from repro.shard.scenario import SCENARIOS, run_scenario

    if args.scenario not in SCENARIOS:
        raise SystemExit(
            f"--shards requires a sharded scenario "
            f"({', '.join(sorted(SCENARIOS))}), got {args.scenario!r}"
        )
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    return run_scenario(
        args.scenario,
        n_shards=args.shards,
        workers=args.workers,
        telemetry="on",
        telemetry_capacity=capacity,
        **overrides,
    )


def cmd_trace(args) -> int:
    """Trace one chaos scenario: request spans + energy timeline export.

    With ``--shards N`` the scenario names a *sharded* scenario instead
    (solr/chaos/flash); per-shard telemetry frames are k-way merged and
    the merged Chrome trace is written (``--duration-scale`` does not
    apply there).
    """
    import os

    from repro.faults import run_scenario, scenario_by_name
    from repro.telemetry import Telemetry

    if args.shards:
        result = _run_sharded_telemetry(args, capacity=args.capacity)
        aggregator = result.observability.aggregator
        out = args.out or os.path.join(
            "results", f"trace-shard-{args.scenario}.json"
        )
        directory = os.path.dirname(out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(out, "w") as handle:
            handle.write(aggregator.to_chrome_json())
        print(aggregator.tracer.timeline(limit=args.limit))
        print(
            f"{aggregator.events_merged} events merged from "
            f"{aggregator.frames_merged} frames across "
            f"{result.config.n_shards} shard(s); merged trace fingerprint "
            f"{aggregator.trace_fingerprint()}"
        )
        print(f"wrote merged Chrome trace_event JSON to {out}")
        return 0
    scenario = scenario_by_name(args.scenario)
    telemetry = Telemetry(capacity=args.capacity)
    report = run_scenario(
        scenario, seed=args.seed, duration_scale=args.duration_scale,
        telemetry=telemetry,
    )
    out = args.out or os.path.join("results", f"trace-{scenario.name}.json")
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out, "w") as handle:
        handle.write(telemetry.tracer.to_chrome_json())
    tracer = telemetry.tracer
    print(tracer.timeline(limit=args.limit))
    print(
        f"{len(tracer.events)} events ({tracer.dropped_events} dropped); "
        f"trace fingerprint {telemetry.trace_fingerprint()}"
    )
    print(f"wrote Chrome trace_event JSON to {out}")
    return 0 if report.passed else 1


def cmd_metrics(args) -> int:
    """Run one chaos scenario and dump the unified metrics exposition.

    With ``--shards N`` the scenario names a *sharded* scenario; the
    exposition renders the coordinator's merged registry (every shard's
    facility metrics plus the ``transport_*`` health gauges).
    """
    import os

    from repro.faults import run_scenario, scenario_by_name
    from repro.telemetry import Telemetry

    if args.shards:
        result = _run_sharded_telemetry(args)
        registry = result.observability.aggregator.registry
        text = registry.exposition()
        out = args.out or os.path.join(
            "results", f"metrics-shard-{args.scenario}.txt"
        )
        directory = os.path.dirname(out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(out, "w") as handle:
            handle.write(text)
        print(text, end="")
        print(f"wrote {len(registry)} merged metrics to {out}")
        return 0
    scenario = scenario_by_name(args.scenario)
    telemetry = Telemetry()
    report = run_scenario(
        scenario, seed=args.seed, duration_scale=args.duration_scale,
        telemetry=telemetry,
    )
    text = telemetry.registry.exposition()
    out = args.out or os.path.join("results", f"metrics-{scenario.name}.txt")
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out, "w") as handle:
        handle.write(text)
    print(text, end="")
    print(f"wrote {len(telemetry.registry)} metrics to {out}")
    return 0 if report.passed else 1


def cmd_run_ckpt(args) -> int:
    """Run a checkpointed world (Solr macro or chaos scenario) to the end.

    Prints one JSON line of comparison fingerprints.  With
    ``--kill-after-checkpoint K`` the process SIGKILLs itself right after
    checkpoint ``K`` is durably on disk -- the crash half of the restore
    lane's crash/resume pair.
    """
    import json
    import os
    import signal

    from repro.checkpoint import RunConfig, run_checkpointed

    config = RunConfig(
        kind=args.kind,
        seed=args.seed,
        duration=args.duration,
        warmup=args.warmup,
        load_fraction=args.load_fraction,
        scenario=args.scenario,
        duration_scale=args.duration_scale,
        checkpoint_period=args.period,
    )
    on_checkpoint = None
    if args.kill_after_checkpoint is not None:
        if args.dir is None:
            raise SystemExit("--kill-after-checkpoint requires --dir")

        def on_checkpoint(index: int) -> None:
            if index >= args.kill_after_checkpoint:
                sys.stdout.flush()
                os.kill(os.getpid(), signal.SIGKILL)

    fingerprints = run_checkpointed(
        config, directory=args.dir, on_checkpoint=on_checkpoint
    )
    print(json.dumps(fingerprints, sort_keys=True))
    return 0


def cmd_resume(args) -> int:
    """Resume the newest checkpoint in ``--dir`` and run to the end.

    Rebuilds the world from the checkpoint's persisted config, replays to
    the checkpointed safe-point, verifies the replayed state bit-for-bit,
    restores, finishes the run, and prints the same JSON fingerprint line
    ``run-ckpt`` prints -- identical bytes if the resume is exact.
    """
    import json

    from repro.checkpoint import resume_checkpointed

    fingerprints = resume_checkpointed(args.dir)
    print(json.dumps(fingerprints, sort_keys=True))
    return 0


def cmd_shard(args) -> int:
    """Run one sharded-cluster scenario and print its fingerprints.

    The four stream fingerprints (``report``, ``shed``, ``batch``,
    ``energy``) are bit-identical for any ``--shards``/``--workers``
    combination, under any ``--transport`` fault preset, and across a
    coordinator crash + ``--resume`` -- the invariances the CI shard and
    transport lanes pin down.
    """
    import json
    import time

    from repro.shard import (
        ShardCheckpointPolicy,
        resume_sharded,
        run_sharded,
    )
    from repro.shard.scenario import SCENARIOS, transport_preset

    plan = transport_preset(args.transport)
    checkpoint = None
    if args.ckpt_dir is not None:
        checkpoint = ShardCheckpointPolicy(
            directory=args.ckpt_dir,
            every=args.ckpt_every,
            kill_after=args.kill_after_checkpoint,
        )
    pool_hook = None
    if args.kill_worker_at is not None:
        killed = {"done": False}

        def pool_hook(pool, epoch_index):
            if (
                epoch_index == args.kill_worker_at
                and pool.parallel
                and not killed["done"]
            ):
                pool.kill_worker(0)
                killed["done"] = True

    started = time.perf_counter()
    if args.resume:
        if args.ckpt_dir is None:
            raise SystemExit("--resume requires --ckpt-dir")
        result = resume_sharded(
            args.ckpt_dir,
            pool_hook=pool_hook,
            transport_plan=plan,
            transport_seed=args.transport_seed,
        )
        config = result.config
    else:
        try:
            builder = SCENARIOS[args.scenario]
        except KeyError:
            raise SystemExit(
                f"unknown scenario {args.scenario!r}; "
                f"known: {', '.join(sorted(SCENARIOS))}"
            )
        overrides = {}
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.machines is not None:
            overrides["n_machines"] = args.machines
        if args.duration is not None:
            overrides["duration"] = args.duration
        config = builder(
            n_shards=args.shards, workers=args.workers, **overrides
        )
        result = run_sharded(
            config,
            pool_hook=pool_hook,
            transport_plan=plan,
            transport_seed=args.transport_seed,
            checkpoint=checkpoint,
        )
    wall = time.perf_counter() - started
    rows = [
        ["machines", str(config.n_machines)],
        ["shards", str(config.n_shards)],
        ["workers", str(config.workers)],
        ["requests", str(result.n_requests)],
        ["completed", str(result.completed)],
        ["shed", str(result.shed)],
        ["failovers", str(result.failovers)],
        ["late replies", str(result.late_replies)],
        ["epochs", str(result.epochs)],
        ["worker restarts", str(result.worker_restarts)],
        ["mean response (ms)",
         f"{result.mean_response_time() * 1e3:.3f}"],
        ["attributed energy (J)", f"{result.total_energy_joules:.3f}"],
        ["wall time (s)", f"{wall:.2f}"],
    ]
    if plan is not None:
        moved = sum(
            value for key, value in result.transport_stats.items()
            if key.endswith(("dropped", "duplicated", "reordered",
                             "delayed", "corrupted"))
        )
        rows.append(["transport faults injected", str(moved)])
    print(render_table(["metric", "value"], rows,
                       title=f"sharded run: {args.scenario}"))
    print(json.dumps(dict(result.fingerprints, resumed=result.resumed),
                     sort_keys=True))
    return 0


def cmd_serve(args) -> int:
    """One-shot energy service: sharded run -> store -> dashboard/query.

    The SmartWatts-style central store ingests the merged completion
    stream (plus telemetry frames in mode "on") and either exports a
    self-contained dashboard JSON + CSV (default) or answers one
    deterministic ``--query``.  Mode defaults to "store" for flash (zero
    worker-side cost at 1,000+ machines) and "on" otherwise.
    """
    import json
    import os

    from repro.shard.scenario import SCENARIOS, run_scenario

    if args.scenario not in SCENARIOS:
        raise SystemExit(
            f"unknown scenario {args.scenario!r}; "
            f"known: {', '.join(sorted(SCENARIOS))}"
        )
    mode = args.telemetry
    if mode is None:
        mode = "store" if args.scenario == "flash" else "on"
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.machines is not None:
        overrides["n_machines"] = args.machines
    if args.duration is not None:
        overrides["duration"] = args.duration
    result = run_scenario(
        args.scenario,
        n_shards=args.shards,
        workers=args.workers,
        telemetry=mode,
        **overrides,
    )
    observability = result.observability
    store = observability.store
    engine = observability.engine
    if args.query == "top-energy":
        print(render_table(
            ["request", "machine", "rtype", "joules"],
            [[f"r{row['request_id']}", row["machine"], row["rtype"],
              row["joules"]] for row in store.top_energy()],
            title=f"top-{store.top_k} energy consumers: {args.scenario}",
        ))
    elif args.query == "percentiles":
        percentiles = store.joules_percentiles()
        keys = sorted(next(iter(percentiles.values()), {}))
        print(render_table(
            ["rtype", *keys],
            [[rtype, *(values[key] for key in keys)]
             for rtype, values in sorted(percentiles.items())],
            title=f"joules per request: {args.scenario}",
        ))
    elif args.query == "rack-power":
        rows = []
        for rack, points in sorted(store.rack_power_series().items()):
            watts = [value for _start, value in points]
            rows.append([
                f"rack{rack}", len(points),
                sum(watts) / len(watts) if watts else 0.0,
                max(watts) if watts else 0.0,
            ])
        print(render_table(
            ["rack", "windows", "mean W", "peak W"], rows,
            title=f"rack power rollup: {args.scenario} "
                  f"(full series in the dashboard JSON)",
        ))
    elif args.query == "alerts":
        print(render_table(
            ["window", "detector", "severity", "subject", "message"],
            [[alert.window, alert.detector, alert.severity, alert.subject,
              alert.message] for alert in engine.alerts],
            title=f"fired alerts: {args.scenario} "
                  f"(fingerprint {engine.alert_fingerprint()})",
        ))
    else:  # default: the one-shot dashboard report
        meta = {
            "scenario": args.scenario,
            "workload": result.config.workload,
            "machines": result.config.n_machines,
            "shards": result.config.n_shards,
            "seed": result.config.seed,
            "telemetry_mode": mode,
            "run_fingerprint": result.fingerprint(),
        }
        dashboard = observability.dashboard(meta=meta)
        os.makedirs(args.out_dir, exist_ok=True)
        json_path = os.path.join(
            args.out_dir, f"dashboard-{args.scenario}.json"
        )
        with open(json_path, "w") as handle:
            handle.write(json.dumps(dashboard, indent=2, sort_keys=True))
        csv_path = os.path.join(
            args.out_dir, f"dashboard-{args.scenario}.csv"
        )
        store.write_csv(csv_path)
        summary = dashboard["summary"]
        rows = [
            ["requests", str(summary["requests"])],
            ["total energy (J)", f"{summary['total_joules']:.3f}"],
            ["machines", str(summary["machines"])],
            ["racks", str(summary["racks"])],
            ["windows", str(summary["windows"])],
            ["alerts fired", str(len(dashboard["alerts"]))],
            ["store fingerprint", dashboard["store_fingerprint"]],
            ["alert fingerprint", engine.alert_fingerprint()],
        ]
        if observability.trace_fingerprint() is not None:
            rows.append(
                ["merged trace fingerprint",
                 observability.trace_fingerprint()]
            )
        print(render_table(
            ["metric", "value"], rows,
            title=f"energy service: {args.scenario} (mode {mode})",
        ))
        print(f"wrote dashboard JSON to {json_path}")
        print(f"wrote dashboard CSV to {csv_path}")
    return 0


COMMANDS: dict[str, tuple[Callable, str]] = {
    "fig01": (cmd_fig01, "Fig. 1: incremental per-core power"),
    "calibration": (cmd_calibration, "Sec. 4.1: calibration table"),
    "validate": (cmd_validate, "Fig. 8: validation errors on one machine"),
    "conditioning": (cmd_conditioning, "Fig. 11/12: fair power capping"),
    "ratios": (cmd_ratios, "Fig. 13: cross-machine energy ratios"),
    "distribution": (cmd_distribution, "Fig. 14/Table 1: dispatch policies"),
    "sweep": (cmd_sweep, "load sweep of one workload on one machine"),
    "chaos": (cmd_chaos, "chaos scenarios: seeded faults + invariant checks"),
    "overload": (cmd_overload, "overload demo: storm + cap-squeeze brownout"),
    "perf": (cmd_perf, "performance suite: micro/macro benchmarks"),
    "trace": (cmd_trace, "trace a chaos scenario: spans + energy timeline"),
    "metrics": (cmd_metrics, "unified metrics exposition for one scenario"),
    "run-ckpt": (cmd_run_ckpt, "checkpointed run: periodic snapshots + "
                               "fingerprints"),
    "resume": (cmd_resume, "resume the newest checkpoint and run to the end"),
    "shard": (cmd_shard, "sharded cluster run: epoch barriers + power-aware "
                         "placement"),
    "serve": (cmd_serve, "one-shot energy service: dashboard export + "
                         "deterministic --query answers"),
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate Power Containers (ASPLOS'13) experiments.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    for name, (_fn, help_text) in COMMANDS.items():
        cmd_parser = sub.add_parser(name, help=help_text)
        if name == "validate":
            cmd_parser.add_argument(
                "--machine", default="sandybridge",
                choices=("sandybridge", "woodcrest", "westmere"),
            )
            cmd_parser.add_argument(
                "--workloads", nargs="+",
                default=["solr", "stress", "gae-hybrid"],
            )
        elif name == "sweep":
            cmd_parser.add_argument(
                "--machine", default="sandybridge",
                choices=("sandybridge", "woodcrest", "westmere"),
            )
            cmd_parser.add_argument("--workload", default="solr")
            cmd_parser.add_argument(
                "--jobs", type=int, default=None,
                help="worker processes for sweep points (default: all cores)",
            )
        elif name == "distribution":
            cmd_parser.add_argument(
                "--jobs", type=int, default=None,
                help="worker processes for policies (default: all cores)",
            )
        elif name == "perf":
            cmd_parser.add_argument(
                "--output", default="BENCH_perf.json",
                help="where to write results (default: BENCH_perf.json)",
            )
            cmd_parser.add_argument(
                "--check", metavar="BASELINE",
                help="compare against a committed BENCH_perf.json instead "
                     "of writing; non-zero exit on regression",
            )
            cmd_parser.add_argument(
                "--threshold", type=float, default=3.0,
                help="allowed slowdown multiple vs the committed baseline",
            )
        elif name == "chaos":
            cmd_parser.add_argument(
                "--all", action="store_true",
                help="run every scenario (default when none named)",
            )
            cmd_parser.add_argument(
                "--scenario", nargs="+", default=[],
                help="specific scenario names to run",
            )
            cmd_parser.add_argument("--seed", type=int, default=42)
            cmd_parser.add_argument(
                "--duration-scale", type=float, default=1.0,
                help="scale every scenario's duration (and fault windows)",
            )
            cmd_parser.add_argument(
                "--fingerprints", action="store_true",
                help="print each report's canonical fingerprint",
            )
        elif name in ("trace", "metrics"):
            cmd_parser.add_argument(
                "--scenario", default="arrival-storm",
                help="chaos scenario to run under telemetry",
            )
            cmd_parser.add_argument("--seed", type=int, default=42)
            cmd_parser.add_argument(
                "--duration-scale", type=float, default=1.0,
                help="scale the scenario's duration (and fault windows)",
            )
            cmd_parser.add_argument(
                "--out", default=None,
                help="output path (default: results/<cmd>-<scenario>.*)",
            )
            cmd_parser.add_argument(
                "--shards", type=int, default=0,
                help="run a sharded scenario (solr/chaos/flash) instead of "
                     "a chaos world and merge per-shard telemetry",
            )
            cmd_parser.add_argument(
                "--workers", type=int, default=1,
                help="worker processes for the sharded run (with --shards)",
            )
            if name == "trace":
                cmd_parser.add_argument(
                    "--capacity", type=int, default=65536,
                    help="trace ring-buffer capacity in events",
                )
                cmd_parser.add_argument(
                    "--limit", type=int, default=40,
                    help="timeline lines to print (full trace goes to --out)",
                )
        elif name == "run-ckpt":
            cmd_parser.add_argument(
                "--kind", default="solr", choices=("solr", "chaos"),
                help="world to run: the Solr macro or a chaos scenario",
            )
            cmd_parser.add_argument("--seed", type=int, default=7)
            cmd_parser.add_argument(
                "--duration", type=float, default=1.5,
                help="solr run duration in simulated seconds",
            )
            cmd_parser.add_argument(
                "--warmup", type=float, default=0.2,
                help="solr measurement warmup in simulated seconds",
            )
            cmd_parser.add_argument(
                "--load-fraction", type=float, default=0.6,
                help="solr open-loop load fraction",
            )
            cmd_parser.add_argument(
                "--scenario", default="meter-nan-burst",
                help="chaos scenario name (with --kind chaos)",
            )
            cmd_parser.add_argument(
                "--duration-scale", type=float, default=1.0,
                help="chaos duration scale (with --kind chaos)",
            )
            cmd_parser.add_argument(
                "--period", type=float, default=None,
                help="auto-checkpoint period in simulated seconds "
                     "(default: checkpointing disabled)",
            )
            cmd_parser.add_argument(
                "--dir", default=None,
                help="checkpoint directory (required to persist snapshots)",
            )
            cmd_parser.add_argument(
                "--kill-after-checkpoint", type=int, default=None,
                metavar="K",
                help="SIGKILL this process right after checkpoint K is "
                     "durably on disk",
            )
        elif name == "resume":
            cmd_parser.add_argument(
                "--dir", required=True,
                help="checkpoint directory written by run-ckpt",
            )
        elif name == "shard":
            cmd_parser.add_argument(
                "--scenario", default="solr",
                choices=("solr", "chaos", "flash"),
                help="named scenario (flash = ≥1000 machines, diurnal + "
                     "flash crowd)",
            )
            cmd_parser.add_argument(
                "--shards", type=int, default=1,
                help="number of shards the cluster is partitioned into",
            )
            cmd_parser.add_argument(
                "--workers", type=int, default=1,
                help="worker processes executing the shards",
            )
            cmd_parser.add_argument("--seed", type=int, default=None)
            cmd_parser.add_argument(
                "--machines", type=int, default=None,
                help="override the scenario's machine count",
            )
            cmd_parser.add_argument(
                "--duration", type=float, default=None,
                help="override the scenario's arrival window (simulated s)",
            )
            cmd_parser.add_argument(
                "--transport", default="none",
                choices=("none", "lossy", "corrupt", "chaos"),
                help="transport fault preset applied to every "
                     "coordinator<->worker exchange (results must stay "
                     "bit-identical)",
            )
            cmd_parser.add_argument(
                "--transport-seed", type=int, default=None,
                help="seed for the lossy channels (default: the run seed)",
            )
            cmd_parser.add_argument(
                "--ckpt-dir", default=None,
                help="checkpoint coordinator + pool state here at every "
                     "epoch barrier",
            )
            cmd_parser.add_argument(
                "--ckpt-every", type=int, default=1,
                help="checkpoint every N epoch barriers",
            )
            cmd_parser.add_argument(
                "--kill-after-checkpoint", type=int, default=None,
                help="SIGKILL the coordinator right after the checkpoint "
                     "for this epoch is durably written (crash-recovery "
                     "test hook)",
            )
            cmd_parser.add_argument(
                "--kill-worker-at", type=int, default=None,
                help="SIGKILL worker 0 before this epoch (parallel runs "
                     "only; restart-test hook)",
            )
            cmd_parser.add_argument(
                "--resume", action="store_true",
                help="resume the newest checkpoint in --ckpt-dir and run "
                     "to the end",
            )
        elif name == "serve":
            cmd_parser.add_argument(
                "--scenario", default="solr",
                choices=("solr", "chaos", "flash"),
                help="named sharded scenario to serve a report for",
            )
            cmd_parser.add_argument(
                "--shards", type=int, default=2,
                help="number of shards the cluster is partitioned into",
            )
            cmd_parser.add_argument(
                "--workers", type=int, default=1,
                help="worker processes executing the shards",
            )
            cmd_parser.add_argument("--seed", type=int, default=None)
            cmd_parser.add_argument(
                "--machines", type=int, default=None,
                help="override the scenario's machine count",
            )
            cmd_parser.add_argument(
                "--duration", type=float, default=None,
                help="override the scenario's arrival window (simulated s)",
            )
            cmd_parser.add_argument(
                "--telemetry", default=None, choices=("store", "on"),
                help="telemetry mode (default: store for flash, on "
                     "otherwise; store skips worker-side frames)",
            )
            cmd_parser.add_argument(
                "--query", default=None,
                choices=("top-energy", "percentiles", "rack-power",
                         "alerts"),
                help="print one deterministic query instead of exporting "
                     "the dashboard",
            )
            cmd_parser.add_argument(
                "--out-dir", default="results",
                help="directory for dashboard JSON + CSV exports",
            )
        elif name == "overload":
            cmd_parser.add_argument("--seed", type=int, default=42)
            cmd_parser.add_argument(
                "--duration", type=float, default=1.6,
                help="simulated seconds to run",
            )
            cmd_parser.add_argument(
                "--storm", type=float, default=5.0,
                help="arrival-surge multiplier during the storm window",
            )
            cmd_parser.add_argument(
                "--squeeze", type=float, default=0.45,
                help="cap fraction during the squeeze window",
            )
            cmd_parser.add_argument(
                "--cap-watts", type=float, default=95.0,
                help="baseline cluster power cap in watts",
            )
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        rows = [[name, help_text] for name, (_f, help_text) in COMMANDS.items()]
        print(render_table(["experiment", "description"], rows,
                           title="available experiments"))
        return 0
    result = COMMANDS[args.command][0](args)
    return int(result) if result else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
