"""Energy-service store: windowed rollups over the merged shard stream.

The :class:`TelemetryStore` is the SmartWatts-style central half of the
energy service (PAPERS.md): per-machine sensors -- here, the merged
completion stream plus per-shard telemetry frames -- feed one
coordinator-side store that answers deterministic queries and exports a
self-contained dashboard.  Everything is keyed by *window index* (the
epoch-barrier index), never by wall clock, so two identically-seeded runs
produce byte-identical rollups for any shard or worker count.

Rollups kept per window:

* per-rack joules (rendered as watts over the epoch length) -- the rack
  power time series the cap-violation detector consumes;
* shed / deferred / failover / completion counters (the brownout-side
  story at cluster scale);

and across the whole run:

* per-machine and per-request-type joules and request counts;
* a bounded top-k of individual request containers by attributed energy
  (min-heap, ties broken by request id -- deterministic);
* per-request-type energy samples for nearest-rank percentile queries.

Exports: :meth:`TelemetryStore.dashboard` (self-contained JSON dict),
:meth:`TelemetryStore.dashboard_json`, and :meth:`TelemetryStore.csv_rows`
(rack power series + top-k, spreadsheet-friendly).  The store follows the
checkpoint layer's plain-data snapshot protocol so a coordinator resume
continues its rollups bit-identically.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import math


class TelemetryStore:
    """Windowed energy rollups with deterministic queries and exports."""

    def __init__(
        self,
        epoch_seconds: float,
        rack_of: dict[str, int],
        top_k: int = 10,
    ) -> None:
        if epoch_seconds <= 0.0:
            raise ValueError(
                f"epoch_seconds must be positive, got {epoch_seconds!r}"
            )
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k!r}")
        self.epoch_seconds = float(epoch_seconds)
        #: machine name -> rack index (placement geometry, fixed per run).
        self.rack_of = dict(rack_of)
        self.top_k = int(top_k)
        self.requests_seen = 0
        self.total_joules = 0.0
        #: machine -> [requests, joules].
        self._machines: dict[str, list] = {}
        #: rack -> {window: joules}.
        self._rack_windows: dict[int, dict[int, float]] = {}
        #: window -> [shed, deferred, failovers, completed, joules].
        self._windows: dict[int, list] = {}
        #: rtype -> [requests, joules, response_sum].
        self._rtypes: dict[str, list] = {}
        #: rtype -> unsorted energy samples (sorted at query time).
        self._rtype_energies: dict[str, list[float]] = {}
        #: Min-heap of ``(energy, request_id, machine, rtype)`` -- the
        #: bounded top-k; the heap root is the smallest member, so pushing
        #: then popping keeps exactly the k largest (ties on energy break
        #: toward the larger request id, a total order).
        self._topk: list[tuple] = []

    # -- ingest ----------------------------------------------------------
    def ingest_completion(
        self,
        window: int,
        machine: str,
        request_id: int,
        rtype: str,
        energy_joules: float,
        response_time: float,
    ) -> None:
        """Fold one merged completion record into every rollup."""
        self.requests_seen += 1
        self.total_joules += energy_joules
        row = self._machines.setdefault(machine, [0, 0.0])
        row[0] += 1
        row[1] += energy_joules
        rack = self.rack_of.get(machine, -1)
        windows = self._rack_windows.setdefault(rack, {})
        windows[window] = windows.get(window, 0.0) + energy_joules
        rrow = self._rtypes.setdefault(rtype, [0, 0.0, 0.0])
        rrow[0] += 1
        rrow[1] += energy_joules
        rrow[2] += response_time
        self._rtype_energies.setdefault(rtype, []).append(energy_joules)
        heapq.heappush(
            self._topk, (energy_joules, request_id, machine, rtype)
        )
        if len(self._topk) > self.top_k:
            heapq.heappop(self._topk)

    def ingest_window(
        self,
        window: int,
        shed: int = 0,
        deferred: int = 0,
        failovers: int = 0,
        completed: int = 0,
        joules: float = 0.0,
    ) -> None:
        """Record one barrier's cluster-wide deltas."""
        row = self._windows.setdefault(window, [0, 0, 0, 0, 0.0])
        row[0] += shed
        row[1] += deferred
        row[2] += failovers
        row[3] += completed
        row[4] += joules

    # -- queries ---------------------------------------------------------
    def windows(self) -> list[int]:
        """Every window index any rollup has touched, ascending."""
        seen = set(self._windows)
        for windows in self._rack_windows.values():
            seen.update(windows)
        return sorted(seen)

    def rack_watts(self, window: int) -> dict[int, float]:
        """Per-rack mean watts over one window (joules / epoch)."""
        return {
            rack: windows.get(window, 0.0) / self.epoch_seconds
            for rack, windows in sorted(self._rack_windows.items())
        }

    def rack_power_series(self) -> dict[int, list[list[float]]]:
        """``rack -> [[window_start_seconds, watts], ...]`` (all windows)."""
        all_windows = self.windows()
        series: dict[int, list[list[float]]] = {}
        for rack in sorted(self._rack_windows):
            windows = self._rack_windows[rack]
            series[rack] = [
                [window * self.epoch_seconds,
                 windows.get(window, 0.0) / self.epoch_seconds]
                for window in all_windows
            ]
        return series

    def top_energy(self) -> list[dict]:
        """The k most expensive request containers, most expensive first."""
        ranked = sorted(self._topk, reverse=True)
        return [
            {
                "request_id": request_id,
                "machine": machine,
                "rtype": rtype,
                "joules": energy,
            }
            for energy, request_id, machine, rtype in ranked
        ]

    @staticmethod
    def _nearest_rank(samples: list[float], percentile: float) -> float:
        """Nearest-rank percentile over a sorted sample list."""
        if not samples:
            return 0.0
        rank = math.ceil(percentile / 100.0 * len(samples))
        return samples[max(rank, 1) - 1]

    def joules_percentiles(
        self, percentiles: tuple[float, ...] = (50.0, 90.0, 99.0)
    ) -> dict[str, dict[str, float]]:
        """Joules-per-request percentiles per request type plus ``_all``."""
        out: dict[str, dict[str, float]] = {}
        everything: list[float] = []
        for rtype in sorted(self._rtype_energies):
            samples = sorted(self._rtype_energies[rtype])
            everything.extend(samples)
            out[rtype] = {
                f"p{percentile:g}": self._nearest_rank(samples, percentile)
                for percentile in percentiles
            }
        everything.sort()
        out["_all"] = {
            f"p{percentile:g}": self._nearest_rank(everything, percentile)
            for percentile in percentiles
        }
        return out

    def machine_table(self) -> list[list]:
        """``[machine, rack, requests, joules]`` rows, machine-sorted."""
        return [
            [name, self.rack_of.get(name, -1), row[0], row[1]]
            for name, row in sorted(self._machines.items())
        ]

    def rtype_table(self) -> list[list]:
        """``[rtype, requests, joules, mean_response]`` rows, sorted."""
        return [
            [rtype, row[0], row[1], row[2] / row[0] if row[0] else 0.0]
            for rtype, row in sorted(self._rtypes.items())
        ]

    def window_table(self) -> list[list]:
        """``[window, shed, deferred, failovers, completed, joules]``."""
        return [
            [window, *self._windows[window]]
            for window in sorted(self._windows)
        ]

    # -- fingerprints and exports ---------------------------------------
    def _canonical_lines(self) -> list[str]:
        lines = [
            f"requests={self.requests_seen}",
            f"joules={self.total_joules!r}",
        ]
        lines.extend(
            f"machine:{name}={rack}:{count}:{joules!r}"
            for name, rack, count, joules in self.machine_table()
        )
        lines.extend(
            f"rtype:{rtype}={count}:{joules!r}:{mean!r}"
            for rtype, count, joules, mean in self.rtype_table()
        )
        lines.extend(
            f"window:{window}={shed}:{deferred}:{failovers}:"
            f"{completed}:{joules!r}"
            for window, shed, deferred, failovers, completed, joules
            in self.window_table()
        )
        for rack, points in sorted(self.rack_power_series().items()):
            for start, watts in points:
                lines.append(f"rack:{rack}@{start!r}={watts!r}")
        lines.extend(
            f"top:{row['request_id']}={row['machine']}:{row['rtype']}:"
            f"{row['joules']!r}"
            for row in self.top_energy()
        )
        for rtype, values in sorted(self.joules_percentiles().items()):
            for key, value in sorted(values.items()):
                lines.append(f"pct:{rtype}:{key}={value!r}")
        return lines

    def store_fingerprint(self) -> str:
        """sha256[:16] over every query surface's canonical rendering."""
        return hashlib.sha256(
            "\n".join(self._canonical_lines()).encode()
        ).hexdigest()[:16]

    def dashboard(
        self, meta: dict | None = None, alerts: list | None = None
    ) -> dict:
        """Self-contained dashboard document (plain data, JSON-ready)."""
        return {
            "v": 1,
            "meta": dict(meta or {}),
            "summary": {
                "requests": self.requests_seen,
                "total_joules": self.total_joules,
                "machines": len(self._machines),
                "racks": len(self._rack_windows),
                "windows": len(self.windows()),
                "epoch_seconds": self.epoch_seconds,
            },
            "rack_power_series": {
                str(rack): points
                for rack, points in self.rack_power_series().items()
            },
            "top_energy": self.top_energy(),
            "joules_percentiles": self.joules_percentiles(),
            "machines": self.machine_table(),
            "request_types": self.rtype_table(),
            "window_counters": self.window_table(),
            "alerts": [dict(alert) for alert in (alerts or [])],
            "store_fingerprint": self.store_fingerprint(),
        }

    def dashboard_json(
        self,
        meta: dict | None = None,
        alerts: list | None = None,
        indent: int | None = 2,
    ) -> str:
        """:meth:`dashboard` rendered as deterministic (sorted-key) JSON."""
        return json.dumps(
            self.dashboard(meta=meta, alerts=alerts),
            indent=indent,
            sort_keys=True,
        )

    def csv_rows(self) -> list[list]:
        """Flat CSV rows: rack power series then the top-k table."""
        rows: list[list] = [["section", "key", "time_s", "value"]]
        for rack, points in sorted(self.rack_power_series().items()):
            for start, watts in points:
                rows.append(["rack_watts", f"rack{rack}", start, watts])
        for row in self.top_energy():
            rows.append([
                "top_energy",
                f"{row['machine']}/{row['rtype']}/r{row['request_id']}",
                "",
                row["joules"],
            ])
        return rows

    def write_csv(self, path: str) -> None:
        """Write :meth:`csv_rows` to ``path`` (repr floats, stable order)."""
        with open(path, "w") as handle:
            for row in self.csv_rows():
                handle.write(",".join(
                    repr(cell) if isinstance(cell, float) else str(cell)
                    for cell in row
                ) + "\n")

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self) -> dict:
        """Plain-data snapshot of every rollup (checkpoint layer)."""
        return {
            "v": 1,
            "epoch_seconds": self.epoch_seconds,
            "top_k": self.top_k,
            "requests_seen": self.requests_seen,
            "total_joules": self.total_joules,
            "rack_of": dict(sorted(self.rack_of.items())),
            "machines": {
                name: list(row)
                for name, row in sorted(self._machines.items())
            },
            "rack_windows": {
                str(rack): {str(w): j for w, j in sorted(windows.items())}
                for rack, windows in sorted(self._rack_windows.items())
            },
            "windows": {
                str(w): list(row) for w, row in sorted(self._windows.items())
            },
            "rtypes": {
                rtype: list(row)
                for rtype, row in sorted(self._rtypes.items())
            },
            "rtype_energies": {
                rtype: list(values)
                for rtype, values in sorted(self._rtype_energies.items())
            },
            "topk": [list(entry) for entry in sorted(self._topk)],
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a snapshot taken from an identically-configured store."""
        if state.get("v") != 1:
            raise ValueError(
                f"unknown TelemetryStore snapshot version {state.get('v')!r}"
            )
        self.epoch_seconds = float(state["epoch_seconds"])
        self.top_k = int(state["top_k"])
        self.requests_seen = int(state["requests_seen"])
        self.total_joules = float(state["total_joules"])
        self.rack_of = dict(state["rack_of"])
        self._machines = {
            name: list(row) for name, row in state["machines"].items()
        }
        self._rack_windows = {
            int(rack): {int(w): j for w, j in windows.items()}
            for rack, windows in state["rack_windows"].items()
        }
        self._windows = {
            int(w): list(row) for w, row in state["windows"].items()
        }
        self._rtypes = {
            rtype: list(row) for rtype, row in state["rtypes"].items()
        }
        self._rtype_energies = {
            rtype: list(values)
            for rtype, values in state["rtype_energies"].items()
        }
        topk = [tuple(entry) for entry in state["topk"]]
        heapq.heapify(topk)
        self._topk = topk
