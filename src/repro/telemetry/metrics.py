"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` unifies the counters that used to live in four
incompatible ``health_stats()`` dict schemas (facility, dispatcher, overload
protector, power-cap enforcer).  Components mirror their counters into the
registry through ``publish_metrics(registry)``; the registry renders them as
one flat :meth:`MetricsRegistry.snapshot` dict or as Prometheus-style text
exposition (:meth:`MetricsRegistry.exposition`).

Everything is designed for bit-reproducibility:

* values are plain Python floats, mutated only by explicit calls;
* histograms use **fixed bucket edges** chosen at creation time (no
  auto-scaling, so two identically-seeded runs land samples in identical
  buckets);
* snapshots and expositions render in sorted-name order with ``repr``
  floats, so equal registries render byte-identically.

Metric naming convention (documented in ``docs/observability.md``): every
name is ``<component>_<counter>`` in ``snake_case`` -- e.g.
``facility_meter_fallbacks``, ``dispatch_completed``, ``overload_shed``,
``powercap_level``.  Per-machine counters keep the machine name embedded
(``dispatch_sb0_dispatched``) rather than using labels, which keeps the
flat-dict schema the chaos fingerprints already rely on.
"""

from __future__ import annotations

from typing import Optional


class Counter:
    """A monotonically non-decreasing value."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0.0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        self.value += amount


class Histogram:
    """A histogram over fixed, caller-chosen bucket edges.

    ``edges`` are the inclusive upper bounds of the finite buckets, in
    strictly increasing order; one implicit ``+Inf`` bucket catches the
    rest.  Cumulative bucket counts follow the Prometheus convention (each
    bucket counts every observation less than or equal to its edge).
    """

    __slots__ = ("name", "help", "edges", "bucket_counts", "count", "sum")

    def __init__(
        self, name: str, edges: tuple[float, ...], help: str = ""
    ) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.help = help
        self.edges = tuple(float(e) for e in edges)
        #: Per-finite-bucket observation counts (non-cumulative).
        self.bucket_counts = [0] * len(self.edges)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        for i, edge in enumerate(self.edges):
            if value <= edge:
                self.bucket_counts[i] += 1
                return
        # Falls only into the implicit +Inf bucket (tracked via ``count``).

    def cumulative_counts(self) -> list[int]:
        """Cumulative counts per finite edge (Prometheus ``le`` semantics)."""
        total = 0
        out = []
        for n in self.bucket_counts:
            total += n
            out.append(total)
        return out


def _edge_token(edge: float) -> str:
    """A stable, name-safe rendering of one bucket edge."""
    text = repr(edge)
    return text.replace(".", "_").replace("-", "m").replace("+", "")


class MetricsRegistry:
    """Get-or-create registry of named metrics with deterministic export."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, kind, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        metric = kind(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(name, Gauge, help=help)

    def histogram(
        self, name: str, edges: tuple[float, ...], help: str = ""
    ) -> Histogram:
        """Get or create a :class:`Histogram` (edges fixed at creation)."""
        metric = self._get_or_create(name, Histogram, edges=edges, help=help)
        if metric.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} already registered with different edges"
            )
        return metric

    def get(self, name: str) -> Optional[object]:
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Every metric's kind, help, and current value(s)."""
        metrics: dict[str, list] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                metrics[name] = ["counter", metric.help, metric.value]
            elif isinstance(metric, Gauge):
                metrics[name] = ["gauge", metric.help, metric.value]
            else:
                metrics[name] = [
                    "histogram",
                    metric.help,
                    list(metric.edges),
                    list(metric.bucket_counts),
                    metric.count,
                    metric.sum,
                ]
        return {"v": 1, "metrics": metrics}

    def restore_state(self, state: dict) -> None:
        """Recreate every snapshotted metric; registry is rebuilt whole."""
        if state.get("v") != 1:
            raise ValueError(
                f"unknown MetricsRegistry snapshot version {state.get('v')!r}"
            )
        self._metrics = {}
        for name, entry in state["metrics"].items():
            kind = entry[0]
            if kind == "counter":
                metric = self.counter(name, help=entry[1])
                metric.value = entry[2]
            elif kind == "gauge":
                metric = self.gauge(name, help=entry[1])
                metric.value = entry[2]
            elif kind == "histogram":
                metric = self.histogram(
                    name, tuple(entry[2]), help=entry[1]
                )
                metric.bucket_counts = list(entry[3])
                metric.count = entry[4]
                metric.sum = entry[5]
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Flat ``{name: value}`` dict in sorted-name order.

        Histograms expand into ``<name>_count``, ``<name>_sum``, and one
        cumulative ``<name>_bucket_le_<edge>`` entry per finite edge -- the
        same flat-float-dict shape the legacy ``health_stats()`` schemas
        used, so chaos reports can absorb a snapshot unchanged.
        """
        out: dict[str, float] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[f"{name}_count"] = float(metric.count)
                out[f"{name}_sum"] = float(metric.sum)
                for edge, total in zip(
                    metric.edges, metric.cumulative_counts()
                ):
                    out[f"{name}_bucket_le_{_edge_token(edge)}"] = float(total)
            else:
                out[name] = float(metric.value)
        return out

    def exposition(self) -> str:
        """Prometheus-style text exposition (sorted, repr floats)."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {metric.value!r}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {metric.value!r}")
            else:
                lines.append(f"# TYPE {name} histogram")
                for edge, total in zip(
                    metric.edges, metric.cumulative_counts()
                ):
                    lines.append(
                        f'{name}_bucket{{le="{edge!r}"}} {total}'
                    )
                lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{name}_sum {metric.sum!r}")
                lines.append(f"{name}_count {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")
