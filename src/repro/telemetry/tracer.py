"""Span-based request tracer with deterministic export.

The tracer records the paper's natural request-lifecycle boundaries
(§3.3): request arrival, stage entry/exit, socket tag propagation,
context-switch accounting samples, overflow interrupts, recalibration
events, and shed/reject/brownout decisions.  Three event shapes:

``span``
    A ``begin``/``end`` pair keyed by ``(track, name)``.  Tracks are
    strings like ``request:r0042`` or ``core:sb0/0`` so concurrent spans
    on different requests/cores never collide.  Nesting within a track is
    supported via a per-track stack (``end`` closes the innermost open
    span with the matching name, or the innermost span if unnamed).
``instant``
    A point event (overflow interrupt, tag loss, shed decision, fault
    firing, brownout transition...).
``counter``
    A sampled numeric series -- used for the per-container cumulative
    energy timeline so the Chrome viewer can plot joules against spans.

All timestamps are **explicit caller-provided sim-clock floats**; the
tracer never reads a wall clock, so identically seeded runs produce
byte-identical traces (:meth:`RequestTracer.trace_fingerprint`).

Events live in a bounded ring buffer (:class:`deque` with ``maxlen``);
when full, the oldest event is evicted and ``dropped_events`` increments,
keeping memory bounded on long runs without perturbing the simulation.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

#: Event kinds stored in the ring buffer.
KIND_BEGIN = "B"
KIND_END = "E"
KIND_INSTANT = "I"
KIND_COUNTER = "C"


@dataclass(frozen=True)
class TraceSpanEvent:
    """One immutable trace record (begin/end/instant/counter)."""

    kind: str
    now: float
    track: str
    name: str
    #: Sorted tuple of ``(key, value)`` pairs; values are str/float/int.
    args: tuple[tuple[str, object], ...] = ()

    def canonical(self) -> str:
        """A stable one-line rendering used by the fingerprint."""
        parts = [self.kind, repr(self.now), self.track, self.name]
        for key, value in self.args:
            if isinstance(value, float):
                parts.append(f"{key}={value!r}")
            else:
                parts.append(f"{key}={value}")
        return "|".join(parts)


def _freeze_args(args: Optional[dict]) -> tuple[tuple[str, object], ...]:
    if not args:
        return ()
    return tuple(sorted(args.items()))


@dataclass
class _OpenSpan:
    name: str
    now: float
    args: tuple[tuple[str, object], ...]


class RequestTracer:
    """Bounded, deterministic span/instant/counter recorder."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.events: deque[TraceSpanEvent] = deque(maxlen=capacity)
        self.dropped_events = 0
        self._open: dict[str, list[_OpenSpan]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _append(self, event: TraceSpanEvent) -> None:
        if len(self.events) == self.capacity:
            self.dropped_events += 1
        self.events.append(event)

    def begin(
        self, now: float, track: str, name: str, args: Optional[dict] = None
    ) -> None:
        """Open a span named ``name`` on ``track`` at sim time ``now``."""
        frozen = _freeze_args(args)
        self._open.setdefault(track, []).append(_OpenSpan(name, now, frozen))
        self._append(TraceSpanEvent(KIND_BEGIN, now, track, name, frozen))

    def end(
        self,
        now: float,
        track: str,
        name: Optional[str] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Close the innermost open span on ``track``.

        With ``name``, the innermost open span with that name is closed
        (so interleaved same-track spans resolve deterministically); any
        spans opened inside it are abandoned.  A close with no matching
        open span is recorded anyway (the exporters tolerate it).
        """
        stack = self._open.get(track, [])
        if name is None:
            if stack:
                span = stack.pop()
                name = span.name
            else:
                name = ""
        else:
            for i in range(len(stack) - 1, -1, -1):
                if stack[i].name == name:
                    del stack[i:]
                    break
        self._append(
            TraceSpanEvent(KIND_END, now, track, name, _freeze_args(args))
        )

    def instant(
        self, now: float, track: str, name: str, args: Optional[dict] = None
    ) -> None:
        """Record a point event."""
        self._append(
            TraceSpanEvent(KIND_INSTANT, now, track, name, _freeze_args(args))
        )

    def counter(
        self, now: float, track: str, name: str, value: float
    ) -> None:
        """Record one sample of a numeric series (energy timeline)."""
        self._append(
            TraceSpanEvent(
                KIND_COUNTER, now, track, name, (("value", float(value)),)
            )
        )

    def open_depth(self, track: str) -> int:
        """How many spans are currently open on ``track``."""
        return len(self._open.get(track, []))

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def trace_fingerprint(self) -> str:
        """sha256[:16] over the canonical event lines plus the drop count.

        Stable across processes for identical event sequences; any
        reordering, added/removed event, or changed arg changes it.
        """
        digest = hashlib.sha256()
        digest.update(f"dropped={self.dropped_events}\n".encode())
        for event in self.events:
            digest.update(event.canonical().encode())
            digest.update(b"\n")
        return digest.hexdigest()[:16]

    def to_chrome_trace(self) -> dict:
        """Render as a Chrome ``trace_event`` JSON object.

        Tracks map to thread names within one process; spans become
        complete events (``ph: "X"``, microsecond ``ts``/``dur``),
        instants become ``ph: "i"`` with thread scope, counter samples
        become ``ph: "C"`` series.  Load the result in
        ``chrome://tracing`` or Perfetto.
        """
        tracks = sorted({e.track for e in self.events})
        tids = {track: i + 1 for i, track in enumerate(tracks)}
        out: list[dict] = []
        for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        # Pair begin/end per track with a stack, mirroring record order.
        stacks: dict[str, list[TraceSpanEvent]] = {}
        for event in self.events:
            tid = tids[event.track]
            usec = event.now * 1e6
            if event.kind == KIND_BEGIN:
                stacks.setdefault(event.track, []).append(event)
            elif event.kind == KIND_END:
                stack = stacks.get(event.track, [])
                begin = None
                for i in range(len(stack) - 1, -1, -1):
                    if not event.name or stack[i].name == event.name:
                        begin = stack[i]
                        del stack[i:]
                        break
                if begin is None:
                    continue
                args = dict(begin.args)
                args.update(dict(event.args))
                out.append(
                    {
                        "name": begin.name,
                        "cat": "span",
                        "ph": "X",
                        "pid": 1,
                        "tid": tid,
                        "ts": begin.now * 1e6,
                        "dur": usec - begin.now * 1e6,
                        "args": args,
                    }
                )
            elif event.kind == KIND_INSTANT:
                out.append(
                    {
                        "name": event.name,
                        "cat": "instant",
                        "ph": "i",
                        "s": "t",
                        "pid": 1,
                        "tid": tid,
                        "ts": usec,
                        "args": dict(event.args),
                    }
                )
            else:  # counter
                value = dict(event.args).get("value", 0.0)
                out.append(
                    {
                        "name": f"{event.track} {event.name}",
                        "cat": "counter",
                        "ph": "C",
                        "pid": 1,
                        "tid": tid,
                        "ts": usec,
                        "args": {event.name: value},
                    }
                )
        return {"traceEvents": out, "displayTimeUnit": "ms"}

    def to_chrome_json(self, indent: Optional[int] = None) -> str:
        """:meth:`to_chrome_trace` serialized to a JSON string."""
        return json.dumps(self.to_chrome_trace(), indent=indent, sort_keys=True)

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Ring buffer, drop count, and per-track open-span stacks."""
        return {
            "v": 1,
            "capacity": self.capacity,
            "dropped_events": self.dropped_events,
            "events": [
                [e.kind, e.now, e.track, e.name,
                 [[k, v] for k, v in e.args]]
                for e in self.events
            ],
            "open": {
                track: [[s.name, s.now, [[k, v] for k, v in s.args]]
                        for s in stack]
                for track, stack in sorted(self._open.items())
                if stack
            },
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown RequestTracer snapshot version {state.get('v')!r}"
            )
        if state["capacity"] != self.capacity:
            raise ValueError(
                f"tracer capacity mismatch: snapshot {state['capacity']}, "
                f"live {self.capacity}"
            )
        self.dropped_events = state["dropped_events"]
        self.events = deque(
            (
                TraceSpanEvent(
                    kind, now, track, name,
                    tuple((k, v) for k, v in args),
                )
                for kind, now, track, name, args in state["events"]
            ),
            maxlen=self.capacity,
        )
        self._open = {
            track: [
                _OpenSpan(name, now, tuple((k, v) for k, v in args))
                for name, now, args in stack
            ]
            for track, stack in state["open"].items()
        }

    def timeline(self, limit: Optional[int] = None) -> str:
        """A human-readable timeline (one line per event, sim-time order).

        ``limit`` keeps only the first N events -- handy for console
        output on long traces.
        """
        lines: list[str] = []
        shown: Iterable[TraceSpanEvent] = self.events
        for i, event in enumerate(shown):
            if limit is not None and i >= limit:
                lines.append(f"... ({len(self.events) - limit} more events)")
                break
            marker = {
                KIND_BEGIN: ">",
                KIND_END: "<",
                KIND_INSTANT: "*",
                KIND_COUNTER: "=",
            }[event.kind]
            args = " ".join(
                f"{k}={v!r}" if isinstance(v, float) else f"{k}={v}"
                for k, v in event.args
            )
            line = f"{event.now:>12.6f}s {marker} {event.track:<24} {event.name}"
            if args:
                line = f"{line} [{args}]"
            lines.append(line)
        if self.dropped_events:
            lines.append(f"({self.dropped_events} events dropped by ring buffer)")
        return "\n".join(lines)


@dataclass
class Telemetry:
    """The default-off handle threaded through the simulation stack.

    Components accept ``telemetry=None`` (the default) and guard every
    instrumentation site with ``t = self.telemetry`` / ``if t is not None
    and t.enabled:`` -- so runs without a handle are bit-identical to the
    pre-telemetry code by construction, and an attached-but-disabled
    handle costs one attribute check per site.
    """

    enabled: bool = True
    capacity: int = 65536
    tracer: RequestTracer = field(default=None)  # type: ignore[assignment]
    registry: object = field(default=None)

    def __post_init__(self) -> None:
        if self.tracer is None:
            self.tracer = RequestTracer(capacity=self.capacity)
        if self.registry is None:
            from .metrics import MetricsRegistry

            self.registry = MetricsRegistry()

    def trace_fingerprint(self) -> str:
        """Digest of the recorded trace (:meth:`RequestTracer.trace_fingerprint`)."""
        return self.tracer.trace_fingerprint()

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "v": 1,
            "enabled": self.enabled,
            "tracer": self.tracer.snapshot_state(),
            "registry": self.registry.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown Telemetry snapshot version {state.get('v')!r}"
            )
        self.enabled = state["enabled"]
        self.tracer.restore_state(state["tracer"])
        self.registry.restore_state(state["registry"])
