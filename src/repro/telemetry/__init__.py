"""Deterministic telemetry: request tracing, metrics, energy timelines.

See ``docs/observability.md`` for the span taxonomy, metric catalog, and
exporter formats.  The entry point is :class:`Telemetry` -- construct one
and pass it as the ``telemetry=`` keyword of
:class:`~repro.core.PowerContainerFacility`,
:class:`~repro.server.Dispatcher`,
:class:`~repro.core.PowerCapEnforcer`, or
:func:`~repro.faults.run_scenario`.  With no handle attached (the
default) the instrumented code paths are byte-identical to before.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import RequestTracer, Telemetry, TraceSpanEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RequestTracer",
    "Telemetry",
    "TraceSpanEvent",
]
