"""Deterministic telemetry: request tracing, metrics, energy timelines.

See ``docs/observability.md`` for the span taxonomy, metric catalog, and
exporter formats.  The entry point is :class:`Telemetry` -- construct one
and pass it as the ``telemetry=`` keyword of
:class:`~repro.core.PowerContainerFacility`,
:class:`~repro.server.Dispatcher`,
:class:`~repro.core.PowerCapEnforcer`, or
:func:`~repro.faults.run_scenario`.  With no handle attached (the
default) the instrumented code paths are byte-identical to before.

Cluster-scale pieces (``aggregate``/``store``/``anomaly``) merge
per-shard telemetry frames into one global stream, roll it up into a
queryable energy-service store, and run deterministic anomaly detectors
-- see the "Cluster-scale telemetry & energy service" section of
``docs/observability.md``.
"""

from .aggregate import (
    ClusterObservability,
    FrameChecksumError,
    FrameDrain,
    TelemetryAggregator,
    TelemetryFrame,
    apply_metric_deltas,
    metric_deltas,
)
from .anomaly import (
    AlertRecord,
    AnomalyEngine,
    AnomalyThresholds,
    WindowInputs,
    alert_fingerprint,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .store import TelemetryStore
from .tracer import RequestTracer, Telemetry, TraceSpanEvent

__all__ = [
    "AlertRecord",
    "AnomalyEngine",
    "AnomalyThresholds",
    "ClusterObservability",
    "Counter",
    "FrameChecksumError",
    "FrameDrain",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RequestTracer",
    "Telemetry",
    "TelemetryAggregator",
    "TelemetryFrame",
    "TelemetryStore",
    "TraceSpanEvent",
    "WindowInputs",
    "alert_fingerprint",
    "apply_metric_deltas",
    "metric_deltas",
]
