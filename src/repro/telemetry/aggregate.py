"""Cross-shard telemetry aggregation: frames, k-way merge, observability.

Sharded runs (``repro.shard``) execute each :class:`ShardWorld` in its
own process, so a per-shard ``Telemetry`` handle records spans, instants,
and metrics nobody can see.  This module closes the loop:

* :class:`FrameDrain` (worker side) drains the tracer ring and the metric
  registry at every epoch barrier into a :class:`TelemetryFrame` -- a
  plain-data, checksummed wire record carrying ``(now, track, seq, kind,
  name, args)`` event tuples plus metric *deltas* since the previous
  barrier;
* :class:`TelemetryAggregator` (coordinator side) k-way-merges frames by
  ``(now, track, seq)`` into one global stream, folds metric deltas into
  a global registry, and maintains a barrier-chained streaming
  fingerprint so the merged ``trace_fingerprint()`` never needs the full
  event list in memory;
* :class:`ClusterObservability` composes the aggregator with the
  :class:`~repro.telemetry.store.TelemetryStore` rollups and the
  :class:`~repro.telemetry.anomaly.AnomalyEngine` detectors into the one
  object the coordinator drives.

**Why the merge key is a total order.**  Facility tracks are
machine-scoped (``request:<node>/<cid>``, ``core:<node>/<idx>``,
``facility:<node>``), so every track is written by exactly one machine,
which lives in exactly one shard.  ``seq`` is a per-track counter
assigned in recording order, making ``(now, track, seq)`` unique and --
because a machine's event stream depends only on its directives, never on
which shard hosts it -- identical for any shard or worker count.  Frames
drained at the same barrier cover the same sim-time window everywhere,
so the per-barrier chained fingerprint is invariant too.

**Why replay/crash recovery is safe.**  A revived worker replays the
directive history and regenerates the exact same frames (the drain is a
pure function of configuration plus directives); the pool discards
replayed frames because the coordinator already ingested those barriers,
and the drain's frame-chain digest inside ``state_summary()`` proves the
regenerated telemetry matches what the dead worker shipped.

Nothing here feeds back into the simulation: report/shed/batch/energy
fingerprints are bit-identical with telemetry on, off, or absent.
"""

from __future__ import annotations

import hashlib
import heapq
import zlib
from typing import Optional

from .anomaly import AnomalyEngine, AnomalyThresholds, WindowInputs
from .metrics import MetricsRegistry
from .store import TelemetryStore
from .tracer import KIND_INSTANT, RequestTracer, Telemetry, TraceSpanEvent

#: Wire tag identifying a telemetry frame tuple.
FRAME_TAG = "tframe"

#: Seed for the worker-side frame-chain digest (proves replayed frames
#: match shipped ones via ``state_summary()``).
FRAME_CHAIN_SEED = hashlib.sha256(b"telemetry-frame-chain-v1").hexdigest()

#: Seed for the coordinator-side merged-stream digest.
MERGE_CHAIN_SEED = hashlib.sha256(b"telemetry-merge-chain-v1").hexdigest()


class FrameChecksumError(ValueError):
    """A telemetry frame failed checksum or shape validation."""


def _event_key(event: tuple) -> tuple:
    """The global merge key: ``(now, track, seq)``."""
    return (event[0], event[1], event[2])


class TelemetryFrame:
    """One barrier's telemetry from one shard, as checksummed plain data.

    ``events`` is a tuple of ``(now, track, seq, kind, name, args)``
    tuples sorted by ``(now, track, seq)``; ``args`` is the tracer's
    sorted ``(key, value)`` pair tuple.  ``metrics`` is a tuple of delta
    entries (see :func:`metric_deltas`).  ``dropped`` counts ring-buffer
    evictions since the previous barrier (diagnostic only -- excluded
    from merge fingerprints so ring pressure cannot break invariance).
    """

    __slots__ = (
        "shard_id", "epoch_index", "events", "metrics", "dropped",
        "checksum",
    )

    def __init__(
        self,
        shard_id: int,
        epoch_index: int,
        events: tuple,
        metrics: tuple,
        dropped: int,
        checksum: int,
    ) -> None:
        self.shard_id = shard_id
        self.epoch_index = epoch_index
        self.events = events
        self.metrics = metrics
        self.dropped = dropped
        self.checksum = checksum

    @staticmethod
    def _body_checksum(
        shard_id: int, epoch_index: int, events: tuple, metrics: tuple,
        dropped: int,
    ) -> int:
        return zlib.crc32(repr(
            (FRAME_TAG, shard_id, epoch_index, events, metrics, dropped)
        ).encode())

    @classmethod
    def build(
        cls,
        shard_id: int,
        epoch_index: int,
        events: tuple,
        metrics: tuple,
        dropped: int,
    ) -> "TelemetryFrame":
        """Construct a frame, computing its checksum."""
        return cls(
            shard_id, epoch_index, events, metrics, dropped,
            cls._body_checksum(
                shard_id, epoch_index, events, metrics, dropped
            ),
        )

    def to_wire(self) -> tuple:
        """Plain-data tuple for the shard wire protocol."""
        return (
            FRAME_TAG, self.shard_id, self.epoch_index, self.events,
            self.metrics, self.dropped, self.checksum,
        )

    @classmethod
    def from_wire(cls, wire: tuple) -> "TelemetryFrame":
        """Validate shape + checksum and rebuild the frame."""
        if not isinstance(wire, tuple) or len(wire) != 7:
            raise FrameChecksumError(
                f"telemetry frame wire must be a 7-tuple, got {wire!r}"
            )
        tag, shard_id, epoch_index, events, metrics, dropped, checksum = wire
        if tag != FRAME_TAG:
            raise FrameChecksumError(
                f"telemetry frame tag must be {FRAME_TAG!r}, got {tag!r}"
            )
        expected = cls._body_checksum(
            shard_id, epoch_index, events, metrics, dropped
        )
        if checksum != expected:
            raise FrameChecksumError(
                f"telemetry frame checksum mismatch for shard {shard_id} "
                f"epoch {epoch_index}: got {checksum}, expected {expected}"
            )
        return cls(shard_id, epoch_index, events, metrics, dropped, checksum)


def metric_deltas(previous: dict, current: dict) -> tuple:
    """Delta entries between two ``MetricsRegistry.snapshot_state()`` maps.

    Entry shapes (name-sorted):

    * ``("c", name, help, delta)`` -- counter increment since ``previous``;
    * ``("g", name, help, value)`` -- gauge absolute value (machine-scoped
      names mean exactly one writer, so last-write-wins is well defined);
    * ``("h", name, help, edges, bucket_deltas, count_delta, sum_delta)``.

    Unchanged existing metrics are omitted; new metrics are always
    included so the merged registry grows the same shape as the shards'.
    """
    out = []
    for name in sorted(current):
        entry = current[name]
        prev = previous.get(name)
        kind = entry[0]
        if kind == "counter":
            delta = entry[2] - (prev[2] if prev else 0.0)
            if prev is None or delta != 0.0:
                out.append(("c", name, entry[1], delta))
        elif kind == "gauge":
            if prev is None or entry[2] != prev[2]:
                out.append(("g", name, entry[1], entry[2]))
        else:  # histogram: [kind, help, edges, bucket_counts, count, sum]
            is_new = prev is None
            if is_new:
                prev = [kind, entry[1], entry[2], [0] * len(entry[3]), 0, 0.0]
            count_delta = entry[4] - prev[4]
            if is_new or count_delta != 0:
                out.append((
                    "h", name, entry[1], tuple(entry[2]),
                    tuple(b - p for b, p in zip(entry[3], prev[3])),
                    count_delta, entry[5] - prev[5],
                ))
    return tuple(out)


def apply_metric_deltas(registry: MetricsRegistry, entries: tuple) -> None:
    """Fold :func:`metric_deltas` entries into ``registry``."""
    for entry in entries:
        kind = entry[0]
        if kind == "c":
            registry.counter(entry[1], help=entry[2]).inc(entry[3])
        elif kind == "g":
            registry.gauge(entry[1], help=entry[2]).set(entry[3])
        elif kind == "h":
            _, name, help_text, edges, buckets, count, total = entry
            metric = registry.histogram(name, tuple(edges), help=help_text)
            for i, delta in enumerate(buckets):
                metric.bucket_counts[i] += delta
            metric.count += count
            metric.sum += total
        else:
            raise FrameChecksumError(
                f"unknown metric delta kind {kind!r}"
            )


class FrameDrain:
    """Worker-side barrier drain: tracer ring + registry -> frames.

    Persistent per-track ``seq`` counters make event keys unique across
    the whole run; the drain empties the tracer ring each barrier (memory
    stays bounded regardless of run length) and snapshots the registry to
    compute deltas.  ``chain``/``frames`` summarize everything shipped so
    far -- folded into ``state_summary()`` so replay verification covers
    telemetry byte-for-byte.
    """

    def __init__(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        self._seq: dict[str, int] = {}
        self._last_metrics: dict = {}
        self._last_dropped = 0
        self.frames = 0
        self.chain = FRAME_CHAIN_SEED

    def drain(self, shard_id: int, epoch_index: int) -> TelemetryFrame:
        """Drain everything recorded since the previous barrier."""
        tracer = self.telemetry.tracer
        events = []
        for event in tracer.events:
            seq = self._seq.get(event.track, 0)
            self._seq[event.track] = seq + 1
            events.append((
                event.now, event.track, seq, event.kind, event.name,
                event.args,
            ))
        tracer.events.clear()
        events.sort(key=_event_key)
        dropped = tracer.dropped_events - self._last_dropped
        self._last_dropped = tracer.dropped_events
        current = self.telemetry.registry.snapshot_state()["metrics"]
        deltas = metric_deltas(self._last_metrics, current)
        self._last_metrics = current
        frame = TelemetryFrame.build(
            shard_id, epoch_index, tuple(events), deltas, dropped
        )
        self.frames += 1
        self.chain = hashlib.sha256(
            f"{self.chain}:{frame.checksum}".encode()
        ).hexdigest()
        return frame

    def summary(self) -> dict:
        """Digest of every frame shipped (for ``state_summary()``)."""
        return {"frames": self.frames, "chain": self.chain}


class TelemetryAggregator:
    """Coordinator-side k-way merge of per-shard telemetry frames.

    The streaming fingerprint chains one sha256 per barrier over the
    merged canonical event lines, so invariance holds without retaining
    events.  A bounded :class:`RequestTracer` is kept for Chrome-trace
    export when ``retain`` is true (the default); flash-scale runs can
    turn it off and still fingerprint/aggregate everything.
    """

    def __init__(self, capacity: int = 65536, retain: bool = True) -> None:
        self.registry = MetricsRegistry()
        self.tracer: Optional[RequestTracer] = (
            RequestTracer(capacity=capacity) if retain else None
        )
        self.chain = MERGE_CHAIN_SEED
        self.events_merged = 0
        self.frames_merged = 0
        self.dropped_total = 0

    def ingest(self, frames: list) -> dict[str, int]:
        """Merge one barrier's frames; returns instant-name counts.

        ``frames`` may hold :class:`TelemetryFrame` objects or raw wire
        tuples (validated here); ``None`` entries (shards with telemetry
        off) are skipped.
        """
        decoded = []
        for frame in frames:
            if frame is None:
                continue
            if not isinstance(frame, TelemetryFrame):
                frame = TelemetryFrame.from_wire(frame)
            decoded.append(frame)
        decoded.sort(key=lambda f: f.shard_id)
        instant_counts: dict[str, int] = {}
        digest = hashlib.sha256(self.chain.encode())
        merged_any = False
        for event in heapq.merge(
            *(frame.events for frame in decoded), key=_event_key
        ):
            merged_any = True
            now, track, _seq, kind, name, args = event
            span = TraceSpanEvent(kind, now, track, name, tuple(args))
            digest.update(span.canonical().encode())
            digest.update(b"\n")
            if self.tracer is not None:
                self.tracer._append(span)
            if kind == KIND_INSTANT:
                instant_counts[name] = instant_counts.get(name, 0) + 1
            self.events_merged += 1
        if merged_any:
            self.chain = digest.hexdigest()
        for frame in decoded:
            apply_metric_deltas(self.registry, frame.metrics)
            self.dropped_total += frame.dropped
            self.frames_merged += 1
        return instant_counts

    def trace_fingerprint(self) -> str:
        """Chained digest of the merged stream (shard-count-invariant)."""
        return self.chain[:16]

    def exposition(self) -> str:
        return self.registry.exposition()

    def to_chrome_json(self, indent: Optional[int] = None) -> str:
        if self.tracer is None:
            raise ValueError(
                "aggregator built with retain=False keeps no events"
            )
        return self.tracer.to_chrome_json(indent=indent)

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "v": 1,
            "chain": self.chain,
            "events_merged": self.events_merged,
            "frames_merged": self.frames_merged,
            "dropped_total": self.dropped_total,
            "registry": self.registry.snapshot_state(),
            "tracer": (
                self.tracer.snapshot_state()
                if self.tracer is not None else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown TelemetryAggregator snapshot version "
                f"{state.get('v')!r}"
            )
        self.chain = state["chain"]
        self.events_merged = int(state["events_merged"])
        self.frames_merged = int(state["frames_merged"])
        self.dropped_total = int(state["dropped_total"])
        self.registry.restore_state(state["registry"])
        if state["tracer"] is not None:
            if self.tracer is None:
                self.tracer = RequestTracer(
                    capacity=state["tracer"]["capacity"]
                )
            self.tracer.restore_state(state["tracer"])
        else:
            self.tracer = None


class ClusterObservability:
    """Aggregator + store + detectors, driven once per epoch barrier.

    Built by the sharded coordinator when its ``telemetry`` mode is
    ``"store"`` (rollups + detectors from the completion stream only --
    zero worker-side cost, the flash-scale default) or ``"on"`` (plus
    per-shard frames merged into the global tracer/registry).  Records
    are duck-typed (``completion``/``machine``/``request_id``/``rtype``/
    ``energy_joules``/``response_time``) so this module never imports
    ``repro.shard``.
    """

    def __init__(
        self,
        epoch_seconds: float,
        rack_of: dict[str, int],
        rack_caps: dict[int, float] | None = None,
        frames: bool = False,
        capacity: int = 65536,
        retain_trace: bool = True,
        top_k: int = 10,
        thresholds: AnomalyThresholds | None = None,
    ) -> None:
        self.frames_enabled = frames
        self.aggregator = (
            TelemetryAggregator(capacity=capacity, retain=retain_trace)
            if frames else None
        )
        self.store = TelemetryStore(
            epoch_seconds=epoch_seconds, rack_of=rack_of, top_k=top_k
        )
        self.engine = AnomalyEngine(
            rack_caps=rack_caps, thresholds=thresholds
        )
        self._prev_shed = 0
        self._prev_deferred = 0

    def observe_epoch(
        self,
        epoch_index: int,
        end: float,
        completions: list,
        failover_count: int,
        frames: list | None = None,
        shed_total: int = 0,
        deferred_total: int = 0,
    ) -> None:
        """Ingest one barrier: merged completions, frames, and deltas."""
        instant_counts: dict[str, int] = {}
        if self.aggregator is not None and frames:
            instant_counts = self.aggregator.ingest(frames)
        joules = 0.0
        for record in completions:
            window = min(epoch_index, max(0, int(record.completion
                         / self.store.epoch_seconds)))
            self.store.ingest_completion(
                window=window,
                machine=record.machine,
                request_id=record.request_id,
                rtype=record.rtype,
                energy_joules=record.energy_joules,
                response_time=record.response_time,
            )
            joules += record.energy_joules
        shed_delta = shed_total - self._prev_shed
        deferred_delta = deferred_total - self._prev_deferred
        self._prev_shed = shed_total
        self._prev_deferred = deferred_total
        self.store.ingest_window(
            window=epoch_index,
            shed=shed_delta,
            deferred=deferred_delta,
            failovers=failover_count,
            completed=len(completions),
            joules=joules,
        )
        self.engine.observe_window(WindowInputs(
            window=epoch_index,
            time=end,
            rack_watts=tuple(
                sorted(self.store.rack_watts(epoch_index).items())
            ),
            shed=shed_delta,
            failovers=failover_count,
            completed=len(completions),
            instant_counts=tuple(sorted(instant_counts.items())),
        ))

    def finalize(self, time: float, machine_rows: list) -> None:
        """Run the finalize-time detectors (attribution drift)."""
        self.engine.finalize(time, machine_rows)

    # -- summaries and exports ------------------------------------------
    def trace_fingerprint(self) -> Optional[str]:
        if self.aggregator is None:
            return None
        return self.aggregator.trace_fingerprint()

    def alert_fingerprint(self) -> str:
        return self.engine.alert_fingerprint()

    def store_fingerprint(self) -> str:
        return self.store.store_fingerprint()

    def summary(self) -> dict:
        """Plain-data roll-up for ``ShardRunResult``."""
        out = {
            "trace_fingerprint": self.trace_fingerprint(),
            "alert_fingerprint": self.alert_fingerprint(),
            "store_fingerprint": self.store_fingerprint(),
            "alerts": len(self.engine.alerts),
            "requests": self.store.requests_seen,
        }
        if self.aggregator is not None:
            out["events_merged"] = self.aggregator.events_merged
            out["frames_merged"] = self.aggregator.frames_merged
            out["frames_dropped_events"] = self.aggregator.dropped_total
        return out

    def dashboard(self, meta: dict | None = None) -> dict:
        """The store dashboard document plus alerts + fingerprints."""
        meta = dict(meta or {})
        if self.aggregator is not None:
            meta["trace_fingerprint"] = self.aggregator.trace_fingerprint()
        meta["alert_fingerprint"] = self.alert_fingerprint()
        return self.store.dashboard(
            meta=meta, alerts=self.engine.alert_table()
        )

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "v": 1,
            "frames_enabled": self.frames_enabled,
            "prev_shed": self._prev_shed,
            "prev_deferred": self._prev_deferred,
            "aggregator": (
                self.aggregator.snapshot_state()
                if self.aggregator is not None else None
            ),
            "store": self.store.snapshot_state(),
            "engine": self.engine.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown ClusterObservability snapshot version "
                f"{state.get('v')!r}"
            )
        self.frames_enabled = state["frames_enabled"]
        self._prev_shed = int(state["prev_shed"])
        self._prev_deferred = int(state["prev_deferred"])
        if state["aggregator"] is not None:
            if self.aggregator is None:
                self.aggregator = TelemetryAggregator()
            self.aggregator.restore_state(state["aggregator"])
        else:
            self.aggregator = None
        self.store.restore_state(state["store"])
        self.engine.restore_state(state["engine"])
