"""Deterministic energy anomaly detection over the merged shard stream.

Detectors consume the same per-window inputs on every run -- rack watts
from the :class:`~repro.telemetry.store.TelemetryStore` rollups, scheduler
shed/failover deltas, and instant-name counts from merged telemetry
frames -- and emit :class:`AlertRecord`\\ s in a fixed order: windows
ascending, detectors in catalog order within a window, subjects sorted
within a detector.  Because the inputs are shard-count-invariant, so is
``alert_fingerprint()``.

Alert catalog (detector / severity / subject):

* ``cap-violation-streak`` / ``page`` / ``rack<N>`` -- a rack's mean
  window watts exceeded its cap for ``cap_streak`` consecutive windows.
* ``shed-rate-spike`` / ``warn`` / ``cluster`` -- this window's shed
  count is at least ``shed_spike_factor`` times the trailing-window mean
  (and at least ``shed_spike_min`` absolute).
* ``meter-staleness-storm`` / ``warn`` / ``cluster`` -- at least
  ``stale_storm`` ``meter.stale`` instants arrived in one window.
* ``recalibration-churn`` / ``info`` / ``cluster`` -- at least
  ``recal_churn`` ``recal.refit`` instants arrived in one window.
* ``attribution-drift`` / ``warn`` / ``<machine>`` -- at finalize, a
  machine's attributed joules diverged from its measured (integrator)
  joules by more than ``drift_ratio`` relative error.

Shard workers run without meters or recalibration (the coordinator owns
all randomness), so the staleness/churn detectors only fire when frames
carry those facility instants -- single-world chaos runs and synthetic
unit tests exercise them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class AlertRecord:
    """One fired alert: plain data with a canonical rendering."""

    time: float
    window: int
    detector: str
    severity: str
    subject: str
    value: float
    threshold: float
    message: str

    def canonical(self) -> str:
        """Stable one-line rendering hashed by ``alert_fingerprint``."""
        return (
            f"{self.time!r}|{self.window}|{self.detector}|{self.severity}"
            f"|{self.subject}|{self.value!r}|{self.threshold!r}"
            f"|{self.message}"
        )

    def to_wire(self) -> dict:
        return {
            "time": self.time,
            "window": self.window,
            "detector": self.detector,
            "severity": self.severity,
            "subject": self.subject,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "AlertRecord":
        return cls(**wire)


def alert_fingerprint(alerts: list[AlertRecord]) -> str:
    """sha256[:16] over the canonical alert lines in emission order."""
    return hashlib.sha256(
        "\n".join(alert.canonical() for alert in alerts).encode()
    ).hexdigest()[:16]


@dataclass(frozen=True)
class AnomalyThresholds:
    """Tunable knobs for every detector (plain data, fingerprint-safe)."""

    #: Consecutive over-cap windows before a rack pages.
    cap_streak: int = 3
    #: Absolute shed floor below which spikes are ignored.
    shed_spike_min: int = 20
    #: Multiple of the trailing mean that counts as a spike.
    shed_spike_factor: float = 3.0
    #: Trailing windows kept for the shed-rate baseline.
    shed_history: int = 4
    #: ``meter.stale`` instants per window that make a storm.
    stale_storm: int = 8
    #: ``recal.refit`` instants per window that make churn.
    recal_churn: int = 4
    #: Relative attributed-vs-measured error that counts as drift.
    drift_ratio: float = 0.25
    #: Measured-joule floor below which drift is ignored.
    drift_min_joules: float = 1.0


@dataclass
class WindowInputs:
    """Everything the per-window detectors see for one epoch barrier."""

    window: int
    time: float
    #: ``((rack, mean_watts), ...)`` for this window, rack-sorted.
    rack_watts: tuple = ()
    shed: int = 0
    failovers: int = 0
    completed: int = 0
    #: ``((instant_name, count), ...)`` from merged frames, name-sorted.
    instant_counts: tuple = ()


class AnomalyEngine:
    """Ordered, deterministic detectors with checkpointable state."""

    def __init__(
        self,
        rack_caps: dict[int, float] | None = None,
        thresholds: AnomalyThresholds | None = None,
    ) -> None:
        self.rack_caps = dict(rack_caps or {})
        self.thresholds = thresholds or AnomalyThresholds()
        self.alerts: list[AlertRecord] = []
        self._cap_streaks: dict[int, int] = {}
        self._shed_history: list[int] = []
        self.windows_observed = 0

    def _emit(self, alert: AlertRecord) -> None:
        self.alerts.append(alert)

    # -- per-window detectors -------------------------------------------
    def observe_window(self, inputs: WindowInputs) -> list[AlertRecord]:
        """Run the per-window detectors; returns alerts fired just now."""
        before = len(self.alerts)
        t = self.thresholds
        # 1. Cap-violation streaks, racks in sorted order.
        for rack, watts in sorted(inputs.rack_watts):
            cap = self.rack_caps.get(rack)
            if cap is not None and watts > cap:
                streak = self._cap_streaks.get(rack, 0) + 1
                self._cap_streaks[rack] = streak
                if streak == t.cap_streak:
                    self._emit(AlertRecord(
                        time=inputs.time,
                        window=inputs.window,
                        detector="cap-violation-streak",
                        severity="page",
                        subject=f"rack{rack}",
                        value=watts,
                        threshold=cap,
                        message=(
                            f"rack{rack} over cap for {streak} consecutive"
                            f" windows ({watts:.1f}W > {cap:.1f}W)"
                        ),
                    ))
            else:
                self._cap_streaks[rack] = 0
        # 2. Shed-rate spike vs the trailing-window mean.
        if self._shed_history:
            mean = sum(self._shed_history) / len(self._shed_history)
            floor = max(float(t.shed_spike_min), t.shed_spike_factor * mean)
            if inputs.shed >= floor and inputs.shed >= t.shed_spike_min:
                self._emit(AlertRecord(
                    time=inputs.time,
                    window=inputs.window,
                    detector="shed-rate-spike",
                    severity="warn",
                    subject="cluster",
                    value=float(inputs.shed),
                    threshold=floor,
                    message=(
                        f"shed {inputs.shed} requests this window"
                        f" (trailing mean {mean:.1f})"
                    ),
                ))
        self._shed_history.append(inputs.shed)
        if len(self._shed_history) > t.shed_history:
            del self._shed_history[0]
        # 3. Meter-staleness storm and 4. recalibration churn from
        # merged facility instants.
        counts = dict(inputs.instant_counts)
        stale = counts.get("meter.stale", 0)
        if stale >= t.stale_storm:
            self._emit(AlertRecord(
                time=inputs.time,
                window=inputs.window,
                detector="meter-staleness-storm",
                severity="warn",
                subject="cluster",
                value=float(stale),
                threshold=float(t.stale_storm),
                message=f"{stale} stale-meter reads in one window",
            ))
        refits = counts.get("recal.refit", 0)
        if refits >= t.recal_churn:
            self._emit(AlertRecord(
                time=inputs.time,
                window=inputs.window,
                detector="recalibration-churn",
                severity="info",
                subject="cluster",
                value=float(refits),
                threshold=float(t.recal_churn),
                message=f"{refits} recalibration refits in one window",
            ))
        self.windows_observed += 1
        return self.alerts[before:]

    # -- finalize-time detector -----------------------------------------
    def finalize(
        self, time: float, machine_rows: list
    ) -> list[AlertRecord]:
        """Attribution-vs-measured drift over the final machine table.

        ``machine_rows`` uses the coordinator's row shape:
        ``(name, completed, attributed_joules, measured_joules, ...)``.
        """
        before = len(self.alerts)
        t = self.thresholds
        for row in machine_rows:
            name, completed, attributed, measured = row[:4]
            if completed <= 0 or measured < t.drift_min_joules:
                continue
            ratio = abs(attributed - measured) / measured
            if ratio > t.drift_ratio:
                self._emit(AlertRecord(
                    time=time,
                    window=self.windows_observed,
                    detector="attribution-drift",
                    severity="warn",
                    subject=str(name),
                    value=ratio,
                    threshold=t.drift_ratio,
                    message=(
                        f"{name} attributed {attributed:.1f}J vs measured"
                        f" {measured:.1f}J ({ratio:.0%} drift)"
                    ),
                ))
        return self.alerts[before:]

    def alert_fingerprint(self) -> str:
        return alert_fingerprint(self.alerts)

    def alert_table(self) -> list[dict]:
        """Alerts as plain dicts in emission order (dashboard-ready)."""
        return [alert.to_wire() for alert in self.alerts]

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "v": 1,
            "alerts": [alert.to_wire() for alert in self.alerts],
            "cap_streaks": {
                str(rack): streak
                for rack, streak in sorted(self._cap_streaks.items())
            },
            "shed_history": list(self._shed_history),
            "windows_observed": self.windows_observed,
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown AnomalyEngine snapshot version {state.get('v')!r}"
            )
        self.alerts = [
            AlertRecord.from_wire(wire) for wire in state["alerts"]
        ]
        self._cap_streaks = {
            int(rack): int(streak)
            for rack, streak in state["cap_streaks"].items()
        }
        self._shed_history = [int(n) for n in state["shed_history"]]
        self.windows_observed = int(state["windows_observed"])
