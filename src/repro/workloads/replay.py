"""Trace-driven request replay.

The paper's WeBWorK evaluation is driven by "user requests logged at the
real site"; operators reproducing an incident want the same: replay a
recorded arrival trace instead of synthetic Poisson arrivals.

A trace is a sequence of :class:`TraceEntry` (arrival time + request spec);
:class:`TraceReplayDriver` injects them faithfully and collects results
exactly like the synthetic drivers.  :func:`load_trace_csv` reads the
simple ``arrival,rtype[,param=value...]`` CSV format, and
:func:`save_trace_csv` writes one (e.g. to re-replay a recorded synthetic
run deterministically).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.core.facility import PowerContainerFacility
from repro.kernel import ContextTag, Kernel, Message
from repro.requests import RequestResult, RequestSpec
from repro.server.stages import Server
from repro.workloads.base import Workload


@dataclass(frozen=True)
class TraceEntry:
    """One recorded request arrival."""

    arrival: float
    spec: RequestSpec

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival times must be non-negative")


def _parse_value(text: str):
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text in ("True", "False"):
        return text == "True"
    return text


def load_trace_csv(path: str | Path) -> list[TraceEntry]:
    """Read a trace from ``arrival,rtype[,key=value...]`` CSV rows."""
    entries = []
    with Path(path).open() as handle:
        for row in csv.reader(handle):
            if not row or row[0].startswith("#"):
                continue
            arrival, rtype, *params = row
            entries.append(TraceEntry(
                arrival=float(arrival),
                spec=RequestSpec(
                    rtype=rtype,
                    params={
                        key: _parse_value(value)
                        for key, value in (p.split("=", 1) for p in params)
                    },
                ),
            ))
    entries.sort(key=lambda e: e.arrival)
    return entries


def save_trace_csv(path: str | Path, entries: Iterable[TraceEntry]) -> Path:
    """Write a trace in the :func:`load_trace_csv` format."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["# arrival", "rtype", "params..."])
        for entry in sorted(entries, key=lambda e: e.arrival):
            writer.writerow([
                entry.arrival, entry.spec.rtype,
                *(f"{k}={v}" for k, v in entry.spec.params.items()),
            ])
    return path


class TraceReplayDriver:
    """Injects a recorded arrival trace into a workload's server."""

    def __init__(
        self,
        kernel: Kernel,
        facility: PowerContainerFacility,
        workload: Workload,
        server: Server,
        trace: list[TraceEntry],
        label_prefix: str = "",
    ) -> None:
        if not trace:
            raise ValueError("trace must contain at least one entry")
        self.kernel = kernel
        self.facility = facility
        self.workload = workload
        self.server = server
        self.trace = sorted(trace, key=lambda e: e.arrival)
        self.label_prefix = label_prefix or f"{workload.name}-replay"
        self.results: list[RequestResult] = []
        self.inflight: dict[int, tuple[RequestSpec, float, object]] = {}
        server.client_side.on_message = self._on_reply

    def start(self) -> None:
        """Schedule every trace arrival (relative to the current time)."""
        base = self.kernel.now
        for request_id, entry in enumerate(self.trace):
            self.kernel.simulator.schedule_at(
                base + entry.arrival, self._inject, request_id, entry.spec
            )

    @property
    def horizon(self) -> float:
        """Arrival time of the last trace entry."""
        return self.trace[-1].arrival

    def _inject(self, request_id: int, spec: RequestSpec) -> None:
        container = self.facility.create_request_container(
            label=f"{self.label_prefix}:{spec.rtype}",
            meta={"rtype": spec.rtype, "workload": self.workload.name,
                  "params": dict(spec.params)},
        )
        self.facility.registry.incref(container.id)
        self.inflight[request_id] = (spec, self.kernel.now, container)
        self.server.inject(Message(
            nbytes=self.workload.request_bytes(),
            payload=(request_id, spec),
            tag=ContextTag(container_id=container.id),
        ))

    def _on_reply(self, message: Message) -> None:
        (request_id, _spec), _result = message.payload
        spec, arrival, container = self.inflight.pop(request_id)
        self.results.append(RequestResult(
            request_id=request_id, rtype=spec.rtype,
            arrival=arrival, completion=self.kernel.now,
            container=container,
        ))
        self.facility.registry.decref(container.id)
        self.facility.complete_request(container)

    @property
    def completed(self) -> int:
        """Requests completed so far."""
        return len(self.results)

    def mean_response_time(self) -> float:
        """Mean response time across completed requests."""
        if not self.results:
            return 0.0
        return float(np.mean([r.response_time for r in self.results]))
