"""Calibration microbenchmarks (re-exported from :mod:`repro.core.calibration`).

The Section 4.1 suite lives beside the calibration driver so the core
package is self-contained; this module re-exports it under the workloads
namespace for discoverability.
"""

from repro.core.calibration import Microbenchmark, calibration_microbenchmarks

__all__ = ["Microbenchmark", "calibration_microbenchmarks"]
