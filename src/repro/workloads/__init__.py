"""Server and cloud workload models (Section 4.2).

Each workload models the paper's corresponding application as request
programs over the simulated kernel: per-microarchitecture activity profiles
and cycle demands, multi-stage flows (sockets, fork/wait, disk I/O), and --
for the GAE workloads -- untracked background processing and power viruses.
"""

from repro.workloads.base import (
    ClosedLoopDriver,
    LiveWorkloadRun,
    OpenLoopDriver,
    RequestResult,
    RequestSpec,
    Workload,
    WorkloadRun,
    prepare_workload,
    run_workload,
)
from repro.workloads.rsa import RsaCryptoWorkload
from repro.workloads.solr import SolrWorkload
from repro.workloads.webwork import WeBWorKWorkload
from repro.workloads.stress import StressWorkload
from repro.workloads.gae import GaeVosaoWorkload, GaeHybridWorkload
from repro.workloads.synthetic import StageSpec, SyntheticWorkload
from repro.workloads.eventloop import EventDrivenSolrWorkload
from repro.workloads.replay import (
    TraceEntry,
    TraceReplayDriver,
    load_trace_csv,
    save_trace_csv,
)
from repro.workloads.catalog import WORKLOADS, workload_by_name

__all__ = [
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "RequestResult",
    "RequestSpec",
    "Workload",
    "WorkloadRun",
    "LiveWorkloadRun",
    "prepare_workload",
    "run_workload",
    "RsaCryptoWorkload",
    "SolrWorkload",
    "WeBWorKWorkload",
    "StressWorkload",
    "GaeVosaoWorkload",
    "GaeHybridWorkload",
    "StageSpec",
    "SyntheticWorkload",
    "EventDrivenSolrWorkload",
    "TraceEntry",
    "TraceReplayDriver",
    "load_trace_csv",
    "save_trace_csv",
    "WORKLOADS",
    "workload_by_name",
]
