"""Stress: the Stressful Application Test, adapted to requests (Section 4.2).

Stress runs the Adler-32 checksum over a large memory segment with added
floating-point work, keeping the core units, FPU, and cache/memory system
simultaneously busy.  The paper adapted it to a server-style workload with
requests of about 100 ms each, and notes it draws higher-than-normal power,
particularly on the Westmere machine.

That "higher than normal" draw is exactly the hidden-power phenomenon: the
simultaneous multi-unit activity dissipates power that core-level event
counts do not predict, which is why approaches #1/#2 err badly on Stress and
why measurement-aligned recalibration is "particularly effective" for it
(Fig. 8).

Cross-machine behaviour: Stress is memory-bound, and memory latency is wall
time, so the *cycle* count shrinks on lower-clocked machines; the energy
ratio between SandyBridge and Woodcrest stays near 1 (0.91 in Fig. 13).
"""

from __future__ import annotations

import numpy as np

from repro.core.facility import PowerContainerFacility
from repro.hardware.events import RateProfile
from repro.kernel import Compute, Kernel, Message
from repro.server.stages import Server
from repro.workloads.base import RequestSpec, Workload

#: ~100 ms of work on SandyBridge.
_BASE_DEMAND_CYCLES = 310e6

#: Memory-bound work: stall cycles scale with clock frequency, so the
#: Woodcrest cycle count is *lower* despite the older core.
_ARCH_DEMAND_SCALE = {
    "sandybridge": 1.0,
    "westmere": 0.78,
    "woodcrest": 0.96,
}

#: Hidden (counter-invisible) power per busy core, by architecture.  The
#: paper observes the effect most strongly on Westmere.
_ARCH_HIDDEN_WATTS = {
    "sandybridge": 4.0,
    "westmere": 6.5,
    "woodcrest": 3.0,
}


def stress_profile(arch: str) -> RateProfile:
    """The Stress activity profile on one architecture."""
    return RateProfile(
        name=f"stress-{arch}",
        ipc=0.9,
        flops_per_cycle=0.35,
        cache_per_cycle=0.016,
        mem_per_cycle=0.009,
        hidden_watts=_ARCH_HIDDEN_WATTS[arch],
    )


class StressWorkload(Workload):
    """Fixed ~100 ms checksum requests with small jitter."""

    name = "stress"

    def __init__(self, n_workers: int = 8, jitter: float = 0.08) -> None:
        self.n_workers = n_workers
        self.jitter = jitter

    def request_types(self) -> list[str]:
        return ["checksum"]

    def sample_request(self, rng: np.random.Generator) -> RequestSpec:
        factor = float(rng.normal(1.0, self.jitter))
        return RequestSpec(rtype="checksum", params={"factor": max(factor, 0.6)})

    def demand_cycles(self, factor: float, arch: str) -> float:
        """Cycle cost of one request on an architecture."""
        return _BASE_DEMAND_CYCLES * factor * _ARCH_DEMAND_SCALE[arch]

    def mean_demand_seconds(self, arch: str) -> float:
        spec_freq = {"sandybridge": 3.10e9, "westmere": 2.26e9,
                     "woodcrest": 3.00e9}[arch]
        return _BASE_DEMAND_CYCLES * _ARCH_DEMAND_SCALE[arch] / spec_freq

    def build_server(
        self, kernel: Kernel, facility: PowerContainerFacility
    ) -> Server:
        arch = kernel.machine.arch
        profile = stress_profile(arch)

        def handler_factory(message: Message):
            _request_id, spec = message.payload
            cycles = self.demand_cycles(spec.params["factor"], arch)

            def handler():
                yield Compute(cycles=cycles, profile=profile)
                return "checksum"

            return handler()

        return Server(kernel, self.name, handler_factory, self.n_workers)
