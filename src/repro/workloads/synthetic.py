"""Configurable synthetic workloads: build your own request pipeline.

The six evaluation workloads model specific applications; downstream users
of the library usually want to sketch *their* service instead.  A
:class:`SyntheticWorkload` is assembled from :class:`StageSpec` entries --
each stage either runs on the front-end worker, on a thread-per-connection
sub-service (over a persistent tagged socket), or in a forked helper
process -- so arbitrary Fig. 4-style topologies can be described in a few
lines:

    workload = SyntheticWorkload(
        name="my-api",
        stages=[
            StageSpec("parse", cycles=2e6, profile=light),
            StageSpec("db", cycles=8e6, profile=dbish, kind="service",
                      io_bytes=8192),
            StageSpec("render", cycles=5e6, profile=fpu, kind="fork"),
        ],
        demand_jitter=0.2,
    )

All power-container machinery (tracking, accounting, conditioning,
distribution) works on synthetic workloads unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.facility import PowerContainerFacility
from repro.hardware.events import RateProfile
from repro.kernel import Compute, DiskIO, Fork, Kernel, Message, Recv, Send, WaitChild
from repro.server.stages import Server, SubService
from repro.workloads.base import RequestSpec, Workload

_VALID_KINDS = ("inline", "service", "fork")


@dataclass(frozen=True)
class StageSpec:
    """One stage of a synthetic request pipeline.

    ``kind`` selects where the stage runs: ``"inline"`` on the front-end
    worker, ``"service"`` on a dedicated thread reached over a persistent
    socket, ``"fork"`` in a freshly forked child that is waited on.
    ``io_bytes`` adds a blocking disk transfer after the stage's compute.
    """

    name: str
    cycles: float
    profile: RateProfile
    kind: str = "inline"
    io_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(
                f"stage kind must be one of {_VALID_KINDS}, got {self.kind!r}"
            )
        if self.cycles < 0 or self.io_bytes < 0:
            raise ValueError("cycles and io_bytes must be non-negative")


class SyntheticWorkload(Workload):
    """A request pipeline assembled from :class:`StageSpec` entries."""

    def __init__(
        self,
        name: str,
        stages: list[StageSpec],
        demand_jitter: float = 0.1,
        n_workers: int = 8,
        arch_demand_scale: dict[str, float] | None = None,
        request_nbytes: float = 512.0,
        reply_nbytes: float = 2048.0,
    ) -> None:
        if not stages:
            raise ValueError("a synthetic workload needs at least one stage")
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ValueError("stage names must be unique")
        self.name = name
        self.stages = list(stages)
        self.demand_jitter = demand_jitter
        self.n_workers = n_workers
        self.arch_demand_scale = arch_demand_scale or {
            "sandybridge": 1.0, "westmere": 1.25, "woodcrest": 1.5,
        }
        self._request_nbytes = request_nbytes
        self._reply_nbytes = reply_nbytes

    # ------------------------------------------------------------------
    def request_types(self) -> list[str]:
        return ["request"]

    def sample_request(self, rng: np.random.Generator) -> RequestSpec:
        jitter = max(float(rng.normal(1.0, self.demand_jitter)), 0.3)
        return RequestSpec(rtype="request", params={"jitter": jitter})

    def total_cycles(self, arch: str, jitter: float = 1.0) -> float:
        """Summed cycle demand across all stages on one architecture."""
        scale = self.arch_demand_scale[arch]
        return sum(s.cycles for s in self.stages) * scale * jitter

    def mean_demand_seconds(self, arch: str) -> float:
        freq = {"sandybridge": 3.10e9, "westmere": 2.26e9,
                "woodcrest": 3.00e9}[arch]
        return self.total_cycles(arch) / freq

    def request_bytes(self) -> float:
        return self._request_nbytes

    # ------------------------------------------------------------------
    def build_server(
        self, kernel: Kernel, facility: PowerContainerFacility
    ) -> Server:
        arch = kernel.machine.arch
        scale = self.arch_demand_scale[arch]

        # One SubService per "service" stage; shared by all workers via
        # per-worker persistent connections.
        services: dict[str, SubService] = {}
        for stage in self.stages:
            if stage.kind != "service":
                continue

            def service_factory(message, stage=stage):
                def handler():
                    yield Compute(cycles=message.payload,
                                  profile=stage.profile)
                    if stage.io_bytes:
                        yield DiskIO(nbytes=stage.io_bytes)
                    return "ok"
                return handler()

            services[stage.name] = SubService(
                kernel, f"{self.name}-{stage.name}", service_factory
            )

        def worker_factory(worker_index: int):
            endpoints = {
                name: service.connect() for name, service in services.items()
            }

            def handler_factory(message: Message):
                _request_id, spec = message.payload
                jitter = spec.params["jitter"]

                def handler():
                    for stage in self.stages:
                        cycles = stage.cycles * scale * jitter
                        if stage.kind == "inline":
                            yield Compute(cycles=cycles, profile=stage.profile)
                            if stage.io_bytes:
                                yield DiskIO(nbytes=stage.io_bytes)
                        elif stage.kind == "service":
                            endpoint = endpoints[stage.name]
                            yield Send(endpoint, nbytes=256, payload=cycles)
                            yield Recv(endpoint)
                        else:  # fork
                            def helper(cycles=cycles, stage=stage):
                                yield Compute(cycles=cycles,
                                              profile=stage.profile)
                                if stage.io_bytes:
                                    yield DiskIO(nbytes=stage.io_bytes)

                            child = yield Fork(helper(), name=stage.name)
                            yield WaitChild(child)
                    return "done"

                return handler()

            return handler_factory

        return Server(
            kernel, self.name, n_workers=self.n_workers,
            reply_bytes=self._reply_nbytes, worker_factory=worker_factory,
        )
