"""Solr: full-text search over an in-memory Wikipedia index (Section 4.2).

The search server (Lucene inside Tomcat) is cache/memory-intensive --
walking posting lists and scoring documents -- with highly variable
per-query work (query length, hit counts).  The index fits in memory, so
there is no disk I/O; responses are a few kilobytes.

The wide execution-time spread produces the paper's spread-out request
energy distribution (Fig. 7) while the per-request *power* stays fairly
uniform (Fig. 6, left).
"""

from __future__ import annotations

import numpy as np

from repro.core.facility import PowerContainerFacility
from repro.hardware.events import RateProfile
from repro.kernel import Compute, Kernel, Message
from repro.server.stages import Server
from repro.workloads.base import RequestSpec, Workload

#: Mean cycle cost of a query on SandyBridge (~13 ms).
_BASE_MEAN_CYCLES = 40e6
#: Floor cost (query parsing, servlet overhead).
_BASE_MIN_CYCLES = 5e6

_ARCH_DEMAND_SCALE = {
    "sandybridge": 1.0,
    "westmere": 1.25,
    "woodcrest": 1.55,
}

_PROFILE = RateProfile(
    name="solr", ipc=1.3, flops_per_cycle=0.02, cache_per_cycle=0.011,
    mem_per_cycle=0.004,
)


class SolrWorkload(Workload):
    """Search queries with exponentially distributed work."""

    name = "solr"

    def __init__(self, n_workers: int = 16) -> None:
        self.n_workers = n_workers

    def request_types(self) -> list[str]:
        return ["search"]

    def sample_request(self, rng: np.random.Generator) -> RequestSpec:
        # Work beyond the floor is exponential: most queries are cheap, a
        # long tail of expensive ones (popular multi-term article queries).
        extra = float(rng.exponential(1.0))
        return RequestSpec(rtype="search", params={"work_factor": extra})

    def demand_cycles(self, work_factor: float, arch: str) -> float:
        """Cycle cost of one query given its sampled work factor."""
        base = _BASE_MIN_CYCLES + work_factor * (_BASE_MEAN_CYCLES - _BASE_MIN_CYCLES)
        return base * _ARCH_DEMAND_SCALE[arch]

    def mean_demand_seconds(self, arch: str) -> float:
        spec_freq = {"sandybridge": 3.10e9, "westmere": 2.26e9,
                     "woodcrest": 3.00e9}[arch]
        return _BASE_MEAN_CYCLES * _ARCH_DEMAND_SCALE[arch] / spec_freq

    def request_bytes(self) -> float:
        return 256.0

    def build_server(
        self, kernel: Kernel, facility: PowerContainerFacility
    ) -> Server:
        arch = kernel.machine.arch

        def handler_factory(message: Message):
            _request_id, spec = message.payload
            cycles = self.demand_cycles(spec.params["work_factor"], arch)

            def handler():
                yield Compute(cycles=cycles, profile=_PROFILE)
                return "hits"

            return handler()

        return Server(
            kernel, self.name, handler_factory, self.n_workers,
            reply_bytes=4096.0,
        )
