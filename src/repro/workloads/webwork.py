"""WeBWorK: the multi-stage online homework application (Section 4.2).

The paper's Fig. 4 shows a captured WeBWorK request execution flowing
through Apache PHP processing, a MySQL thread over a persistent socket,
and forked ``latex``/``dvipng`` helper processes for content and image
rendering.  This model reproduces that exact topology:

    apache worker --(socket)--> mysql thread
        |--fork--> latex  --wait4/exit-->
        |--fork--> dvipng --wait4/exit-->
        `--> reply to client

Request context must survive the socket hop and both forks for the
per-request energy in Fig. 4's annotations to be attributable.
"""

from __future__ import annotations

import numpy as np

from repro.core.facility import PowerContainerFacility
from repro.hardware.events import RateProfile
from repro.kernel import Compute, DiskIO, Fork, Kernel, Message, Recv, Send, WaitChild
from repro.server.stages import Server, SubService
from repro.workloads.base import RequestSpec, Workload

_ARCH_DEMAND_SCALE = {
    "sandybridge": 1.0,
    "westmere": 1.3,
    "woodcrest": 1.65,
}

#: Stage cycle costs on SandyBridge (problem rendering is PHP-heavy).
_STAGE_CYCLES = {
    "php": 50e6,      # ~16 ms: Perl/PHP problem processing
    "mysql": 9e6,     # ~3 ms: problem set and user state queries
    "latex": 24e6,    # ~8 ms: content rendering
    "dvipng": 15e6,   # ~5 ms: image rendering
}

PHP_PROFILE = RateProfile(
    name="webwork-php", ipc=1.5, flops_per_cycle=0.01,
    cache_per_cycle=0.006, mem_per_cycle=0.002,
)
MYSQL_PROFILE = RateProfile(
    name="webwork-mysql", ipc=0.9, cache_per_cycle=0.012, mem_per_cycle=0.005,
)
LATEX_PROFILE = RateProfile(
    name="webwork-latex", ipc=1.2, flops_per_cycle=0.30,
    cache_per_cycle=0.012, mem_per_cycle=0.005,
)
DVIPNG_PROFILE = RateProfile(
    name="webwork-dvipng", ipc=1.1, flops_per_cycle=0.10,
    cache_per_cycle=0.014, mem_per_cycle=0.007,
)


class WeBWorKWorkload(Workload):
    """Problem-solving requests through the four-stage pipeline."""

    name = "webwork"

    def __init__(
        self,
        n_workers: int = 10,
        n_problem_sets: int = 3000,
        popular_only: bool = False,
        db_bytes: float = 8192.0,
    ) -> None:
        self.n_workers = n_workers
        self.n_problem_sets = n_problem_sets
        #: When set, requests draw only from the 10 most popular problem
        #: sets (the paper's Fig. 10 "new composition" for WeBWorK).
        self.popular_only = popular_only
        self.db_bytes = db_bytes

    #: Fraction of site traffic hitting the ten most popular problem sets
    #: (real request logs are heavily skewed).
    POPULAR_TRAFFIC_SHARE = 0.3
    #: Probability a popular problem's rendered image is already cached, so
    #: the dvipng stage is skipped.
    POPULAR_IMAGE_CACHE_HIT = 0.8
    STANDARD_IMAGE_CACHE_HIT = 0.1

    def request_types(self) -> list[str]:
        return ["popular", "standard"]

    def sample_request(self, rng: np.random.Generator) -> RequestSpec:
        popular = self.popular_only or bool(
            rng.random() < self.POPULAR_TRAFFIC_SHARE
        )
        if popular:
            problem_set = int(rng.integers(0, 10))
            # Popular problems skew simpler (pre-calculus end of the range).
            difficulty = 0.55 + 0.1 * float(rng.random())
            cached = bool(rng.random() < self.POPULAR_IMAGE_CACHE_HIT)
        else:
            problem_set = int(rng.integers(10, self.n_problem_sets))
            # Problem sets range pre-calculus .. differential equations.
            difficulty = 0.5 + 1.0 * float(rng.random())
            cached = bool(rng.random() < self.STANDARD_IMAGE_CACHE_HIT)
        return RequestSpec(
            rtype="popular" if popular else "standard",
            params={
                "problem_set": problem_set,
                "difficulty": difficulty,
                "image_cached": cached,
            },
        )

    def stage_cycles(self, stage: str, difficulty: float, arch: str) -> float:
        """Cycle cost of one stage for a problem of given difficulty."""
        return _STAGE_CYCLES[stage] * difficulty * _ARCH_DEMAND_SCALE[arch]

    def mean_demand_seconds(self, arch: str) -> float:
        spec_freq = {"sandybridge": 3.10e9, "westmere": 2.26e9,
                     "woodcrest": 3.00e9}[arch]
        if self.popular_only:
            mean_difficulty = 0.6
            dvipng_weight = 1.0 - self.POPULAR_IMAGE_CACHE_HIT
        else:
            share = self.POPULAR_TRAFFIC_SHARE
            mean_difficulty = share * 0.6 + (1 - share) * 1.0
            dvipng_weight = share * (1 - self.POPULAR_IMAGE_CACHE_HIT) + (
                1 - share
            ) * (1 - self.STANDARD_IMAGE_CACHE_HIT)
        total = (
            _STAGE_CYCLES["php"]
            + _STAGE_CYCLES["mysql"]
            + _STAGE_CYCLES["latex"]
            + _STAGE_CYCLES["dvipng"] * dvipng_weight
        ) * mean_difficulty
        return total * _ARCH_DEMAND_SCALE[arch] / spec_freq

    def build_server(
        self, kernel: Kernel, facility: PowerContainerFacility
    ) -> Server:
        arch = kernel.machine.arch
        workload = self

        def mysql_handler_factory(message: Message):
            difficulty = message.payload

            def handler():
                yield Compute(
                    cycles=workload.stage_cycles("mysql", difficulty, arch),
                    profile=MYSQL_PROFILE,
                )
                yield DiskIO(nbytes=workload.db_bytes)
                return "rows"

            return handler()

        mysql = SubService(kernel, "mysql", mysql_handler_factory)

        def make_front_handler_factory(worker_index: int):
            # One persistent MySQL connection per Apache worker.
            db_endpoint = mysql.connect()

            def handler_factory(message: Message):
                _request_id, spec = message.payload
                difficulty = spec.params["difficulty"]

                def latex_program():
                    yield Compute(
                        cycles=workload.stage_cycles("latex", difficulty, arch),
                        profile=LATEX_PROFILE,
                    )

                def dvipng_program():
                    yield Compute(
                        cycles=workload.stage_cycles("dvipng", difficulty, arch),
                        profile=DVIPNG_PROFILE,
                    )

                def handler():
                    # Apache/PHP processing, split around the DB call.
                    php = workload.stage_cycles("php", difficulty, arch)
                    yield Compute(cycles=php * 0.6, profile=PHP_PROFILE)
                    yield Send(db_endpoint, nbytes=512, payload=difficulty)
                    yield Recv(db_endpoint)
                    yield Compute(cycles=php * 0.4, profile=PHP_PROFILE)
                    latex = yield Fork(latex_program(), name="latex")
                    yield WaitChild(latex)
                    if not spec.params["image_cached"]:
                        dvipng = yield Fork(dvipng_program(), name="dvipng")
                        yield WaitChild(dvipng)
                    return "page"

                return handler()

            return handler_factory

        return Server(
            kernel,
            self.name,
            n_workers=self.n_workers,
            reply_bytes=6144.0,
            worker_factory=make_front_handler_factory,
        )
