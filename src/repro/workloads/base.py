"""Workload framework: request specs, drivers, and run orchestration.

A :class:`Workload` knows how to build its server topology on a kernel, how
to sample request specifications, and what a request costs on each
microarchitecture (so the driver can convert a target utilization into a
Poisson arrival rate).  The :class:`OpenLoopDriver` mints a power container
per request, injects the tagged request message, and collects replies with
response times -- playing the role of the paper's test client.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.core.facility import PowerContainerFacility
from repro.core.container import PowerContainer
from repro.kernel import ContextTag, Kernel, Message
from repro.requests import RequestResult, RequestSpec
from repro.server.stages import Server

__all__ = [
    "RequestSpec",
    "RequestResult",
    "Workload",
    "OpenLoopDriver",
    "ClosedLoopDriver",
    "WorkloadRun",
    "LiveWorkloadRun",
    "prepare_workload",
    "run_workload",
]


class Workload:
    """Base class for workload models."""

    name: str = "workload"

    def request_types(self) -> list[str]:
        """Names of the request types this workload issues."""
        raise NotImplementedError

    def sample_request(self, rng: np.random.Generator) -> RequestSpec:
        """Draw one request according to the workload mix."""
        raise NotImplementedError

    def mean_demand_seconds(self, arch: str) -> float:
        """Expected total CPU demand of one request on the given arch."""
        raise NotImplementedError

    def driver_demand_seconds(self, arch: str) -> float:
        """Demand figure drivers use to convert load targets to rates.

        Workloads whose serving incurs proportional untracked overhead (the
        GAE runtime's background processing) inflate this so request work
        plus background together fill the target utilization.
        """
        return self.mean_demand_seconds(arch)

    def build_server(
        self, kernel: Kernel, facility: PowerContainerFacility
    ) -> Server:
        """Spawn the server topology; returns the front-end server."""
        raise NotImplementedError

    def request_bytes(self) -> float:
        """Size of a request message on the wire."""
        return 512.0


class OpenLoopDriver:
    """Poisson open-loop client driving one workload on one machine."""

    def __init__(
        self,
        kernel: Kernel,
        facility: PowerContainerFacility,
        workload: Workload,
        server: Server,
        load_fraction: float,
        rng: np.random.Generator,
        label_prefix: str = "",
    ) -> None:
        if not 0.0 < load_fraction <= 1.0:
            raise ValueError("load fraction must be in (0, 1]")
        self.kernel = kernel
        self.facility = facility
        self.workload = workload
        self.server = server
        self.load_fraction = load_fraction
        self.rng = rng
        self.label_prefix = label_prefix or workload.name
        demand = workload.driver_demand_seconds(kernel.machine.arch)
        if demand <= 0:
            raise ValueError("workload reports non-positive demand")
        #: Poisson arrival rate achieving the target utilization.
        self.rate = load_fraction * kernel.machine.n_cores / demand
        self.results: list[RequestResult] = []
        self.inflight: dict[int, tuple[RequestSpec, float, PowerContainer]] = {}
        self._next_request_id = 0
        self._deadline: Optional[float] = None
        server.client_side.on_message = self._on_reply

    # ------------------------------------------------------------------
    def start(self, duration: float) -> None:
        """Begin issuing arrivals for ``duration`` simulated seconds."""
        self._deadline = self.kernel.now + duration
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        gap = float(self.rng.exponential(1.0 / self.rate))
        arrival_time = self.kernel.now + gap
        if self._deadline is not None and arrival_time > self._deadline:
            return
        self.kernel.simulator.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        spec = self.workload.sample_request(self.rng)
        self.inject_request(spec)
        self._schedule_next_arrival()

    def inject_request(self, spec: RequestSpec) -> RequestResult | None:
        """Mint a container and inject one tagged request immediately."""
        request_id = self._next_request_id
        self._next_request_id += 1
        container = self.facility.create_request_container(
            label=f"{self.label_prefix}:{spec.rtype}",
            meta={
                "rtype": spec.rtype,
                "workload": self.workload.name,
                "params": dict(spec.params),
            },
        )
        # The in-flight message holds a container reference (on_send would
        # normally take it; injection bypasses the send hook).
        self.facility.registry.incref(container.id)
        now = self.kernel.now
        self.inflight[request_id] = (spec, now, container)
        self.server.inject(
            Message(
                nbytes=self.workload.request_bytes(),
                payload=(request_id, spec),
                tag=ContextTag(container_id=container.id),
            )
        )
        return None

    def _on_reply(self, message: Message) -> None:
        (request_id, _spec), _result = message.payload
        spec, arrival, container = self.inflight.pop(request_id)
        self.results.append(
            RequestResult(
                request_id=request_id,
                rtype=spec.rtype,
                arrival=arrival,
                completion=self.kernel.now,
                container=container,
            )
        )
        # Release the message reference (taken at inject) and the driver's.
        self.facility.registry.decref(container.id)
        self.facility.complete_request(container)

    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        """Requests completed so far."""
        return len(self.results)

    def results_of_type(self, rtype: str) -> list[RequestResult]:
        """Completed requests of one type."""
        return [r for r in self.results if r.rtype == rtype]

    def mean_response_time(self, rtype: Optional[str] = None) -> float:
        """Mean response time, optionally restricted to one type."""
        pool = self.results if rtype is None else self.results_of_type(rtype)
        if not pool:
            return 0.0
        return float(np.mean([r.response_time for r in pool]))

    def timeout_rate(self, threshold: float, now: Optional[float] = None) -> float:
        """Fraction of requests exceeding a latency threshold.

        Requests still in flight that have already waited past the
        threshold count as timed out (the paper sizes offered load as "the
        maximum volume that can be supported without excessive timeout").
        """
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        now = self.kernel.now if now is None else now
        finished_late = sum(
            1 for r in self.results if r.response_time > threshold
        )
        inflight_late = sum(
            1 for (_spec, arrival, _c) in self.inflight.values()
            if now - arrival > threshold
        )
        total = len(self.results) + len(self.inflight)
        if total == 0:
            return 0.0
        return (finished_late + inflight_late) / total

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Counters, deadline, RNG cursor; requests rendered for verification.

        Completed results and in-flight entries hold live container
        references, so they are captured as plain renders and verified on
        restore; the replayed objects are kept.
        """
        from repro.checkpoint.state import generator_state

        return {
            "v": 1,
            "rate": self.rate,
            "next_request_id": self._next_request_id,
            "deadline": self._deadline,
            "rng": generator_state(self.rng),
            "results": [
                [r.request_id, r.rtype, r.arrival, r.completion,
                 r.container.id]
                for r in self.results
            ],
            "inflight": {
                str(request_id): [spec.rtype, arrival, container.id]
                for request_id, (spec, arrival, container)
                in sorted(self.inflight.items())
            },
        }

    def restore_state(self, state: dict) -> None:
        from repro.checkpoint.state import set_generator_state

        if state.get("v") != 1:
            raise ValueError(
                f"unknown OpenLoopDriver snapshot version {state.get('v')!r}"
            )
        self.rate = state["rate"]
        self._next_request_id = state["next_request_id"]
        self._deadline = state["deadline"]
        set_generator_state(self.rng, state["rng"])


class ClosedLoopDriver:
    """A fixed population of synchronous clients with think time.

    Models the paper's test-client alternative: each of ``n_clients``
    issues one request, waits for the reply, thinks for an exponential
    think time, and repeats.  Offered load self-regulates with server
    speed (no unbounded queue growth at saturation), which is why closed
    loops are the standard choice for peak-load experiments.
    """

    def __init__(
        self,
        kernel: Kernel,
        facility: PowerContainerFacility,
        workload: Workload,
        server: Server,
        n_clients: int,
        think_time: float,
        rng: np.random.Generator,
        label_prefix: str = "",
    ) -> None:
        if n_clients <= 0:
            raise ValueError("need at least one client")
        if think_time < 0:
            raise ValueError("think time must be non-negative")
        self.kernel = kernel
        self.facility = facility
        self.workload = workload
        self.server = server
        self.n_clients = n_clients
        self.think_time = think_time
        self.rng = rng
        self.label_prefix = label_prefix or workload.name
        self.results: list[RequestResult] = []
        self.inflight: dict[int, tuple[RequestSpec, float, PowerContainer]] = {}
        self._next_request_id = 0
        self._deadline: Optional[float] = None
        server.client_side.on_message = self._on_reply

    def start(self, duration: float) -> None:
        """Start every client (staggered within one think time)."""
        self._deadline = self.kernel.now + duration
        for i in range(self.n_clients):
            stagger = float(self.rng.random()) * max(self.think_time, 1e-3)
            self.kernel.simulator.schedule(stagger, self._issue)

    def _issue(self) -> None:
        if self._deadline is not None and self.kernel.now >= self._deadline:
            return
        request_id = self._next_request_id
        self._next_request_id += 1
        spec = self.workload.sample_request(self.rng)
        container = self.facility.create_request_container(
            label=f"{self.label_prefix}:{spec.rtype}",
            meta={
                "rtype": spec.rtype,
                "workload": self.workload.name,
                "params": dict(spec.params),
            },
        )
        self.facility.registry.incref(container.id)
        self.inflight[request_id] = (spec, self.kernel.now, container)
        self.server.inject(
            Message(
                nbytes=self.workload.request_bytes(),
                payload=(request_id, spec),
                tag=ContextTag(container_id=container.id),
            )
        )

    def _on_reply(self, message: Message) -> None:
        (request_id, _spec), _result = message.payload
        spec, arrival, container = self.inflight.pop(request_id)
        self.results.append(
            RequestResult(
                request_id=request_id,
                rtype=spec.rtype,
                arrival=arrival,
                completion=self.kernel.now,
                container=container,
            )
        )
        self.facility.registry.decref(container.id)
        self.facility.complete_request(container)
        think = float(self.rng.exponential(self.think_time)) \
            if self.think_time > 0 else 0.0
        self.kernel.simulator.schedule(think, self._issue)

    @property
    def completed(self) -> int:
        """Requests completed so far."""
        return len(self.results)

    def mean_response_time(self) -> float:
        """Mean response time across completed requests."""
        if not self.results:
            return 0.0
        return float(np.mean([r.response_time for r in self.results]))


@dataclass
class WorkloadRun:
    """Everything produced by :func:`run_workload`."""

    workload: Workload
    machine: Any
    kernel: Kernel
    facility: PowerContainerFacility
    driver: OpenLoopDriver
    duration: float
    measure_start: float
    measured_active_joules: float

    @property
    def measured_active_watts(self) -> float:
        """Ground-truth mean active power over the measurement window."""
        return self.measured_active_joules / (self.duration - self.measure_start)

    def results(self) -> list[RequestResult]:
        """Requests that completed inside the measurement window."""
        return [r for r in self.driver.results if r.arrival >= self.measure_start]


def meter_setup_for(spec, calibration, machine, simulator) -> dict[str, Any]:
    """Facility keyword arguments wiring the machine's available meter.

    SandyBridge uses its on-chip package meter (1 ms period, ~1 ms delay).
    The other machines use a Wattsup-style wall meter with its ~1.2 s
    delivery delay; its reporting period is shortened from the physical 1 s
    to 0.25 s so short simulations still collect enough aligned samples --
    a documented substitution that preserves the coarse+delayed character
    (the paper's runs last minutes, ours seconds).
    """
    from repro.hardware.meters import PackageMeter, WallMeter

    if spec.has_package_meter:
        return dict(
            meter=PackageMeter(machine, simulator, period=1e-3, delay=1e-3),
            meter_idle_watts=calibration.package_idle_watts,
            meter_covers_peripherals=False,
            trace_period=1e-3,
            recalib_interval=0.25,
            max_delay_seconds=0.01,
        )
    return dict(
        meter=WallMeter(machine, simulator, period=0.25, delay=1.2),
        meter_idle_watts=calibration.idle_watts,
        meter_covers_peripherals=True,
        trace_period=0.25,
        recalib_interval=0.5,
        max_delay_seconds=2.0,
    )


@dataclass
class LiveWorkloadRun:
    """A fully built workload world whose clock has not finished running.

    :func:`prepare_workload` constructs everything -- machine, kernel,
    facility, server, driver -- and starts the arrival process, but does
    not advance the simulated clock.  Callers that just want the result
    call :meth:`finish`; the checkpoint runner instead schedules its
    auto-checkpoint ticks on :attr:`simulator` first, so snapshots land at
    deterministic safe-points while :meth:`finish` drives the same phases
    the one-shot path always ran.
    """

    workload: Workload
    machine: Any
    kernel: Kernel
    facility: PowerContainerFacility
    driver: OpenLoopDriver
    simulator: Any
    hub: Any
    duration: float
    warmup: float
    _start_energy: Optional[float] = None

    @property
    def measure_started(self) -> bool:
        """Whether the warmup boundary checkpoint has been taken."""
        return self._start_energy is not None

    def finish(self) -> WorkloadRun:
        """Drive the clock to the end and package the measurement.

        Phase-for-phase identical to the historical ``run_workload`` body:
        run to warmup, checkpoint the machine and latch the active-energy
        baseline, run to the duration, flush, checkpoint again.  Phases
        already completed (a resumed world rejoining mid-run) are skipped.
        """
        if self.simulator.now < self.warmup:
            self.simulator.run_until(self.warmup)
        if self._start_energy is None:
            self.machine.checkpoint()
            self._start_energy = self.machine.integrator.active_joules
        self.simulator.run_until(self.duration)
        self.facility.flush()
        self.machine.checkpoint()
        measured = self.machine.integrator.active_joules - self._start_energy
        return WorkloadRun(
            workload=self.workload,
            machine=self.machine,
            kernel=self.kernel,
            facility=self.facility,
            driver=self.driver,
            duration=self.duration,
            measure_start=self.warmup,
            measured_active_joules=measured,
        )

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self) -> dict:
        """The run's own phase marker: the latched energy baseline."""
        return {"v": 1, "start_energy": self._start_energy}

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown LiveWorkloadRun snapshot version {state.get('v')!r}"
            )
        self._start_energy = state["start_energy"]


def prepare_workload(
    workload: Workload,
    spec,
    calibration,
    load_fraction: float,
    duration: float = 8.0,
    warmup: float = 1.0,
    seed: int = 0,
    facility_kwargs: Optional[dict[str, Any]] = None,
    conditioner_factory=None,
    background_factory=None,
    with_meter: bool = True,
) -> LiveWorkloadRun:
    """Build the workload world and start arrivals, without running it.

    Everything :func:`run_workload` did before touching the clock: build
    the machine/kernel/facility, wire the meter, start tracing, spawn the
    server, and start the open-loop driver for ``duration`` seconds.
    """
    from repro.hardware.specs import build_machine
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngHub

    sim = Simulator()
    machine = build_machine(spec, sim)
    kernel = Kernel(machine, sim)
    kwargs: dict[str, Any] = {}
    if with_meter:
        kwargs.update(meter_setup_for(spec, calibration, machine, sim))
    if facility_kwargs:
        kwargs.update(facility_kwargs)
    facility = PowerContainerFacility(kernel, calibration, **kwargs)
    if conditioner_factory is not None:
        facility.attach_conditioner(conditioner_factory(kernel))
    facility.start_tracing()
    if background_factory is not None:
        background_factory(kernel, facility)

    hub = RngHub(seed)
    server = workload.build_server(kernel, facility)
    driver = OpenLoopDriver(
        kernel, facility, workload, server,
        load_fraction=load_fraction, rng=hub.stream("arrivals"),
    )
    driver.start(duration)
    return LiveWorkloadRun(
        workload=workload,
        machine=machine,
        kernel=kernel,
        facility=facility,
        driver=driver,
        simulator=sim,
        hub=hub,
        duration=duration,
        warmup=warmup,
    )


def run_workload(
    workload: Workload,
    spec,
    calibration,
    load_fraction: float,
    duration: float = 8.0,
    warmup: float = 1.0,
    seed: int = 0,
    facility_kwargs: Optional[dict[str, Any]] = None,
    conditioner_factory=None,
    background_factory=None,
    with_meter: bool = True,
) -> WorkloadRun:
    """Run one workload at one load level on one machine model.

    ``spec`` is a :class:`~repro.hardware.specs.MachineSpec`;
    ``calibration`` its :class:`~repro.core.calibration.CalibrationResult`.
    The measurement window excludes ``warmup`` seconds at the start.
    ``with_meter`` wires the machine's meter for online recalibration.
    """
    live = prepare_workload(
        workload,
        spec,
        calibration,
        load_fraction,
        duration=duration,
        warmup=warmup,
        seed=seed,
        facility_kwargs=facility_kwargs,
        conditioner_factory=conditioner_factory,
        background_factory=background_factory,
        with_meter=with_meter,
    )
    return live.finish()
