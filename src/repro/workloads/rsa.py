"""RSA-crypto: synthetic security-processing workload (Section 4.2).

Each request runs RSA encryption/decryption with one of three key sizes
(the three example keys shipped with OpenSSL).  The work is pure
high-instruction-rate CPU: no I/O, no downstream stages.

Cross-machine behaviour: RSA benefits enormously from the newer
microarchitecture (wide issue, fast multipliers), so SandyBridge executes a
request in far fewer cycles than Woodcrest -- this workload anchors the low
end (0.22) of the paper's Fig. 13 energy-ratio range.
"""

from __future__ import annotations

import numpy as np

from repro.core.facility import PowerContainerFacility
from repro.hardware.events import RateProfile
from repro.kernel import Compute, Kernel, Message
from repro.server.stages import Server
from repro.workloads.base import RequestSpec, Workload

#: Cycle cost of one request per key type, on SandyBridge.
_BASE_DEMAND_CYCLES = {
    "key-small": 37e6,    # ~12 ms at 3.1 GHz
    "key-medium": 74e6,   # ~24 ms
    "key-large": 150e6,   # ~48 ms
}

#: Relative cycle inflation per microarchitecture (RSA is the paper's most
#: architecture-sensitive workload).
_ARCH_DEMAND_SCALE = {
    "sandybridge": 1.0,
    "westmere": 1.7,
    "woodcrest": 3.2,
}

#: Per-key activity profiles: larger keys have bigger operand working sets,
#: so their per-cycle cache/memory traffic (and hence power) is higher --
#: the compositional power difference that defeats CPU-utilization-
#: proportional prediction in Fig. 10.
_PROFILES = {
    "key-small": RateProfile(
        name="rsa-small", ipc=2.6, flops_per_cycle=0.02,
        cache_per_cycle=0.0005, mem_per_cycle=0.0001,
    ),
    "key-medium": RateProfile(
        name="rsa-medium", ipc=2.4, flops_per_cycle=0.05,
        cache_per_cycle=0.001, mem_per_cycle=0.0003,
    ),
    "key-large": RateProfile(
        name="rsa-large", ipc=2.0, flops_per_cycle=0.30,
        cache_per_cycle=0.018, mem_per_cycle=0.008,
    ),
}


class RsaCryptoWorkload(Workload):
    """Three request types, one per OpenSSL example key."""

    name = "rsa-crypto"

    def __init__(
        self,
        mix: dict[str, float] | None = None,
        n_workers: int = 12,
        demand_jitter: float = 0.05,
    ) -> None:
        self.mix = mix if mix is not None else {
            "key-small": 1 / 3, "key-medium": 1 / 3, "key-large": 1 / 3
        }
        unknown = set(self.mix) - set(_BASE_DEMAND_CYCLES)
        if unknown:
            raise ValueError(f"unknown request types: {sorted(unknown)}")
        total = sum(self.mix.values())
        if total <= 0:
            raise ValueError("mix weights must sum to a positive value")
        self.mix = {k: v / total for k, v in self.mix.items()}
        self.n_workers = n_workers
        self.demand_jitter = demand_jitter
        self._rng = np.random.default_rng(1234)

    def request_types(self) -> list[str]:
        return list(_BASE_DEMAND_CYCLES)

    def sample_request(self, rng: np.random.Generator) -> RequestSpec:
        names = list(self.mix)
        weights = [self.mix[n] for n in names]
        rtype = names[rng.choice(len(names), p=weights)]
        jitter = float(rng.normal(1.0, self.demand_jitter))
        return RequestSpec(rtype=rtype, params={"jitter": max(jitter, 0.5)})

    def demand_cycles(self, rtype: str, arch: str) -> float:
        """Cycle cost of one request of a type on an architecture."""
        return _BASE_DEMAND_CYCLES[rtype] * _ARCH_DEMAND_SCALE[arch]

    def mean_demand_seconds(self, arch: str) -> float:
        spec_freq = {"sandybridge": 3.10e9, "westmere": 2.26e9,
                     "woodcrest": 3.00e9}[arch]
        mean_cycles = sum(
            self.mix[t] * self.demand_cycles(t, arch) for t in self.mix
        )
        return mean_cycles / spec_freq

    def build_server(
        self, kernel: Kernel, facility: PowerContainerFacility
    ) -> Server:
        arch = kernel.machine.arch

        def handler_factory(message: Message):
            _request_id, spec = message.payload
            cycles = self.demand_cycles(spec.rtype, arch) * spec.params["jitter"]
            profile = _PROFILES[spec.rtype]

            def handler():
                yield Compute(cycles=cycles, profile=profile)
                return "ok"

            return handler()

        return Server(kernel, self.name, handler_factory, self.n_workers)
