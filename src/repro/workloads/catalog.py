"""Catalog of the evaluation workloads (the six of Fig. 5)."""

from __future__ import annotations

from typing import Callable

from repro.workloads.base import Workload
from repro.workloads.gae import GaeHybridWorkload, GaeVosaoWorkload
from repro.workloads.rsa import RsaCryptoWorkload
from repro.workloads.solr import SolrWorkload
from repro.workloads.stress import StressWorkload
from repro.workloads.webwork import WeBWorKWorkload

#: Factories for fresh instances of every evaluation workload, in the
#: paper's figure order.
WORKLOADS: dict[str, Callable[[], Workload]] = {
    "rsa-crypto": RsaCryptoWorkload,
    "solr": SolrWorkload,
    "webwork": WeBWorKWorkload,
    "stress": StressWorkload,
    "gae-vosao": GaeVosaoWorkload,
    "gae-hybrid": GaeHybridWorkload,
}


def workload_by_name(name: str) -> Workload:
    """Instantiate a fresh workload by its catalog name."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        known = ", ".join(WORKLOADS)
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    return factory()
