"""Google App Engine workloads: Vosao CMS, background work, power viruses.

Three pieces from Section 4.2:

* **GAE-Vosao** -- collaborative web-content editing on the Vosao CMS over
  the GAE Java runtime, replaying a 9:1 read/write mix (modelled on the
  "Harry Potter" Wikipedia revision history).  Writes hit the local
  datastore (disk I/O).
* **GAE background processing** -- the runtime performs substantial work
  (suspected security management) with no traceable connection to any
  request; the paper charges it to a special background container and finds
  it near one third of total active power (Fig. 9).  Modelled as untracked
  daemon processes whose activity scales with the serving work.
* **Power virus** -- the paper's deliberately simple ~200-line Java virus:
  repeatedly writing one of every four bytes over a 16 MB block, keeping
  cache/memory and instruction pipelining simultaneously busy.  Requests
  occupy a core for about 100 ms and draw far more power than Vosao work.

**GAE-Hybrid** mixes Vosao requests and viruses at roughly half load each.
"""

from __future__ import annotations

import numpy as np

from repro.core.facility import PowerContainerFacility
from repro.hardware.events import RateProfile
from repro.kernel import Compute, DiskIO, Kernel, Message, Sleep
from repro.server.stages import Server
from repro.workloads.base import RequestSpec, Workload

_ARCH_DEMAND_SCALE = {
    "sandybridge": 1.0,
    "westmere": 1.25,
    "woodcrest": 1.5,
}

_SPEC_FREQ = {"sandybridge": 3.10e9, "westmere": 2.26e9, "woodcrest": 3.00e9}

VOSAO_READ_PROFILE = RateProfile(
    name="vosao-read", ipc=1.1, cache_per_cycle=0.007, mem_per_cycle=0.002,
)
VOSAO_WRITE_PROFILE = RateProfile(
    name="vosao-write", ipc=1.0, cache_per_cycle=0.009, mem_per_cycle=0.003,
)
#: The JVM/GAE runtime daemons: moderate, steady activity.
BACKGROUND_PROFILE = RateProfile(
    name="gae-background", ipc=1.0, cache_per_cycle=0.006, mem_per_cycle=0.002,
)
#: The simple byte-stomping virus: pipeline + cache/memory at once, with
#: power that core-level counters underrate.
VIRUS_PROFILE = RateProfile(
    name="gae-virus", ipc=2.1, cache_per_cycle=0.017, mem_per_cycle=0.011,
    hidden_watts=3.5,
)

#: Vosao request cycle costs on SandyBridge.
_READ_CYCLES = 28e6     # ~9 ms
_WRITE_CYCLES = 50e6    # ~16 ms + datastore write
#: Virus occupancy: ~100 ms of a core.
_VIRUS_CYCLES = 310e6


class GaeVosaoWorkload(Workload):
    """Vosao CMS editing at a 9:1 read/write ratio."""

    name = "gae-vosao"

    #: Fraction of busy CPU the GAE runtime's background daemons consume at
    #: peak load (the paper attributes almost one third of total active
    #: power to background processing, Fig. 9).
    BACKGROUND_CPU_SHARE = 0.31

    def __init__(
        self,
        n_workers: int = 12,
        read_fraction: float = 0.9,
        datastore_write_bytes: float = 32768.0,
        background_enabled: bool = True,
    ) -> None:
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read fraction must be in [0, 1]")
        self.n_workers = n_workers
        self.read_fraction = read_fraction
        self.datastore_write_bytes = datastore_write_bytes
        self.background_enabled = background_enabled

    def request_types(self) -> list[str]:
        return ["read", "write"]

    def sample_request(self, rng: np.random.Generator) -> RequestSpec:
        is_read = bool(rng.random() < self.read_fraction)
        jitter = max(float(rng.normal(1.0, 0.15)), 0.4)
        return RequestSpec(
            rtype="read" if is_read else "write", params={"jitter": jitter}
        )

    def demand_cycles(self, rtype: str, jitter: float, arch: str) -> float:
        """Cycle cost of one Vosao request."""
        base = _READ_CYCLES if rtype == "read" else _WRITE_CYCLES
        return base * jitter * _ARCH_DEMAND_SCALE[arch]

    def mean_demand_seconds(self, arch: str) -> float:
        mean_cycles = (
            self.read_fraction * _READ_CYCLES
            + (1 - self.read_fraction) * _WRITE_CYCLES
        ) * _ARCH_DEMAND_SCALE[arch]
        return mean_cycles / _SPEC_FREQ[arch]

    def driver_demand_seconds(self, arch: str) -> float:
        # Inflate the per-request demand so that request work plus the GAE
        # background daemons together fill the driver's target utilization.
        demand = self.mean_demand_seconds(arch)
        if self.background_enabled:
            demand /= 1.0 - self.BACKGROUND_CPU_SHARE
        return demand

    # ------------------------------------------------------------------
    def spawn_background(self, kernel: Kernel, server: Server) -> None:
        """Start the untracked GAE runtime daemons (Fig. 9's background).

        The runtime's housekeeping (suspected security management, GC)
        scales with serving activity: each daemon periodically performs
        work proportional to the requests served since its last wakeup, so
        background consumes about ``BACKGROUND_CPU_SHARE`` of busy CPU at
        any load level.  The daemons carry no request context, so their
        work lands in the background container.
        """
        if not self.background_enabled:
            return
        machine = kernel.machine
        share = self.BACKGROUND_CPU_SHARE
        per_request_cycles = (
            self.mean_demand_seconds(machine.arch)
            * machine.freq_hz
            * share
            / (1.0 - share)
        )
        n_daemons = machine.n_cores
        period = 20e-3

        for i in range(n_daemons):

            def daemon(offset=i):
                last_served = 0
                yield Sleep(period * (offset + 1) / n_daemons)
                while True:
                    served = server.requests_served
                    delta = served - last_served
                    last_served = served
                    cycles = per_request_cycles * delta / n_daemons
                    if cycles > 0:
                        yield Compute(cycles=cycles, profile=BACKGROUND_PROFILE)
                    yield Sleep(period)

            kernel.spawn(daemon(), f"gae-daemon{i}")  # no container: background

    def build_server(
        self, kernel: Kernel, facility: PowerContainerFacility
    ) -> Server:
        arch = kernel.machine.arch

        def handler_factory(message: Message):
            _request_id, spec = message.payload
            rtype = spec.rtype
            cycles = self.demand_cycles(rtype, spec.params["jitter"], arch)

            def handler():
                profile = (
                    VOSAO_READ_PROFILE if rtype == "read" else VOSAO_WRITE_PROFILE
                )
                yield Compute(cycles=cycles * 0.75, profile=profile)
                if rtype == "write":
                    yield DiskIO(nbytes=self.datastore_write_bytes)
                yield Compute(cycles=cycles * 0.25, profile=profile)
                return "page"

            return handler()

        server = Server(
            kernel, self.name, handler_factory, self.n_workers,
            reply_bytes=4096.0,
        )
        self.spawn_background(kernel, server)
        return server


class GaeHybridWorkload(GaeVosaoWorkload):
    """Vosao requests mixed with sporadic power viruses, half load each."""

    name = "gae-hybrid"

    def __init__(self, virus_load_share: float = 0.5, **kwargs) -> None:
        super().__init__(**kwargs)
        if not 0.0 <= virus_load_share < 1.0:
            raise ValueError("virus load share must be in [0, 1)")
        self.virus_load_share = virus_load_share

    def request_types(self) -> list[str]:
        return ["read", "write", "virus"]

    def _virus_request_fraction(self, arch: str) -> float:
        """Fraction of *requests* that are viruses for the load share.

        Viruses are much longer than Vosao requests, so a small request
        fraction carries half the load.
        """
        vosao_demand = super().mean_demand_seconds(arch)
        virus_demand = _VIRUS_CYCLES * _ARCH_DEMAND_SCALE[arch] / _SPEC_FREQ[arch]
        share = self.virus_load_share
        # share = f*virus / (f*virus + (1-f)*vosao)  =>  solve for f.
        return 1.0 / (1.0 + (virus_demand / vosao_demand) * (1 - share) / share)

    def sample_request(self, rng: np.random.Generator) -> RequestSpec:
        # Use a fixed reference arch for the mix decision; demand ratios are
        # nearly arch-independent so the load split stays close to target.
        if rng.random() < self._virus_request_fraction("sandybridge"):
            return RequestSpec(rtype="virus", params={"jitter": 1.0})
        return super().sample_request(rng)

    def demand_cycles(self, rtype: str, jitter: float, arch: str) -> float:
        if rtype == "virus":
            return _VIRUS_CYCLES * jitter * _ARCH_DEMAND_SCALE[arch]
        return super().demand_cycles(rtype, jitter, arch)

    def mean_demand_seconds(self, arch: str) -> float:
        f = self._virus_request_fraction(arch)
        vosao = super().mean_demand_seconds(arch)
        virus = _VIRUS_CYCLES * _ARCH_DEMAND_SCALE[arch] / _SPEC_FREQ[arch]
        return f * virus + (1 - f) * vosao

    def build_server(
        self, kernel: Kernel, facility: PowerContainerFacility
    ) -> Server:
        arch = kernel.machine.arch

        def handler_factory(message: Message):
            _request_id, spec = message.payload
            rtype = spec.rtype
            cycles = self.demand_cycles(rtype, spec.params["jitter"], arch)

            def handler():
                if rtype == "virus":
                    yield Compute(cycles=cycles, profile=VIRUS_PROFILE)
                    return "virus-done"
                profile = (
                    VOSAO_READ_PROFILE if rtype == "read" else VOSAO_WRITE_PROFILE
                )
                yield Compute(cycles=cycles * 0.75, profile=profile)
                if rtype == "write":
                    yield DiskIO(nbytes=self.datastore_write_bytes)
                yield Compute(cycles=cycles * 0.25, profile=profile)
                return "page"

            return handler()

        server = Server(
            kernel, self.name, handler_factory, self.n_workers,
            reply_bytes=4096.0,
        )
        self.spawn_background(kernel, server)
        return server
