"""An event-driven workload: Solr-style search on a single-process loop.

Wraps :class:`~repro.server.eventdriven.EventDrivenServer` in the standard
:class:`~repro.workloads.base.Workload` interface so the drivers,
validation, and distribution machinery all work on an event-driven
deployment.  One event-loop process per core keeps the machine utilized
(as nginx/node deployments run one worker per core).

Request tracking works through the future-work sync-trap inference; with
``track_user_level_stages=False`` on the facility, this workload is the
paper's worst case for OS-only tracking.
"""

from __future__ import annotations

import numpy as np

from repro.core.facility import PowerContainerFacility
from repro.hardware.events import RateProfile
from repro.kernel import Kernel, Message
from repro.server.eventdriven import EventDrivenServer
from repro.server.stages import CallbackEndpoint
from repro.workloads.base import RequestSpec, Workload

_PROFILE = RateProfile(
    name="event-solr", ipc=1.3, flops_per_cycle=0.02,
    cache_per_cycle=0.011, mem_per_cycle=0.004,
)
_BASE_MEAN_CYCLES = 40e6
_BASE_MIN_CYCLES = 5e6
_ARCH_DEMAND_SCALE = {"sandybridge": 1.0, "westmere": 1.25, "woodcrest": 1.55}


class _LoopGroup:
    """Facade over one event loop per core, Server-compatible."""

    def __init__(self, loops: list[EventDrivenServer], machine) -> None:
        self.loops = loops
        self.machine = machine
        self._next = 0
        self.client_side = CallbackEndpoint(machine, "event-solr.client")
        for loop in loops:
            loop.client_side.on_message = (
                lambda message: self.client_side.enqueue(message)
            )

    @property
    def requests_served(self) -> int:
        return sum(loop.requests_served for loop in self.loops)

    def inject(self, message: Message) -> None:
        """Round-robin requests over the per-core event loops."""
        loop = self.loops[self._next]
        self._next = (self._next + 1) % len(self.loops)
        loop.inject(message)


class EventDrivenSolrWorkload(Workload):
    """Search queries served by per-core event-loop processes."""

    name = "event-solr"

    def __init__(self, turn_cycles: float = 1e6) -> None:
        self.turn_cycles = turn_cycles

    def request_types(self) -> list[str]:
        return ["search"]

    def sample_request(self, rng: np.random.Generator) -> RequestSpec:
        extra = float(rng.exponential(1.0))
        return RequestSpec(rtype="search", params={"work_factor": extra})

    def demand_cycles(self, work_factor: float, arch: str) -> float:
        base = _BASE_MIN_CYCLES + work_factor * (
            _BASE_MEAN_CYCLES - _BASE_MIN_CYCLES
        )
        return base * _ARCH_DEMAND_SCALE[arch]

    def mean_demand_seconds(self, arch: str) -> float:
        freq = {"sandybridge": 3.10e9, "westmere": 2.26e9,
                "woodcrest": 3.00e9}[arch]
        return _BASE_MEAN_CYCLES * _ARCH_DEMAND_SCALE[arch] / freq

    def request_bytes(self) -> float:
        return 256.0

    def build_server(
        self, kernel: Kernel, facility: PowerContainerFacility
    ) -> _LoopGroup:
        arch = kernel.machine.arch

        def cycles_for(payload) -> float:
            _request_id, spec = payload
            return self.demand_cycles(spec.params["work_factor"], arch)

        loops = [
            EventDrivenServer(
                kernel, f"{self.name}-{i}", _PROFILE, cycles_for,
                turn_cycles=self.turn_cycles, reply_bytes=4096.0,
            )
            for i in range(kernel.machine.n_cores)
        ]
        return _LoopGroup(loops, kernel.machine)
