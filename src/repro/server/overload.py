"""Overload protection: admission control, load shedding, brownouts.

The ROADMAP's north star is a production-scale cluster under heavy traffic,
which means demand routinely *exceeds* capacity -- a regime PR 2's fault
tolerance (crashes, flaky meters) says nothing about.  This module makes
degradation a first-class, policy-driven mode instead of an emergent
failure:

* :class:`TokenBucket` -- per-machine admission rate limiting on the
  simulated clock (lazy refill, no wall clock, bit-reproducible);
* :class:`CircuitBreaker` -- a closed/open/half-open state machine per
  machine that *composes* with the dispatcher's PR 2 health-based exclusion
  (both are consulted by ``Dispatcher.is_dispatchable``);
* bounded per-machine **admission queues** with priority-aware eviction:
  when the queue is full, a high-priority arrival displaces the oldest
  lowest-priority waiter rather than being turned away;
* per-request **deadlines** propagated through
  :class:`~repro.requests.RequestSpec`: a request whose deadline has
  already passed is shed at admission or at dequeue, never served late;
* explicit :class:`ShedResult` outcomes -- every arrival terminates in
  exactly one of ``completed`` / ``shed`` / ``rejected``, with the shed set
  itself fingerprintable for the determinism gate.

The cluster-level brownout ladder (:mod:`repro.core.powercap`) drives the
``brownout_level`` attribute: at level 2 low-priority arrivals are shed, at
level 3 everything is rejected at admission.

All of this is opt-in: a :class:`~repro.server.dispatch.Dispatcher` without
an :class:`OverloadProtector` behaves exactly as before.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.requests import RequestSpec

#: Terminal outcomes an arrival can reach besides completion.
OUTCOME_SHED = "shed"
OUTCOME_REJECTED = "rejected"

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

_BREAKER_STATE_CODES = {BREAKER_CLOSED: 0.0, BREAKER_HALF_OPEN: 1.0,
                        BREAKER_OPEN: 2.0}


class TokenBucket:
    """A deterministic token bucket on the simulated clock.

    Refill is computed lazily from elapsed simulated time, so the bucket
    needs no timer events and two identically-seeded runs take identical
    admission decisions.
    """

    def __init__(
        self, rate: float, capacity: float, initial: Optional[float] = None
    ) -> None:
        if rate <= 0 or capacity <= 0:
            raise ValueError("token bucket rate and capacity must be positive")
        self.rate = rate
        self.capacity = capacity
        self.tokens = capacity if initial is None else min(initial, capacity)
        self._last_refill = 0.0
        self.accepted = 0
        self.denied = 0

    def refill(self, now: float) -> None:
        """Bring the token count current as of ``now``."""
        if now > self._last_refill:
            self.tokens = min(
                self.capacity, self.tokens + (now - self._last_refill) * self.rate
            )
            self._last_refill = now

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; count the decision."""
        self.refill(now)
        if self.tokens >= amount:
            self.tokens -= amount
            self.accepted += 1
            return True
        self.denied += 1
        return False

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "v": 1,
            "tokens": self.tokens,
            "last_refill": self._last_refill,
            "accepted": self.accepted,
            "denied": self.denied,
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown TokenBucket snapshot version {state.get('v')!r}"
            )
        self.tokens = state["tokens"]
        self._last_refill = state["last_refill"]
        self.accepted = state["accepted"]
        self.denied = state["denied"]


class CircuitBreaker:
    """Closed -> open -> half-open breaker guarding one machine.

    ``failure_threshold`` consecutive failures open the breaker; after
    ``reset_timeout`` simulated seconds the next :meth:`allow` query moves
    it to half-open, where at most ``half_open_probes`` dispatch attempts
    (noted via :meth:`note_attempt`) may probe the machine.  One recorded
    success closes the breaker; one failure re-opens it.

    This composes with the dispatcher's PR 2 exclusion window rather than
    replacing it: ``Dispatcher.is_dispatchable`` requires *both* the health
    window and the breaker to admit the machine.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 0.25,
        half_open_probes: int = 2,
    ) -> None:
        if failure_threshold < 1 or half_open_probes < 1:
            raise ValueError("breaker thresholds must be at least 1")
        if reset_timeout <= 0:
            raise ValueError("breaker reset timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self.state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_used = 0
        self.opened_count = 0
        self.closed_count = 0

    def allow(self, now: float) -> bool:
        """True when a dispatch to the guarded machine may proceed."""
        if self.state == BREAKER_OPEN:
            if now - self._opened_at >= self.reset_timeout:
                self.state = BREAKER_HALF_OPEN
                self._probes_used = 0
            else:
                return False
        if self.state == BREAKER_HALF_OPEN:
            return self._probes_used < self.half_open_probes
        return True

    def note_attempt(self) -> None:
        """Record that a dispatch attempt was actually made (probe budget)."""
        if self.state == BREAKER_HALF_OPEN:
            self._probes_used += 1

    def record_success(self, now: float) -> None:
        """A request served by the machine completed."""
        self._consecutive_failures = 0
        if self.state != BREAKER_CLOSED:
            self.closed_count += 1
            self.state = BREAKER_CLOSED

    def record_failure(self, now: float) -> None:
        """A dispatch to the machine failed (crash, dead pick, ...)."""
        self._consecutive_failures += 1
        tripped = (
            self.state == BREAKER_HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        )
        if tripped and self.state != BREAKER_OPEN:
            self.state = BREAKER_OPEN
            self._opened_at = now
            self.opened_count += 1

    @property
    def state_code(self) -> float:
        """Numeric state for stats export (0 closed, 1 half-open, 2 open)."""
        return _BREAKER_STATE_CODES[self.state]

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "v": 1,
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "opened_at": self._opened_at,
            "probes_used": self._probes_used,
            "opened_count": self.opened_count,
            "closed_count": self.closed_count,
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown CircuitBreaker snapshot version {state.get('v')!r}"
            )
        self.state = state["state"]
        self._consecutive_failures = state["consecutive_failures"]
        self._opened_at = state["opened_at"]
        self._probes_used = state["probes_used"]
        self.opened_count = state["opened_count"]
        self.closed_count = state["closed_count"]


@dataclass(frozen=True)
class ShedResult:
    """One arrival's terminal non-completion outcome, fully explicit.

    ``injections`` is how many times the request had been injected into a
    machine before this terminal outcome: 0 means it was turned away before
    ever minting a container (and therefore contributed zero attributed
    energy); >0 means it ran partially (e.g. its machine crashed and
    re-admission then refused it).
    """

    arrival_id: int
    rtype: str
    priority: int
    outcome: str  # OUTCOME_SHED | OUTCOME_REJECTED
    reason: str
    machine: str  # "" for cluster-wide decisions
    at: float
    injections: int = 0


@dataclass
class AdmissionTicket:
    """One arrival's identity as it flows through admission and retries."""

    arrival_id: int
    spec: RequestSpec
    arrived_at: float
    #: Times this request was injected into a machine (0 until admitted).
    injections: int = 0


@dataclass(frozen=True)
class OverloadConfig:
    """Tunables of the overload-protection subsystem (per machine)."""

    #: Concurrent admitted-and-injected requests per machine before queueing.
    max_inflight: int = 8
    #: Bounded admission queue depth per machine.
    queue_depth: int = 12
    #: Token-bucket refill rate (requests/second) per machine.
    bucket_rate: float = 400.0
    #: Token-bucket burst capacity per machine.
    bucket_capacity: float = 24.0
    #: Seconds from arrival to deadline (None disables deadlines).
    deadline_budget: Optional[float] = 0.25
    #: Number of priority classes drawn for unclassified arrivals.
    n_priorities: int = 3
    #: Brownout level 2 sheds arrivals with priority strictly below this.
    shed_floor_priority: int = 1
    breaker_failure_threshold: int = 3
    breaker_reset_timeout: float = 0.25
    breaker_half_open_probes: int = 2

    def __post_init__(self) -> None:
        if self.max_inflight < 1 or self.queue_depth < 0:
            raise ValueError("max_inflight must be >= 1 and queue_depth >= 0")
        if self.bucket_rate <= 0 or self.bucket_capacity <= 0:
            raise ValueError("token bucket parameters must be positive")
        if self.deadline_budget is not None and self.deadline_budget <= 0:
            raise ValueError("deadline budget must be positive (or None)")
        if self.n_priorities < 1:
            raise ValueError("need at least one priority class")


@dataclass
class _QueueEntry:
    ticket: AdmissionTicket
    workload: object
    enqueued_at: float


class _MachineAdmission:
    """Per-machine admission state: bucket, breaker, bounded queue."""

    def __init__(self, name: str, config: OverloadConfig) -> None:
        self.name = name
        self.bucket = TokenBucket(config.bucket_rate, config.bucket_capacity)
        self.breaker = CircuitBreaker(
            config.breaker_failure_threshold,
            config.breaker_reset_timeout,
            config.breaker_half_open_probes,
        )
        self.queue: list[_QueueEntry] = []
        self.inflight = 0
        self.queue_peak = 0
        self.evictions = 0


#: Admission decisions returned by :meth:`OverloadProtector.admit`.
DECISION_ADMIT = "admit"
DECISION_QUEUE = "queue"
DECISION_SHED = OUTCOME_SHED
DECISION_REJECT = OUTCOME_REJECTED


class OverloadProtector:
    """Cluster-wide overload-protection state attached to a dispatcher.

    The dispatcher calls :meth:`register_arrival` once per arriving
    request, :meth:`admit` after the placement policy picked a machine,
    :meth:`note_inject` / :meth:`on_complete` / :meth:`on_failover` as the
    request moves through serving, and :meth:`machine_available` from
    ``is_dispatchable`` so placement policies see the circuit breakers.

    Every arrival reaches exactly one terminal state:
    ``completed + shed + rejected + pending() == arrivals`` at all times,
    where ``pending()`` counts requests still queued, in flight, or waiting
    in a retry backoff.  The chaos harness asserts this identity.
    """

    def __init__(
        self,
        config: Optional[OverloadConfig] = None,
        priority_rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.config = config if config is not None else OverloadConfig()
        self.priority_rng = priority_rng
        #: Optional :class:`~repro.telemetry.Telemetry` handle (settable;
        #: the dispatcher propagates its own).  ``None`` keeps the
        #: admission pipeline byte-identical.
        self.telemetry = None
        #: Brownout ladder rung, driven by repro.core.powercap (0..3).
        self.brownout_level = 0
        self.machines: dict[str, _MachineAdmission] = {}
        self.shed_log: list[ShedResult] = []
        self.arrivals = 0
        self.admitted = 0  # admit decisions that led to an injection slot
        self.injections = 0
        self.completed = 0
        self.shed = 0
        self.rejected = 0
        self.queued_total = 0
        self.retry_pending = 0
        self.deadline_sheds = 0

    # ------------------------------------------------------------------
    # Binding & arrival classification
    # ------------------------------------------------------------------
    def bind(self, machine_names: list[str]) -> None:
        """Create per-machine admission state (called by the dispatcher)."""
        for name in machine_names:
            if name not in self.machines:
                self.machines[name] = _MachineAdmission(name, self.config)

    def register_arrival(self, spec: RequestSpec, now: float) -> AdmissionTicket:
        """Mint the arrival's ticket: priority class + absolute deadline."""
        arrival_id = self.arrivals
        self.arrivals += 1
        priority = spec.priority
        if self.priority_rng is not None:
            priority = int(self.priority_rng.integers(0, self.config.n_priorities))
        deadline = spec.deadline
        if deadline is None and self.config.deadline_budget is not None:
            deadline = now + self.config.deadline_budget
        spec = replace(spec, priority=priority, deadline=deadline)
        return AdmissionTicket(arrival_id=arrival_id, spec=spec, arrived_at=now)

    # ------------------------------------------------------------------
    # Admission pipeline
    # ------------------------------------------------------------------
    def admit(
        self, workload, ticket: AdmissionTicket, machine_name: str, now: float
    ) -> str:
        """Decide one arrival's fate at one machine.

        Returns one of ``admit`` / ``queue`` / ``shed`` / ``rejected``;
        the latter two are terminal and recorded in :attr:`shed_log`.
        """
        machine = self.machines[machine_name]
        spec = ticket.spec
        # Cluster-wide brownout gates first: they are the cheapest and the
        # most intentional ("the operator chose this degradation").
        if self.brownout_level >= 3:
            return self._terminal(
                ticket, OUTCOME_REJECTED, "brownout-reject", machine_name, now
            )
        if (
            self.brownout_level >= 2
            and spec.priority < self.config.shed_floor_priority
        ):
            return self._terminal(
                ticket, OUTCOME_SHED, "brownout-shed", machine_name, now
            )
        if spec.deadline is not None and now > spec.deadline:
            return self._terminal(
                ticket, OUTCOME_SHED, "deadline", machine_name, now
            )
        # Placement policies consult machine_available(), but a retry can
        # still race the breaker opening; re-check at the door.
        if not machine.breaker.allow(now):
            return self._terminal(
                ticket, OUTCOME_REJECTED, "circuit-open", machine_name, now
            )
        if not machine.bucket.try_take(now):
            return self._terminal(
                ticket, OUTCOME_REJECTED, "token-bucket", machine_name, now
            )
        if machine.inflight < self.config.max_inflight:
            self.admitted += 1
            return DECISION_ADMIT
        if len(machine.queue) < self.config.queue_depth:
            self._enqueue(machine, workload, ticket, now)
            return DECISION_QUEUE
        # Queue full: priority-aware shedding.  Displace the oldest
        # lowest-priority waiter when the arrival outranks it (a zero-depth
        # queue has no waiters to displace: straight to shedding).
        if machine.queue:
            victim_index = min(
                range(len(machine.queue)),
                key=lambda i: machine.queue[i].ticket.spec.priority,
            )
            victim = machine.queue[victim_index]
            if victim.ticket.spec.priority < spec.priority:
                machine.queue.pop(victim_index)
                machine.evictions += 1
                self._terminal(
                    victim.ticket, OUTCOME_SHED, "priority-evicted",
                    machine_name, now,
                )
                self._enqueue(machine, workload, ticket, now)
                return DECISION_QUEUE
        return self._terminal(
            ticket, OUTCOME_SHED, "queue-full", machine_name, now
        )

    def _enqueue(
        self, machine: _MachineAdmission, workload, ticket: AdmissionTicket,
        now: float,
    ) -> None:
        machine.queue.append(_QueueEntry(ticket, workload, now))
        self.queued_total += 1
        machine.queue_peak = max(machine.queue_peak, len(machine.queue))

    def _terminal(
        self,
        ticket: AdmissionTicket,
        outcome: str,
        reason: str,
        machine_name: str,
        now: float,
    ) -> str:
        self.shed_log.append(ShedResult(
            arrival_id=ticket.arrival_id,
            rtype=ticket.spec.rtype,
            priority=ticket.spec.priority,
            outcome=outcome,
            reason=reason,
            machine=machine_name,
            at=now,
            injections=ticket.injections,
        ))
        if outcome == OUTCOME_SHED:
            self.shed += 1
            if reason == "deadline":
                self.deadline_sheds += 1
        else:
            self.rejected += 1
        t = self.telemetry
        if t is not None and t.enabled:
            t.tracer.instant(
                now,
                "overload",
                f"request.{outcome}",
                {
                    "arrival": ticket.arrival_id,
                    "reason": reason,
                    "machine": machine_name,
                    "priority": ticket.spec.priority,
                },
            )
        return outcome

    def reject(
        self, ticket: AdmissionTicket, reason: str, now: float,
        machine_name: str = "",
    ) -> None:
        """Terminal rejection outside :meth:`admit` (e.g. retries exhausted)."""
        self._terminal(ticket, OUTCOME_REJECTED, reason, machine_name, now)

    # ------------------------------------------------------------------
    # Serving lifecycle callbacks (dispatcher-driven)
    # ------------------------------------------------------------------
    def note_inject(self, machine_name: str, ticket: AdmissionTicket) -> None:
        """An admitted request was handed to the machine's server."""
        machine = self.machines[machine_name]
        machine.inflight += 1
        machine.breaker.note_attempt()
        ticket.injections += 1
        self.injections += 1

    def on_complete(
        self, machine_name: str, now: float
    ) -> list[_QueueEntry]:
        """A request finished on ``machine_name``; drain its queue.

        Returns the entries (at most one, given one freed slot) the
        dispatcher must now inject; queued entries whose deadline expired
        while waiting are shed here, never returned.
        """
        self.completed += 1
        machine = self.machines[machine_name]
        machine.inflight = max(0, machine.inflight - 1)
        return self._pop_ready(machine, now)

    def on_failover(self, machine_name: str) -> None:
        """An in-flight request was stranded by a crash and re-enters dispatch."""
        machine = self.machines[machine_name]
        machine.inflight = max(0, machine.inflight - 1)

    def evict_queue(self, machine_name: str) -> list[_QueueEntry]:
        """Hand back every queued entry (crashed machine); queue empties."""
        machine = self.machines[machine_name]
        entries, machine.queue = machine.queue, []
        return entries

    def _pop_ready(
        self, machine: _MachineAdmission, now: float
    ) -> list[_QueueEntry]:
        ready: list[_QueueEntry] = []
        while machine.queue and machine.inflight + len(ready) < self.config.max_inflight:
            entry = machine.queue.pop(0)
            deadline = entry.ticket.spec.deadline
            if deadline is not None and now > deadline:
                self._terminal(
                    entry.ticket, OUTCOME_SHED, "deadline", machine.name, now
                )
                continue
            self.admitted += 1
            ready.append(entry)
        return ready

    # -- retry bookkeeping (requests sleeping in a dispatch backoff) ----
    def note_retry_scheduled(self) -> None:
        """A ticket entered a retry backoff (still pending, not lost)."""
        self.retry_pending += 1

    def note_retry_fired(self) -> None:
        """The backed-off ticket re-entered dispatch."""
        self.retry_pending = max(0, self.retry_pending - 1)

    # ------------------------------------------------------------------
    # Health / machine gating
    # ------------------------------------------------------------------
    def machine_available(self, machine_name: str, now: float) -> bool:
        """Circuit-breaker gate consulted by ``Dispatcher.is_dispatchable``."""
        machine = self.machines.get(machine_name)
        return machine is None or machine.breaker.allow(now)

    def on_machine_failure(self, machine_name: str, now: float) -> None:
        """Mirror of the dispatcher's health bookkeeping into the breaker."""
        machine = self.machines.get(machine_name)
        if machine is not None:
            machine.breaker.record_failure(now)

    def on_machine_success(self, machine_name: str, now: float) -> None:
        """A successful completion closes the machine's breaker."""
        machine = self.machines.get(machine_name)
        if machine is not None:
            machine.breaker.record_success(now)

    # ------------------------------------------------------------------
    # Accounting & export
    # ------------------------------------------------------------------
    def inflight_now(self) -> int:
        """Admitted requests currently being served."""
        return sum(m.inflight for m in self.machines.values())

    def queued_now(self) -> int:
        """Requests currently waiting in admission queues."""
        return sum(len(m.queue) for m in self.machines.values())

    def pending(self) -> int:
        """Arrivals not yet at a terminal state (queued/in-flight/backoff)."""
        return self.inflight_now() + self.queued_now() + self.retry_pending

    def accounting_gap(self) -> int:
        """Zero when every arrival is accounted for exactly once."""
        return self.arrivals - (
            self.completed + self.shed + self.rejected + self.pending()
        )

    def shed_fingerprint(self) -> str:
        """Stable digest of the full shed set (order-independent).

        Two identically-seeded runs must shed the *same* requests for the
        same reasons; this digest folds the whole set into one comparable
        value for chaos fingerprints.
        """
        canon = ";".join(
            f"{r.arrival_id}:{r.outcome}:{r.reason}:{r.machine}:{r.priority}"
            for r in sorted(self.shed_log, key=lambda r: r.arrival_id)
        )
        return hashlib.sha256(canon.encode()).hexdigest()[:12]

    def health_stats(self) -> dict[str, float]:
        """Stable-keyed overload counters (chaos/CI report material).

        .. deprecated::
            Kept as a thin compatibility schema; prefer
            :meth:`publish_metrics` + ``MetricsRegistry.snapshot()``, which
            expose the same counters under the unified ``overload_*``
            naming convention (see docs/observability.md).
        """
        stats = {
            "overload_arrivals": float(self.arrivals),
            "overload_admitted": float(self.admitted),
            "overload_injections": float(self.injections),
            "overload_completed": float(self.completed),
            "overload_shed": float(self.shed),
            "overload_rejected": float(self.rejected),
            "overload_queued_total": float(self.queued_total),
            "overload_queue_now": float(self.queued_now()),
            "overload_inflight_now": float(self.inflight_now()),
            "overload_retry_pending": float(self.retry_pending),
            "overload_deadline_sheds": float(self.deadline_sheds),
            "overload_accounting_gap": float(self.accounting_gap()),
            "brownout_level": float(self.brownout_level),
            # 48-bit digest of the shed set, exactly representable in a float.
            "shed_fingerprint": float(int(self.shed_fingerprint(), 16)),
        }
        for name in sorted(self.machines):
            machine = self.machines[name]
            stats[f"{name}_breaker_state"] = machine.breaker.state_code
            stats[f"{name}_breaker_opened"] = float(machine.breaker.opened_count)
            stats[f"{name}_bucket_denied"] = float(machine.bucket.denied)
            stats[f"{name}_queue_peak"] = float(machine.queue_peak)
            stats[f"{name}_queue_evictions"] = float(machine.evictions)
        return stats

    def publish_metrics(self, registry=None) -> None:
        """Mirror :meth:`health_stats` into a telemetry metrics registry.

        Keys already carrying the ``overload_`` prefix publish unchanged;
        the rest (``brownout_level``, ``shed_fingerprint``, per-machine
        breaker/queue counters) gain it, e.g. ``overload_brownout_level``
        and ``overload_<machine>_breaker_state``.  With no explicit
        ``registry`` the attached telemetry handle's registry is used;
        without either this is a no-op.
        """
        if registry is None:
            if self.telemetry is None:
                return
            registry = self.telemetry.registry
        for key, value in self.health_stats().items():
            name = key if key.startswith("overload_") else f"overload_{key}"
            registry.gauge(name).set(value)

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Counters, shed log, and per-machine admission state.

        Queued entries reference live workload/ticket objects, so queues
        are rendered as arrival-id lists for verification; the replayed
        queue objects are kept on restore and only numeric state (buckets,
        breakers, counters, the shed log) is imposed.
        """
        from repro.checkpoint.state import generator_state

        return {
            "v": 1,
            "brownout_level": self.brownout_level,
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "injections": self.injections,
            "completed": self.completed,
            "shed": self.shed,
            "rejected": self.rejected,
            "queued_total": self.queued_total,
            "retry_pending": self.retry_pending,
            "deadline_sheds": self.deadline_sheds,
            "priority_rng": (
                generator_state(self.priority_rng)
                if self.priority_rng is not None
                else None
            ),
            "shed_log": [
                [r.arrival_id, r.rtype, r.priority, r.outcome, r.reason,
                 r.machine, r.at, r.injections]
                for r in self.shed_log
            ],
            "machines": {
                name: {
                    "bucket": machine.bucket.snapshot_state(),
                    "breaker": machine.breaker.snapshot_state(),
                    "inflight": machine.inflight,
                    "queue_peak": machine.queue_peak,
                    "evictions": machine.evictions,
                    "queue": [
                        entry.ticket.arrival_id for entry in machine.queue
                    ],
                }
                for name, machine in sorted(self.machines.items())
            },
        }

    def restore_state(self, state: dict) -> None:
        from repro.checkpoint.state import set_generator_state

        if state.get("v") != 1:
            raise ValueError(
                f"unknown OverloadProtector snapshot version {state.get('v')!r}"
            )
        self.brownout_level = state["brownout_level"]
        self.arrivals = state["arrivals"]
        self.admitted = state["admitted"]
        self.injections = state["injections"]
        self.completed = state["completed"]
        self.shed = state["shed"]
        self.rejected = state["rejected"]
        self.queued_total = state["queued_total"]
        self.retry_pending = state["retry_pending"]
        self.deadline_sheds = state["deadline_sheds"]
        if self.priority_rng is not None and state["priority_rng"] is not None:
            set_generator_state(self.priority_rng, state["priority_rng"])
        self.shed_log = [
            ShedResult(
                arrival_id=entry[0], rtype=entry[1], priority=entry[2],
                outcome=entry[3], reason=entry[4], machine=entry[5],
                at=entry[6], injections=entry[7],
            )
            for entry in state["shed_log"]
        ]
        for name, machine_state in state["machines"].items():
            machine = self.machines[name]
            machine.bucket.restore_state(machine_state["bucket"])
            machine.breaker.restore_state(machine_state["breaker"])
            machine.inflight = machine_state["inflight"]
            machine.queue_peak = machine_state["queue_peak"]
            machine.evictions = machine_state["evictions"]
