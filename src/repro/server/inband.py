"""In-band cluster dispatching: the full Section 3.4 message path.

The benchmark-grade :class:`~repro.server.dispatch.Dispatcher` injects
requests directly into server listeners (a zero-cost dispatcher, fine for
energy comparisons).  This module builds the paper's *actual* topology:

* a dispatcher **machine** runs dispatcher worker **processes**;
* each server machine is reached over persistent cross-machine socket
  connections (one per dispatcher worker per server);
* request messages carry the container id outward (so the remote facility
  tracks the execution under the same identity), and response messages
  carry cumulative runtime/energy statistics back (merged into the
  dispatcher-side container by the facility's on_recv hook).

The dispatcher-side container therefore accumulates the request's *global*
cost: its own forwarding work plus the remote execution, which is what
cluster-wide accounting needs.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

import numpy as np

from repro.core.facility import PowerContainerFacility
from repro.hardware.events import RateProfile
from repro.kernel import (
    Compute,
    ContextTag,
    Kernel,
    Message,
    Recv,
    Send,
    SocketPair,
)
from repro.requests import RequestResult, RequestSpec
from repro.server.cluster import ClusterMachine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.base import Workload

#: Forwarding work per request on the dispatcher (parse + route + log).
DISPATCH_PROFILE = RateProfile(name="dispatch", ipc=1.2,
                               cache_per_cycle=0.004)
DISPATCH_CYCLES = 0.35e6  # ~0.1 ms at 3.1 GHz


class InBandDispatcher:
    """A dispatcher machine forwarding requests over tagged sockets."""

    def __init__(
        self,
        dispatcher_machine: ClusterMachine,
        servers: list[ClusterMachine],
        workload: Workload,
        choose_server: Optional[Callable[[RequestSpec], ClusterMachine]] = None,
        workers_per_server: int = 4,
        network_latency: float = 200e-6,
    ) -> None:
        self.member = dispatcher_machine
        self.kernel: Kernel = dispatcher_machine.kernel
        self.facility: PowerContainerFacility = dispatcher_machine.facility
        self.servers = servers
        self.workload = workload
        self._round_robin = 0
        self.choose_server = choose_server or self._default_choose
        self.results: list[RequestResult] = []
        self.inflight: dict[int, tuple[RequestSpec, float, object]] = {}
        self._next_request_id = 0
        # Persistent connections: per server, a pool of dispatcher workers
        # each owning one cross-machine socket.
        self._pools: dict[str, list] = {}
        for server in servers:
            if workload.name not in server.servers:
                raise ValueError(
                    f"workload {workload.name!r} not built on {server.name}"
                )
            # One reply router per server: front-end replies are matched to
            # the bridge that forwarded the request by request id.
            pending: dict[int, object] = {}
            self._install_reply_router(server, pending)
            pool = []
            for i in range(workers_per_server):
                conn = SocketPair.remote(
                    self.member.machine, server.machine,
                    name=f"disp-{server.name}-{i}", latency=network_latency,
                )
                inbox = SocketPair.local(self.member.machine,
                                         f"inbox-{server.name}-{i}")
                self.kernel.spawn(
                    self._worker_program(conn.a, inbox.b, server),
                    f"disp-{server.name}-{i}",
                )
                self._spawn_remote_bridge(server, conn.b, pending, i)
                pool.append(inbox.a)
            self._pools[server.name] = pool
        self._pool_cursor: dict[str, int] = {s.name: 0 for s in servers}

    # ------------------------------------------------------------------
    def _default_choose(self, spec: RequestSpec) -> ClusterMachine:
        server = self.servers[self._round_robin % len(self.servers)]
        self._round_robin += 1
        return server

    def _worker_program(self, remote_end, inbox, server):
        """Dispatcher worker: take a request, forward, await, reply."""
        while True:
            request = yield Recv(inbox)
            # Forwarding work runs under the request's container (the
            # tagged inbox segment rebound this worker).
            yield Compute(cycles=DISPATCH_CYCLES, profile=DISPATCH_PROFILE)
            yield Send(remote_end, nbytes=request.nbytes,
                       payload=request.payload)
            reply = yield Recv(remote_end)
            self._complete(reply)

    def _install_reply_router(self, server: ClusterMachine, pending) -> None:
        """Route front-end replies to the bridge that owns the request."""
        front = server.servers[self.workload.name]

        def router(message: Message) -> None:
            (request_id, _spec), _result = message.payload
            bridge_inbox = pending.pop(request_id)
            server.kernel.inject(
                bridge_inbox,
                Message(nbytes=message.nbytes, payload=message.payload,
                        tag=message.tag),
            )

        front.client_side.on_message = router

    def _spawn_remote_bridge(
        self, server: ClusterMachine, remote_end, pending, index: int
    ) -> None:
        """Server-side bridge thread: hand requests to the local front end
        over the persistent connection and relay replies back."""
        front = server.servers[self.workload.name]
        bridge_inbox = SocketPair.local(
            server.machine, f"bridge-{server.name}-{index}"
        )

        def bridge():
            while True:
                request = yield Recv(remote_end)
                request_id = request.payload[0]
                pending[request_id] = bridge_inbox.b
                # Sending via the client-side handle routes into the
                # front-end listener (its peer).
                yield Send(front.client_side, nbytes=request.nbytes,
                           payload=request.payload)
                reply = yield Recv(bridge_inbox.b)
                yield Send(remote_end, nbytes=reply.nbytes,
                           payload=reply.payload)

        server.kernel.spawn(bridge(), f"bridge-{server.name}-{index}")

    # ------------------------------------------------------------------
    def submit(self, spec: RequestSpec) -> None:
        """Accept one request at the dispatcher."""
        request_id = self._next_request_id
        self._next_request_id += 1
        container = self.facility.create_request_container(
            label=f"{self.workload.name}:{spec.rtype}",
            meta={"rtype": spec.rtype, "workload": self.workload.name,
                  "params": dict(spec.params)},
        )
        self.facility.registry.incref(container.id)
        server = self.choose_server(spec)
        pool = self._pools[server.name]
        cursor = self._pool_cursor[server.name]
        self._pool_cursor[server.name] = (cursor + 1) % len(pool)
        self.inflight[request_id] = (spec, self.kernel.now, container)
        self.kernel.inject(
            pool[cursor].peer,
            Message(
                nbytes=self.workload.request_bytes(),
                payload=(request_id, spec),
                tag=ContextTag(container_id=container.id),
            ),
        )

    def _complete(self, reply: Message) -> None:
        (request_id, _spec), _result = reply.payload
        spec, arrival, container = self.inflight.pop(request_id)
        self.results.append(
            RequestResult(
                request_id=request_id,
                rtype=spec.rtype,
                arrival=arrival,
                completion=self.kernel.now,
                container=container,
            )
        )
        self.facility.registry.decref(container.id)
        self.facility.complete_request(container)

    @property
    def completed(self) -> int:
        """Requests fully round-tripped through the cluster."""
        return len(self.results)

    def mean_response_time(self) -> float:
        """Mean end-to-end response time at the dispatcher."""
        if not self.results:
            return 0.0
        return float(np.mean([r.response_time for r in self.results]))
