"""Multi-stage server substrate and cluster assembly.

:mod:`~repro.server.stages` provides worker pools (Apache-style request
pooling on long-lived worker processes) and thread-per-connection
sub-services (MySQL-style) over persistent tagged sockets.
:mod:`~repro.server.cluster` assembles heterogeneous multi-machine clusters,
and :mod:`~repro.server.dispatch` implements the three request-distribution
policies of Section 4.4.
"""

from repro.server.stages import CallbackEndpoint, Server, SubService
from repro.server.cluster import ClusterMachine, HeterogeneousCluster
from repro.server.dispatch import (
    Dispatcher,
    MachineHeterogeneityAwarePolicy,
    NoAvailableMachine,
    SimpleLoadBalancePolicy,
    WorkloadHeterogeneityAwarePolicy,
)
from repro.server.inband import InBandDispatcher
from repro.server.eventdriven import EventDrivenServer
from repro.server.overload import (
    AdmissionTicket,
    CircuitBreaker,
    OverloadConfig,
    OverloadProtector,
    ShedResult,
    TokenBucket,
)

__all__ = [
    "CallbackEndpoint",
    "Server",
    "SubService",
    "ClusterMachine",
    "HeterogeneousCluster",
    "Dispatcher",
    "NoAvailableMachine",
    "SimpleLoadBalancePolicy",
    "MachineHeterogeneityAwarePolicy",
    "WorkloadHeterogeneityAwarePolicy",
    "InBandDispatcher",
    "EventDrivenServer",
    "AdmissionTicket",
    "CircuitBreaker",
    "OverloadConfig",
    "OverloadProtector",
    "ShedResult",
    "TokenBucket",
]
