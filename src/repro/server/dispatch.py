"""Request distribution policies over a heterogeneous cluster (Section 4.4).

Three policies, matching the paper's comparison:

* :class:`SimpleLoadBalancePolicy` -- equal load to each machine, oblivious
  to heterogeneity;
* :class:`MachineHeterogeneityAwarePolicy` -- load the more energy-efficient
  machine to a healthy utilization (~70%) before spilling to the other, but
  spill the *same request composition*;
* :class:`WorkloadHeterogeneityAwarePolicy` -- additionally use the power
  containers' per-request-type energy profiles: when spilling, displace the
  request types with the highest cross-machine energy ratio (cheapest to
  move) and keep high-affinity types on the efficient machine.

The :class:`Dispatcher` plays the paper's dispatcher machine: it mints a
container per request on the serving machine, injects the tagged request,
collects replies, and feeds completed-request energies into the
:class:`~repro.core.distribution.EnergyProfileTable`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.core.distribution import EnergyProfileTable
from repro.kernel import ContextTag, Message
from repro.requests import RequestResult, RequestSpec
from repro.server.cluster import ClusterMachine, HeterogeneousCluster
from repro.server.overload import (
    DECISION_ADMIT,
    AdmissionTicket,
    OverloadProtector,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.base import Workload


class NoAvailableMachine(RuntimeError):
    """Raised by a policy when no dispatchable machine exists right now."""


@dataclass(frozen=True)
class DispatchTicket:
    """One placed request as plain wire data (crosses process boundaries).

    A sharded run's coordinator samples the request (so RNG draws are
    shard-count independent), the scheduler binds it to a machine, and the
    ticket -- nothing but strings, numbers, and a params dict -- travels to
    whichever worker process owns that machine.  :meth:`to_wire` /
    :meth:`from_wire` round-trip through the checkpoint layer's plain-data
    discipline, so a ticket pickles to identical bytes in every process.
    """

    request_id: int
    workload: str
    rtype: str
    params: dict
    arrival: float
    machine: str
    attempt: int = 0

    def spec(self) -> RequestSpec:
        """Materialize the :class:`RequestSpec` a server handler expects."""
        return RequestSpec(rtype=self.rtype, params=dict(self.params))

    def to_wire(self) -> tuple:
        """Canonical plain-data rendering (sortable, picklable, diffable)."""
        return (
            self.request_id, self.workload, self.rtype,
            tuple(sorted(self.params.items())), self.arrival, self.machine,
            self.attempt,
        )

    @classmethod
    def from_wire(cls, wire: tuple) -> "DispatchTicket":
        """Rebuild a ticket from :meth:`to_wire` output."""
        request_id, workload, rtype, params, arrival, machine, attempt = wire
        return cls(
            request_id=request_id, workload=workload, rtype=rtype,
            params=dict(params), arrival=arrival, machine=machine,
            attempt=attempt,
        )


def _dispatchable(machine, dispatcher) -> bool:
    """True when a policy may choose ``machine``.

    Honors the machine's ``alive`` flag (crashed machines are never chosen)
    and the dispatcher's health-based exclusion window when present.  Both
    checks degrade gracefully for lightweight test doubles.
    """
    if not getattr(machine, "alive", True):
        return False
    checker = getattr(dispatcher, "is_dispatchable", None)
    return bool(checker(machine)) if checker is not None else True


class DispatchPolicy:
    """Chooses the serving machine for each arriving request."""

    def choose(
        self, workload: Workload, spec: RequestSpec, dispatcher: "Dispatcher"
    ) -> ClusterMachine:
        raise NotImplementedError


class SimpleLoadBalancePolicy(DispatchPolicy):
    """Round-robin: equal request volume to every dispatchable machine."""

    def __init__(self) -> None:
        self._next = 0

    def choose(self, workload, spec, dispatcher) -> ClusterMachine:
        machines = dispatcher.cluster.machines
        for _ in range(len(machines)):
            machine = machines[self._next]
            self._next = (self._next + 1) % len(machines)
            if _dispatchable(machine, dispatcher):
                return machine
        raise NoAvailableMachine("every cluster machine is down or excluded")

    # -- checkpoint protocol -------------------------------------------
    def snapshot_state(self) -> dict:
        return {"v": 1, "next": self._next}

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown policy snapshot version {state.get('v')!r}"
            )
        self._next = state["next"]


class MachineHeterogeneityAwarePolicy(DispatchPolicy):
    """Fill the preferred (efficient) machine to ~70% before spilling."""

    def __init__(
        self, preferred: str, fallback: str, utilization_threshold: float = 0.70
    ) -> None:
        self.preferred = preferred
        self.fallback = fallback
        self.utilization_threshold = utilization_threshold

    def _pick(self, dispatcher, *names: str) -> ClusterMachine:
        """First dispatchable machine in preference order."""
        for name in names:
            machine = dispatcher.cluster.by_name(name)
            if _dispatchable(machine, dispatcher):
                return machine
        raise NoAvailableMachine("every cluster machine is down or excluded")

    def choose(self, workload, spec, dispatcher) -> ClusterMachine:
        if dispatcher.smoothed_utilization(self.preferred) < self.utilization_threshold:
            return self._pick(dispatcher, self.preferred, self.fallback)
        return self._pick(dispatcher, self.fallback, self.preferred)


class WorkloadHeterogeneityAwarePolicy(MachineHeterogeneityAwarePolicy):
    """Spill preferentially the request types cheapest to displace.

    Until energy profiles exist for a type on both machines, it behaves like
    the machine-aware policy (the profiling bootstrap).  Once profiles are
    known, spilled load consists of the types whose cross-machine energy
    ratio is highest; types that benefit most from the efficient machine
    stay there unless it is severely overloaded.
    """

    def __init__(
        self,
        preferred: str,
        fallback: str,
        utilization_threshold: float = 0.70,
        overload_threshold: float = 0.92,
        ratio_split: float = 0.5,
    ) -> None:
        super().__init__(preferred, fallback, utilization_threshold)
        self.overload_threshold = overload_threshold
        #: Types with a ratio above this fraction of the known ratio range
        #: are considered displaceable.
        self.ratio_split = ratio_split

    def _displaceable(self, profile_key: str, dispatcher: "Dispatcher") -> bool:
        profiles = dispatcher.profiles
        if not (
            profiles.has_profile(self.preferred, profile_key)
            and profiles.has_profile(self.fallback, profile_key)
        ):
            return True  # unknown affinity: free to displace (bootstrap)
        ratios = {}
        for known in profiles.known_types(self.preferred):
            if profiles.has_profile(self.fallback, known):
                ratios[known] = profiles.ratio(known, self.preferred, self.fallback)
        if len(ratios) <= 1:
            return True
        lo, hi = min(ratios.values()), max(ratios.values())
        if hi - lo < 1e-9:
            return True
        threshold = lo + self.ratio_split * (hi - lo)
        return ratios[profile_key] >= threshold

    def choose(self, workload, spec, dispatcher) -> ClusterMachine:
        util = dispatcher.smoothed_utilization(self.preferred)
        if util < self.utilization_threshold:
            return self._pick(dispatcher, self.preferred, self.fallback)
        profile_key = f"{workload.name}:{spec.rtype}"
        if util < self.overload_threshold and not self._displaceable(
            profile_key, dispatcher
        ):
            return self._pick(dispatcher, self.preferred, self.fallback)
        return self._pick(dispatcher, self.fallback, self.preferred)


@dataclass
class ClusterRequestResult(RequestResult):
    """A completed cluster request, annotated with its serving machine."""

    machine_name: str = ""
    workload_name: str = ""


@dataclass
class _MachineDispatchHealth:
    """Dispatcher-side view of one machine's recent dispatch outcomes."""

    consecutive_failures: int = 0
    excluded_until: Optional[float] = None


class Dispatcher:
    """Open-loop request dispatcher over a heterogeneous cluster.

    Beyond placement, the dispatcher is the cluster's failure domain
    boundary: requests aimed at a crashed machine are retried elsewhere
    with exponential backoff, machines that keep failing are excluded from
    dispatch until a cooldown expires (then probed again, re-admitted on
    the first success), and replies from machines that crashed while
    serving are counted rather than crashing the dispatcher.
    """

    def __init__(
        self,
        cluster: HeterogeneousCluster,
        components: list[tuple[Workload, float]],
        policy: DispatchPolicy,
        request_rate: float,
        rng: np.random.Generator,
        utilization_sample_period: float = 5e-3,
        utilization_ewma_alpha: float = 0.12,
        max_retries: int = 3,
        retry_backoff: float = 5e-3,
        failure_threshold: int = 3,
        exclusion_cooldown: float = 0.25,
        overload: Optional[OverloadProtector] = None,
        telemetry=None,
    ) -> None:
        if request_rate <= 0:
            raise ValueError("request rate must be positive")
        total_share = sum(share for _, share in components)
        if total_share <= 0:
            raise ValueError("component shares must sum to a positive value")
        if max_retries < 0 or retry_backoff < 0:
            raise ValueError("retry settings must be non-negative")
        self.cluster = cluster
        self.components = [(w, share / total_share) for w, share in components]
        self.policy = policy
        self.request_rate = request_rate
        self.rng = rng
        self.profiles = EnergyProfileTable()
        self.results: list[ClusterRequestResult] = []
        self.inflight: dict[int, tuple] = {}
        self.dispatched_to: dict[str, int] = {
            m.name: 0 for m in cluster.machines
        }
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.failure_threshold = failure_threshold
        self.exclusion_cooldown = exclusion_cooldown
        #: Dispatch attempts that found no (or a dead) machine.
        self.dispatch_failures = 0
        #: Requests re-dispatched after a failed attempt.
        self.retries = 0
        #: Requests abandoned after exhausting ``max_retries``.
        self.dropped_requests = 0
        #: Requests failed over because their serving machine crashed.
        self.failed_over = 0
        #: Replies from requests already written off (machine crashed).
        self.late_replies = 0
        self._health: dict[str, _MachineDispatchHealth] = {
            m.name: _MachineDispatchHealth() for m in cluster.machines
        }
        #: Optional overload protection (admission control + shedding);
        #: ``None`` preserves the pre-overload dispatch path bit-for-bit.
        self.overload = overload
        if overload is not None:
            overload.bind([m.name for m in cluster.machines])
        #: Optional :class:`~repro.telemetry.Telemetry` handle; ``None``
        #: (the default) keeps the dispatch path byte-identical.
        self.telemetry = telemetry
        if overload is not None and overload.telemetry is None:
            overload.telemetry = telemetry
        self._next_request_id = 0
        self._deadline: Optional[float] = None
        self._util_ewma: dict[str, float] = {m.name: 0.0 for m in cluster.machines}
        self._util_period = utilization_sample_period
        self._util_alpha = utilization_ewma_alpha
        for member in cluster.machines:
            for server in member.servers.values():
                server.client_side.on_message = self._make_reply_handler(member)
            member.on_crash(self._handle_machine_crash)
            member.on_recover(self._handle_machine_recover)

    # ------------------------------------------------------------------
    def start(self, duration: float) -> None:
        """Begin Poisson arrivals and utilization sampling."""
        sim = self.cluster.simulator
        self._deadline = sim.now + duration
        sim.schedule_recurring(self._util_period, self._sample_utilization)
        self._schedule_next_arrival()

    def smoothed_utilization(self, machine_name: str) -> float:
        """EWMA utilization of one machine (the policy input)."""
        return self._util_ewma[machine_name]

    def _sample_utilization(self) -> None:
        sim = self.cluster.simulator
        for member in self.cluster.machines:
            current = member.utilization()
            previous = self._util_ewma[member.name]
            self._util_ewma[member.name] = (
                (1 - self._util_alpha) * previous + self._util_alpha * current
            )
        if self._deadline is not None and sim.now >= self._deadline:
            sim.current_event.cancel()

    def _schedule_next_arrival(self) -> None:
        sim = self.cluster.simulator
        gap = float(self.rng.exponential(1.0 / self.request_rate))
        if self._deadline is not None and sim.now + gap > self._deadline:
            return
        sim.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        workload = self._pick_component()
        spec = workload.sample_request(self.rng)
        t = self.telemetry
        if t is not None and t.enabled:
            t.tracer.instant(
                self.cluster.simulator.now,
                "dispatch",
                "request.arrival",
                {"rtype": spec.rtype, "workload": workload.name},
            )
        if self.overload is not None:
            ticket = self.overload.register_arrival(
                spec, self.cluster.simulator.now
            )
            self._overload_dispatch(workload, ticket, attempt=0)
        else:
            self._dispatch(workload, spec, attempt=0)
        self._schedule_next_arrival()

    def _pick_component(self) -> Workload:
        shares = [share for _, share in self.components]
        index = int(self.rng.choice(len(self.components), p=shares))
        return self.components[index][0]

    # ------------------------------------------------------------------
    # Machine health / retry machinery
    # ------------------------------------------------------------------
    def is_dispatchable(self, member) -> bool:
        """True when ``member`` is alive, not excluded, and breaker-open-free.

        Composes PR 2's health-based exclusion window with the overload
        protector's per-machine circuit breaker: a machine must pass both
        gates before a policy may choose it.
        """
        if not getattr(member, "alive", True):
            return False
        if self.overload is not None and not self.overload.machine_available(
            member.name, self.cluster.simulator.now
        ):
            return False
        health = self._health.get(member.name)
        if health is None or health.excluded_until is None:
            return True
        if self.cluster.simulator.now >= health.excluded_until:
            # Cooldown expired: let the next dispatch probe the machine.
            health.excluded_until = None
            return True
        return False

    def _record_failure(self, machine_name: str) -> None:
        health = self._health.setdefault(machine_name, _MachineDispatchHealth())
        health.consecutive_failures += 1
        if health.consecutive_failures >= self.failure_threshold:
            health.excluded_until = (
                self.cluster.simulator.now + self.exclusion_cooldown
            )
        if self.overload is not None:
            self.overload.on_machine_failure(
                machine_name, self.cluster.simulator.now
            )

    def _record_success(self, machine_name: str) -> None:
        health = self._health.setdefault(machine_name, _MachineDispatchHealth())
        health.consecutive_failures = 0
        health.excluded_until = None
        if self.overload is not None:
            self.overload.on_machine_success(
                machine_name, self.cluster.simulator.now
            )

    def _retry_later(self, workload: Workload, spec: RequestSpec, attempt: int) -> None:
        if attempt > self.max_retries:
            self.dropped_requests += 1
            return
        self.retries += 1
        backoff = self.retry_backoff * (2 ** (attempt - 1))
        self.cluster.simulator.schedule(
            backoff, self._dispatch, workload, spec, attempt,
            label="dispatch-retry",
        )

    def _dispatch(
        self, workload: Workload, spec: RequestSpec, attempt: int
    ) -> None:
        try:
            member = self.policy.choose(workload, spec, self)
        except NoAvailableMachine:
            self.dispatch_failures += 1
            self._retry_later(workload, spec, attempt + 1)
            return
        self._inject(workload, spec, member, attempt=attempt)

    # -- overload-protected dispatch path ------------------------------
    def _retry_overload(
        self, workload: Workload, ticket: AdmissionTicket, attempt: int
    ) -> None:
        """Backoff-retry one ticketed request, or reject it for good.

        The overload analogue of :meth:`_retry_later`: a ticket that runs
        out of retries reaches an *explicit* terminal state (rejected,
        reason ``retries-exhausted``) instead of vanishing into a counter.
        """
        assert self.overload is not None
        now = self.cluster.simulator.now
        if attempt > self.max_retries:
            self.dropped_requests += 1
            self.overload.reject(ticket, "retries-exhausted", now)
            return
        self.retries += 1
        self.overload.note_retry_scheduled()
        backoff = self.retry_backoff * (2 ** (attempt - 1))

        def fire() -> None:
            self.overload.note_retry_fired()
            self._overload_dispatch(workload, ticket, attempt)

        self.cluster.simulator.schedule(backoff, fire, label="dispatch-retry")

    def _overload_dispatch(
        self, workload: Workload, ticket: AdmissionTicket, attempt: int
    ) -> None:
        """Place one ticketed request through admission control."""
        assert self.overload is not None
        try:
            member = self.policy.choose(workload, ticket.spec, self)
        except NoAvailableMachine:
            self.dispatch_failures += 1
            self._retry_overload(workload, ticket, attempt + 1)
            return
        decision = self.overload.admit(
            workload, ticket, member.name, self.cluster.simulator.now
        )
        if decision == DECISION_ADMIT:
            self._inject(workload, ticket.spec, member, attempt=attempt,
                         ticket=ticket)
        # "queue" parks the ticket at the machine (drained on completion);
        # "shed"/"rejected" are terminal and already logged by the protector.

    def _inject(
        self,
        workload: Workload,
        spec: RequestSpec,
        member: ClusterMachine,
        attempt: int = 0,
        ticket: Optional[AdmissionTicket] = None,
    ) -> None:
        if not getattr(member, "alive", True):
            # The policy's pick crashed between choice and injection (or a
            # caller bypassed the policy): never hand work to a dead box.
            self.dispatch_failures += 1
            self._record_failure(member.name)
            if ticket is not None:
                self._retry_overload(workload, ticket, attempt + 1)
            else:
                self._retry_later(workload, spec, attempt + 1)
            return
        request_id = self._next_request_id
        self._next_request_id += 1
        container = member.facility.create_request_container(
            label=f"{workload.name}:{spec.rtype}",
            meta={
                "rtype": spec.rtype,
                "workload": workload.name,
                "params": dict(spec.params),
            },
        )
        member.facility.registry.incref(container.id)  # in-flight message ref
        now = self.cluster.simulator.now
        self.inflight[request_id] = (workload, spec, now, container, member,
                                     ticket)
        self.dispatched_to[member.name] += 1
        t = self.telemetry
        if t is not None and t.enabled:
            t.tracer.instant(
                now,
                "dispatch",
                "request.dispatch",
                {
                    "machine": member.name,
                    "container": container.id,
                    "attempt": attempt,
                },
            )
        if ticket is not None:
            self.overload.note_inject(member.name, ticket)
        member.servers[workload.name].inject(
            Message(
                nbytes=workload.request_bytes(),
                payload=(request_id, spec),
                tag=ContextTag(container_id=container.id),
            )
        )

    def _handle_machine_crash(self, member: ClusterMachine) -> None:
        """Fail over every in-flight request on a crashed machine.

        The requests' containers on the dead machine are released (their
        partial energy stays attributed there -- the work really did burn
        those joules) and the specs are re-dispatched to surviving
        machines through the normal retry path.
        """
        self._record_failure(member.name)
        self._health[member.name].excluded_until = float("inf")
        stranded = [
            (request_id, entry)
            for request_id, entry in self.inflight.items()
            if entry[4] is member
        ]
        for request_id, entry in stranded:
            workload, spec, _arrival, container, served_by, ticket = entry
            del self.inflight[request_id]
            served_by.facility.registry.decref(container.id)
            served_by.facility.complete_request(container)
            self.failed_over += 1
            if ticket is not None:
                self.overload.on_failover(served_by.name)
                self._retry_overload(workload, ticket, attempt=1)
            else:
                self._retry_later(workload, spec, attempt=1)
        if self.overload is not None:
            # Queued arrivals waiting at the dead machine re-enter dispatch
            # and will be re-admitted elsewhere (or shed) by the policy.
            for entry in self.overload.evict_queue(member.name):
                self._retry_overload(entry.workload, entry.ticket, attempt=1)

    def _handle_machine_recover(self, member: ClusterMachine) -> None:
        """Re-admit a recovered machine for dispatch immediately."""
        self._record_success(member.name)

    def _make_reply_handler(self, member: ClusterMachine):
        def on_reply(message: Message) -> None:
            (request_id, _spec), _result = message.payload
            entry = self.inflight.pop(request_id, None)
            if entry is None:
                # The serving machine crashed while this request was in
                # flight and the request was failed over; its late reply
                # must not crash the dispatcher or double-complete.
                self.late_replies += 1
                return
            workload, spec, arrival, container, served_by, ticket = entry
            now = self.cluster.simulator.now
            result = ClusterRequestResult(
                request_id=request_id,
                rtype=spec.rtype,
                arrival=arrival,
                completion=now,
                container=container,
                machine_name=served_by.name,
                workload_name=workload.name,
            )
            self.results.append(result)
            served_by.facility.registry.decref(container.id)
            served_by.facility.complete_request(container)
            self._record_success(served_by.name)
            self.profiles.record(
                served_by.name,
                f"{workload.name}:{spec.rtype}",
                container.total_energy(served_by.facility.primary),
            )
            if ticket is not None:
                # The freed slot drains the machine's admission queue.
                for queued in self.overload.on_complete(served_by.name, now):
                    self._inject(
                        queued.workload, queued.ticket.spec, served_by,
                        attempt=0, ticket=queued.ticket,
                    )

        return on_reply

    # ------------------------------------------------------------------
    def health_stats(self) -> dict[str, float]:
        """Robustness counters, named like the facility's ``health_stats``.

        Stable keys, float values: global dispatch counters, per-machine
        exclusion state, and (when overload protection is enabled) the
        protector's admission/shedding/breaker counters.  Chaos reports and
        the CI overload lane read this one schema.

        .. deprecated::
            Kept as a thin compatibility schema; prefer
            :meth:`publish_metrics` + ``MetricsRegistry.snapshot()``, which
            expose the same counters under the unified ``dispatch_*``
            naming convention (see docs/observability.md).
        """
        stats = {
            "completed": float(self.completed),
            "dispatch_failures": float(self.dispatch_failures),
            "retries": float(self.retries),
            "dropped_requests": float(self.dropped_requests),
            "failed_over": float(self.failed_over),
            "late_replies": float(self.late_replies),
        }
        now = self.cluster.simulator.now
        for name in sorted(self._health):
            health = self._health[name]
            stats[f"{name}_consecutive_failures"] = float(
                health.consecutive_failures
            )
            stats[f"{name}_excluded"] = (
                1.0
                if health.excluded_until is not None
                and now < health.excluded_until
                else 0.0
            )
            stats[f"{name}_dispatched"] = float(self.dispatched_to.get(name, 0))
        if self.overload is not None:
            stats.update(self.overload.health_stats())
        return stats

    def publish_metrics(self, registry=None) -> None:
        """Mirror :meth:`health_stats` into a telemetry metrics registry.

        Global and per-machine counters become ``dispatch_<key>`` gauges;
        merged overload-protector keys (already ``overload_*``-prefixed)
        are delegated to :meth:`OverloadProtector.publish_metrics` so they
        publish under their own prefix.  With no explicit ``registry`` the
        attached telemetry handle's registry is used; without either this
        is a no-op.
        """
        if registry is None:
            if self.telemetry is None:
                return
            registry = self.telemetry.registry
        overload_keys = (
            set(self.overload.health_stats()) if self.overload else set()
        )
        for key, value in self.health_stats().items():
            if key in overload_keys:
                continue
            registry.gauge(f"dispatch_{key}").set(value)
        if self.overload is not None:
            self.overload.publish_metrics(registry)

    def mean_response_time(
        self, workload_name: Optional[str] = None, since: float = 0.0
    ) -> float:
        """Mean response time, optionally per component workload."""
        pool = [
            r
            for r in self.results
            if r.arrival >= since
            and (workload_name is None or r.workload_name == workload_name)
        ]
        if not pool:
            return 0.0
        return float(np.mean([r.response_time for r in pool]))

    @property
    def completed(self) -> int:
        """Requests completed so far."""
        return len(self.results)

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Counters, health windows, profiles, and request bookkeeping.

        Completed results and in-flight entries reference live container,
        machine, and ticket objects; they are rendered as plain data for
        restore-time verification, and the (verified-equal) replayed
        objects are kept.  Numeric state -- counters, EWMA table, health
        windows, the profile table, and the policy cursor -- is imposed.
        """
        from repro.checkpoint.state import generator_state

        policy_state = None
        snapshot = getattr(self.policy, "snapshot_state", None)
        if snapshot is not None:
            policy_state = snapshot()
        return {
            "v": 1,
            "next_request_id": self._next_request_id,
            "deadline": self._deadline,
            "dispatch_failures": self.dispatch_failures,
            "retries": self.retries,
            "dropped_requests": self.dropped_requests,
            "failed_over": self.failed_over,
            "late_replies": self.late_replies,
            "dispatched_to": dict(sorted(self.dispatched_to.items())),
            "util_ewma": dict(sorted(self._util_ewma.items())),
            "health": {
                name: [h.consecutive_failures, h.excluded_until]
                for name, h in sorted(self._health.items())
            },
            "rng": generator_state(self.rng),
            "profiles": self.profiles.snapshot_state(),
            "policy": policy_state,
            "results": [
                [r.request_id, r.rtype, r.arrival, r.completion,
                 r.container.id, r.machine_name, r.workload_name]
                for r in self.results
            ],
            "inflight": {
                str(request_id): [
                    entry[0].name,  # workload
                    entry[1].rtype,
                    entry[2],  # arrival time
                    entry[3].id,  # container
                    entry[4].name,  # member
                    entry[5].arrival_id if entry[5] is not None else None,
                ]
                for request_id, entry in sorted(self.inflight.items())
            },
        }

    def restore_state(self, state: dict) -> None:
        from repro.checkpoint.state import set_generator_state

        if state.get("v") != 1:
            raise ValueError(
                f"unknown Dispatcher snapshot version {state.get('v')!r}"
            )
        self._next_request_id = state["next_request_id"]
        self._deadline = state["deadline"]
        self.dispatch_failures = state["dispatch_failures"]
        self.retries = state["retries"]
        self.dropped_requests = state["dropped_requests"]
        self.failed_over = state["failed_over"]
        self.late_replies = state["late_replies"]
        self.dispatched_to = dict(state["dispatched_to"])
        self._util_ewma = dict(state["util_ewma"])
        for name, (failures, excluded_until) in state["health"].items():
            health = self._health.setdefault(name, _MachineDispatchHealth())
            health.consecutive_failures = failures
            health.excluded_until = excluded_until
        set_generator_state(self.rng, state["rng"])
        self.profiles.restore_state(state["profiles"])
        restore = getattr(self.policy, "restore_state", None)
        if restore is not None and state["policy"] is not None:
            restore(state["policy"])
