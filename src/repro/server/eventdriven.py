"""An event-driven server: one process multiplexing many requests.

Section 3.3 names event-driven servers as the limitation of OS-only request
tracking: request stage transfers happen in user space (continuations
switched inside one process), invisible to sockets, fork, or scheduling.
The paper's future-work remedy -- trapping accesses to critical
synchronization data structures (after Whodunit) -- is implemented in this
reproduction: each continuation guards its state with a request-private
lock, every resume touches that lock (``SyncAccess``), and the facility
infers the stage transfer from the trapped access.

:class:`EventDrivenServer` serves requests in round-robin *turns* of a few
hundred microseconds each, the way an event loop interleaves callbacks.
With ``track_user_level_stages=True`` (the facility default) attribution is
correct; with it off, whole turns are charged to whichever request last
rebound the process -- the mis-attribution the paper warns about.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.hardware.events import RateProfile
from repro.kernel import Compute, Endpoint, Kernel, Recv, Send, SocketPair, SyncAccess
from repro.server.stages import CallbackEndpoint


class EventDrivenServer:
    """Single-process event-loop server with user-level continuations."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        profile: RateProfile,
        cycles_for: Callable[[object], float],
        turn_cycles: float = 1e6,
        reply_bytes: float = 2048.0,
    ) -> None:
        """``cycles_for(payload)`` gives a request's total compute demand;
        the loop executes it in ``turn_cycles`` slices."""
        self.kernel = kernel
        self.machine = kernel.machine
        self.name = name
        self.profile = profile
        self.cycles_for = cycles_for
        self.turn_cycles = turn_cycles
        self.reply_bytes = reply_bytes
        self.client_side = CallbackEndpoint(self.machine, f"{name}.client")
        self.listener = Endpoint(self.machine, f"{name}.listener")
        SocketPair(self.listener, self.client_side)
        self.requests_served = 0
        self.process = kernel.spawn(self._loop(), f"{name}-eventloop")

    def inject(self, message) -> None:
        """Deliver an externally generated (tagged) request message."""
        self.kernel.inject(self.listener, message)

    def _loop(self):
        #: Active continuations: (sync key, message, remaining cycles).
        continuations: deque = deque()
        while True:
            # Accept every buffered request; block only when fully idle.
            while self.listener.has_data or not continuations:
                message = yield Recv(self.listener, blocking=bool(
                    not continuations
                ))
                if message is None:
                    break
                key = f"{self.name}:req{message.payload[0]}"
                continuations.append(
                    [key, message, self.cycles_for(message.payload)]
                )
                # Creating the continuation initializes its lock while the
                # process is still bound to the arriving request's context
                # -- the access that teaches the OS the lock's identity.
                yield SyncAccess(key)
            # Run one turn of the next continuation.  Resuming it touches
            # the request's lock -- the OS-trappable stage transfer.
            entry = continuations.popleft()
            key, message, remaining = entry
            yield SyncAccess(key)
            slice_cycles = min(self.turn_cycles, remaining)
            yield Compute(cycles=slice_cycles, profile=self.profile)
            remaining -= slice_cycles
            if remaining > 1e-3:
                entry[2] = remaining
                continuations.append(entry)
            else:
                self.requests_served += 1
                yield Send(
                    self.listener,
                    nbytes=self.reply_bytes,
                    payload=(message.payload, "done"),
                )
