"""Heterogeneous cluster assembly (Section 4.4).

A :class:`HeterogeneousCluster` runs several simulated machines -- each with
its own kernel and power-container facility -- on one shared simulator, and
builds every component workload's server on every machine so the dispatcher
can place any request anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.core.calibration import CalibrationResult
from repro.core.facility import PowerContainerFacility
from repro.hardware.machine import Machine
from repro.hardware.specs import MachineSpec, build_machine
from repro.kernel import Kernel
from repro.server.stages import Server
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.base import Workload


@dataclass
class ClusterMachine:
    """One cluster member: machine + kernel + facility + per-workload servers."""

    spec: MachineSpec
    machine: Machine
    kernel: Kernel
    facility: PowerContainerFacility
    servers: dict[str, Server] = field(default_factory=dict)
    #: Active energy at the start of the measurement window.
    energy_mark: float = 0.0
    #: False while the machine is crashed: it accepts no new requests and
    #: dispatch policies must never choose it.
    alive: bool = True
    #: Times the machine has crashed (diagnostics / chaos reports).
    crash_count: int = 0
    _crash_listeners: list[Callable[["ClusterMachine"], None]] = field(
        default_factory=list, repr=False
    )
    _recover_listeners: list[Callable[["ClusterMachine"], None]] = field(
        default_factory=list, repr=False
    )

    @property
    def name(self) -> str:
        """Cluster-unique machine name."""
        return self.machine.name

    # -- failure model -------------------------------------------------
    def on_crash(self, listener: Callable[["ClusterMachine"], None]) -> None:
        """Subscribe to crash transitions (dispatchers fail over on these)."""
        self._crash_listeners.append(listener)

    def on_recover(self, listener: Callable[["ClusterMachine"], None]) -> None:
        """Subscribe to recovery transitions."""
        self._recover_listeners.append(listener)

    def crash(self) -> None:
        """The machine dies: stops accepting requests, in-flight work lost.

        The simulated hardware keeps integrating energy (a crashed box
        still draws idle power at the wall) but no new request may be
        dispatched until :meth:`recover`.
        """
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        for listener in list(self._crash_listeners):
            listener(self)

    def recover(self) -> None:
        """The machine comes back and may serve new requests again."""
        if self.alive:
            return
        self.alive = True
        for listener in list(self._recover_listeners):
            listener(self)

    def utilization(self) -> float:
        """Instantaneous fraction of busy cores (OS-visible)."""
        return self.machine.busy_core_count / self.machine.n_cores

    def mark_energy(self) -> None:
        """Start the measurement window for this machine."""
        self.machine.checkpoint()
        self.energy_mark = self.machine.integrator.active_joules

    def active_joules_since_mark(self) -> float:
        """Active energy accumulated since :meth:`mark_energy`."""
        self.machine.checkpoint()
        return self.machine.integrator.active_joules - self.energy_mark


class HeterogeneousCluster:
    """A set of machines serving the same workload components."""

    def __init__(self, simulator: Optional[Simulator] = None) -> None:
        self.simulator = simulator if simulator is not None else Simulator()
        self.machines: list[ClusterMachine] = []
        #: Name -> member index for O(1) :meth:`by_name` (hot in shard
        #: routing).  First-wins on duplicate names, matching the linear
        #: scan it replaced.
        self._by_name: dict[str, ClusterMachine] = {}

    def add_machine(
        self,
        spec: MachineSpec,
        calibration: CalibrationResult,
        name: Optional[str] = None,
        facility_kwargs: Optional[dict] = None,
        meter_factory: Optional[Callable[[Machine, Simulator], object]] = None,
    ) -> ClusterMachine:
        """Add one machine built from a spec and its calibration.

        ``meter_factory(machine, simulator)`` builds the member's power
        meter once the machine exists; the result is passed to the facility
        as its ``meter`` (so cluster members can have live per-machine
        telemetry, e.g. for the power-cap enforcer's degraded mode).
        """
        machine = build_machine(spec, self.simulator, name=name)
        kernel = Kernel(machine, self.simulator)
        kwargs = dict(facility_kwargs) if facility_kwargs else {}
        if meter_factory is not None:
            kwargs["meter"] = meter_factory(machine, self.simulator)
        facility = PowerContainerFacility(kernel, calibration, **kwargs)
        member = ClusterMachine(
            spec=spec, machine=machine, kernel=kernel, facility=facility
        )
        self.machines.append(member)
        self._by_name.setdefault(member.name, member)
        return member

    def build_workload(self, workload: "Workload") -> None:
        """Build the workload's server topology on every machine."""
        for member in self.machines:
            if workload.name in member.servers:
                raise ValueError(
                    f"workload {workload.name!r} already built on {member.name}"
                )
            member.servers[workload.name] = workload.build_server(
                member.kernel, member.facility
            )

    def by_name(self, name: str) -> ClusterMachine:
        """Look up a member machine by name (O(1) via the name index)."""
        member = self._by_name.get(name)
        if member is None:
            raise KeyError(f"no machine named {name!r} in cluster")
        return member

    def shard_partition(self, n_shards: int) -> list[list[str]]:
        """Partition member names round-robin into ``n_shards`` groups.

        Deterministic in cluster insertion order: machine ``i`` lands in
        shard ``i % n_shards``.  Sharded simulation builds one worker-local
        cluster per group; because members share no state, any grouping
        yields bit-identical per-machine results.
        """
        if n_shards < 1:
            raise ValueError("need at least one shard")
        groups: list[list[str]] = [[] for _ in range(n_shards)]
        for index, member in enumerate(self.machines):
            groups[index % n_shards].append(member.name)
        return groups

    def mark_energy(self) -> None:
        """Start the energy measurement window on every machine."""
        for member in self.machines:
            member.mark_energy()

    def total_active_joules_since_mark(self) -> float:
        """Combined active energy of all machines since the mark."""
        return sum(m.active_joules_since_mark() for m in self.machines)
