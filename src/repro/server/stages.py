"""Multi-stage server building blocks.

The paper's workloads run on high-throughput servers where each worker
process repeatedly serves many requests (request pooling) and stages talk
over *persistent* socket connections -- precisely the setting that motivates
per-segment context tagging (Section 3.3).

* :class:`Server` -- a pool of long-lived worker processes sharing a
  listener endpoint (an accept queue).  Each worker loops: receive a tagged
  request, run the workload handler inline (``yield from``), reply.
* :class:`SubService` -- a thread-per-connection backend (MySQL-style).
  Each front-end worker gets a dedicated persistent connection to its own
  service thread.
* :class:`CallbackEndpoint` -- a client-side endpoint whose deliveries
  invoke a Python callback, letting (non-process) request drivers observe
  replies.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.kernel import Endpoint, Kernel, Message, Recv, Send, SocketPair


class CallbackEndpoint(Endpoint):
    """An endpoint that hands delivered messages to a callback.

    Used by request drivers: replies sent on the front-end connection land
    here and complete the in-flight request synchronously.
    """

    def __init__(self, machine, name: str = "client") -> None:
        super().__init__(machine, name)
        self.on_message: Optional[Callable[[Message], None]] = None

    def enqueue(self, message: Message) -> None:
        if self.on_message is not None:
            self.on_message(message)
        else:  # pragma: no cover - misconfiguration guard
            super().enqueue(message)


#: A handler factory turns a request message into the generator that serves
#: it; the worker runs the generator inline and sends its return value back.
HandlerFactory = Callable[[Message], Generator]


class Server:
    """A pool of worker processes pooling request executions."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        handler_factory: Optional[HandlerFactory] = None,
        n_workers: int = 8,
        reply_bytes: float = 2048.0,
        worker_factory: Optional[Callable[[int], HandlerFactory]] = None,
    ) -> None:
        """Either ``handler_factory`` (shared by all workers) or
        ``worker_factory`` (called once per worker so each worker holds
        private state such as a persistent database connection) must be
        given."""
        if n_workers <= 0:
            raise ValueError("a server needs at least one worker")
        if (handler_factory is None) == (worker_factory is None):
            raise ValueError(
                "exactly one of handler_factory/worker_factory is required"
            )
        self.kernel = kernel
        self.machine = kernel.machine
        self.name = name
        self.reply_bytes = reply_bytes
        # Front-end connection: requests are injected at `listener`; replies
        # sent on `listener` arrive at `client_side` (the peer).
        self.client_side = CallbackEndpoint(self.machine, f"{name}.client")
        self.listener = Endpoint(self.machine, f"{name}.listener")
        SocketPair(self.listener, self.client_side)
        self.workers = []
        for i in range(n_workers):
            factory = (
                handler_factory if worker_factory is None else worker_factory(i)
            )
            self.workers.append(
                kernel.spawn(self._worker_program(factory), f"{name}-worker{i}")
            )
        self.requests_served = 0

    def _worker_program(self, handler_factory: HandlerFactory) -> Generator:
        while True:
            message = yield Recv(self.listener)
            handler = handler_factory(message)
            result = yield from handler
            self.requests_served += 1
            yield Send(
                self.listener,
                nbytes=self.reply_bytes,
                payload=(message.payload, result),
            )

    def inject(self, message: Message) -> None:
        """Deliver an externally generated (tagged) request message."""
        self.kernel.inject(self.listener, message)


class SubService:
    """Thread-per-connection backend stage (e.g. a database).

    ``connect()`` creates one persistent connection and a dedicated service
    thread for it, returning the front-end side endpoint.  The service
    thread inherits request contexts from the tagged segments it reads --
    the PHP-to-MySQL propagation of Section 3.3.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        handler_factory: HandlerFactory,
        reply_bytes: float = 1024.0,
    ) -> None:
        self.kernel = kernel
        self.machine = kernel.machine
        self.name = name
        self.handler_factory = handler_factory
        self.reply_bytes = reply_bytes
        self.threads = []

    def connect(self) -> Endpoint:
        """Create a persistent connection; returns the client-side end."""
        pair = SocketPair.local(self.machine, f"{self.name}.conn{len(self.threads)}")
        thread = self.kernel.spawn(
            self._thread_program(pair.b), f"{self.name}-thread{len(self.threads)}"
        )
        self.threads.append(thread)
        return pair.a

    def _thread_program(self, service_end: Endpoint) -> Generator:
        while True:
            message = yield Recv(service_end)
            handler = self.handler_factory(message)
            result = yield from handler
            yield Send(service_end, nbytes=self.reply_bytes, payload=result)
