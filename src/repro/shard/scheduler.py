"""WattsApp-style power-aware placement for the sharded cluster.

The scheduler lives entirely on the coordinator and operates on plain
data, so its decisions are byte-identical for any shard count.  Following
WattsApp (PAPERS.md), it:

* **predicts per-request power** from the power containers' accounting
  history -- every completion record carries the request's attributed
  energy, and the per-``(arch, workload:rtype)`` profile learns mean
  energy per request from them, bootstrapping from a calibration-derived
  estimate until enough samples exist.  The placement charge is the
  request's *epoch-averaged* draw (mean energy divided by the epoch
  length): requests are short relative to an epoch, so charging their
  full in-service watts for the whole barrier interval would overstate
  concurrency by the inverse duty cycle and shed load a real operator
  would happily serve;
* **places by headroom** -- racks and machines are ranked by predicted
  power headroom (lazy max-heaps keyed ``(-headroom, name)``, so ties
  break on the name and placement is deterministic);
* **oversubscribes rack caps** -- a rack's cap is a fraction of its
  members' aggregate peak, betting that requests rarely peak together; a
  request that fits no rack is deferred to the next epoch and, after
  ``max_defers`` epochs, shed (an explicit, fingerprinted outcome -- never
  a silent drop).

Every mutation happens in the coordinator's merged total order (placement
in arrival order, profile learning in completion order), which is what
keeps the learned profiles -- and therefore every subsequent placement --
independent of how machines are grouped into shards.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field

from repro.server.dispatch import DispatchTicket
from repro.shard.messages import CompletionRecord, FailoverRecord

#: Completions of one profile key required before the learned draw
#: replaces the calibration bootstrap.
MIN_PROFILE_SAMPLES = 8

#: Reason string recorded for requests shed after exhausting their defers.
SHED_NO_HEADROOM = "no-headroom"


@dataclass(frozen=True)
class MachineSlot:
    """Static description of one placeable machine."""

    name: str
    arch: str
    rack: int
    n_cores: int
    idle_watts: float
    peak_watts: float


@dataclass
class _MachineState:
    """Live placement state of one machine."""

    slot: MachineSlot
    predicted_watts: float
    alive: bool = True

    @property
    def headroom(self) -> float:
        return self.slot.peak_watts - self.predicted_watts


@dataclass
class _RackState:
    """Live placement state of one rack."""

    index: int
    cap_watts: float
    machine_names: list[str] = field(default_factory=list)
    predicted_watts: float = 0.0

    @property
    def headroom(self) -> float:
        return self.cap_watts - self.predicted_watts


@dataclass
class _Profile:
    """Accumulated accounting history for one ``(arch, key)`` pair."""

    count: int = 0
    energy_sum: float = 0.0
    service_sum: float = 0.0


class PowerAwareScheduler:
    """Headroom-based request placement with learned power profiles."""

    def __init__(
        self,
        machines: list[MachineSlot],
        rack_caps: dict[int, float],
        bootstrap_joules: dict[str, float],
        epoch_seconds: float,
        max_defers: int = 4,
    ) -> None:
        """``bootstrap_joules`` maps each arch to the per-request energy
        estimate used until that arch's profile has enough samples;
        ``epoch_seconds`` converts per-request energy into the
        epoch-averaged watts actually charged against headroom."""
        if not machines:
            raise ValueError("need at least one machine")
        if epoch_seconds <= 0:
            raise ValueError("epoch must be positive")
        self.machines: dict[str, _MachineState] = {}
        self.racks: dict[int, _RackState] = {}
        for slot in machines:
            if slot.name in self.machines:
                raise ValueError(f"duplicate machine name {slot.name!r}")
            if slot.rack not in rack_caps:
                raise ValueError(f"rack {slot.rack} has no cap")
            self.machines[slot.name] = _MachineState(
                slot=slot, predicted_watts=slot.idle_watts
            )
            rack = self.racks.setdefault(
                slot.rack, _RackState(index=slot.rack,
                                      cap_watts=rack_caps[slot.rack])
            )
            rack.machine_names.append(slot.name)
            rack.predicted_watts += slot.idle_watts
        self.bootstrap_joules = dict(bootstrap_joules)
        self.epoch_seconds = epoch_seconds
        self.max_defers = max_defers
        self.profiles: dict[tuple[str, str], _Profile] = {}
        #: request_id -> (machine name, charged watts, profile key).
        self._inflight: dict[int, tuple[str, float, str]] = {}
        #: request_id -> times the ticket has been deferred for headroom.
        self._defers: dict[int, int] = {}
        #: Canonical shed log lines (the ``shed`` fingerprint input).
        self.shed_log: list[str] = []
        self.placed = 0
        self.completed = 0
        self.shed = 0
        self.deferred_total = 0
        self.failovers = 0
        # Lazy max-heaps; stale entries are discarded on pop by comparing
        # the recorded headroom against the live one.
        self._rack_heap: list[tuple[float, int]] = []
        self._machine_heaps: dict[int, list[tuple[float, str]]] = {}
        for rack in self.racks.values():
            self._push_rack(rack)
            self._machine_heaps[rack.index] = []
            for name in rack.machine_names:
                self._push_machine(self.machines[name])

    # -- heap plumbing --------------------------------------------------
    def _push_rack(self, rack: _RackState) -> None:
        heapq.heappush(self._rack_heap, (-rack.headroom, rack.index))

    def _push_machine(self, state: _MachineState) -> None:
        heapq.heappush(
            self._machine_heaps[state.slot.rack],
            (-state.headroom, state.slot.name),
        )

    # -- power prediction -----------------------------------------------
    def predicted_request_watts(self, arch: str, key: str) -> float:
        """Epoch-averaged draw one ``key`` request adds to ``arch``.

        Mean energy per request (learned, else bootstrap) spread over one
        epoch: the power this placement adds to the machine's barrier-
        interval average, which is what rack caps meter.
        """
        profile = self.profiles.get((arch, key))
        if profile is not None and profile.count >= MIN_PROFILE_SAMPLES:
            return profile.energy_sum / profile.count / self.epoch_seconds
        return self.bootstrap_joules[arch] / self.epoch_seconds

    # -- placement ------------------------------------------------------
    def _best_machine(self, rack: _RackState, demand_cap: float):
        """Live machine with the most headroom in one rack, or ``None``.

        ``demand_cap`` bounds the demand any arch in this rack could
        charge, so a machine popped with at least that much headroom is
        guaranteed placeable.
        """
        heap = self._machine_heaps[rack.index]
        while heap:
            neg_headroom, name = heap[0]
            state = self.machines[name]
            if not state.alive or -neg_headroom != state.headroom:
                heapq.heappop(heap)  # stale or dead entry
                continue
            if -neg_headroom < demand_cap:
                return None
            return state
        return None

    def _place_one(self, ticket: DispatchTicket) -> str | None:
        """Bind one ticket to a machine; returns the name or ``None``."""
        key = f"{ticket.workload}:{ticket.rtype}"
        demand_cap = max(
            self.predicted_request_watts(arch, key)
            for arch in self.bootstrap_joules
        )
        tried: list[tuple[float, int]] = []
        chosen: _MachineState | None = None
        while self._rack_heap:
            neg_headroom, rack_index = self._rack_heap[0]
            rack = self.racks[rack_index]
            if -neg_headroom != rack.headroom:
                heapq.heappop(self._rack_heap)  # stale entry
                continue
            if -neg_headroom < demand_cap:
                break  # best rack lacks headroom; so does every other
            state = self._best_machine(rack, demand_cap)
            if state is None:
                # Rack has headroom but no placeable machine; set it aside
                # so the next-best rack surfaces, restore afterwards.
                tried.append(heapq.heappop(self._rack_heap))
                continue
            chosen = state
            break
        for entry in tried:
            heapq.heappush(self._rack_heap, entry)
        if chosen is None:
            return None
        demand = self.predicted_request_watts(chosen.slot.arch, key)
        chosen.predicted_watts += demand
        rack = self.racks[chosen.slot.rack]
        rack.predicted_watts += demand
        self._push_machine(chosen)
        self._push_rack(rack)
        self._inflight[ticket.request_id] = (chosen.slot.name, demand, key)
        self.placed += 1
        return chosen.slot.name

    def place(
        self, tickets: list[DispatchTicket], epoch_index: int
    ) -> tuple[list[DispatchTicket], list[DispatchTicket]]:
        """Place tickets in order; returns ``(placed, deferred)``.

        Placed tickets come back bound to their machine.  Tickets that fit
        nowhere are deferred to the next epoch until ``max_defers``, then
        shed into :attr:`shed_log`.
        """
        placed: list[DispatchTicket] = []
        deferred: list[DispatchTicket] = []
        for ticket in tickets:
            name = self._place_one(ticket)
            if name is not None:
                self._defers.pop(ticket.request_id, None)
                placed.append(
                    DispatchTicket(
                        request_id=ticket.request_id,
                        workload=ticket.workload,
                        rtype=ticket.rtype,
                        params=ticket.params,
                        arrival=ticket.arrival,
                        machine=name,
                        attempt=ticket.attempt,
                    )
                )
                continue
            defers = self._defers.get(ticket.request_id, 0) + 1
            if defers > self.max_defers:
                self._defers.pop(ticket.request_id, None)
                self.shed += 1
                self.shed_log.append(
                    f"{ticket.request_id}:{ticket.rtype}:"
                    f"{SHED_NO_HEADROOM}:epoch{epoch_index}"
                )
            else:
                self._defers[ticket.request_id] = defers
                self.deferred_total += 1
                deferred.append(ticket)
        return placed, deferred

    # -- feedback from the merged record streams ------------------------
    def note_completed(self, record: CompletionRecord) -> None:
        """Release the request's charge and learn its profile."""
        machine_name, demand, key = self._inflight.pop(record.request_id)
        state = self.machines[machine_name]
        state.predicted_watts -= demand
        rack = self.racks[state.slot.rack]
        rack.predicted_watts -= demand
        self._push_machine(state)
        self._push_rack(rack)
        self.completed += 1
        profile = self.profiles.setdefault((state.slot.arch, key), _Profile())
        profile.count += 1
        profile.energy_sum += record.energy_joules
        profile.service_sum += record.response_time
        if self._defers:
            # Completed requests can never still be marked deferred.
            self._defers.pop(record.request_id, None)

    def note_failover(self, record: FailoverRecord) -> None:
        """Release a stranded request's charge without learning from it."""
        machine_name, demand, _key = self._inflight.pop(record.request_id)
        state = self.machines[machine_name]
        state.predicted_watts -= demand
        rack = self.racks[state.slot.rack]
        rack.predicted_watts -= demand
        self._push_machine(state)
        self._push_rack(rack)
        self.failovers += 1

    def note_crashed(self, machine_name: str) -> None:
        """Stop routing to a machine (from the epoch containing its crash)."""
        self.machines[machine_name].alive = False

    def note_recovered(self, machine_name: str) -> None:
        """Re-admit a recovered machine for placement."""
        state = self.machines[machine_name]
        state.alive = True
        self._push_machine(state)

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self) -> dict:
        """Plain-data snapshot of the live placement state.

        Heaps are deliberately absent: they are a lazy cache over
        ``predicted_watts``/``alive`` (stale entries are discarded on
        pop), so rebuilding them fresh on restore pops the exact same
        ``(-headroom, name)`` winners the original run's heaps would.
        """
        return {
            "v": 1,
            "machines": [
                [name, state.predicted_watts, state.alive]
                for name, state in sorted(self.machines.items())
            ],
            "racks": [
                [index, rack.predicted_watts]
                for index, rack in sorted(self.racks.items())
            ],
            "profiles": [
                [arch, key, profile.count, profile.energy_sum,
                 profile.service_sum]
                for (arch, key), profile in sorted(self.profiles.items())
            ],
            "inflight": [
                [request_id, machine, demand, key]
                for request_id, (machine, demand, key)
                in sorted(self._inflight.items())
            ],
            "defers": [
                [request_id, count]
                for request_id, count in sorted(self._defers.items())
            ],
            "shed_log": list(self.shed_log),
            "counters": {
                "placed": self.placed,
                "completed": self.completed,
                "shed": self.shed,
                "deferred_total": self.deferred_total,
                "failovers": self.failovers,
            },
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a snapshot taken from an identically-configured run."""
        if state.get("v") != 1:
            raise ValueError(
                f"unknown scheduler snapshot version {state.get('v')!r}"
            )
        for name, watts, alive in state["machines"]:
            machine = self.machines[name]
            machine.predicted_watts = watts
            machine.alive = alive
        for index, watts in state["racks"]:
            self.racks[index].predicted_watts = watts
        self.profiles = {
            (arch, key): _Profile(
                count=count, energy_sum=energy_sum, service_sum=service_sum
            )
            for arch, key, count, energy_sum, service_sum
            in state["profiles"]
        }
        self._inflight = {
            request_id: (machine, demand, key)
            for request_id, machine, demand, key in state["inflight"]
        }
        self._defers = {
            request_id: count for request_id, count in state["defers"]
        }
        self.shed_log = list(state["shed_log"])
        counters = state["counters"]
        self.placed = counters["placed"]
        self.completed = counters["completed"]
        self.shed = counters["shed"]
        self.deferred_total = counters["deferred_total"]
        self.failovers = counters["failovers"]
        self._rack_heap = []
        self._machine_heaps = {
            rack.index: [] for rack in self.racks.values()
        }
        for rack in self.racks.values():
            self._push_rack(rack)
            for name in rack.machine_names:
                self._push_machine(self.machines[name])

    # -- reporting ------------------------------------------------------
    def inflight_count(self) -> int:
        """Requests currently charged to some machine."""
        return len(self._inflight)

    def shed_fingerprint(self) -> str:
        """SHA-256 over the canonical shed log (order is deterministic)."""
        return hashlib.sha256(
            "\n".join(self.shed_log).encode()
        ).hexdigest()

    def stats(self) -> dict[str, float]:
        """Stable-keyed counters for reports and fingerprints."""
        return {
            "placed": float(self.placed),
            "completed": float(self.completed),
            "shed": float(self.shed),
            "deferred_total": float(self.deferred_total),
            "failovers": float(self.failovers),
            "inflight": float(self.inflight_count()),
            "profiles": float(len(self.profiles)),
        }
