"""Sharded cluster simulation: deterministic multi-process scale-out.

Partitions a heterogeneous cluster's machines across worker processes and
advances them in epoch barriers; all cross-machine interaction flows
through a coordinator over totally-ordered plain-data records, so an
N-shard run is bit-identical to the single-process run for any N -- and
placement is power-aware, driven by the power containers' own accounting
history (WattsApp-style headroom scheduling with rack oversubscription).
"""

from repro.shard.coordinator import (
    RUN_TELEMETRY_MODES,
    ShardCheckpointPolicy,
    ShardedClusterRun,
    ShardRunConfig,
    ShardRunResult,
    resume_sharded,
    run_sharded,
)
from repro.shard.messages import (
    DIRECTIVE_KINDS,
    CompletionRecord,
    FailoverRecord,
    FrameChecksumError,
    TelemetryFrame,
    merge_records,
    validate_directive,
)
from repro.shard.pool import ShardPool
from repro.shard.scenario import (
    SCENARIOS,
    chaos_world_config,
    diurnal_flash_config,
    run_scenario,
    solr_macro_config,
    transport_preset,
)
from repro.shard.transport import (
    TRANSPORT_PRESETS,
    LossyChannel,
    ReliableLink,
    TransportError,
    TransportFaultPlan,
    TransportLimits,
    TransportTimeoutError,
    TransportWindow,
    WorkerEndpoint,
    WorkerQuarantinedError,
    WorkerUnresponsiveError,
)
from repro.shard.scheduler import (
    MachineSlot,
    PowerAwareScheduler,
)
from repro.shard.worker import ShardConfig, ShardWorld, build_shard_workload

__all__ = [
    "RUN_TELEMETRY_MODES",
    "ShardCheckpointPolicy",
    "ShardedClusterRun",
    "ShardRunConfig",
    "ShardRunResult",
    "resume_sharded",
    "run_sharded",
    "DIRECTIVE_KINDS",
    "CompletionRecord",
    "FailoverRecord",
    "FrameChecksumError",
    "TelemetryFrame",
    "merge_records",
    "validate_directive",
    "ShardPool",
    "SCENARIOS",
    "chaos_world_config",
    "diurnal_flash_config",
    "run_scenario",
    "solr_macro_config",
    "transport_preset",
    "TRANSPORT_PRESETS",
    "LossyChannel",
    "ReliableLink",
    "TransportError",
    "TransportFaultPlan",
    "TransportLimits",
    "TransportTimeoutError",
    "TransportWindow",
    "WorkerEndpoint",
    "WorkerQuarantinedError",
    "WorkerUnresponsiveError",
    "MachineSlot",
    "PowerAwareScheduler",
    "ShardConfig",
    "ShardWorld",
    "build_shard_workload",
]
