"""Persistent worker pool for shard execution, hardened against faults.

The pool assigns shards to long-lived fork workers (round-robin, so the
assignment is deterministic) and drives them through the epoch protocol.
``workers=1`` -- or any platform where fork is unavailable -- degrades to
running every shard in-process; results are identical either way because
a shard's outputs are a pure function of its config and delivered
directives.

Every command now travels through the transport layer
(:mod:`repro.shard.transport`): checksummed frames over a
:class:`~repro.shard.transport.ReliableLink` whose
:class:`~repro.shard.transport.LossyChannel` pair can -- under a
:class:`~repro.shard.transport.TransportFaultPlan` -- drop, duplicate,
reorder, delay, and corrupt traffic in either direction, while the
stop-and-wait exactly-once protocol keeps shard state equal to the
fault-free run's, bit for bit.

**Failure handling** is a ladder:

1. *Retransmit*: lost or corrupted frames are retried with deterministic
   doubling backoff; duplicates are no-ops worker-side.
2. *Probe*: after ``probe_after`` silent rounds the link sends heartbeat
   probes to distinguish a slow worker from a dead one.
3. *Revive*: a dead pipe or a probe deadline
   (:class:`~repro.shard.transport.WorkerUnresponsiveError`) kills and
   respawns the worker, then *replays* its shards from the recorded
   directive history over a lossless link and verifies the replayed
   state digests (:func:`repro.checkpoint.state.payload_digest`) --
   the PR 7 checkpoint discipline applied to live workers.  Divergence
   raises :class:`repro.checkpoint.state.RestoreMismatchError`.
4. *Quarantine*: each worker has a bounded revive budget (default 3).
   Exhausting it raises a terminal
   :class:`~repro.shard.transport.WorkerQuarantinedError` carrying the
   digest diff of a final diagnostic replay, instead of replay-looping
   forever.

The recorded history also powers coordinator crash recovery: the
coordinator checkpoints :meth:`ShardPool.snapshot_history` at epoch
barriers, and :meth:`ShardPool.restore_history` rebuilds fresh workers
from it, re-verifying every shard digest before the run continues.
"""

from __future__ import annotations

import os
import signal

from repro.checkpoint.state import (
    RestoreMismatchError,
    diff_states,
    payload_digest,
)
from repro.shard.transport import (
    ReliableLink,
    TransportError,
    TransportFaultPlan,
    TransportLimits,
    WorkerEndpoint,
    WorkerQuarantinedError,
    WorkerUnresponsiveError,
)
from repro.shard.worker import ShardConfig, ShardWorld

#: Framed-protocol payload verbs (inside exactly-once DATA frames).
_CMD_EPOCH = "epoch"
_CMD_FINISH = "finish"

#: Raw pipe verbs (outside the frame protocol: lifecycle + diagnostics).
_RAW_FRAMES = "frames"
_RAW_STATS = "stats"
_RAW_EXIT = "exit"


class _ShardExecutor:
    """Owns a set of shard worlds and executes decoded commands.

    Shared by the fork worker and the in-process stand-in so both modes
    run byte-identical code under the same endpoint protocol.
    """

    def __init__(self, configs: list[ShardConfig], calibrations) -> None:
        self.worlds = {
            config.shard_id: ShardWorld.build(config, calibrations)
            for config in configs
        }

    def execute(self, payload: tuple):
        verb = payload[0]
        if verb == _CMD_EPOCH:
            _verb, end, directives, want_summary = payload
            reply = {}
            for shard_id in sorted(self.worlds):
                world = self.worlds[shard_id]
                world.deliver(directives.get(shard_id, []))
                completions, failovers = world.run_epoch(end)
                # Drain before the summary so the summary's frame-chain
                # digest covers this barrier's frame (replay-verified).
                frame = world.drain_frame()
                summary = world.state_summary() if want_summary else None
                reply[shard_id] = (completions, failovers, summary, frame)
            return reply
        if verb == _CMD_FINISH:
            return {
                shard_id: self.worlds[shard_id].final_payload()
                for shard_id in sorted(self.worlds)
            }
        raise ValueError(f"unknown pool command {verb!r}")


#: How often (seconds) an idle worker checks whether it was orphaned.
_ORPHAN_POLL = 1.0


def _worker_main(conn, configs: list[ShardConfig], calibrations) -> None:
    """Worker process body: serve frames through an exactly-once endpoint.

    Workers forked after their siblings inherit copies of the siblings'
    pipe ends, so a SIGKILLed coordinator never produces an EOF on
    ``conn`` -- each worker instead polls its parentage while idle and
    exits once it has been reparented (the coordinator is gone and can
    only come back as a *resume*, which spawns fresh workers).
    """
    parent = os.getppid()
    executor = _ShardExecutor(configs, calibrations)
    endpoint = WorkerEndpoint(executor.execute)
    while True:
        while not conn.poll(_ORPHAN_POLL):
            if os.getppid() != parent:
                return
        try:
            command = conn.recv()
        except EOFError:
            return
        verb = command[0]
        if verb == _RAW_FRAMES:
            conn.send(endpoint.handle_frames(command[1]))
        elif verb == _RAW_STATS:
            conn.send(dict(endpoint.stats))
        elif verb == _RAW_EXIT:
            conn.close()
            return
        else:  # pragma: no cover - protocol misuse
            raise ValueError(f"unknown pipe verb {verb!r}")


class _InProcessWorker:
    """Serial stand-in for a worker process (same protocol, no pipe)."""

    def __init__(self, configs: list[ShardConfig], calibrations) -> None:
        self.configs = configs
        self.calibrations = calibrations
        self.respawn()

    def respawn(self) -> None:
        """Rebuild worlds + endpoint from scratch (the serial 'restart')."""
        self.executor = _ShardExecutor(self.configs, self.calibrations)
        self.endpoint = WorkerEndpoint(self.executor.execute)

    def exchange_frames(self, frames: list) -> list:
        return self.endpoint.handle_frames(frames)

    def endpoint_stats(self) -> dict:
        return dict(self.endpoint.stats)

    def close(self) -> None:
        pass


class _ProcessWorker:
    """One live fork worker plus the bookkeeping to resurrect it."""

    def __init__(self, context, configs: list[ShardConfig], calibrations):
        self.context = context
        self.configs = configs
        self.calibrations = calibrations
        self.process = None
        self.conn = None
        self.spawn()

    def spawn(self) -> None:
        parent, child = self.context.Pipe(duplex=True)
        self.process = self.context.Process(
            target=_worker_main,
            args=(child, self.configs, self.calibrations),
            daemon=True,
        )
        self.process.start()
        child.close()
        self.conn = parent

    def _request(self, command):
        """One raw pipe round-trip; raises ``ConnectionError`` on death."""
        try:
            self.conn.send(command)
            return self.conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError)\
                as exc:
            raise ConnectionError(str(exc)) from exc

    def exchange_frames(self, frames: list) -> list:
        return self._request((_RAW_FRAMES, frames))

    def endpoint_stats(self) -> dict:
        return self._request((_RAW_STATS,))

    def kill(self) -> None:
        """SIGKILL the worker (the chaos hook for restart tests)."""
        if self.process is not None and self.process.pid is not None:
            try:
                os.kill(self.process.pid, signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - already gone
                pass
            self.process.join()

    def close(self) -> None:
        try:
            self.conn.send((_RAW_EXIT,))
        except (BrokenPipeError, OSError):
            pass
        if self.process is not None:
            self.process.join(timeout=5)
            if self.process.is_alive():  # pragma: no cover - hung worker
                self.process.terminate()
                self.process.join()


class ShardPool:
    """Drives every shard through barriers, surviving faults end to end."""

    def __init__(
        self,
        configs: list[ShardConfig],
        calibrations: dict,
        workers: int = 1,
        verify: bool = True,
        transport_plan: TransportFaultPlan | None = None,
        transport_seed: int = 0,
        transport_limits: TransportLimits | None = None,
        revive_budget: int = 3,
    ) -> None:
        if not configs:
            raise ValueError("need at least one shard")
        if int(workers) < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if int(revive_budget) < 0:
            raise ValueError(
                f"revive_budget must be non-negative, got {revive_budget!r}"
            )
        self.configs = list(configs)
        self.calibrations = calibrations
        self.verify = verify
        self.transport_plan = transport_plan
        self.transport_seed = int(transport_seed)
        self.transport_limits = (
            transport_limits if transport_limits is not None
            else TransportLimits()
        )
        self.revive_budget = int(revive_budget)
        #: Per-shard directive history: ``[(end, directives), ...]``.
        self._history: dict[int, list[tuple]] = {
            config.shard_id: [] for config in configs
        }
        #: Last verified per-shard state summary + digest.
        self._summaries: dict[int, dict] = {}
        self._digests: dict[int, str] = {}
        #: Workers resurrected after a crash (mirrors ``parallel_map``'s
        #: retry counter).
        self.worker_restarts = 0
        self._epochs_run = 0
        workers = min(int(workers), len(self.configs))
        self._assignment: dict[int, list[ShardConfig]] = {
            index: [] for index in range(workers)
        }
        for position, config in enumerate(self.configs):
            self._assignment[position % workers].append(config)
        self.parallel = workers > 1 and self._fork_available()
        if self.parallel:
            import multiprocessing

            self._context = multiprocessing.get_context("fork")
            self._workers = [
                _ProcessWorker(self._context, owned, calibrations)
                for owned in self._assignment.values()
            ]
        else:
            self._workers = [_InProcessWorker(self.configs, calibrations)]
        self._revives = {index: 0 for index in range(len(self._workers))}
        self._incarnations = {
            index: 0 for index in range(len(self._workers))
        }
        #: Counters folded in from links retired by revives.
        self._retired_stats: dict[str, int] = {}
        self._links = [
            self._make_link(index) for index in range(len(self._workers))
        ]

    @staticmethod
    def _fork_available() -> bool:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()

    @property
    def n_workers(self) -> int:
        """Live worker count (1 in serial mode)."""
        return len(self._workers)

    # -- transport plumbing ---------------------------------------------
    def _make_link(self, index: int) -> ReliableLink:
        return ReliableLink(
            self._workers[index].exchange_frames,
            self.transport_plan,
            seed=self.transport_seed,
            worker_index=index,
            incarnation=self._incarnations[index],
            limits=self.transport_limits,
        )

    def _request(self, index: int, payload: tuple,
                 lossless: bool = False):
        """Deliver one command exactly once, reviving through failures."""
        while True:
            try:
                return self._links[index].request(
                    payload, self._epochs_run, lossless=lossless
                )
            except ConnectionError as exc:
                self._revive(index, f"pipe failure: {exc}")
            except WorkerUnresponsiveError as exc:
                self._revive(index, str(exc))

    # -- crash recovery -------------------------------------------------
    def kill_worker(self, index: int = 0) -> None:
        """SIGKILL one worker process (restart-test hook; parallel only)."""
        if not self.parallel:
            raise RuntimeError("no worker processes in serial mode")
        self._workers[index].kill()

    def _retire_link_stats(self, index: int) -> None:
        for key, value in self._links[index].combined_stats().items():
            self._retired_stats[key] = self._retired_stats.get(key, 0) + value

    def _respawn(self, index: int) -> None:
        worker = self._workers[index]
        if self.parallel:
            worker.kill()
            worker.spawn()
        else:
            worker.respawn()
        self._incarnations[index] += 1

    def _replay(self, index: int, link: ReliableLink) -> list[str]:
        """Replay one worker's shards from history over a lossless link.

        Returns digest-diff lines (empty when every shard's replayed
        summary matches its recorded digest bit-for-bit).
        """
        worker = self._workers[index]
        owned = [config.shard_id for config in worker.configs]
        depth = max(
            (len(self._history[shard_id]) for shard_id in owned), default=0
        )
        reply = None
        for step in range(depth):
            end = None
            directives = {}
            for shard_id in owned:
                history = self._history[shard_id]
                if step < len(history):
                    end, step_directives = history[step]
                    directives[shard_id] = step_directives
            want_summary = step == depth - 1
            reply = link.request(
                (_CMD_EPOCH, end, directives, want_summary),
                self._epochs_run,
                lossless=True,
            )
        diffs: list[str] = []
        if reply is None or not self.verify:
            return diffs
        for shard_id in owned:
            expected = self._summaries.get(shard_id)
            if expected is None:
                continue
            # Replayed frames are discarded: the coordinator already
            # ingested those barriers; the summary's frame chain still
            # proves the regenerated frames matched the shipped ones.
            _completions, _failovers, summary, _frame = reply[shard_id]
            if payload_digest(summary) != self._digests[shard_id]:
                diffs.extend(
                    f"shard {shard_id}: {line}"
                    for line in diff_states(expected, summary)
                )
        return diffs

    def _revive(self, index: int, reason: str) -> None:
        """Respawn a dead worker and replay its shards from history.

        The replayed state must match the last verified digest for every
        owned shard; a mismatch names the diverging fields and aborts the
        run rather than continuing from silently-wrong state.  Each
        worker may be revived at most ``revive_budget`` times; the next
        failure quarantines it terminally.
        """
        if self._revives[index] >= self.revive_budget:
            self._quarantine(index, reason)
        self._revives[index] += 1
        self.worker_restarts += 1
        self._retire_link_stats(index)
        self._respawn(index)
        link = self._make_link(index)
        diffs = self._replay(index, link)
        if diffs:
            raise RestoreMismatchError(
                f"worker {index} replay diverged after worker restart: "
                + "; ".join(diffs)
            )
        self._links[index] = link

    def _quarantine(self, index: int, reason: str) -> None:
        """Terminal stop: one diagnostic replay, then a typed error.

        The diagnostic replay (fresh worker, lossless link) distinguishes
        corrupted shard state from a hostile transport: an empty digest
        diff means replay still reproduces every recorded digest.
        """
        shard_ids = [
            config.shard_id for config in self._workers[index].configs
        ]
        try:
            self._respawn(index)
            diffs = self._replay(index, self._make_link(index))
        except (ConnectionError, TransportError) as exc:
            diffs = [f"diagnostic replay failed: {exc}"]
        raise WorkerQuarantinedError(
            index, shard_ids, self._revives[index], diffs, reason
        )

    # -- epoch protocol -------------------------------------------------
    def run_epoch(
        self, end: float, directives: dict[int, list[tuple]]
    ) -> tuple[list[list[tuple]], list[list[tuple]], list]:
        """Advance every shard to the barrier; returns per-shard outboxes.

        ``directives`` maps shard id to that shard's sorted directive
        list.  Returns ``(completions, failovers, frames)`` as per-shard
        lists in shard-id order; ``frames`` entries are telemetry frame
        wire tuples (``None`` for shards with telemetry off).  Transport
        faults cost retransmit rounds, dead workers cost a revive +
        replay -- neither ever changes results.
        """
        merged: dict[int, tuple] = {}
        for index, worker in enumerate(self._workers):
            owned = [config.shard_id for config in worker.configs]
            payload = (
                _CMD_EPOCH, end,
                {shard_id: directives.get(shard_id, [])
                 for shard_id in owned},
                self.verify,
            )
            merged.update(self._request(index, payload))
        completions: list[list[tuple]] = []
        failovers: list[list[tuple]] = []
        frames: list = []
        for config in self.configs:
            shard_completions, shard_failovers, summary, frame = merged[
                config.shard_id
            ]
            completions.append(shard_completions)
            failovers.append(shard_failovers)
            frames.append(frame)
            if summary is not None:
                self._summaries[config.shard_id] = summary
                self._digests[config.shard_id] = payload_digest(summary)
            self._history[config.shard_id].append(
                (end, directives.get(config.shard_id, []))
            )
        self._epochs_run += 1
        return completions, failovers, frames

    def finish(self) -> dict[int, dict]:
        """Collect every shard's final payload (shard id -> payload)."""
        merged: dict[int, dict] = {}
        for index in range(len(self._workers)):
            merged.update(self._request(index, (_CMD_FINISH,)))
        return merged

    # -- diagnostics -----------------------------------------------------
    def transport_stats(self) -> dict[str, int]:
        """Aggregated link/channel/endpoint counters (never fingerprinted).

        Link and channel counters sum across workers; worker-endpoint
        counters are fetched over the raw pipe and prefixed ``worker_``
        (a dead worker's endpoint counters are skipped, not invented).
        """
        totals: dict[str, int] = dict(self._retired_stats)
        for link in self._links:
            for key, value in link.combined_stats().items():
                totals[key] = totals.get(key, 0) + value
        for worker in self._workers:
            try:
                stats = worker.endpoint_stats()
            except ConnectionError:
                continue
            for key, value in stats.items():
                worker_key = f"worker_{key}"
                totals[worker_key] = totals.get(worker_key, 0) + value
        totals["worker_restarts"] = self.worker_restarts
        return totals

    def publish_metrics(self, registry) -> None:
        """Mirror :meth:`transport_stats` into a telemetry metrics registry.

        Keys become ``transport_<key>`` gauges (channel counters already
        carry their ``c2w_``/``w2c_`` direction prefix, endpoint counters
        their ``worker_`` prefix), plus ``pool_worker_restarts`` and
        ``pool_revive_budget`` for the revive/quarantine ladder --
        following the ``<component>_<counter>`` convention from
        docs/api.md.  Diagnostic only: never folded into fingerprints.
        """
        for key, value in sorted(self.transport_stats().items()):
            registry.gauge(f"transport_{key}").set(float(value))
        registry.gauge("pool_worker_restarts").set(
            float(self.worker_restarts)
        )
        registry.gauge("pool_revive_budget").set(float(self.revive_budget))
        registry.gauge("pool_workers").set(float(len(self._workers)))

    # -- coordinator checkpoint integration ------------------------------
    def snapshot_history(self) -> dict:
        """Plain-data directive history + digests (checkpoint layer)."""
        return {
            "v": 1,
            "epochs": self._epochs_run,
            "restarts": self.worker_restarts,
            "history": {
                str(shard_id): [[end, directives]
                                for end, directives in steps]
                for shard_id, steps in self._history.items()
            },
            "digests": {
                str(shard_id): digest
                for shard_id, digest in self._digests.items()
            },
            "summaries": {
                str(shard_id): summary
                for shard_id, summary in self._summaries.items()
            },
        }

    def restore_history(self, state: dict) -> None:
        """Rebuild every worker's shard state from a history snapshot.

        Replays each worker's directive history over a lossless link and
        re-verifies every shard's digest against the snapshot --
        divergence raises
        :class:`~repro.checkpoint.state.RestoreMismatchError` rather than
        resuming from wrong state.
        """
        if state.get("v") != 1:
            raise ValueError(
                f"unknown pool history snapshot version {state.get('v')!r}"
            )
        restored = {int(key): value for key, value in state["history"].items()}
        if set(restored) != set(self._history):
            raise RestoreMismatchError(
                f"snapshot shards {sorted(restored)} != pool shards "
                f"{sorted(self._history)}"
            )
        self._history = {
            shard_id: [(end, directives) for end, directives in steps]
            for shard_id, steps in restored.items()
        }
        self._digests = {
            int(key): value for key, value in state["digests"].items()
        }
        self._summaries = {
            int(key): value for key, value in state["summaries"].items()
        }
        self._epochs_run = int(state["epochs"])
        self.worker_restarts = int(state["restarts"])
        for index in range(len(self._workers)):
            diffs = self._replay(index, self._links[index])
            if diffs:
                raise RestoreMismatchError(
                    f"resume: worker {index} replay diverged from "
                    f"checkpointed digests: " + "; ".join(diffs)
                )

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        for worker in self._workers:
            worker.close()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
