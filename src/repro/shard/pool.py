"""Persistent worker-process pool for shard execution, with crash replay.

The pool assigns shards to long-lived fork workers (round-robin, so the
assignment is deterministic) and drives them through the epoch protocol
over pipes.  ``workers=1`` -- or any platform where fork is unavailable --
degrades to running every shard in-process; results are identical either
way because a shard's outputs are a pure function of its config and
delivered directives.

**Worker-crash recovery** rests on that same purity: the pool remembers
every shard's directive history, so when a worker dies (OOM kill,
SIGKILL, pipe torn mid-epoch) its shards are rebuilt in a fresh process
and *replayed* from history, then verified -- the replayed state summary
must match the last recorded digest bit-for-bit
(:func:`repro.checkpoint.state.payload_digest`), with field-level
divergences reported through :func:`repro.checkpoint.state.diff_states`
and :class:`repro.checkpoint.state.RestoreMismatchError` -- the PR 7
checkpoint discipline applied to live workers.
"""

from __future__ import annotations

import os
import signal

from repro.checkpoint.state import (
    RestoreMismatchError,
    diff_states,
    payload_digest,
)
from repro.shard.worker import ShardConfig, ShardWorld

#: Pipe-protocol command verbs (coordinator -> worker).
_CMD_EPOCH = "epoch"
_CMD_FINISH = "finish"
_CMD_EXIT = "exit"


def _worker_main(conn, configs: list[ShardConfig], calibrations) -> None:
    """Worker process body: build owned shards, serve the epoch protocol."""
    worlds = {
        config.shard_id: ShardWorld.build(config, calibrations)
        for config in configs
    }
    while True:
        command = conn.recv()
        verb = command[0]
        if verb == _CMD_EPOCH:
            _verb, end, directives, want_summary = command
            reply = {}
            for shard_id in sorted(worlds):
                world = worlds[shard_id]
                world.deliver(directives.get(shard_id, []))
                completions, failovers = world.run_epoch(end)
                summary = world.state_summary() if want_summary else None
                reply[shard_id] = (completions, failovers, summary)
            conn.send(reply)
        elif verb == _CMD_FINISH:
            conn.send({
                shard_id: worlds[shard_id].final_payload()
                for shard_id in sorted(worlds)
            })
        elif verb == _CMD_EXIT:
            conn.close()
            return
        else:  # pragma: no cover - protocol misuse
            raise ValueError(f"unknown pool command {verb!r}")


class _InProcessWorker:
    """Serial stand-in for a worker process (same protocol, no pipe)."""

    def __init__(self, configs: list[ShardConfig], calibrations) -> None:
        self.worlds = {
            config.shard_id: ShardWorld.build(config, calibrations)
            for config in configs
        }

    def run_epoch(self, end, directives, want_summary):
        reply = {}
        for shard_id in sorted(self.worlds):
            world = self.worlds[shard_id]
            world.deliver(directives.get(shard_id, []))
            completions, failovers = world.run_epoch(end)
            summary = world.state_summary() if want_summary else None
            reply[shard_id] = (completions, failovers, summary)
        return reply

    def finish(self):
        return {
            shard_id: self.worlds[shard_id].final_payload()
            for shard_id in sorted(self.worlds)
        }


class _ProcessWorker:
    """One live fork worker plus the bookkeeping to resurrect it."""

    def __init__(self, context, configs: list[ShardConfig], calibrations):
        self.context = context
        self.configs = configs
        self.calibrations = calibrations
        self.process = None
        self.conn = None
        self.spawn()

    def spawn(self) -> None:
        parent, child = self.context.Pipe(duplex=True)
        self.process = self.context.Process(
            target=_worker_main,
            args=(child, self.configs, self.calibrations),
            daemon=True,
        )
        self.process.start()
        child.close()
        self.conn = parent

    def request(self, command):
        """One command round-trip; raises ``ConnectionError`` on death."""
        try:
            self.conn.send(command)
            return self.conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError)\
                as exc:
            raise ConnectionError(str(exc)) from exc

    def kill(self) -> None:
        """SIGKILL the worker (the chaos hook for restart tests)."""
        if self.process is not None and self.process.pid is not None:
            os.kill(self.process.pid, signal.SIGKILL)
            self.process.join()

    def close(self) -> None:
        try:
            self.conn.send((_CMD_EXIT,))
        except (BrokenPipeError, OSError):
            pass
        if self.process is not None:
            self.process.join(timeout=5)
            if self.process.is_alive():  # pragma: no cover - hung worker
                self.process.terminate()
                self.process.join()


class ShardPool:
    """Drives every shard through barriers, surviving worker crashes."""

    def __init__(
        self,
        configs: list[ShardConfig],
        calibrations: dict,
        workers: int = 1,
        verify: bool = True,
    ) -> None:
        if not configs:
            raise ValueError("need at least one shard")
        self.configs = list(configs)
        self.calibrations = calibrations
        self.verify = verify
        #: Per-shard directive history: ``[(end, directives), ...]``.
        self._history: dict[int, list[tuple]] = {
            config.shard_id: [] for config in configs
        }
        #: Last verified per-shard state summary + digest.
        self._summaries: dict[int, dict] = {}
        self._digests: dict[int, str] = {}
        #: Workers resurrected after a crash (mirrors ``parallel_map``'s
        #: retry counter).
        self.worker_restarts = 0
        workers = max(1, min(int(workers), len(self.configs)))
        self._assignment: dict[int, list[ShardConfig]] = {
            index: [] for index in range(workers)
        }
        for position, config in enumerate(self.configs):
            self._assignment[position % workers].append(config)
        self.parallel = workers > 1 and self._fork_available()
        if self.parallel:
            import multiprocessing

            self._context = multiprocessing.get_context("fork")
            self._workers = [
                _ProcessWorker(self._context, owned, calibrations)
                for owned in self._assignment.values()
            ]
        else:
            self._workers = [_InProcessWorker(self.configs, calibrations)]

    @staticmethod
    def _fork_available() -> bool:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()

    @property
    def n_workers(self) -> int:
        """Live worker count (1 in serial mode)."""
        return len(self._workers)

    # -- crash recovery -------------------------------------------------
    def kill_worker(self, index: int = 0) -> None:
        """SIGKILL one worker process (restart-test hook; parallel only)."""
        if not self.parallel:
            raise RuntimeError("no worker processes in serial mode")
        self._workers[index].kill()

    def _revive(self, index: int) -> None:
        """Respawn a dead worker and replay its shards from history.

        The replayed state must match the last verified digest for every
        owned shard; a mismatch names the diverging fields and aborts the
        run rather than continuing from silently-wrong state.
        """
        self.worker_restarts += 1
        worker = self._workers[index]
        worker.spawn()
        owned = [config.shard_id for config in worker.configs]
        depth = max(
            (len(self._history[shard_id]) for shard_id in owned), default=0
        )
        reply = None
        for step in range(depth):
            end = None
            directives = {}
            for shard_id in owned:
                history = self._history[shard_id]
                if step < len(history):
                    end, step_directives = history[step]
                    directives[shard_id] = step_directives
            want_summary = step == depth - 1
            reply = worker.request((_CMD_EPOCH, end, directives, want_summary))
        if reply is None or not self.verify:
            return
        for shard_id in owned:
            expected = self._summaries.get(shard_id)
            if expected is None:
                continue
            _completions, _failovers, summary = reply[shard_id]
            if payload_digest(summary) != self._digests[shard_id]:
                diffs = diff_states(expected, summary)
                raise RestoreMismatchError(
                    f"shard {shard_id} replay diverged after worker "
                    f"restart: " + "; ".join(diffs)
                )

    # -- epoch protocol -------------------------------------------------
    def run_epoch(
        self, end: float, directives: dict[int, list[tuple]]
    ) -> tuple[list[list[tuple]], list[list[tuple]]]:
        """Advance every shard to the barrier; returns per-shard outboxes.

        ``directives`` maps shard id to that shard's sorted directive list.
        Returns ``(completions, failovers)`` as per-shard lists in shard-id
        order.  A worker found dead is revived and replayed before the
        epoch is retried on it, so a mid-run SIGKILL costs wall time, never
        results.
        """
        merged: dict[int, tuple] = {}
        for index, worker in enumerate(self._workers):
            if self.parallel:
                owned = [config.shard_id for config in worker.configs]
                command = (
                    _CMD_EPOCH, end,
                    {shard_id: directives.get(shard_id, [])
                     for shard_id in owned},
                    self.verify,
                )
                try:
                    reply = worker.request(command)
                except ConnectionError:
                    self._revive(index)
                    reply = worker.request(command)
            else:
                reply = worker.run_epoch(end, directives, self.verify)
            merged.update(reply)
        completions: list[list[tuple]] = []
        failovers: list[list[tuple]] = []
        for config in self.configs:
            shard_completions, shard_failovers, summary = merged[
                config.shard_id
            ]
            completions.append(shard_completions)
            failovers.append(shard_failovers)
            if summary is not None:
                self._summaries[config.shard_id] = summary
                self._digests[config.shard_id] = payload_digest(summary)
            self._history[config.shard_id].append(
                (end, directives.get(config.shard_id, []))
            )
        return completions, failovers

    def finish(self) -> dict[int, dict]:
        """Collect every shard's final payload (shard id -> payload)."""
        merged: dict[int, dict] = {}
        for index, worker in enumerate(self._workers):
            if self.parallel:
                try:
                    reply = worker.request((_CMD_FINISH,))
                except ConnectionError:
                    self._revive(index)
                    reply = worker.request((_CMD_FINISH,))
            else:
                reply = worker.finish()
            merged.update(reply)
        return merged

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self.parallel:
            for worker in self._workers:
                worker.close()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
