"""Epoch-barrier coordinator: the sharded run's single source of truth.

The coordinator owns everything that must be globally ordered -- request
generation, power-aware placement, fault injection, and the folding of
merged record streams into fingerprints.  Shards own only machine
execution.  Because every cross-machine decision is made here, on plain
data, in one deterministic order, the run's outputs are bit-identical for
any shard count and any worker count: sharding changes *where* machines
execute, never *what* they observe.

Per epoch ``[start, end)`` the coordinator:

1. applies fault transitions (a crash or recovery is observed at the
   next barrier, so routing stops -- and resumes -- one epoch after the
   instant itself),
2. samples this epoch's arrivals from its own RNG streams (Poisson count,
   uniform times, workload request mix -- shards hold no generators),
3. places carried-over tickets (failover requeues, headroom deferrals)
   and then the new arrivals through the :class:`PowerAwareScheduler`,
4. delivers each shard's directives pre-sorted by ``(time, machine,
   request id)`` and advances every shard to the barrier through the
   :class:`~repro.shard.pool.ShardPool`,
5. k-way-merges the per-shard outboxes under their canonical sort keys
   and consumes the merged streams in that total order: completions feed
   the scheduler's power profiles and the streaming energy hash,
   failovers release their placement charge and requeue.

After the arrival window the loop keeps draining epochs until no request
is in flight or deferred, then collects per-shard final payloads and
renders the four run fingerprints (``report``, ``shed``, ``batch``,
``energy``).
"""

from __future__ import annotations

import hashlib
import math
import os
import signal
from dataclasses import asdict, dataclass, field

from repro.server.dispatch import DispatchTicket
from repro.shard.messages import (
    CompletionRecord,
    FailoverRecord,
    crash_directive,
    inject_directive,
    merge_records,
    recover_directive,
)
from repro.shard.pool import ShardPool
from repro.shard.scheduler import MachineSlot, PowerAwareScheduler
from repro.shard.worker import ShardConfig, build_shard_workload
from repro.sim.rng import RngHub
from repro.telemetry import ClusterObservability

#: Machine-spec cycle used to populate the cluster (insertion order).
SPEC_CYCLE = ("sandybridge", "woodcrest", "westmere")

#: Directive sort ranks: at equal times a machine's crash/recover applies
#: before any inject scheduled at that instant.
_RANK = {"crash": 0, "recover": 1, "inject": 2}

#: Seed of the chained energy digest.  The chain (each completion line is
#: hashed together with the previous hex digest) replaces the old
#: incremental ``hashlib`` object so the cursor is a 64-char string --
#: plain data the checkpoint layer can snapshot and resume from.
_ENERGY_CHAIN_SEED = hashlib.sha256(b"shard-energy-chain-v1").hexdigest()

#: Run-level telemetry modes.  ``"off"`` -- nothing; ``"disabled"`` --
#: workers carry an enabled=False handle (the neutrality/overhead arm);
#: ``"store"`` -- coordinator-side rollups + detectors from the merged
#: completion stream only (zero worker-side cost, the flash-scale
#: default); ``"on"`` -- everything: per-shard frames merged into one
#: global tracer/registry plus the store and detectors.
RUN_TELEMETRY_MODES = ("off", "disabled", "store", "on")

#: Run-level telemetry mode -> per-shard worker mode.
_WORKER_TELEMETRY = {
    "off": "off", "disabled": "disabled", "store": "off", "on": "on",
}


@dataclass(frozen=True)
class ShardRunConfig:
    """Plain-data recipe for one sharded cluster run.

    Fingerprints depend on every field except ``n_shards`` and
    ``workers`` -- those two only repartition execution, which is exactly
    the invariance the property tests pin down -- and the ``telemetry*``
    fields, which only observe (report/shed/batch/energy fingerprints are
    bit-identical for every telemetry mode).
    """

    workload: str = "solr"
    n_machines: int = 8
    n_shards: int = 1
    workers: int = 1
    duration: float = 2.0
    epoch: float = 0.25
    seed: int = 0
    load_fraction: float = 0.5
    #: "steady" or "diurnal" (sinusoidal day cycle + optional flash crowd).
    arrival: str = "steady"
    diurnal_period: float = 2.0
    diurnal_amplitude: float = 0.6
    flash_start: float = -1.0
    flash_duration: float = 0.0
    flash_multiplier: float = 1.0
    #: Machines per rack and the oversubscribed fraction of aggregate peak
    #: power a rack may host (WattsApp-style oversubscription).
    rack_size: int = 8
    oversub_fraction: float = 0.7
    max_defers: int = 4
    #: Number of crash/recover windows drawn from the fault stream.
    faults: int = 0
    fault_outage: float = 0.5
    #: Hard cap on post-arrival drain epochs (safety, not a tuning knob).
    max_drain_epochs: int = 400
    #: Telemetry mode (see :data:`RUN_TELEMETRY_MODES`); never affects
    #: fingerprints.
    telemetry: str = "off"
    telemetry_capacity: int = 65536
    telemetry_top_k: int = 10

    def __post_init__(self) -> None:
        """Reject impossible configs at construction, not mid-run."""
        for name, minimum in (("n_machines", 1), ("n_shards", 1),
                              ("workers", 1), ("rack_size", 1)):
            value = getattr(self, name)
            if value < minimum:
                raise ValueError(
                    f"{name} must be >= {minimum}, got {value!r}"
                )
        if self.epoch <= 0.0:
            raise ValueError(f"epoch must be positive, got {self.epoch!r}")
        if self.duration < 0.0:
            raise ValueError(
                f"duration must be non-negative, got {self.duration!r}"
            )
        if self.load_fraction < 0.0:
            raise ValueError(
                f"load_fraction must be non-negative, "
                f"got {self.load_fraction!r}"
            )
        if self.oversub_fraction <= 0.0:
            raise ValueError(
                f"oversub_fraction must be positive, "
                f"got {self.oversub_fraction!r}"
            )
        for name in ("max_defers", "faults", "fault_outage",
                     "max_drain_epochs"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(
                    f"{name} must be non-negative, got {value!r}"
                )
        if self.telemetry not in RUN_TELEMETRY_MODES:
            raise ValueError(
                f"telemetry mode must be one of {RUN_TELEMETRY_MODES}, "
                f"got {self.telemetry!r}"
            )
        for name in ("telemetry_capacity", "telemetry_top_k"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(
                    f"{name} must be >= 1, got {value!r}"
                )

    def machine_table(self) -> list[tuple[str, str]]:
        """``(name, spec_name)`` rows in cluster insertion order."""
        if self.n_machines < 1:
            raise ValueError("need at least one machine")
        return [
            (f"m{index:04d}", SPEC_CYCLE[index % len(SPEC_CYCLE)])
            for index in range(self.n_machines)
        ]


@dataclass(frozen=True)
class ShardCheckpointPolicy:
    """When and where the coordinator checkpoints at epoch barriers.

    ``kill_after`` is the crash-recovery test hook: SIGKILL the
    coordinator process immediately after the checkpoint for epoch
    ``kill_after`` has been durably written (atomic rename + fsync), the
    most hostile instant for a crash that must still resume cleanly.
    """

    directory: str
    every: int = 1
    keep: int = 4
    kill_after: int | None = None

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every!r}")
        if self.keep < 1:
            raise ValueError(f"keep must be >= 1, got {self.keep!r}")
        if self.kill_after is not None and self.kill_after < 1:
            raise ValueError(
                f"kill_after must be >= 1 or None, got {self.kill_after!r}"
            )


@dataclass
class ShardRunResult:
    """Outcome of one sharded run, fingerprints included."""

    config: ShardRunConfig
    n_requests: int
    completed: int
    shed: int
    failovers: int
    late_replies: int
    unfinished: int
    epochs: int
    worker_restarts: int
    total_energy_joules: float
    total_response_seconds: float
    scheduler_stats: dict[str, float] = field(default_factory=dict)
    machine_rows: list[tuple] = field(default_factory=list)
    fingerprints: dict[str, str] = field(default_factory=dict)
    #: Aggregated transport diagnostics (never part of any fingerprint).
    transport_stats: dict[str, int] = field(default_factory=dict)
    #: True when this result came out of ``resume_sharded``.
    resumed: bool = False
    #: Plain-data observability roll-up (trace/alert/store fingerprints,
    #: merge counters); empty when telemetry mode is "off"/"disabled".
    telemetry_summary: dict = field(default_factory=dict)
    #: The live :class:`~repro.telemetry.ClusterObservability` (dashboard
    #: export, queries); ``None`` unless mode is "store"/"on".
    observability: object = None

    def mean_response_time(self) -> float:
        """Mean response time over completed requests (0 when none)."""
        if self.completed == 0:
            return 0.0
        return self.total_response_seconds / self.completed

    def fingerprint(self) -> str:
        """One digest over the four stream fingerprints (gate-friendly)."""
        joined = "\n".join(
            f"{key}={self.fingerprints[key]}"
            for key in sorted(self.fingerprints)
        )
        return hashlib.sha256(joined.encode()).hexdigest()


def _machine_slots(
    table: list[tuple[str, str]], calibrations: dict, rack_size: int
) -> list[MachineSlot]:
    """Static placement descriptions for the scheduler."""
    from repro.hardware.specs import spec_by_name

    slots = []
    for index, (name, spec_name) in enumerate(table):
        spec = spec_by_name(spec_name)
        calibration = calibrations[spec_name]
        peak = calibration.idle_watts + sum(
            calibration.cmax_table().values()
        )
        slots.append(
            MachineSlot(
                name=name,
                arch=spec.arch,
                rack=index // rack_size,
                n_cores=spec.n_cores,
                idle_watts=calibration.idle_watts,
                peak_watts=peak,
            )
        )
    return slots


def _bootstrap_joules(
    calibrations: dict, workload
) -> dict[str, float]:
    """Per-arch bootstrap estimate of one request's attributed energy.

    One request occupies roughly one core, so the calibration's aggregate
    ``C * Mmax`` active power divided by the core count, times the
    workload's mean demand, is the natural prior until the accounting
    history takes over.
    """
    from repro.hardware.specs import spec_by_name

    estimates = {}
    for spec_name, calibration in calibrations.items():
        spec = spec_by_name(spec_name)
        per_core_watts = sum(calibration.cmax_table().values()) / spec.n_cores
        estimates[spec.arch] = (
            per_core_watts * workload.mean_demand_seconds(spec.arch)
        )
    return estimates


class ShardedClusterRun:
    """Drives one configured run epoch-by-epoch to its fingerprints."""

    def __init__(self, config: ShardRunConfig, calibrations=None) -> None:
        from repro.faults.harness import chaos_calibration
        from repro.hardware.specs import spec_by_name

        self.config = config
        table = config.machine_table()
        spec_names = sorted({spec_name for _name, spec_name in table})
        if calibrations is None:
            calibrations = {
                spec_name: chaos_calibration(spec_by_name(spec_name))
                for spec_name in spec_names
            }
        self.calibrations = calibrations
        self.workload = build_shard_workload(config.workload)
        slots = _machine_slots(table, calibrations, config.rack_size)
        rack_caps: dict[int, float] = {}
        for slot in slots:
            rack_caps[slot.rack] = rack_caps.get(slot.rack, 0.0) \
                + slot.peak_watts
        rack_caps = {
            rack: config.oversub_fraction * total
            for rack, total in rack_caps.items()
        }
        self.scheduler = PowerAwareScheduler(
            slots,
            rack_caps,
            _bootstrap_joules(calibrations, self.workload),
            epoch_seconds=config.epoch,
            max_defers=config.max_defers,
        )
        #: machine name -> owning shard id (round-robin like
        #: :meth:`HeterogeneousCluster.shard_partition`).
        self.shard_of = {
            name: index % config.n_shards
            for index, (name, _spec) in enumerate(table)
        }
        shard_machines: dict[int, list[tuple[str, str]]] = {
            shard_id: [] for shard_id in range(config.n_shards)
        }
        for name, spec_name in table:
            shard_machines[self.shard_of[name]].append((name, spec_name))
        self.shard_configs = [
            ShardConfig(
                shard_id=shard_id,
                machines=tuple(shard_machines[shard_id]),
                workload=config.workload,
                telemetry=_WORKER_TELEMETRY[config.telemetry],
                telemetry_capacity=config.telemetry_capacity,
            )
            for shard_id in range(config.n_shards)
        ]
        self.observability: ClusterObservability | None = None
        if config.telemetry in ("store", "on"):
            self.observability = ClusterObservability(
                epoch_seconds=config.epoch,
                rack_of={slot.name: slot.rack for slot in slots},
                rack_caps=rack_caps,
                frames=config.telemetry == "on",
                capacity=config.telemetry_capacity,
                top_k=config.telemetry_top_k,
            )
        hub = RngHub(config.seed)
        self._arrival_rng = hub.stream("shard-arrivals")
        self._aggregate_rate = sum(
            config.load_fraction * slot.n_cores
            / self.workload.mean_demand_seconds(slot.arch)
            for slot in slots
        )
        self._fault_events = self._draw_faults(hub)
        self._next_request_id = 0
        self.n_requests = 0
        self.late_replies = 0
        self.total_energy = 0.0
        self.total_response = 0.0
        self.completed = 0
        self.epochs_run = 0
        self._energy_digest = _ENERGY_CHAIN_SEED
        self._pending: list[DispatchTicket] = []
        #: First epoch index :meth:`run` executes (>0 after a resume).
        self._start_epoch = 0

    # -- pre-drawn fault schedule ---------------------------------------
    def _draw_faults(self, hub: RngHub) -> list[tuple[float, str, str]]:
        """``(time, kind, machine)`` fault transitions, time-ordered.

        Drawn up-front from a dedicated stream so the fault schedule never
        shifts with arrival volume -- the same decoupling the chaos fault
        plans use.
        """
        config = self.config
        if config.faults <= 0:
            return []
        rng = hub.stream("shard-faults")
        names = [name for name, _spec in config.machine_table()]
        events: list[tuple[float, str, str]] = []
        for _ in range(config.faults):
            victim = names[int(rng.integers(0, len(names)))]
            crash_at = float(rng.uniform(0.1, config.duration * 0.8))
            recover_at = crash_at + float(
                rng.uniform(0.5, 1.0) * config.fault_outage
            )
            events.append((crash_at, "crash", victim))
            events.append((recover_at, "recover", victim))
        return sorted(events)

    # -- arrivals --------------------------------------------------------
    def _rate_at(self, time: float) -> float:
        """Offered arrival rate at one instant (requests/second)."""
        config = self.config
        rate = self._aggregate_rate
        if config.arrival == "diurnal":
            rate *= 1.0 + config.diurnal_amplitude * math.sin(
                2.0 * math.pi * time / config.diurnal_period
            )
            if (
                config.flash_start >= 0.0
                and config.flash_start <= time
                < config.flash_start + config.flash_duration
            ):
                rate *= config.flash_multiplier
        elif config.arrival != "steady":
            raise ValueError(f"unknown arrival model {config.arrival!r}")
        return max(rate, 0.0)

    def _sample_epoch_arrivals(
        self, start: float, end: float
    ) -> list[DispatchTicket]:
        """Draw one epoch's arrivals (count, times, request mix)."""
        rng = self._arrival_rng
        rate = self._rate_at((start + end) / 2.0)
        count = int(rng.poisson(rate * (end - start)))
        if count == 0:
            return []
        times = sorted(
            float(value) for value in rng.uniform(start, end, size=count)
        )
        tickets = []
        for arrival in times:
            spec = self.workload.sample_request(rng)
            tickets.append(
                DispatchTicket(
                    request_id=self._next_request_id,
                    workload=self.workload.name,
                    rtype=spec.rtype,
                    params=dict(spec.params),
                    arrival=arrival,
                    machine="",
                )
            )
            self._next_request_id += 1
        self.n_requests += count
        return tickets

    # -- the epoch loop --------------------------------------------------
    def _epoch_directives(
        self, placed: list[DispatchTicket], faults: list[tuple]
    ) -> dict[int, list[tuple]]:
        """Sort one epoch's directives and split them per shard.

        The canonical order -- ``(time, kind rank, machine, request id)``
        -- is established *before* the shard split, so each shard receives
        the same relative order it would see in a single-shard run.
        """
        keyed: list[tuple] = []
        for time, kind, machine in faults:
            directive = (
                crash_directive(machine, time)
                if kind == "crash"
                else recover_directive(machine, time)
            )
            keyed.append(((time, _RANK[kind], machine, -1), machine, directive))
        for ticket in placed:
            keyed.append((
                (ticket.arrival, _RANK["inject"], ticket.machine,
                 ticket.request_id),
                ticket.machine,
                inject_directive(ticket),
            ))
        keyed.sort(key=lambda entry: entry[0])
        per_shard: dict[int, list[tuple]] = {}
        for _key, machine, directive in keyed:
            per_shard.setdefault(self.shard_of[machine], []).append(directive)
        return per_shard

    def run_one_epoch(self, pool: ShardPool, epoch_index: int) -> None:
        """Steps 1-5 of the per-epoch protocol for one barrier."""
        config = self.config
        start = epoch_index * config.epoch
        end = start + config.epoch
        arriving = (
            self._sample_epoch_arrivals(start, end)
            if start < config.duration
            else []
        )
        # Fault transitions: the coordinator only learns of a mid-epoch
        # crash (or recovery) at the next barrier, so routing stops -- and
        # resumes -- one epoch after the instant itself.  Tickets routed
        # into the crash's own epoch are served, stranded into failover
        # records, or bounced by the dead machine; all three paths feed
        # back through the merged failover stream.
        epoch_faults = [
            event for event in self._fault_events
            if start <= event[0] < end
        ]
        for time, kind, machine in self._fault_events:
            if start - config.epoch <= time < start:
                if kind == "crash":
                    self.scheduler.note_crashed(machine)
                else:
                    self.scheduler.note_recovered(machine)
        # Carried-over tickets re-arrive at the barrier itself.
        carried = [
            DispatchTicket(
                request_id=ticket.request_id,
                workload=ticket.workload,
                rtype=ticket.rtype,
                params=ticket.params,
                arrival=start,
                machine="",
                attempt=ticket.attempt,
            )
            if ticket.arrival < start else ticket
            for ticket in self._pending
        ]
        placed, deferred = self.scheduler.place(
            carried + arriving, epoch_index
        )
        self._pending = deferred
        per_shard = self._epoch_directives(placed, epoch_faults)
        completions, failovers, frames = pool.run_epoch(end, per_shard)
        merged_completions = merge_records(completions, CompletionRecord)
        for record in merged_completions:
            self.scheduler.note_completed(record)
            self.completed += 1
            self.total_energy += record.energy_joules
            self.total_response += record.response_time
            line = (
                f"{record.completion!r}:{record.machine}:"
                f"{record.request_id}:{record.energy_joules!r}\n"
            )
            self._energy_digest = hashlib.sha256(
                (self._energy_digest + line).encode()
            ).hexdigest()
        merged_failovers = merge_records(failovers, FailoverRecord)
        for record in merged_failovers:
            self.scheduler.note_failover(record)
            ticket = record.ticket()
            self._pending.append(
                DispatchTicket(
                    request_id=ticket.request_id,
                    workload=ticket.workload,
                    rtype=ticket.rtype,
                    params=ticket.params,
                    arrival=end,
                    machine="",
                    attempt=ticket.attempt + 1,
                )
            )
        self.epochs_run += 1
        # Observability consumes the already-merged streams; it never
        # feeds anything back, so fingerprints cannot depend on it.
        if self.observability is not None:
            self.observability.observe_epoch(
                epoch_index=epoch_index,
                end=end,
                completions=merged_completions,
                failover_count=len(merged_failovers),
                frames=frames,
                shed_total=self.scheduler.shed,
                deferred_total=self.scheduler.deferred_total,
            )

    def run(
        self,
        pool_hook=None,
        transport_plan=None,
        transport_seed=None,
        transport_limits=None,
        revive_budget: int = 3,
        checkpoint: ShardCheckpointPolicy | None = None,
        _pool_state: dict | None = None,
    ) -> ShardRunResult:
        """Run arrivals plus drain to completion; returns the result.

        ``pool_hook(pool, epoch_index)``, when given, fires before every
        epoch -- the worker-kill tests use it to SIGKILL a worker mid-run.
        ``transport_plan`` subjects every coordinator<->worker exchange to
        the given :class:`~repro.shard.transport.TransportFaultPlan`
        (seeded by ``transport_seed``, default the run seed -- results
        must stay bit-identical regardless).  ``checkpoint`` persists
        coordinator + pool state at epoch barriers for
        :func:`resume_sharded`.  ``_pool_state`` is the resume path's
        recorded directive history, replayed into fresh workers before
        the first epoch.
        """
        config = self.config
        arrival_epochs = max(1, math.ceil(config.duration / config.epoch))
        manager = None
        if checkpoint is not None:
            from repro.checkpoint.manager import CheckpointManager

            manager = CheckpointManager(
                checkpoint.directory, keep=checkpoint.keep
            )
        with ShardPool(
            self.shard_configs,
            self.calibrations,
            workers=config.workers,
            transport_plan=transport_plan,
            transport_seed=(
                config.seed if transport_seed is None else transport_seed
            ),
            transport_limits=transport_limits,
            revive_budget=revive_budget,
        ) as pool:
            if _pool_state is not None:
                pool.restore_history(_pool_state)
            epoch_index = self._start_epoch
            while True:
                drained = (
                    epoch_index >= arrival_epochs
                    and not self._pending
                    and self.scheduler.inflight_count() == 0
                )
                if drained or (
                    epoch_index >= arrival_epochs + config.max_drain_epochs
                ):
                    break
                if pool_hook is not None:
                    pool_hook(pool, epoch_index)
                self.run_one_epoch(pool, epoch_index)
                epoch_index += 1
                if manager is not None \
                        and epoch_index % checkpoint.every == 0:
                    self._save_checkpoint(manager, epoch_index, pool)
                    if checkpoint.kill_after is not None \
                            and epoch_index >= checkpoint.kill_after:
                        # The checkpoint is durably on disk; die at the
                        # worst possible moment (crash-recovery hook).
                        os.kill(os.getpid(), signal.SIGKILL)
            payloads = pool.finish()
            restarts = pool.worker_restarts
            transport_stats = pool.transport_stats()
            if (
                self.observability is not None
                and self.observability.aggregator is not None
            ):
                # Shard-transport health lands in the merged registry
                # alongside the workers' facility metrics.
                pool.publish_metrics(
                    self.observability.aggregator.registry
                )
        return self._finalize(payloads, restarts, transport_stats)

    # -- checkpoint / resume ---------------------------------------------
    def snapshot_state(self) -> dict:
        """Plain-data snapshot of every coordinator-side cursor.

        Together with the pool's directive history this is everything a
        fresh process needs to continue the run bit-identically: counters
        and totals, the chained energy digest, the arrival RNG cursor,
        pending (deferred/failover) tickets as wire tuples, and the
        scheduler's live placement state.  The fault schedule is *not*
        stored -- it re-derives deterministically from the config seed.
        """
        from repro.checkpoint.state import generator_state

        return {
            "v": 1,
            "next_epoch": self.epochs_run,
            "next_request_id": self._next_request_id,
            "n_requests": self.n_requests,
            "completed": self.completed,
            "total_energy": self.total_energy,
            "total_response": self.total_response,
            "energy_digest": self._energy_digest,
            "arrival_rng": generator_state(self._arrival_rng),
            "pending": [list(ticket.to_wire()) for ticket in self._pending],
            "scheduler": self.scheduler.snapshot_state(),
            "telemetry": (
                self.observability.snapshot_state()
                if self.observability is not None else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`snapshot_state` snapshot (same-config run)."""
        from repro.checkpoint.state import set_generator_state

        if state.get("v") != 1:
            raise ValueError(
                f"unknown coordinator snapshot version {state.get('v')!r}"
            )
        self.epochs_run = int(state["next_epoch"])
        self._start_epoch = int(state["next_epoch"])
        self._next_request_id = int(state["next_request_id"])
        self.n_requests = int(state["n_requests"])
        self.completed = int(state["completed"])
        self.total_energy = float(state["total_energy"])
        self.total_response = float(state["total_response"])
        self._energy_digest = state["energy_digest"]
        set_generator_state(self._arrival_rng, state["arrival_rng"])
        self._pending = [
            DispatchTicket.from_wire(tuple(wire))
            for wire in state["pending"]
        ]
        self.scheduler.restore_state(state["scheduler"])
        telemetry_state = state.get("telemetry")
        if telemetry_state is not None and self.observability is not None:
            self.observability.restore_state(telemetry_state)

    def _save_checkpoint(self, manager, next_epoch: int,
                         pool: ShardPool) -> None:
        """Persist one barrier's coordinator + pool state atomically."""
        manager.save(
            next_epoch,
            next_epoch * self.config.epoch,
            asdict(self.config),
            {
                "coordinator": self.snapshot_state(),
                "pool": pool.snapshot_history(),
            },
        )

    # -- fingerprint rendering -------------------------------------------
    def _finalize(self, payloads: dict[int, dict], restarts: int,
                  transport_stats: dict[str, int] | None = None)\
            -> ShardRunResult:
        """Fold per-shard payloads into the four run fingerprints."""
        machine_rows = []
        batch_hash = hashlib.sha256()
        for name, _spec in self.config.machine_table():
            payload = payloads[self.shard_of[name]]
            row = payload["machines"][name]
            machine_rows.append((
                name,
                row["completed"],
                row["attributed_joules"],
                row["measured_joules"],
                row["crash_count"],
                row["alive"],
            ))
            for line in row["batch_lines"]:
                batch_hash.update(f"{name}|{line}\n".encode())
        self.late_replies = sum(
            payload["late_replies"] for payload in payloads.values()
        )
        unfinished = len(self._pending) + self.scheduler.inflight_count()
        stats = self.scheduler.stats()
        report_lines = [
            f"workload={self.config.workload}",
            f"machines={self.config.n_machines}",
            f"requests={self.n_requests}",
            f"completed={self.completed}",
            f"shed={self.scheduler.shed}",
            f"failovers={self.scheduler.failovers}",
            f"late_replies={self.late_replies}",
            f"unfinished={unfinished}",
            f"epochs={self.epochs_run}",
            f"energy={self.total_energy!r}",
            f"response={self.total_response!r}",
        ]
        report_lines.extend(
            f"stat:{key}={stats[key]!r}" for key in sorted(stats)
        )
        report_lines.extend(
            f"machine:{name}={completed}:{attributed!r}:{measured!r}:"
            f"{crashes}:{alive}"
            for name, completed, attributed, measured, crashes, alive
            in machine_rows
        )
        fingerprints = {
            "report": hashlib.sha256(
                "\n".join(report_lines).encode()
            ).hexdigest(),
            "shed": self.scheduler.shed_fingerprint(),
            "batch": batch_hash.hexdigest(),
            "energy": self._energy_digest,
        }
        telemetry_summary: dict = {}
        if self.observability is not None:
            self.observability.finalize(
                self.epochs_run * self.config.epoch, machine_rows
            )
            telemetry_summary = self.observability.summary()
        return ShardRunResult(
            config=self.config,
            n_requests=self.n_requests,
            completed=self.completed,
            shed=self.scheduler.shed,
            failovers=self.scheduler.failovers,
            late_replies=self.late_replies,
            unfinished=unfinished,
            epochs=self.epochs_run,
            worker_restarts=restarts,
            total_energy_joules=self.total_energy,
            total_response_seconds=self.total_response,
            scheduler_stats=stats,
            machine_rows=machine_rows,
            fingerprints=fingerprints,
            transport_stats=dict(transport_stats or {}),
            resumed=self._start_epoch > 0,
            telemetry_summary=telemetry_summary,
            observability=self.observability,
        )


def run_sharded(
    config: ShardRunConfig,
    calibrations=None,
    pool_hook=None,
    transport_plan=None,
    transport_seed=None,
    transport_limits=None,
    revive_budget: int = 3,
    checkpoint: ShardCheckpointPolicy | None = None,
) -> ShardRunResult:
    """Build and run one sharded cluster simulation."""
    return ShardedClusterRun(config, calibrations).run(
        pool_hook=pool_hook,
        transport_plan=transport_plan,
        transport_seed=transport_seed,
        transport_limits=transport_limits,
        revive_budget=revive_budget,
        checkpoint=checkpoint,
    )


def resume_sharded(
    directory: str,
    calibrations=None,
    pool_hook=None,
    transport_plan=None,
    transport_seed=None,
    transport_limits=None,
    revive_budget: int = 3,
    index: int | None = None,
    checkpoint: ShardCheckpointPolicy | None = None,
) -> ShardRunResult:
    """Rebuild a crashed coordinator from its checkpoint and continue.

    Loads the newest checkpoint in ``directory`` (or the one at
    ``index``), reconstructs the run from the persisted config, restores
    every coordinator cursor, replays the recorded directive history into
    fresh workers -- re-verifying each shard's digest against the
    checkpoint -- and runs the remaining epochs.  The resumed run's
    fingerprints are bit-identical to the uninterrupted run's: recovery
    is invisible in every fingerprinted output.
    """
    from repro.checkpoint.manager import CheckpointManager

    manager = CheckpointManager(directory)
    body = (
        manager.load(manager.path_for(index))
        if index is not None
        else manager.load_latest()
    )
    run = ShardedClusterRun(
        ShardRunConfig(**body["config"]), calibrations
    )
    run.restore_state(body["layers"]["coordinator"])
    return run.run(
        pool_hook=pool_hook,
        transport_plan=transport_plan,
        transport_seed=transport_seed,
        transport_limits=transport_limits,
        revive_budget=revive_budget,
        checkpoint=checkpoint,
        _pool_state=body["layers"]["pool"],
    )
