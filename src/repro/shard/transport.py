"""Fault-tolerant coordinator<->worker transport for the sharded run.

PR 8's epoch protocol assumed a perfect pipe: every directive batch
arrives exactly once, in order, uncorrupted, and every reply comes back.
This module removes that assumption without giving up bit-identical
fingerprints.  It has three layers:

**Frames and checksums.**  Every message crossing the (simulated) wire is
a frame ``(kind, seq, ack, payload, crc)`` where ``crc`` covers the other
four fields.  A mangled frame fails its checksum and is *rejected*, never
interpreted -- corruption degrades to loss, which the retransmit layer
already handles.

**LossyChannel.**  A seeded, deterministic fault model wrapped around the
real pipe.  Per a composable :class:`TransportFaultPlan` (the same shape
as PR 2's ``FaultPlan``: an ordered list of windows, convenience
constructors, ``random()``), a channel can drop, duplicate, reorder,
delay, and detectably corrupt frames in either direction.  Both
directions' channels live on the coordinator side and draw from
coordinator-owned RNG streams, so workers stay pure functions of their
delivered frames and the whole fault schedule replays from a seed.
Delayed frames stay in the channel across epoch exchanges, so a directive
batch really can arrive epochs late -- and must still be a no-op.

**Exactly-once delivery.**  :class:`ReliableLink` (coordinator side) and
:class:`WorkerEndpoint` (worker side) implement stop-and-wait with
per-worker monotonic sequence numbers, cumulative acks, and idempotent
application: a worker applies command ``seq`` only when it is exactly
``last_applied + 1``, re-sends its cached reply for anything older, and
never executes anything twice.  Retransmits use deterministic doubling
backoff measured in protocol *rounds* (one pipe round-trip per round --
the epoch exchange's unit of virtual time).  The link doubles as the
failure detector: ``probe_after`` silent rounds trigger heartbeat probes,
``dead_after`` silent rounds declare the worker dead
(:class:`WorkerUnresponsiveError`, which the pool converts into a
revive), and ``max_rounds`` bounds the whole exchange
(:class:`TransportTimeoutError`).
"""

from __future__ import annotations

import hashlib
import pickle
import zlib
from dataclasses import dataclass, replace

import numpy as np

#: Frame kinds.
FRAME_DATA = "data"
FRAME_REPLY = "reply"
FRAME_PROBE = "probe"
FRAME_PONG = "pong"

#: Channel directions (coordinator->worker, worker->coordinator).
DIRECTION_C2W = "c2w"
DIRECTION_W2C = "w2c"
_DIRECTIONS = (DIRECTION_C2W, DIRECTION_W2C)

#: Per-channel fault counters (also the stats-dict key set).
CHANNEL_STATS = (
    "sent", "delivered", "dropped", "duplicated", "reordered", "delayed",
    "corrupted",
)


class TransportError(RuntimeError):
    """Base class for every transport-layer failure."""


class TransportTimeoutError(TransportError):
    """An exchange exceeded its round budget without completing."""


class WorkerUnresponsiveError(TransportError):
    """The failure detector declared a worker dead (probes unanswered)."""


class WorkerQuarantinedError(TransportError):
    """A worker exhausted its revive budget and was quarantined.

    Carries the directive-replay digest diff from the final diagnostic
    replay: an empty ``digest_diff`` means the replayed state still
    matched every recorded digest (the transport, not the state, was at
    fault); a non-empty one names the diverging summary fields.
    """

    def __init__(
        self,
        worker_index: int,
        shard_ids: list[int],
        revives: int,
        digest_diff: list[str],
        reason: str,
    ) -> None:
        self.worker_index = worker_index
        self.shard_ids = list(shard_ids)
        self.revives = revives
        self.digest_diff = list(digest_diff)
        self.reason = reason
        diff = "; ".join(digest_diff) if digest_diff else "replay state intact"
        super().__init__(
            f"worker {worker_index} (shards {self.shard_ids}) quarantined "
            f"after {revives} revives: {reason} [diagnostic replay: {diff}]"
        )


# -- frames ------------------------------------------------------------
def frame_crc(kind: str, seq: int, ack: int, payload: object) -> int:
    """CRC-32 over a frame's canonical pickled content."""
    return zlib.crc32(pickle.dumps((kind, seq, ack, payload), protocol=4))


def make_frame(kind: str, seq: int, ack: int, payload: object) -> tuple:
    """Assemble one checksummed wire frame."""
    return (kind, seq, ack, payload, frame_crc(kind, seq, ack, payload))


def frame_valid(frame: object) -> bool:
    """True when the frame is well-formed and its checksum verifies."""
    if not isinstance(frame, tuple) or len(frame) != 5:
        return False
    kind, seq, ack, payload, crc = frame
    try:
        return crc == frame_crc(kind, seq, ack, payload)
    except Exception:  # pragma: no cover - unpicklable garbage
        return False


def corrupt_frame(frame: tuple) -> tuple:
    """Detectably mangle a frame: flip its checksum, scar the payload.

    The result always fails :func:`frame_valid` -- the channel models
    *detectable* corruption (bit rot caught by the checksum), never a
    silent payload swap, which is what lets corruption degrade safely to
    loss.
    """
    kind, seq, ack, payload, crc = frame
    return (kind, seq, ack, ("__mangled__", payload), crc ^ 0xDEADBEEF)


# -- fault plans -------------------------------------------------------
@dataclass(frozen=True)
class TransportWindow:
    """Fault probabilities active over ``[start_epoch, end_epoch)``.

    ``worker`` / ``direction`` of ``None`` match every worker / both
    directions.  ``delay`` delays a frame by 1..``max_delay`` protocol
    rounds; because undelivered frames persist across epoch exchanges, a
    delayed frame can surface one or more epochs later.
    """

    start_epoch: int
    end_epoch: int
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    corrupt: float = 0.0
    max_delay: int = 3
    worker: int | None = None
    direction: str | None = None

    def __post_init__(self) -> None:
        if self.start_epoch < 0 or self.end_epoch <= self.start_epoch:
            raise ValueError(
                f"need 0 <= start_epoch < end_epoch, got "
                f"[{self.start_epoch}, {self.end_epoch})"
            )
        for name in ("drop", "duplicate", "reorder", "delay", "corrupt"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        if self.direction is not None and self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS} or None, "
                f"got {self.direction!r}"
            )

    def matches(self, epoch: int, worker: int, direction: str) -> bool:
        return (
            self.start_epoch <= epoch < self.end_epoch
            and (self.worker is None or self.worker == worker)
            and (self.direction is None or self.direction == direction)
        )


@dataclass(frozen=True)
class _Rates:
    """Merged fault probabilities for one (epoch, worker, direction)."""

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    corrupt: float = 0.0
    max_delay: int = 1


def _combine(first: float, second: float) -> float:
    """Independent-event union of two probabilities."""
    return 1.0 - (1.0 - first) * (1.0 - second)


class TransportFaultPlan:
    """An ordered, composable set of transport fault windows.

    Mirrors ``repro.faults.plan.FaultPlan``: pure data with convenience
    constructors that chain, a seeded :meth:`random` generator, and
    ``getstate``/``setstate`` for checkpointing.  Windows are measured in
    epoch indices because the transport's virtual clock is the epoch
    exchange, not the sim clock.
    """

    def __init__(self, windows=None, rng=None) -> None:
        self.windows: list[TransportWindow] = list(windows) if windows else []
        #: Generator :meth:`random` drew from (checkpointable cursor).
        self.rng = rng

    # -- composition ----------------------------------------------------
    def add(self, window: TransportWindow) -> "TransportFaultPlan":
        """Append one window (returns self for chaining)."""
        self.windows.append(window)
        return self

    def merge(self, other: "TransportFaultPlan") -> "TransportFaultPlan":
        """A new plan containing both plans' windows."""
        return TransportFaultPlan(self.windows + other.windows)

    def __len__(self) -> int:
        return len(self.windows)

    # -- convenience constructors ---------------------------------------
    def drop_window(self, start: int, end: int, prob: float,
                    **kwargs) -> "TransportFaultPlan":
        """Drop frames with probability ``prob`` over ``[start, end)``."""
        return self.add(TransportWindow(start, end, drop=prob, **kwargs))

    def duplicate_window(self, start: int, end: int, prob: float,
                         **kwargs) -> "TransportFaultPlan":
        """Deliver a second copy of frames with probability ``prob``."""
        return self.add(TransportWindow(start, end, duplicate=prob, **kwargs))

    def reorder_window(self, start: int, end: int, prob: float,
                       **kwargs) -> "TransportFaultPlan":
        """Swap a frame past its successor with probability ``prob``."""
        return self.add(TransportWindow(start, end, reorder=prob, **kwargs))

    def delay_window(self, start: int, end: int, prob: float,
                     max_delay: int = 3, **kwargs) -> "TransportFaultPlan":
        """Hold frames for 1..``max_delay`` rounds with probability
        ``prob`` (held frames can surface epochs later)."""
        return self.add(
            TransportWindow(start, end, delay=prob, max_delay=max_delay,
                            **kwargs)
        )

    def corrupt_window(self, start: int, end: int, prob: float,
                       **kwargs) -> "TransportFaultPlan":
        """Detectably mangle frames with probability ``prob``."""
        return self.add(TransportWindow(start, end, corrupt=prob, **kwargs))

    def chaos_window(self, start: int, end: int, drop: float = 0.0,
                     duplicate: float = 0.0, reorder: float = 0.0,
                     delay: float = 0.0, corrupt: float = 0.0,
                     max_delay: int = 3, **kwargs) -> "TransportFaultPlan":
        """Every fault kind at once over one window."""
        return self.add(
            TransportWindow(
                start, end, drop=drop, duplicate=duplicate, reorder=reorder,
                delay=delay, corrupt=corrupt, max_delay=max_delay, **kwargs
            )
        )

    # -- evaluation -----------------------------------------------------
    def rates_for(
        self, epoch: int, worker: int, direction: str
    ) -> _Rates | None:
        """Merged rates for one send, or ``None`` when no window matches.

        Overlapping windows combine as independent events (union of
        probabilities); ``max_delay`` takes the matching maximum.
        """
        merged = None
        for window in self.windows:
            if not window.matches(epoch, worker, direction):
                continue
            if merged is None:
                merged = _Rates(
                    drop=window.drop, duplicate=window.duplicate,
                    reorder=window.reorder, delay=window.delay,
                    corrupt=window.corrupt, max_delay=window.max_delay,
                )
            else:
                merged = _Rates(
                    drop=_combine(merged.drop, window.drop),
                    duplicate=_combine(merged.duplicate, window.duplicate),
                    reorder=_combine(merged.reorder, window.reorder),
                    delay=_combine(merged.delay, window.delay),
                    corrupt=_combine(merged.corrupt, window.corrupt),
                    max_delay=max(merged.max_delay, window.max_delay),
                )
        return merged

    # -- random plan generation -----------------------------------------
    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        n_epochs: int,
        max_windows: int = 3,
        max_prob: float = 0.5,
    ) -> "TransportFaultPlan":
        """A random-but-reproducible plan over ``[0, n_epochs)``.

        Probabilities stay at most ``max_prob`` (< 1), so every frame
        retains a positive per-round delivery probability and retransmits
        converge; the property tests rely on that to demand identical
        fingerprints rather than a typed error.
        """
        if n_epochs < 1:
            raise ValueError("n_epochs must be >= 1")
        if not 0.0 < max_prob < 1.0:
            raise ValueError("max_prob must be in (0, 1)")
        plan = cls(rng=rng)
        kinds = ("drop", "duplicate", "reorder", "delay", "corrupt")
        n_windows = int(rng.integers(1, max_windows + 1))
        for _ in range(n_windows):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            start = int(rng.integers(0, max(1, int(n_epochs * 0.7) + 1)))
            span = 1 + int(rng.integers(0, max(1, n_epochs // 2)))
            prob = float(rng.uniform(0.05, max_prob))
            window = TransportWindow(start, start + span)
            window = replace(window, **{kind: prob})
            if kind == "delay":
                window = replace(
                    window, max_delay=1 + int(rng.integers(0, 3))
                )
            plan.add(window)
        return plan

    # -- checkpoint protocol --------------------------------------------
    _FIELDS = (
        "start_epoch", "end_epoch", "drop", "duplicate", "reorder", "delay",
        "corrupt", "max_delay", "worker", "direction",
    )

    def getstate(self) -> dict:
        """The plan as plain data: windows plus its RNG cursor."""
        from repro.checkpoint.state import generator_state

        return {
            "v": 1,
            "rng": generator_state(self.rng) if self.rng is not None else None,
            "windows": [
                [getattr(window, name) for name in self._FIELDS]
                for window in self.windows
            ],
        }

    def setstate(self, state: dict) -> None:
        """Restore windows and the RNG cursor from :meth:`getstate`."""
        from repro.checkpoint.state import set_generator_state

        if state.get("v") != 1:
            raise ValueError(
                f"unknown TransportFaultPlan snapshot version "
                f"{state.get('v')!r}"
            )
        if state["rng"] is not None:
            if self.rng is None:
                raise ValueError(
                    "snapshot carries RNG state but this plan has no bound rng"
                )
            set_generator_state(self.rng, state["rng"])
        self.windows = [
            TransportWindow(**dict(zip(self._FIELDS, row)))
            for row in state["windows"]
        ]


# -- the lossy channel -------------------------------------------------
def channel_seed(seed: int, worker: int, incarnation: int,
                 direction: str) -> int:
    """Stable per-(worker, incarnation, direction) child seed."""
    digest = hashlib.sha256(
        f"shard-transport:{seed}:{worker}:{incarnation}:{direction}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


class LossyChannel:
    """One direction of a worker's simulated wire.

    Sits between the protocol and the real pipe: the coordinator pushes
    frames through :meth:`send` (where the fault dice roll) and pulls the
    due ones back with :meth:`take_due` once per protocol round.  Frames
    whose due round has not arrived stay queued -- including across epoch
    exchanges, which is how a delayed directive batch shows up epochs
    late.  All randomness lives in the channel's own seeded generator on
    the coordinator side; the plan only supplies probabilities.
    """

    def __init__(
        self,
        plan: TransportFaultPlan | None,
        rng: np.random.Generator,
        worker: int,
        direction: str,
    ) -> None:
        if direction not in _DIRECTIONS:
            raise ValueError(f"unknown channel direction {direction!r}")
        self.plan = plan
        self.rng = rng
        self.worker = worker
        self.direction = direction
        self._round = 0
        self._order = 0
        #: In-transit frames: ``(due_round, order, frame)`` min-queue.
        self._queue: list[tuple[int, int, tuple]] = []
        self.stats = dict.fromkeys(CHANNEL_STATS, 0)

    def send(self, frame: tuple, epoch: int) -> None:
        """Submit one frame; fault dice decide its fate."""
        import heapq

        self.stats["sent"] += 1
        due = self._round
        order = self._order
        self._order += 4
        rates = (
            self.plan.rates_for(epoch, self.worker, self.direction)
            if self.plan is not None
            else None
        )
        if rates is not None:
            rng = self.rng
            if rates.drop and rng.random() < rates.drop:
                self.stats["dropped"] += 1
                return
            if rates.corrupt and rng.random() < rates.corrupt:
                self.stats["corrupted"] += 1
                frame = corrupt_frame(frame)
            if rates.delay and rng.random() < rates.delay:
                self.stats["delayed"] += 1
                due += 1 + int(rng.integers(0, rates.max_delay))
            if rates.reorder and rng.random() < rates.reorder:
                # Land after the next frame sent this round.
                self.stats["reordered"] += 1
                order += 6
            if rates.duplicate and rng.random() < rates.duplicate:
                self.stats["duplicated"] += 1
                heapq.heappush(self._queue, (due, order + 1, frame))
        heapq.heappush(self._queue, (due, order, frame))

    def take_due(self) -> list[tuple]:
        """Frames whose round has come, in delivery order; advances time."""
        import heapq

        out = []
        while self._queue and self._queue[0][0] <= self._round:
            out.append(heapq.heappop(self._queue)[2])
            self.stats["delivered"] += 1
        self._round += 1
        return out

    def in_transit(self) -> int:
        """Frames currently queued inside the channel."""
        return len(self._queue)


# -- protocol limits ---------------------------------------------------
@dataclass(frozen=True)
class TransportLimits:
    """Deterministic timeout/backoff schedule, in protocol rounds."""

    #: First retransmit fires this many rounds after the original send.
    initial_rto: int = 1
    #: Backoff doubles up to this ceiling.
    max_rto: int = 8
    #: Silent rounds before heartbeat probes start.
    probe_after: int = 4
    #: Silent rounds before the worker is declared dead.
    dead_after: int = 24
    #: Hard bound on rounds per exchange (terminal timeout).
    max_rounds: int = 256

    def __post_init__(self) -> None:
        if self.initial_rto < 1:
            raise ValueError("initial_rto must be >= 1")
        if self.max_rto < self.initial_rto:
            raise ValueError("max_rto must be >= initial_rto")
        if self.probe_after < 1:
            raise ValueError("probe_after must be >= 1")
        if self.dead_after <= self.probe_after:
            raise ValueError("dead_after must exceed probe_after")
        if self.max_rounds < self.dead_after:
            raise ValueError("max_rounds must be >= dead_after")


#: Link-side protocol counters.
LINK_STATS = (
    "requests", "data_sent", "retransmits", "probes_sent", "pongs_received",
    "duplicate_replies", "corrupt_rejected",
)

#: Worker-endpoint counters.
ENDPOINT_STATS = (
    "applied", "duplicates_ignored", "out_of_order_ignored",
    "probes_answered", "corrupt_rejected",
)


class WorkerEndpoint:
    """Worker-side half of the exactly-once protocol (RNG-free).

    Applies command ``seq`` exactly when it is ``last_applied + 1``;
    re-sends the cached reply for anything at or below ``last_applied``
    (the replayed batch is a no-op); answers probes with pongs carrying
    its progress.  Cached replies are pruned by the cumulative ack each
    inbound frame carries.  Corrupted frames are rejected by checksum and
    counted, never interpreted.
    """

    def __init__(self, execute) -> None:
        self._execute = execute
        self.last_applied = 0
        self._replies: dict[int, tuple] = {}
        self.stats = dict.fromkeys(ENDPOINT_STATS, 0)

    def handle_frames(self, frames: list) -> list[tuple]:
        """Process one round's inbound frames; returns outbound frames."""
        out: list[tuple] = []
        for frame in frames:
            if not frame_valid(frame):
                self.stats["corrupt_rejected"] += 1
                continue
            kind, seq, ack, payload, _crc = frame
            for acked in [s for s in self._replies if s <= ack]:
                del self._replies[acked]
            if kind == FRAME_PROBE:
                self.stats["probes_answered"] += 1
                out.append(make_frame(FRAME_PONG, self.last_applied, 0, None))
            elif kind == FRAME_DATA:
                if seq <= self.last_applied:
                    self.stats["duplicates_ignored"] += 1
                    cached = self._replies.get(seq)
                    if cached is not None:
                        out.append(cached)
                elif seq == self.last_applied + 1:
                    reply = make_frame(
                        FRAME_REPLY, seq, 0, self._execute(payload)
                    )
                    self.last_applied = seq
                    self._replies[seq] = reply
                    self.stats["applied"] += 1
                    out.append(reply)
                else:
                    # A gap is unreachable under stop-and-wait, but a
                    # future windowed protocol must still never apply
                    # ahead of order.
                    self.stats["out_of_order_ignored"] += 1
        return out


class ReliableLink:
    """Coordinator-side half: stop-and-wait with retransmit + probes.

    One outstanding command at a time.  Each protocol round performs one
    pipe round-trip: push outbound frames through the ``c2w`` channel,
    exchange whatever is due, pull inbound frames back through ``w2c``.
    Retransmits follow the :class:`TransportLimits` doubling backoff;
    silence beyond ``probe_after`` rounds adds heartbeat probes, and
    silence beyond ``dead_after`` raises :class:`WorkerUnresponsiveError`
    for the pool's failure handling to convert into a revive.
    """

    def __init__(
        self,
        exchange,
        plan: TransportFaultPlan | None,
        seed: int,
        worker_index: int,
        incarnation: int = 0,
        limits: TransportLimits | None = None,
    ) -> None:
        self._exchange = exchange
        self.plan = plan
        self.worker_index = worker_index
        self.limits = limits if limits is not None else TransportLimits()
        self.c2w = LossyChannel(
            plan,
            np.random.default_rng(
                channel_seed(seed, worker_index, incarnation, DIRECTION_C2W)
            ),
            worker_index,
            DIRECTION_C2W,
        )
        self.w2c = LossyChannel(
            plan,
            np.random.default_rng(
                channel_seed(seed, worker_index, incarnation, DIRECTION_W2C)
            ),
            worker_index,
            DIRECTION_W2C,
        )
        self.next_seq = 1
        self.acked = 0
        self.stats = dict.fromkeys(LINK_STATS, 0)

    def _round_trip(self, outbound: list[tuple], epoch: int,
                    lossless: bool) -> list[tuple]:
        if lossless or self.plan is None:
            return self._exchange(outbound)
        for frame in outbound:
            self.c2w.send(frame, epoch)
        raw = self._exchange(self.c2w.take_due())
        for frame in raw:
            self.w2c.send(frame, epoch)
        return self.w2c.take_due()

    def request(self, payload: object, epoch: int,
                lossless: bool = False) -> object:
        """Deliver ``payload`` exactly once; returns the worker's reply.

        ``lossless`` bypasses the fault channels (replay after a revive
        runs on a fresh, fault-free link so recovery itself cannot be
        re-faulted into a livelock).  Raises ``ConnectionError`` if the
        underlying pipe dies, :class:`WorkerUnresponsiveError` if the
        worker stays silent past the detector deadline, and
        :class:`TransportTimeoutError` at the hard round bound.
        """
        limits = self.limits
        seq = self.next_seq
        self.next_seq += 1
        self.stats["requests"] += 1
        rto = limits.initial_rto
        next_tx = 0
        silent = 0
        sends = 0
        for round_index in range(limits.max_rounds):
            outbound = []
            if round_index >= next_tx:
                outbound.append(
                    make_frame(FRAME_DATA, seq, self.acked, payload)
                )
                self.stats["data_sent"] += 1
                if sends > 0:
                    self.stats["retransmits"] += 1
                sends += 1
                next_tx = round_index + rto
                rto = min(rto * 2, limits.max_rto)
            if silent >= limits.probe_after:
                outbound.append(make_frame(FRAME_PROBE, 0, self.acked, None))
                self.stats["probes_sent"] += 1
            inbound = self._round_trip(outbound, epoch, lossless)
            heard = False
            reply = None
            for frame in inbound:
                if not frame_valid(frame):
                    self.stats["corrupt_rejected"] += 1
                    continue
                heard = True
                kind, frame_seq, _ack, frame_payload, _crc = frame
                if kind == FRAME_REPLY:
                    if frame_seq == seq:
                        reply = (frame_payload,)
                    else:
                        self.stats["duplicate_replies"] += 1
                elif kind == FRAME_PONG:
                    self.stats["pongs_received"] += 1
            if reply is not None:
                self.acked = seq
                return reply[0]
            silent = 0 if heard else silent + 1
            if silent >= limits.dead_after:
                raise WorkerUnresponsiveError(
                    f"worker {self.worker_index}: no valid frame for "
                    f"{silent} rounds (seq {seq}); declaring dead"
                )
        raise TransportTimeoutError(
            f"worker {self.worker_index}: exchange for seq {seq} exceeded "
            f"{limits.max_rounds} rounds"
        )

    def combined_stats(self) -> dict[str, int]:
        """Link counters plus both channels' (prefixed) counters."""
        merged = dict(self.stats)
        for prefix, channel in ((DIRECTION_C2W, self.c2w),
                                (DIRECTION_W2C, self.w2c)):
            for key, value in channel.stats.items():
                merged[f"{prefix}_{key}"] = value
        return merged


# -- canned plans (CLI / CI presets) -----------------------------------
def lossy_preset(end_epoch: int = 1_000_000) -> TransportFaultPlan:
    """Moderate everything-at-once weather: drop, dup, reorder, delay."""
    return TransportFaultPlan().chaos_window(
        0, end_epoch, drop=0.25, duplicate=0.2, reorder=0.3, delay=0.25,
        max_delay=3,
    )


def corrupt_preset(end_epoch: int = 1_000_000) -> TransportFaultPlan:
    """Checksum-exercising weather: corruption (plus light drops)."""
    return (
        TransportFaultPlan()
        .corrupt_window(0, end_epoch, 0.3)
        .drop_window(0, end_epoch, 0.1)
    )


def chaos_preset(end_epoch: int = 1_000_000) -> TransportFaultPlan:
    """Heavy weather: every fault kind at elevated rates."""
    return TransportFaultPlan().chaos_window(
        0, end_epoch, drop=0.35, duplicate=0.3, reorder=0.35, delay=0.3,
        corrupt=0.25, max_delay=4,
    )


#: ``python -m repro shard --transport <name>`` resolves names here.
TRANSPORT_PRESETS = {
    "lossy": lossy_preset,
    "corrupt": corrupt_preset,
    "chaos": chaos_preset,
}
