"""Named sharded-run scenarios: invariance cases and the scale exercise.

Three tiers, all built on :class:`~repro.shard.coordinator.ShardRunConfig`:

* :func:`solr_macro_config` -- the Solr macro world at a size the
  invariance tests and the CI shard lane can afford to run several times
  (every shard count must produce the same fingerprints, so each case is
  run once per N).
* :func:`chaos_world_config` -- the chaos workload with machine
  crash/recover windows, proving the invariance holds through failover
  and re-placement, not just on the happy path.
* :func:`diurnal_flash_config` -- the scale exercise: a ≥1,000-machine
  cluster under a diurnal sine with a flash-crowd spike, sized to push
  ≥1,000,000 requests through the power-aware scheduler in one run
  (``python -m repro shard --scenario flash``).
"""

from __future__ import annotations

from repro.shard.coordinator import (
    ShardRunConfig,
    ShardRunResult,
    run_sharded,
)
from repro.shard.transport import TRANSPORT_PRESETS, TransportFaultPlan


def solr_macro_config(
    n_shards: int = 1,
    workers: int = 1,
    seed: int = 42,
    n_machines: int = 9,
    duration: float = 1.0,
) -> ShardRunConfig:
    """The Solr macro invariance case (a few thousand requests)."""
    return ShardRunConfig(
        workload="solr",
        n_machines=n_machines,
        n_shards=n_shards,
        workers=workers,
        duration=duration,
        epoch=0.25,
        seed=seed,
        load_fraction=0.4,
        rack_size=4,
        oversub_fraction=0.7,
    )


def chaos_world_config(
    n_shards: int = 1,
    workers: int = 1,
    seed: int = 7,
    n_machines: int = 8,
    duration: float = 1.5,
) -> ShardRunConfig:
    """The chaos invariance case: crashes, failover, re-placement."""
    return ShardRunConfig(
        workload="chaos",
        n_machines=n_machines,
        n_shards=n_shards,
        workers=workers,
        duration=duration,
        epoch=0.25,
        seed=seed,
        load_fraction=0.4,
        rack_size=4,
        oversub_fraction=0.7,
        faults=3,
        fault_outage=0.4,
    )


def diurnal_flash_config(
    n_shards: int = 4,
    workers: int = 1,
    seed: int = 2013,
    n_machines: int = 1002,
    duration: float = 6.5,
) -> ShardRunConfig:
    """The scale exercise: diurnal load with a flash crowd.

    With 1,002 machines (334 spec cycles) at 0.5 target load the
    aggregate offered rate is roughly 175k requests/second, so the 6.5 s
    window -- amplified by the flash-crowd spike -- generates over one
    million requests.  Rack oversubscription is deliberately tight enough
    that the flash crowd forces real deferrals and sheds.
    """
    return ShardRunConfig(
        workload="solr",
        n_machines=n_machines,
        n_shards=n_shards,
        workers=workers,
        duration=duration,
        epoch=0.25,
        seed=seed,
        load_fraction=0.5,
        arrival="diurnal",
        diurnal_period=6.5,
        diurnal_amplitude=0.5,
        flash_start=3.0,
        flash_duration=1.0,
        flash_multiplier=2.0,
        rack_size=6,
        oversub_fraction=0.62,
        faults=5,
        fault_outage=0.6,
    )


SCENARIOS = {
    "solr": solr_macro_config,
    "chaos": chaos_world_config,
    "flash": diurnal_flash_config,
}


def transport_preset(name: str | None) -> TransportFaultPlan | None:
    """Resolve a named transport weather preset (``None``/"none" -> off)."""
    if name is None or name == "none":
        return None
    try:
        return TRANSPORT_PRESETS[name]()
    except KeyError:
        known = ", ".join(sorted(TRANSPORT_PRESETS))
        raise KeyError(
            f"unknown transport preset {name!r}; known: none, {known}"
        ) from None


def run_scenario(
    name: str,
    n_shards: int = 1,
    workers: int = 1,
    transport: str | None = None,
    transport_seed: int | None = None,
    pool_hook=None,
    checkpoint=None,
    telemetry: str | None = None,
    telemetry_capacity: int | None = None,
    **overrides,
) -> ShardRunResult:
    """Build and run one named scenario, optionally under transport
    weather, barrier checkpointing, and/or a telemetry mode
    (``telemetry``/``telemetry_capacity`` are applied on top of the built
    config because the scenario builders pin their own field sets;
    fingerprints never depend on them)."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") \
            from None
    config = builder(n_shards=n_shards, workers=workers, **overrides)
    if telemetry is not None or telemetry_capacity is not None:
        from dataclasses import replace

        patch = {}
        if telemetry is not None:
            patch["telemetry"] = telemetry
        if telemetry_capacity is not None:
            patch["telemetry_capacity"] = telemetry_capacity
        config = replace(config, **patch)
    return run_sharded(
        config,
        pool_hook=pool_hook,
        transport_plan=transport_preset(transport),
        transport_seed=transport_seed,
        checkpoint=checkpoint,
    )
